"""Tests for the §VI-extension ablations: non-minimal routing, pinned
mapping, load sweep."""

import pytest

from repro.eval.ablations import load_sweep, nonminimal_routing, pinned_mapping

FAST = dict(warmup_cycles=200, measure_cycles=3000, drain_limit=30000)


class TestNonminimalAblation:
    def test_rows_shape(self):
        rows = nonminimal_routing("MMS_DEC", **FAST)
        assert [r["routing"] for r in rows] == ["minimal", "detour<=2"]
        assert all(r["mean_latency"] >= 1.0 for r in rows)

    def test_detours_never_increase_stops(self):
        rows = nonminimal_routing("MMS_DEC", **FAST)
        assert rows[1]["mean_stops_per_flow"] <= rows[0]["mean_stops_per_flow"] + 1e-9


class TestPinnedMapping:
    @pytest.fixture(scope="class")
    def rows(self):
        return pinned_mapping("VOPD", (0, 4), **FAST)

    def test_pinning_lengthens_paths(self, rows):
        assert rows[1]["mean_hops"] > rows[0]["mean_hops"]

    def test_pinning_magnifies_smart_benefit(self, rows):
        """§VI: longer paths magnify the benefits of SMART."""
        assert rows[1]["smart_saving"] >= rows[0]["smart_saving"]

    def test_mesh_suffers_more_than_smart(self, rows):
        mesh_delta = rows[1]["mesh_latency"] - rows[0]["mesh_latency"]
        smart_delta = rows[1]["smart_latency"] - rows[0]["smart_latency"]
        assert mesh_delta > smart_delta


class TestLoadSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return load_sweep("VOPD", (1.0, 8.0), **FAST)

    def test_latency_grows_with_load_on_shared_fabrics(self, rows):
        assert rows[1]["mesh"] > rows[0]["mesh"]
        assert rows[1]["smart"] >= rows[0]["smart"]

    def test_smart_stays_below_mesh_at_all_loads(self, rows):
        for row in rows:
            assert row["smart"] < row["mesh"]

    def test_low_load_not_saturated(self, rows):
        assert not rows[0]["mesh_saturated"]
        assert not rows[0]["smart_saturated"]
        assert not rows[0]["dedicated_saturated"]
