"""Concurrency stress: real worker processes racing over one queue.

``SMART_FARM_STRESS_WORKERS`` sets the process count (default 2 so the
tier-1 run stays cheap; CI's dedicated farm-smoke job exports 4).  The
assertions are the farm's whole contract at once:

* exactly-once claim accounting — every grid point lands in exactly one
  shard, no duplicates, no leftover leases;
* bit-identical counters — the merged stream and the aggregated JSON
  rows equal a single-process sweep of the same spec, byte for byte.
"""

import json
import os

import pytest

from repro.eval.farm import (
    enumerate_farm,
    farm_status,
    merge_farm,
    work_many,
    work_on,
)
from repro.eval.sweeps import (
    read_sweep_stream,
    run_workload_sweep,
    write_sweep_json,
)
from tests.eval.conftest import FARM_TINY, strip_points

#: Worker process count; CI's farm-smoke job raises this to 4.
STRESS_WORKERS = int(os.environ.get("SMART_FARM_STRESS_WORKERS", "2"))

#: A grid big enough that workers genuinely interleave claims.
STRESS_GRID = dict(
    designs=("mesh", "dedicated"), loads=(1.0, 2.0, 4.0), seeds=(1, 2)
)
STRESS_WORKLOAD = "VOPD"
N_POINTS = 12


@pytest.fixture(scope="module")
def stress_farm(tmp_path_factory):
    """One farm queue worked by ``STRESS_WORKERS`` real processes, plus
    the serial reference sweep of the same spec."""
    base = tmp_path_factory.mktemp("stress")
    serial_stream = str(base / "serial.jsonl")
    serial_rows = run_workload_sweep(
        STRESS_WORKLOAD, processes=0, stream_path=serial_stream,
        **STRESS_GRID, **FARM_TINY,
    )
    spec = enumerate_farm(
        STRESS_WORKLOAD, root=str(base / "farm"), **STRESS_GRID, **FARM_TINY
    )
    work_many(spec, STRESS_WORKERS, worker_prefix="stress")
    return {
        "spec": spec,
        "serial_rows": serial_rows,
        "serial_points": read_sweep_stream(serial_stream),
    }


def test_grid_size_matches_module_constant(stress_farm):
    assert len(stress_farm["spec"].points()) == N_POINTS


def test_exactly_once_claim_accounting(stress_farm):
    spec = stress_farm["spec"]
    status = farm_status(spec)
    assert status["done"] == N_POINTS
    assert status["pending"] == 0
    # Every point ran exactly once: N rows total across all shards, no
    # point claimed (or landed) twice, no torn lines, no leases behind.
    assert status["rows"] == N_POINTS
    assert status["duplicates"] == 0
    assert status["partial_lines"] == 0
    assert status["leases_fresh"] == status["leases_stale"] == 0
    # Every completion marker names the worker that owns the row.
    done_dir = os.path.join(spec.root, "done")
    assert len(os.listdir(done_dir)) == N_POINTS


def test_every_worker_shard_is_disjoint(stress_farm):
    spec = stress_farm["spec"]
    shards_dir = os.path.join(spec.root, "shards")
    seen = {}
    for name in sorted(os.listdir(shards_dir)):
        for line in open(os.path.join(shards_dir, name)):
            point = json.loads(line)["point"]
            assert point not in seen, (
                "point %s landed in both %s and %s" % (point, seen[point], name)
            )
            seen[point] = name
    assert len(seen) == N_POINTS


def test_merged_counters_bit_identical_to_serial(stress_farm, tmp_path):
    spec = stress_farm["spec"]
    result = merge_farm(spec)
    assert result.complete
    assert result.duplicates == 0
    merged_points = read_sweep_stream(result.stream_path)
    assert strip_points(merged_points) \
        == strip_points(stress_farm["serial_points"])
    serial_json = write_sweep_json(
        str(tmp_path / "serial.json"), stress_farm["serial_rows"]
    )
    assert (json.load(open(result.json_path))["rows"]
            == json.load(open(serial_json))["rows"])


def test_completed_queue_offers_no_work(stress_farm):
    assert work_on(stress_farm["spec"], worker="latecomer") == 0
