"""Ablation study tests."""

import pytest

from repro.eval.ablations import (
    channel_split,
    hpc_sweep,
    mapping_comparison,
    route_selection_comparison,
    vc_sweep,
)

FAST = dict(warmup_cycles=200, measure_cycles=3000, drain_limit=30000)


class TestHpcSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return hpc_sweep("VOPD", (1, 2, 8), **FAST)

    def test_latency_non_increasing_with_reach(self, rows):
        latencies = [r["mean_latency"] for r in rows]
        assert latencies[0] >= latencies[1] >= latencies[2]

    def test_segment_cap_respected(self, rows):
        for row in rows:
            assert row["max_segment_hops"] <= row["hpc_max"]

    def test_forced_stops_vanish_at_large_hpc(self, rows):
        assert rows[-1]["forced_stops"] == 0
        assert rows[0]["forced_stops"] > 0


class TestMappingComparison:
    def test_nmap_beats_random(self):
        rows = mapping_comparison("VOPD", ("nmap_modified", "random"), **FAST)
        by_alg = {r["algorithm"]: r for r in rows}
        assert (
            by_alg["nmap_modified"]["mean_latency"]
            <= by_alg["random"]["mean_latency"]
        )
        assert (
            by_alg["nmap_modified"]["mean_stops_per_flow"]
            <= by_alg["random"]["mean_stops_per_flow"]
        )


class TestChannelSplit:
    def test_split_helps_hub_app_in_ns(self):
        """§VI future work: 2 x 16-bit @ 4 GHz mitigates hub conflicts."""
        rows = channel_split("H264", **FAST)
        assert len(rows) == 2
        base_ns = rows[0]["mean_latency_ns"]
        split_ns = rows[1]["mean_latency_ns"]
        assert split_ns < base_ns


class TestVcSweep:
    def test_more_vcs_never_hurt(self):
        rows = vc_sweep("H264", (1, 2), **FAST)
        assert rows[0]["mean_latency"] >= rows[1]["mean_latency"]


class TestRouteSelection:
    def test_rows_shape(self):
        rows = route_selection_comparison("MWD", **FAST)
        assert [r["turn_model"] for r in rows] == ["xy", "west_first"]
        assert all(r["mean_latency"] >= 1.0 for r in rows)

    def test_west_first_no_more_stops_than_xy(self):
        rows = route_selection_comparison("MWD", **FAST)
        by_model = {r["turn_model"]: r for r in rows}
        assert (
            by_model["west_first"]["mean_stops_per_flow"]
            <= by_model["xy"]["mean_stops_per_flow"] + 1e-9
        )
