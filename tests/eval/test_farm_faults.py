"""Fault-injection suite: the farm recovers from worker crashes.

Each scenario damages a queue the way a real failure would — a worker
killed between points, a worker killed mid-``write(2)`` leaving a torn
JSONL line, a shard truncated by a crashed filesystem, a lease held by
two workers after a steal race — and then asserts the recovered merge is
row-for-row equal to an uninterrupted single-process sweep of the same
spec.
"""

import json
import os

import pytest

from repro.eval.farm import (
    FarmWorkerCrash,
    FaultInjector,
    acquire_lease,
    farm_status,
    merge_farm,
    shard_path,
    work_on,
)
from repro.eval.sweeps import read_sweep_stream
from tests.eval.conftest import strip_points


def _age_all_leases(spec, seconds=3600):
    leases = os.path.join(spec.root, "leases")
    for name in os.listdir(leases):
        path = os.path.join(leases, name)
        stat = os.stat(path)
        os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


def _assert_recovered(farm_spec, serial_reference):
    """The queue merges complete and row-for-row equal to the serial sweep."""
    result = merge_farm(farm_spec)
    assert result.complete
    merged = read_sweep_stream(result.stream_path)
    assert strip_points(merged) == strip_points(serial_reference["points"])
    return result


class TestWorkerKilledMidShard:
    def test_crash_leaves_lease_and_loses_nothing_landed(self, farm_spec):
        with pytest.raises(FarmWorkerCrash):
            work_on(
                farm_spec, worker="victim",
                fault=FaultInjector(after_n_points=2),
            )
        status = farm_status(farm_spec)
        assert status["done"] == 2
        # The point being processed keeps its lease — exactly what a
        # kill -9 leaves behind.
        assert status["leases_fresh"] + status["leases_stale"] == 1

    def test_second_worker_recovers_after_lease_expiry(
        self, farm_spec, serial_reference
    ):
        with pytest.raises(FarmWorkerCrash):
            work_on(
                farm_spec, worker="victim",
                fault=FaultInjector(after_n_points=2),
            )
        # While the crashed worker's lease is fresh its point is skipped:
        # the rescuer lands the unclaimed remainder of the grid only.
        assert work_on(farm_spec, worker="rescue") == 1
        assert not merge_farm(farm_spec).complete
        # Once the lease expires the point is stolen and re-run.
        _age_all_leases(farm_spec)
        assert work_on(farm_spec, worker="rescue") == 1
        result = _assert_recovered(farm_spec, serial_reference)
        # The intermediate merge wrote 3 rows into merged.jsonl, which
        # the final merge re-reads as a row source alongside the shards:
        # those 3 re-reads are counted (and deduped) as duplicates.
        assert result.duplicates == 3

    def test_crash_on_first_point_recovers(self, farm_spec, serial_reference):
        with pytest.raises(FarmWorkerCrash):
            work_on(
                farm_spec, worker="victim",
                fault=FaultInjector(after_n_points=0),
            )
        _age_all_leases(farm_spec)
        assert work_on(farm_spec, worker="rescue") == len(farm_spec.points())
        _assert_recovered(farm_spec, serial_reference)


class TestTornShardLine:
    def test_injected_torn_write_is_skipped_and_rerun(
        self, farm_spec, serial_reference
    ):
        """Crash mid-``write``: half a row reaches the shard, no newline,
        no completion marker.  The torn fragment must be ignored and the
        point re-run, not trusted."""
        with pytest.raises(FarmWorkerCrash):
            work_on(
                farm_spec, worker="victim",
                fault=FaultInjector(after_n_points=1, torn_write=True),
            )
        victim_shard = open(shard_path(farm_spec, "victim"), "rb").read()
        assert not victim_shard.endswith(b"\n")  # really torn
        _age_all_leases(farm_spec)
        assert work_on(farm_spec, worker="rescue") == 3
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.partial_lines == 1

    def test_hand_truncated_final_line(self, farm_spec, serial_reference):
        """A shard truncated mid-row by the filesystem (not by our own
        fault hook) merges the same way: the torn row's point re-runs."""
        work_on(farm_spec, worker="victim", max_points=2)
        path = shard_path(farm_spec, "victim")
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 2])
        # The done marker claims the point landed but its row is gone:
        # drop the marker the way the crash that truncated the shard
        # would have prevented it from being published.
        truncated = json.loads(lines[-1])["point"]
        os.unlink(os.path.join(farm_spec.root, "done", truncated))
        assert work_on(farm_spec, worker="rescue") == 3
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.partial_lines == 1

    def test_crashed_worker_id_can_resume_its_own_torn_shard(
        self, farm_spec, serial_reference
    ):
        """Restarting under the same worker id must repair the torn tail
        before appending, or the next good row is glued to the fragment
        and both are lost."""
        with pytest.raises(FarmWorkerCrash):
            work_on(
                farm_spec, worker="victim",
                fault=FaultInjector(after_n_points=1, torn_write=True),
            )
        _age_all_leases(farm_spec)
        assert work_on(farm_spec, worker="victim") == 3
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.partial_lines == 1


class TestDoubleClaim:
    def test_stolen_lease_duplicates_merge_away(
        self, farm_spec, serial_reference
    ):
        """A zombie worker finishing after its lease was stolen writes a
        duplicate row; the content-addressed merge keeps exactly one."""
        first = farm_spec.points()[0]
        # Zombie claims the point, then stalls long enough for its lease
        # to look dead...
        assert acquire_lease(farm_spec, first.point_hash, "zombie")
        _age_all_leases(farm_spec)
        # ...so a healthy worker steals the stale lease and runs the
        # same point itself.
        row = None

        def grab(point, landed):
            nonlocal row
            if point.point_hash == first.point_hash:
                row = landed

        work_on(farm_spec, worker="healthy", on_point=grab)
        assert row is not None
        # The zombie wakes up and publishes its own copy of the row.
        with open(shard_path(farm_spec, "zombie"), "w") as fh:
            fh.write(json.dumps(row) + "\n")
        status = farm_status(farm_spec)
        assert status["rows"] == len(farm_spec.points()) + 1
        assert status["duplicates"] == 1
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.duplicates == 1

    def test_marker_loss_does_not_requeue_landed_rows(
        self, farm_spec, serial_reference
    ):
        """Completion markers are an optimisation, not the ground truth:
        if the done/ directory is wiped, the rows already sitting in
        shards still stop workers from re-running their points."""
        work_on(farm_spec, worker="first")
        done = os.path.join(farm_spec.root, "done")
        for name in os.listdir(done):
            os.unlink(os.path.join(done, name))
        assert work_on(farm_spec, worker="second") == 0
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.duplicates == 0

    def test_whole_shard_double_publish_is_deduped(
        self, farm_spec, serial_reference
    ):
        """Worst case: a zombie re-publishes every row (its whole shard
        is duplicated).  Every point then has two bit-identical rows;
        the merge is still exactly the serial sweep."""
        work_on(farm_spec, worker="first")
        with open(shard_path(farm_spec, "first")) as src:
            payload = src.read()
        with open(shard_path(farm_spec, "zombie"), "w") as dst:
            dst.write(payload)
        status = farm_status(farm_spec)
        assert status["duplicates"] == len(farm_spec.points())
        result = _assert_recovered(farm_spec, serial_reference)
        assert result.duplicates == len(farm_spec.points())
