"""Smoke test for the minimal-vs-nonminimal route-selection study.

Runs the committed study script (``examples/nonminimal_study.py``, the
generator of ``results/sweep_nonminimal_8x8.md``) on a 2-point grid and
checks the merged table's shape: both routings swept, per-load deltas
computed, and the markdown renderer round-trips.
"""

import importlib.util
import math
import os

import pytest

from repro.config import NocConfig

_STUDY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "nonminimal_study.py"
)


@pytest.fixture(scope="module")
def study():
    spec = importlib.util.spec_from_file_location(
        "nonminimal_study", _STUDY_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_study_runs_two_points(study, tmp_path):
    rows, knees = study.run_study(
        loads=(0.01, 0.05),
        seeds=(1,),
        cfg=NocConfig(width=8, height=8),
        measure_cycles=600,
        drain_limit=6000,
        stream_dir=str(tmp_path),
        processes=2,
    )
    assert [row["load"] for row in rows] == [0.01, 0.05]
    for row in rows:
        assert row["minimal"] > 0
        assert row["nonminimal"] > 0
        assert not math.isnan(row["delta_pct"])
    assert set(knees) == {"minimal", "nonminimal"}
    # Both routings streamed their grid points for resume.
    for routing in ("minimal", "nonminimal"):
        assert (
            tmp_path / ("sweep_nonminimal_8x8_%s.jsonl" % routing)
        ).exists()
    table = study.markdown_table(study.format_rows(rows))
    assert table.count("\n") == len(rows) + 2
    assert "| load |" in table


def test_committed_study_table_exists(study):
    """The study's committed output is part of the repo's results."""
    path = os.path.join(
        os.path.dirname(_STUDY_PATH), "..", "results",
        "sweep_nonminimal_8x8.md",
    )
    assert os.path.exists(path)
    with open(path) as fh:
        content = fh.read()
    assert "nonminimal" in content
    assert "delta_pct" in content
