"""File-defined workloads: YAML/TSV parsing, SDF rates, registration."""

import textwrap

import pytest

from repro.config import NocConfig
from repro.workloads import (
    WORKLOADS,
    WorkloadSpec,
    build_workload,
    get_workload,
)
from repro.workloads.specfile import (
    ensure_file_workloads,
    load_workload_file,
    parse_simple_yaml,
    parse_workload_text,
    sdf_task_graph,
    solve_repetition_vector,
    workload_from_definition,
)

DEMANDS_YAML = textwrap.dedent(
    """\
    workloads:
      - name: camera_pipe
        kind: demands
        demands:
          - src: 0
            dst: 5
            mbps: 400
          - src: 3
            dst: 12
            gbps: 0.25
    """
)

TSV_TEXT = textwrap.dedent(
    """\
    # name: tsv_pairs
    # src dst bandwidth_bps
    0 5 400000000
    3 12 250000000
    """
)


@pytest.fixture
def scratch_registry():
    """Restore the registry after tests that register file workloads."""
    before = dict(WORKLOADS)
    yield WORKLOADS
    WORKLOADS.clear()
    WORKLOADS.update(before)


class TestYamlSubset:
    def test_scalars_lists_and_nested_mappings(self):
        data = parse_simple_yaml(
            "a: 1\nb: -2.5\nc: true\nd: null\ne: 'x y'\n"
            "f:\n  - 1\n  - two\ng:\n  h: 3\n"
        )
        assert data == {
            "a": 1, "b": -2.5, "c": True, "d": None, "e": "x y",
            "f": [1, "two"], "g": {"h": 3},
        }

    def test_comments_and_blank_lines_ignored(self):
        assert parse_simple_yaml("# top\na: 1\n\n  # indented\nb: 2\n") == {
            "a": 1, "b": 2,
        }

    def test_tab_indentation_rejected(self):
        with pytest.raises(ValueError, match="tab"):
            parse_simple_yaml("a:\n\tb: 1\n")


class TestDemandWorkloads:
    def test_yaml_demands_build_and_convert_bandwidths(self):
        (definition,) = parse_workload_text(DEMANDS_YAML, "spec")
        workload = workload_from_definition(definition)
        assert workload.name == "camera_pipe"
        assert workload.kind == "file"
        assert workload.load_axis == "bandwidth_scale"
        cfg = NocConfig()
        built = workload.build(cfg, seed=1)
        by_pair = {(f.src, f.dst): f for f in built.flows}
        # mbps is MB/s and gbps is GB/s (bytes, matching the repo-wide
        # bandwidth_bps convention).
        assert by_pair[(0, 5)].bandwidth_bps == pytest.approx(400e6)
        assert by_pair[(3, 12)].bandwidth_bps == pytest.approx(250e6)

    def test_tsv_demands_parse_with_name_directive(self):
        (definition,) = parse_workload_text(TSV_TEXT, "fallback", fmt="tsv")
        workload = workload_from_definition(definition)
        assert workload.name == "tsv_pairs"
        built = workload.build(NocConfig(), seed=1)
        assert {(f.src, f.dst) for f in built.flows} == {(0, 5), (3, 12)}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            workload_from_definition(
                {"name": "bad", "kind": "demands",
                 "demands": [{"src": 1, "dst": 1, "mbps": 1}]}
            )

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            workload_from_definition(
                {"name": "bad", "kind": "demands",
                 "demands": [{"src": 0, "dst": 1, "mbps": 1},
                             {"src": 0, "dst": 1, "mbps": 2}]}
            )

    def test_node_out_of_bounds_detected_at_placement(self):
        (definition,) = parse_workload_text(DEMANDS_YAML, "spec")
        workload = workload_from_definition(definition)
        with pytest.raises(ValueError, match="outside the 2x2 mesh"):
            workload.build(NocConfig(width=2, height=2), seed=1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            workload_from_definition(
                {"name": "bad", "kind": "demands",
                 "demands": [{"src": 0, "dst": 1, "mbps": 0}]}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            workload_from_definition({"name": "bad", "kind": "mystery"})


class TestTaskGraphWorkloads:
    def test_task_graph_places_and_maps(self):
        workload = workload_from_definition(
            {
                "name": "filegraph",
                "kind": "task_graph",
                "edges": [
                    {"src": "in", "dst": "fft", "mbps": 100},
                    {"src": "fft", "dst": "out", "mbps": 50},
                ],
            }
        )
        built = workload.build(NocConfig(), seed=1)
        assert built.mapping is not None
        assert set(built.mapping) == {"in", "fft", "out"}
        assert len(built.flows) == 2


class TestSdf:
    def test_repetition_vector_balances_rates(self):
        reps = solve_repetition_vector(
            [("dct", "quant", 2, 1), ("quant", "vlc", 3, 2)]
        )
        # dct fires 1x producing 2, quant consumes 1 (fires 2x),
        # quant produces 3 each (6 total), vlc consumes 2 (fires 3x).
        assert reps == {"dct": 1, "quant": 2, "vlc": 3}

    def test_inconsistent_rates_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            solve_repetition_vector(
                [("a", "b", 1, 1), ("b", "c", 2, 1), ("c", "a", 1, 1)]
            )

    def test_disconnected_graph_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            solve_repetition_vector(
                [("a", "b", 1, 1), ("c", "d", 1, 1)]
            )

    def test_channel_bandwidth_scales_with_repetitions(self):
        graph = sdf_task_graph(
            "g", [("a", "b", 2, 1), ("b", "c", 3, 2)],
            token_bytes=100.0, throughput_hz=10.0,
        )
        bw = {(e.src, e.dst): e.bandwidth_bps for e in graph.edges}
        # a fires 1x/iteration, producing 2 tokens: 2*100B*10Hz = 2 kB/s.
        assert bw[("a", "b")] == pytest.approx(2000.0)
        # b fires 2x producing 3 tokens each: 6*100B*10Hz = 6 kB/s.
        assert bw[("b", "c")] == pytest.approx(6000.0)

    def test_channels_alias_accepted(self):
        workload = workload_from_definition(
            {"name": "sdfw", "kind": "sdf",
             "channels": [{"src": "a", "dst": "b"}]}
        )
        assert workload.kind == "file"


class TestLoadAndRegister:
    def test_load_registers_and_reloads_idempotently(
        self, tmp_path, scratch_registry
    ):
        path = tmp_path / "wl.yaml"
        path.write_text(DEMANDS_YAML)
        # ensure_file_workloads registers once and tolerates repeats.
        assert ensure_file_workloads(str(path)) == ("camera_pipe",)
        assert ensure_file_workloads(str(path)) == ("camera_pipe",)
        assert get_workload("camera_pipe").kind == "file"
        # An explicit (non-registering) load parses the same names.
        loaded = load_workload_file(str(path), register=False)
        assert [w.name for w in loaded] == ["camera_pipe"]

    def test_registry_collision_raises(self, tmp_path, scratch_registry):
        path = tmp_path / "wl.yaml"
        path.write_text(DEMANDS_YAML.replace("camera_pipe", "VOPD"))
        with pytest.raises(ValueError, match="already registered"):
            load_workload_file(str(path))

    def test_duplicate_names_within_file_rejected(self, tmp_path):
        path = tmp_path / "wl.yaml"
        path.write_text(DEMANDS_YAML + DEMANDS_YAML[len("workloads:\n"):])
        with pytest.raises(ValueError, match="duplicate"):
            load_workload_file(str(path), register=False)

    def test_specfile_param_self_loads_in_fresh_process_state(
        self, tmp_path, scratch_registry
    ):
        """Pool/farm workers never saw the parent's registration: the
        reserved ``specfile`` param must make build_workload self-load."""
        path = tmp_path / "wl.yaml"
        path.write_text(DEMANDS_YAML)
        spec = WorkloadSpec.of("camera_pipe", specfile=str(path))
        assert "camera_pipe" not in WORKLOADS  # simulated fresh worker
        built = build_workload(spec, NocConfig(), seed=1)
        assert built.name == "camera_pipe"
        assert "camera_pipe" in WORKLOADS
