"""Dedicated active-set kernel vs legacy kernel: results must be identical.

Mirrors ``tests/sim/test_kernel_equivalence.py`` for the Dedicated
baseline (`docs/baselines.md`): identical ``SimResult`` summaries,
per-flow summaries and ``EventCounters`` between ``kernel="active"`` and
``"legacy"`` across shared-sink, saturated and drain-limited scenarios.
"""

import pytest

from repro.config import NocConfig
from repro.eval.dedicated import DedicatedNetwork
from repro.mapping.nmap import map_application
from repro.apps.registry import evaluation_task_graph
from repro.sim.flow import Flow, xy_route
from repro.sim.patterns import synthetic_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, ScriptedTraffic


def _flow(fid, src, dst, bw=1e6):
    mesh = Mesh(4, 4)
    return Flow(fid, src, dst, bw, xy_route(mesh, src, dst))


def _app_flows(app, cfg):
    graph = evaluation_task_graph(app)
    _mapping, flows = map_application(
        graph, Mesh(cfg.width, cfg.height), algorithm="nmap_modified", seed=1
    )
    return flows


def _run_both(cfg, flows, make_traffic, **run_kwargs):
    """Run both kernels over fresh traffic instances; return result pairs."""
    results = {}
    for kernel, mode in (("legacy", "legacy"), ("active", "predraw")):
        net = DedicatedNetwork(
            cfg, Mesh(cfg.width, cfg.height), flows, make_traffic(mode),
            kernel=kernel,
        )
        r = net.run(**run_kwargs)
        results[kernel] = (
            r.summary, r.per_flow, r.counters, r.total_cycles, r.drained,
            r.undelivered_measured,
        )
    return results


class TestScriptedEquivalence:
    def test_shared_sink_per_packet_timestamps_identical(self, cfg):
        """Three flows into one sink: serialisation order, stop costs and
        credits must match cycle-for-cycle between the kernels."""
        flows = [_flow(0, 0, 5), _flow(1, 10, 5), _flow(2, 6, 5)]
        schedule = [(1, 0), (1, 1), (1, 2), (30, 0), (31, 1)]
        results = {}
        for kernel in ("legacy", "active"):
            net = DedicatedNetwork(
                cfg, Mesh(4, 4), flows, ScriptedTraffic(schedule), kernel=kernel
            )
            net.stats.measuring = True
            net.run_cycles(300)
            results[kernel] = {
                (p.flow_id, p.create_cycle): (
                    p.inject_cycle, p.head_arrive_cycle, p.tail_arrive_cycle
                )
                for p in net.stats.measured_delivered
            }
            results[kernel, "counters"] = net.counters
        assert results["legacy"] == results["active"]
        assert results["legacy", "counters"] == results["active", "counters"]

    def test_active_keeps_single_cycle_uncontended_latency(self, cfg):
        """The active kernel must preserve the baseline's defining
        property: a lone flow is 1 cycle NIC-to-NIC at any distance."""
        net = DedicatedNetwork(
            cfg, Mesh(4, 4), [_flow(0, 0, 15)], ScriptedTraffic([(1, 0)]),
            kernel="active",
        )
        net.stats.measuring = True
        net.run_cycles(50)
        (packet,) = net.stats.measured_delivered
        assert packet.head_latency == 1


class TestBernoulliEquivalence:
    @pytest.mark.parametrize("app", ["PIP", "VOPD"])
    def test_app_runs_identical(self, cfg, app):
        flows = _app_flows(app, cfg)
        results = _run_both(
            cfg, flows,
            lambda mode: BernoulliTraffic(cfg, flows, seed=1, mode=mode),
            warmup_cycles=200, measure_cycles=2000, drain_limit=20000,
        )
        assert results["legacy"] == results["active"]

    def test_shared_sink_hotspot_identical(self):
        """Every flow shares one sink — the all-contention case."""
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.004)
        results = _run_both(
            cfg, flows,
            lambda mode: BernoulliTraffic(cfg, flows, seed=3, mode=mode),
            warmup_cycles=200, measure_cycles=2000, drain_limit=20000,
        )
        assert results["legacy"] == results["active"]

    def test_saturated_run_identical(self):
        """Past the sink-serialisation knee (clamped flows) both kernels
        agree and neither crashes."""
        cfg = NocConfig(width=4, height=4)
        flows = _app_flows("PIP", cfg)

        def make(mode):
            traffic = RateScaledTraffic(cfg, flows, scale=1024.0, seed=1, mode=mode)
            assert traffic.clamped_rates, "scale 1024 should clamp some flow"
            return traffic

        results = _run_both(
            cfg, flows, make,
            warmup_cycles=100, measure_cycles=1000, drain_limit=500,
        )
        assert results["legacy"] == results["active"]

    def test_drain_limited_run_identical(self):
        """A drain limit too small to finish must fail identically —
        same drained flag, same undelivered count, same counters."""
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.05)
        results = _run_both(
            cfg, flows,
            lambda mode: BernoulliTraffic(cfg, flows, seed=2, mode=mode, clamp=True),
            warmup_cycles=100, measure_cycles=1000, drain_limit=50,
        )
        assert results["legacy"] == results["active"]
        assert results["active"][4] is False  # drained
        assert results["active"][5] > 0       # undelivered_measured


class TestKernelSelection:
    def test_unknown_kernel_rejected(self, cfg):
        with pytest.raises(ValueError):
            DedicatedNetwork(
                cfg, Mesh(4, 4), [_flow(0, 0, 1)], ScriptedTraffic([]),
                kernel="warp",
            )

    def test_idle_network_gates_every_sink(self, cfg):
        """With no traffic the active kernel must report zero clocked
        router-cycles while still counting total sink-cycles."""
        flows = [_flow(0, 0, 5), _flow(1, 10, 5), _flow(2, 3, 9), _flow(3, 12, 9)]
        net = DedicatedNetwork(
            cfg, Mesh(4, 4), flows, ScriptedTraffic([]), kernel="active"
        )
        net.run_cycles(500)
        assert net.counters.clock_router_cycles == 0
        assert net.counters.total_router_cycles == 500 * len(net.sinks)
        assert len(net.sinks) == 2
