"""Parallel sweep-runner tests."""

import math

import pytest

from repro.config import NocConfig
from repro.eval.sweeps import (
    SweepJob,
    _run_job,
    format_sweep_rows,
    run_load_sweep,
    run_pattern_sweep,
    saturation_load,
)
from repro.sim.stats import LatencySummary, aggregate_summaries

_TINY = dict(warmup_cycles=100, measure_cycles=800, drain_limit=4000)


class TestLoadSweep:
    def test_parallel_sweep_to_saturation(self):
        """The headline flow: fan a load sweep across worker processes,
        past the saturation knee the clamp fix makes reachable."""
        rows = run_load_sweep(
            app="PIP",
            designs=("mesh", "smart"),
            scales=(1.0, 1024.0),
            processes=2,
            **_TINY,
        )
        assert [row["load"] for row in rows] == [1.0, 1024.0]
        light, heavy = rows
        for design in ("mesh", "smart"):
            assert light[design] > 0
            assert heavy[design] > light[design]
            assert heavy["%s_clamped" % design] > 0
            assert heavy["%s_saturated" % design]
        assert saturation_load(rows, "mesh") == 1024.0
        assert saturation_load(rows, "smart") == 1024.0

    def test_serial_matches_parallel(self):
        kwargs = dict(
            app="PIP", designs=("smart",), scales=(2.0,), seeds=(1,), **_TINY
        )
        serial = run_load_sweep(processes=0, **kwargs)
        parallel = run_load_sweep(processes=2, **kwargs)
        assert serial == parallel

    def test_seed_replication_aggregates(self):
        rows = run_load_sweep(
            app="PIP", designs=("smart",), scales=(1.0,),
            seeds=(1, 2), processes=0, **_TINY,
        )
        (row,) = rows
        single = run_load_sweep(
            app="PIP", designs=("smart",), scales=(1.0,),
            seeds=(1,), processes=0, **_TINY,
        )[0]
        assert row["smart"] > 0
        # Pooled count covers both replications.
        assert row["smart_thrpt"] == pytest.approx(single["smart_thrpt"], rel=0.5)


class TestPatternSweep:
    def test_pattern_sweep_runs(self):
        rows = run_pattern_sweep(
            pattern="transpose",
            designs=("mesh",),
            rates=(0.01, 0.05),
            cfg=NocConfig(width=4, height=4),
            processes=0,
            **_TINY,
        )
        assert [row["load"] for row in rows] == [0.01, 0.05]
        assert all(row["mesh"] > 0 for row in rows)
        assert rows[1]["mesh"] >= rows[0]["mesh"]


class TestJobAndFormatting:
    def test_job_runs_dedicated_design(self):
        job = SweepJob(
            design="dedicated", load=1.0, seed=1, cfg=NocConfig(),
            app="PIP", **_TINY,
        )
        point = _run_job(job)
        assert point["design"] == "dedicated"
        assert point["summary"].count > 0
        assert not point["saturated"]

    def test_format_rows_flags_saturation(self):
        rows = [{
            "load": 8.0, "mesh": 12.5, "mesh_saturated": True,
            "mesh_p95": 20.0, "mesh_thrpt": 1.0, "mesh_clamped": 2,
            "smart": float("nan"), "smart_saturated": False,
        }]
        (pretty,) = format_sweep_rows(rows)
        assert pretty["mesh"] == "12.50*"
        assert pretty["smart"] == "n/a"


class TestAggregateSummaries:
    def test_weighted_means(self):
        a = LatencySummary(count=2, mean_head_latency=10.0,
                           mean_packet_latency=12.0, mean_network_latency=9.0,
                           p95_head_latency=11.0, max_head_latency=12,
                           min_head_latency=8)
        b = LatencySummary(count=6, mean_head_latency=20.0,
                           mean_packet_latency=22.0, mean_network_latency=19.0,
                           p95_head_latency=21.0, max_head_latency=30,
                           min_head_latency=5)
        merged = aggregate_summaries([a, b])
        assert merged.count == 8
        assert merged.mean_head_latency == pytest.approx(17.5)
        assert merged.max_head_latency == 30
        assert merged.min_head_latency == 5

    def test_empty_and_zero_count_summaries(self):
        assert aggregate_summaries([]).count == 0
        merged = aggregate_summaries([LatencySummary.empty()])
        assert merged.count == 0
        assert math.isnan(merged.mean_head_latency)
