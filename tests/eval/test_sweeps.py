"""Parallel sweep-runner tests."""

import json
import math

import pytest

import repro.eval.sweeps as sweeps
from repro.config import NocConfig
from repro.eval.sweeps import (
    SweepJob,
    _point_from_json,
    _point_to_json,
    _run_job,
    _worker_workload,
    format_sweep_rows,
    make_stream_header,
    read_sweep_header,
    read_sweep_stream,
    run_load_sweep,
    run_pattern_sweep,
    run_workload_sweep,
    saturation_load,
    sweep_spec_hash,
    write_sweep_json,
)
from repro.sim.stats import LatencySummary, aggregate_summaries
from repro.workloads import WorkloadSpec

_TINY = dict(warmup_cycles=100, measure_cycles=800, drain_limit=4000)


class TestLoadSweep:
    def test_parallel_sweep_to_saturation(self):
        """The headline flow: fan a load sweep across worker processes,
        past the saturation knee the clamp fix makes reachable."""
        rows = run_load_sweep(
            app="PIP",
            designs=("mesh", "smart"),
            scales=(1.0, 1024.0),
            processes=2,
            **_TINY,
        )
        assert [row["load"] for row in rows] == [1.0, 1024.0]
        light, heavy = rows
        for design in ("mesh", "smart"):
            assert light[design] > 0
            assert heavy[design] > light[design]
            assert heavy["%s_clamped" % design] > 0
            assert heavy["%s_saturated" % design]
        assert saturation_load(rows, "mesh") == 1024.0
        assert saturation_load(rows, "smart") == 1024.0

    def test_serial_matches_parallel(self):
        kwargs = dict(
            app="PIP", designs=("smart",), scales=(2.0,), seeds=(1,), **_TINY
        )
        serial = run_load_sweep(processes=0, **kwargs)
        parallel = run_load_sweep(processes=2, **kwargs)
        assert serial == parallel

    def test_seed_replication_aggregates(self):
        rows = run_load_sweep(
            app="PIP", designs=("smart",), scales=(1.0,),
            seeds=(1, 2), processes=0, **_TINY,
        )
        (row,) = rows
        single = run_load_sweep(
            app="PIP", designs=("smart",), scales=(1.0,),
            seeds=(1,), processes=0, **_TINY,
        )[0]
        assert row["smart"] > 0
        # Pooled count covers both replications.
        assert row["smart_thrpt"] == pytest.approx(single["smart_thrpt"], rel=0.5)

    def test_workload_path_matches_legacy_app_recipe(self):
        """The WorkloadSpec pipeline reproduces the old run_load_sweep
        path exactly: same flows (NMAP + west-first route selection),
        same RateScaledTraffic, bit-identical rows."""
        from repro.eval.ablations import mapped_flows
        from repro.eval.designs import build_design
        from repro.sim.stats import accepted_flits_per_cycle
        from repro.sim.traffic import RateScaledTraffic

        cfg = NocConfig()
        rows = run_load_sweep(
            app="PIP", designs=("smart",), scales=(1.0, 4.0), seeds=(1,),
            processes=0, cfg=cfg, **_TINY,
        )
        for row in rows:
            flows = list(mapped_flows("PIP", cfg))
            traffic = RateScaledTraffic(
                cfg, flows, scale=row["load"], seed=1, mode="predraw"
            )
            instance = build_design(
                "smart", cfg, flows, traffic=traffic, kernel="active"
            )
            result = instance.run(**_TINY)
            assert row["smart"] == result.summary.mean_head_latency
            assert row["smart_p95"] == result.summary.p95_head_latency
            assert row["smart_thrpt"] == accepted_flits_per_cycle(
                result, cfg.flits_per_packet
            )


class TestPatternSweep:
    def test_pattern_sweep_runs(self):
        rows = run_pattern_sweep(
            pattern="transpose",
            designs=("mesh",),
            rates=(0.01, 0.05),
            cfg=NocConfig(width=4, height=4),
            processes=0,
            **_TINY,
        )
        assert [row["load"] for row in rows] == [0.01, 0.05]
        assert all(row["mesh"] > 0 for row in rows)
        assert rows[1]["mesh"] >= rows[0]["mesh"]

    def test_composite_and_new_patterns_sweep(self):
        for workload in ("shuffle", "background_hotspot"):
            rows = run_workload_sweep(
                workload, designs=("smart",), loads=(0.02,), processes=0,
                **_TINY,
            )
            assert rows[0]["smart"] > 0

    def test_uniform_seeds_draw_distinct_flow_sets(self):
        """The uniform destination draw must follow the sweep seed (it
        used to be pinned to seed=1 for every grid point)."""
        _worker_workload.cache_clear()
        cfg = NocConfig()
        spec = WorkloadSpec.of("uniform")
        one = _worker_workload(spec, cfg, 1)
        two = _worker_workload(spec, cfg, 2)
        assert [(f.src, f.dst) for f in one.flows] != [
            (f.src, f.dst) for f in two.flows
        ]

    def test_uniform_jobs_build_per_seed(self):
        _worker_workload.cache_clear()
        run_workload_sweep(
            "uniform", designs=("dedicated",), loads=(0.01,), seeds=(1, 2),
            processes=0, **_TINY,
        )
        info = _worker_workload.cache_info()
        assert info.misses == 2  # one build per sweep seed


class TestJobAndFormatting:
    def test_job_runs_dedicated_design(self):
        job = SweepJob(
            design="dedicated", load=1.0, seed=1, cfg=NocConfig(),
            workload=WorkloadSpec.of("PIP"), **_TINY,
        )
        point = _run_job(job)
        assert point["design"] == "dedicated"
        assert point["summary"].count > 0
        assert not point["saturated"]

    def test_format_rows_flags_saturation(self):
        rows = [{
            "load": 8.0, "mesh": 12.5, "mesh_saturated": True,
            "mesh_p95": 20.0, "mesh_thrpt": 1.0, "mesh_clamped": 2,
            "smart": float("nan"), "smart_saturated": False,
        }]
        (pretty,) = format_sweep_rows(rows)
        assert pretty["mesh"] == "12.50*"
        assert pretty["smart"] == "n/a"


class TestStreamHeader:
    def test_stream_starts_with_hashed_spec_header(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0,), seeds=(1,),
            processes=0, stream_path=path, **_TINY,
        )
        header = read_sweep_header(path)
        assert header is not None
        assert header["sweep_spec"]["workload"] == "PIP"
        assert header["spec_hash"] == sweep_spec_hash(header["sweep_spec"])
        # Points exclude the header line.
        assert len(read_sweep_stream(path)) == 1

    def test_hash_covers_workload_cfg_and_window(self):
        spec = WorkloadSpec.of("PIP")
        base = make_stream_header(spec, NocConfig(), "active", "predraw", _TINY)
        for other in (
            make_stream_header(
                WorkloadSpec.of("VOPD"), NocConfig(), "active", "predraw", _TINY
            ),
            make_stream_header(
                spec, NocConfig(width=8, height=8), "active", "predraw", _TINY
            ),
            make_stream_header(spec, NocConfig(), "legacy", "predraw", _TINY),
            make_stream_header(
                spec, NocConfig(), "active", "predraw",
                dict(_TINY, measure_cycles=999),
            ),
        ):
            assert other["spec_hash"] != base["spec_hash"]

    def test_resume_refuses_incompatible_stream(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0,), seeds=(1,),
            processes=0, stream_path=path, **_TINY,
        )
        with pytest.raises(ValueError, match="refusing to resume"):
            run_load_sweep(
                app="VOPD", designs=("dedicated",), scales=(1.0,), seeds=(1,),
                processes=0, stream_path=path, resume=True, **_TINY,
            )

    def test_headerless_legacy_stream_still_resumes(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            app="PIP", designs=("dedicated",), scales=(1.0,), seeds=(1,),
            processes=0, **_TINY,
        )
        full = run_load_sweep(stream_path=path, **kwargs)
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[1:])  # strip the header: legacy format
        assert read_sweep_header(path) is None
        resumed = run_load_sweep(stream_path=path, resume=True, **kwargs)
        assert resumed == full


class TestStreaming:
    def test_stream_file_and_callback_per_point(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        seen = []
        rows = run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0),
            seeds=(1,), processes=0, stream_path=path,
            on_result=seen.append, **_TINY,
        )
        points = read_sweep_stream(path)
        assert len(points) == len(seen) == 2
        assert {p["load"] for p in points} == {1.0, 4.0}
        # The streamed points round-trip exactly (summaries included).
        assert sorted(points, key=lambda p: p["load"]) == sorted(
            seen, key=lambda p: p["load"]
        )
        assert [row["load"] for row in rows] == [1.0, 4.0]

    def test_parallel_run_streams_every_point(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            app="PIP", designs=("mesh", "dedicated"), scales=(1.0,),
            seeds=(1,), processes=2, stream_path=path, **_TINY,
        )
        assert len(read_sweep_stream(path)) == 2

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0),
            seeds=(1,), processes=0, **_TINY,
        )
        full = run_load_sweep(stream_path=path, **kwargs)
        # Drop the second point (line 3: header, point, point) to
        # simulate an interrupted sweep.
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:2])
        ran = []
        real_run_job = sweeps._run_job

        def counting_run_job(job):
            ran.append(job)
            return real_run_job(job)

        monkeypatch.setattr(sweeps, "_run_job", counting_run_job)
        resumed = run_load_sweep(stream_path=path, resume=True, **kwargs)
        assert len(ran) == 1  # only the missing grid point re-ran
        assert resumed == full
        assert len(read_sweep_stream(path)) == 2

    def test_resume_with_no_prior_stream_runs_everything(self, tmp_path):
        path = str(tmp_path / "missing.jsonl")
        rows = run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0,), seeds=(1,),
            processes=0, stream_path=path, resume=True, **_TINY,
        )
        assert rows[0]["dedicated"] > 0
        assert len(read_sweep_stream(path)) == 1

    def test_resume_survives_truncated_final_line(self, tmp_path):
        """A sweep killed mid-write leaves a partial trailing JSON
        fragment; resume must discard it, re-run that point, and leave
        the stream valid again."""
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0),
            seeds=(1,), processes=0, **_TINY,
        )
        full = run_load_sweep(stream_path=path, **kwargs)
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:2])  # header + first point
            fh.write(lines[2][: len(lines[2]) // 2])  # truncated write
        assert len(read_sweep_stream(path)) == 1
        resumed = run_load_sweep(stream_path=path, resume=True, **kwargs)
        assert resumed == full
        assert len(read_sweep_stream(path)) == 2

    def test_corruption_in_stream_body_raises(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            stream_path=path, app="PIP", designs=("dedicated",),
            scales=(1.0, 4.0), seeds=(1,), processes=0, **_TINY,
        )
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.write(lines[1][: len(lines[1]) // 2] + "\n")  # mid-file damage
            fh.write(lines[2])
        with pytest.raises(json.JSONDecodeError):
            read_sweep_stream(path)

    def test_resume_survives_partial_line_mid_file(self, tmp_path):
        """A crashed-then-resumed sweep can leave the torn fragment in
        the *middle* of the stream (good rows appended after it).
        Resume must skip the fragment and re-run only its point — this
        is the shape farm shards recover from, and it used to raise."""
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0),
            seeds=(1,), processes=0, **_TINY,
        )
        full = run_load_sweep(stream_path=path, **kwargs)
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.write(lines[0])  # header
            fh.write(lines[1][: len(lines[1]) // 2] + "\n")  # torn point
            fh.write(lines[2])  # later point, fully written
        # The strict reader still refuses mid-file damage...
        with pytest.raises(json.JSONDecodeError):
            read_sweep_stream(path)
        # ...but the tolerant reader and resume recover it.
        assert len(read_sweep_stream(path, skip_partial=True)) == 1
        resumed = run_load_sweep(stream_path=path, resume=True, **kwargs)
        assert resumed == full
        assert len(read_sweep_stream(path)) == 2

    def test_skip_partial_tolerates_damaged_header(self, tmp_path):
        """skip_partial reads the rows even when the header line itself
        was torn (the rows carry everything a reader needs)."""
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            stream_path=path, app="PIP", designs=("dedicated",),
            scales=(1.0, 4.0), seeds=(1,), processes=0, **_TINY,
        )
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.write(lines[0][: len(lines[0]) // 2] + "\n")
            fh.writelines(lines[1:])
        with pytest.raises(json.JSONDecodeError):
            read_sweep_stream(path)
        assert len(read_sweep_stream(path, skip_partial=True)) == 2

    def test_point_json_roundtrip_preserves_nan(self):
        point = {
            "design": "mesh", "load": 2.0, "seed": 3,
            "summary": LatencySummary.empty(),
            "throughput": 0.0, "saturated": True, "clamped_flows": 1,
        }
        encoded = json.dumps(_point_to_json(point), allow_nan=False)
        decoded = _point_from_json(json.loads(encoded))
        assert decoded["summary"].count == 0
        assert math.isnan(decoded["summary"].mean_head_latency)
        assert decoded["saturated"] is True


class TestWorkerFlowCache:
    def test_workload_built_once_across_grid_points(self):
        _worker_workload.cache_clear()
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0, 2.0, 4.0),
            seeds=(1,), processes=0, **_TINY,
        )
        info = _worker_workload.cache_info()
        assert info.misses == 1
        assert info.hits == 2

    def test_seed_insensitive_workload_shared_across_seeds(self):
        """App placements don't depend on the sweep seed, so replicated
        seeds reuse one build instead of re-running NMAP per seed."""
        _worker_workload.cache_clear()
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0,),
            seeds=(1, 2, 3), processes=0, **_TINY,
        )
        assert _worker_workload.cache_info().misses == 1

    def test_cached_workloads_are_reused_not_rebuilt(self):
        cfg = NocConfig()
        spec = WorkloadSpec.of("PIP")
        first = _worker_workload(spec, cfg, 0)
        second = _worker_workload(spec, cfg, 0)
        assert first is second


class TestWriteSweepJson:
    def test_writes_strict_json_with_meta(self, tmp_path):
        path = str(tmp_path / "out" / "sweep.json")
        rows = [{"load": 1.0, "mesh": float("nan"), "mesh_saturated": False}]
        written = write_sweep_json(path, rows, meta={"app": "PIP"})
        assert written == path
        data = json.loads(open(path).read(), parse_constant=pytest.fail)
        assert data["meta"]["app"] == "PIP"
        assert data["rows"][0]["mesh"] is None  # NaN -> null


class TestAggregateSummaries:
    def test_weighted_means(self):
        a = LatencySummary(count=2, mean_head_latency=10.0,
                           mean_packet_latency=12.0, mean_network_latency=9.0,
                           p95_head_latency=11.0, max_head_latency=12,
                           min_head_latency=8)
        b = LatencySummary(count=6, mean_head_latency=20.0,
                           mean_packet_latency=22.0, mean_network_latency=19.0,
                           p95_head_latency=21.0, max_head_latency=30,
                           min_head_latency=5)
        merged = aggregate_summaries([a, b])
        assert merged.count == 8
        assert merged.mean_head_latency == pytest.approx(17.5)
        assert merged.max_head_latency == 30
        assert merged.min_head_latency == 5

    def test_empty_and_zero_count_summaries(self):
        assert aggregate_summaries([]).count == 0
        merged = aggregate_summaries([LatencySummary.empty()])
        assert merged.count == 0
        assert math.isnan(merged.mean_head_latency)


class TestKernelAndRoutingSpecs:
    def test_event_kernel_sweep_matches_active(self):
        """The kernel is plumbed through SweepJob; event and active
        kernels produce identical aggregated rows."""
        kwargs = dict(
            workload="PIP", designs=("smart", "dedicated"), loads=(2.0,),
            seeds=(1,), processes=0, **_TINY,
        )
        active = run_workload_sweep(kernel="active", **kwargs)
        event = run_workload_sweep(kernel="event", **kwargs)
        assert active == event

    def test_kernel_joins_the_content_hash(self):
        spec = WorkloadSpec.of("PIP")
        active = make_stream_header(spec, NocConfig(), "active", "predraw", _TINY)
        event = make_stream_header(spec, NocConfig(), "event", "predraw", _TINY)
        assert active["spec_hash"] != event["spec_hash"]
        assert event["sweep_spec"]["kernel"] == "event"

    def test_resume_refuses_kernel_mismatch(self, tmp_path):
        """A stream swept with one kernel cannot be resumed with
        another: the kernel is part of the hashed spec header."""
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            workload="PIP", designs=("smart",), loads=(1.0,), seeds=(1,),
            processes=0, stream_path=path, **_TINY,
        )
        run_workload_sweep(kernel="active", **kwargs)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_workload_sweep(kernel="event", resume=True, **kwargs)
        # The matching kernel still resumes cleanly.
        resumed = run_workload_sweep(kernel="active", resume=True, **kwargs)
        assert resumed == run_workload_sweep(kernel="active", **kwargs)

    def test_batched_multiseed_matches_serial_jobs(self):
        """The lockstep-batched seed axis (one job per (design, load)
        advancing all seeds through run_batched) reproduces the serial
        one-job-per-seed grid bit-identically — including the uniform
        draw, whose seed-distinct flow sets make the batched engine
        fall back to the generic lockstep driver."""
        for workload in ("transpose", "uniform"):
            kwargs = dict(
                workload=workload, designs=("mesh", "smart"), loads=(0.03,),
                seeds=(1, 2, 3), processes=0, kernel="event", **_TINY,
            )
            batched = run_workload_sweep(batch=True, **kwargs)
            serial = run_workload_sweep(batch=False, **kwargs)
            assert batched == serial

    def test_multiseed_defaults_to_batched_jobs(self, monkeypatch):
        """seeds=(1,2) auto-folds into one batched job per (design,
        load); a single seed keeps one plain job per grid point."""
        captured = []
        monkeypatch.setattr(
            sweeps, "_run_jobs",
            lambda jobs, *a, **k: captured.append(list(jobs)) or [],
        )
        run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.01, 0.02),
            seeds=(1, 2), processes=0, **_TINY,
        )
        run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.01, 0.02),
            seeds=(1,), processes=0, **_TINY,
        )
        multi, single = captured
        assert [job.seeds for job in multi] == [(1, 2), (1, 2)]
        assert [job.seed for job in multi] == [1, 1]
        assert [job.seeds for job in single] == [None, None]

    def test_aggregate_rows_carry_ci95_halfwidth(self):
        rows = run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.03,), seeds=(1, 2, 3),
            processes=0, kernel="event", **_TINY,
        )
        (row,) = rows
        assert row["mesh_ci95"] >= 0.0
        single = run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.03,), seeds=(1,),
            processes=0, kernel="event", **_TINY,
        )[0]
        assert math.isnan(single["mesh_ci95"])  # undefined below 2 seeds
        # The pretty formatter keeps ci95 out of the design columns.
        (pretty,) = format_sweep_rows(rows)
        assert "mesh_ci95" not in pretty

    def test_seed_set_joins_hash_only_when_multi(self):
        """Single-seed specs keep their historical hashes (committed
        streams and farm queues stay resumable); multi-seed specs are
        content-addressed over the replication axis too."""
        spec = WorkloadSpec.of("PIP")
        base = make_stream_header(spec, NocConfig(), "active", "predraw", _TINY)
        one = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY, seeds=(1,)
        )
        multi = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY, seeds=(1, 2)
        )
        assert one["spec_hash"] == base["spec_hash"]
        assert multi["spec_hash"] != base["spec_hash"]
        assert multi["sweep_spec"]["seeds"] == [1, 2]

    def test_resume_reruns_only_missing_seeds_of_batched_point(
        self, tmp_path, monkeypatch
    ):
        """Killing a multi-seed sweep mid-point must not redo streamed
        seeds: the batched job shrinks to the seeds still missing."""
        path = str(tmp_path / "stream.jsonl")
        kwargs = dict(
            workload="transpose", designs=("mesh",), loads=(0.03,),
            seeds=(1, 2, 3, 4), processes=0, kernel="event", **_TINY,
        )
        full = run_workload_sweep(stream_path=path, **kwargs)
        lines = open(path).readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:3])  # header + seeds 1-2 of the point
        ran = []
        real_run_job = sweeps._run_job

        def counting_run_job(job):
            ran.append(job)
            return real_run_job(job)

        monkeypatch.setattr(sweeps, "_run_job", counting_run_job)
        resumed = run_workload_sweep(stream_path=path, resume=True, **kwargs)
        assert [job.seeds for job in ran] == [(3, 4)]
        assert resumed == full
        assert len(read_sweep_stream(path)) == 4

    def test_transpose_8x8_sweep_accepts_nonminimal_routing(self):
        """ROADMAP item: pattern sweeps can reach
        repro.mapping.nonminimal through a WorkloadSpec param."""
        rows = run_workload_sweep(
            WorkloadSpec.of("transpose", routing="nonminimal"),
            designs=("smart",), loads=(0.01,), seeds=(1,),
            cfg=NocConfig(width=8, height=8), processes=0, **_TINY,
        )
        assert rows[0]["smart"] > 0
        assert not rows[0]["smart_saturated"]


class TestTailColumnsAndArrival:
    def test_aggregate_rows_carry_tail_and_node_bw_columns(self):
        rows = run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.03,), seeds=(1, 2),
            processes=0, kernel="event", **_TINY,
        )
        (row,) = rows
        # Pooled-histogram percentiles are monotone and present.
        assert row["mesh_p50"] <= row["mesh_p95"] <= row["mesh_p99"]
        assert row["mesh_p99"] <= row["mesh_p999"]
        # Hottest ejection port, flits/cycle over the measure window.
        assert 0.0 < row["mesh_max_node_bw"] <= 1.0
        # The pretty formatter keeps the new columns out of the way.
        (pretty,) = format_sweep_rows(rows)
        for suffix in ("_p50", "_p99", "_p999", "_max_node_bw"):
            assert "mesh%s" % suffix not in pretty

    def test_legacy_point_rows_decode_without_new_keys(self):
        """Streams written before histograms/tenants existed still
        decode: histogram None, empty tenant and node maps."""
        point = {
            "design": "mesh", "load": 2.0, "seed": 3,
            "summary": LatencySummary.empty(),
            "throughput": 0.0, "saturated": False, "clamped_flows": 0,
        }
        encoded = _point_to_json(point)
        assert "tenants" not in encoded and "node_flits" not in encoded
        assert "hist" not in encoded["summary"]
        for key in ("hist",):
            encoded["summary"].pop(key, None)
        decoded = _point_from_json(encoded)
        assert decoded["summary"].histogram is None
        assert decoded["tenants"] == {}
        assert decoded["node_flits"] == {}

    def test_point_roundtrip_preserves_hist_tenants_and_nodes(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        run_workload_sweep(
            "tenant_mix", designs=("mesh",), loads=(0.01,), seeds=(1,),
            processes=0, kernel="event", stream_path=path, **_TINY,
        )
        (point,) = read_sweep_stream(path)
        assert point["summary"].histogram.total == point["summary"].count
        assert set(point["tenants"]) == {"PIP", "hotspot"}
        assert point["node_flits"] and all(
            flits > 0 for flits in point["node_flits"].values()
        )

    def test_arrival_joins_hash_only_when_bursty(self):
        """Bernoulli specs keep their historical hashes; bursty specs
        are content-addressed over the arrival process too."""
        spec = WorkloadSpec.of("PIP")
        base = make_stream_header(spec, NocConfig(), "active", "predraw", _TINY)
        assert "arrival" not in base["sweep_spec"]
        explicit = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY, arrival="bernoulli"
        )
        assert explicit["spec_hash"] == base["spec_hash"]
        mmpp = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY,
            arrival="mmpp", arrival_params={"on_cycles": 32.0},
        )
        assert mmpp["spec_hash"] != base["spec_hash"]
        assert mmpp["sweep_spec"]["arrival"] == "mmpp"
        assert mmpp["sweep_spec"]["arrival_params"] == {"on_cycles": 32.0}
        other = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY,
            arrival="mmpp", arrival_params={"on_cycles": 8.0},
        )
        assert other["spec_hash"] != mmpp["spec_hash"]

    def test_bursty_sweep_produces_rows(self):
        rows = run_workload_sweep(
            "transpose", designs=("mesh",), loads=(0.02,), seeds=(1,),
            processes=0, kernel="event", arrival="onoff",
            arrival_params={"on_cycles": 8.0, "off_cycles": 24.0}, **_TINY,
        )
        assert rows[0]["mesh"] > 0

    def test_slo_columns_on_tenant_sweeps(self):
        """A float SLO fans out to every tenant; a dict pins thresholds
        per tenant; no SLO argument, no columns."""
        kwargs = dict(
            workload="tenant_mix", designs=("mesh",), loads=(0.01,),
            seeds=(1,), processes=0, kernel="event", **_TINY,
        )
        (row,) = run_workload_sweep(slo=50.0, **kwargs)
        assert isinstance(row["mesh_PIP_slo_ok"], bool)
        assert isinstance(row["mesh_hotspot_slo_ok"], bool)
        assert row["mesh_PIP_p99"] > 0
        (tight,) = run_workload_sweep(
            slo={"PIP": 0.5, "hotspot": 1e9}, **kwargs
        )
        assert tight["mesh_PIP_slo_ok"] is False
        assert tight["mesh_hotspot_slo_ok"] is True
        (bare,) = run_workload_sweep(**kwargs)
        assert "mesh_PIP_slo_ok" not in bare
        assert "mesh_PIP_p99" in bare  # tenant tails always reported


class TestOfferedAchievedColumns:
    def test_rows_and_stream_carry_offered_and_achieved(self, tmp_path):
        """Oversubscribed bursty points record achieved < offered; the
        columns survive the stream round-trip and aggregate."""
        path = str(tmp_path / "stream.jsonl")
        rows = run_workload_sweep(
            "uniform", designs=("mesh",), loads=(0.9,), seeds=(1,),
            processes=0, kernel="event", stream_path=path,
            arrival="mmpp",
            arrival_params={"on_cycles": 8.0, "off_cycles": 56.0,
                            "quiet_scale": 0.0},
            **_TINY,
        )
        (point,) = read_sweep_stream(path)
        assert point["offered_rate"] > 0
        # Burst rate = offered/duty clamps at the port: delivered mean
        # drops below the offered one.
        assert point["achieved_rate"] < point["offered_rate"]
        (row,) = rows
        assert row["mesh_achieved"] == pytest.approx(
            point["achieved_rate"]
        )
        # The pretty formatter keeps the diagnostic column out of the way.
        (pretty,) = format_sweep_rows(rows)
        assert "mesh_achieved" not in pretty

    def test_bernoulli_unclamped_points_match(self):
        rows = run_workload_sweep(
            "uniform", designs=("mesh",), loads=(0.02,), seeds=(1,),
            processes=0, kernel="event", **_TINY,
        )
        (row,) = rows
        assert row["mesh_achieved"] == pytest.approx(
            16 * 0.02, rel=1e-6
        )

    def test_header_extra_section_hashes_when_truthy(self):
        spec = WorkloadSpec.of("PIP")
        base = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY
        )
        empty = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY, extra={}
        )
        assert empty["spec_hash"] == base["spec_hash"]
        tagged = make_stream_header(
            spec, NocConfig(), "active", "predraw", _TINY,
            extra={"scenario": {"name": "x"}},
        )
        assert tagged["spec_hash"] != base["spec_hash"]
        assert tagged["sweep_spec"]["scenario"] == {"name": "x"}
