"""Unified workload layer: registry, pipeline, and route quality."""

import pytest

from repro.config import NocConfig
from repro.eval.designs import build_workload_design
from repro.mapping.turn_model import TurnModel, is_deadlock_free, path_legal
from repro.sim.flow import xy_route
from repro.sim.patterns import BACKGROUND_FRACTION, pattern_pairs
from repro.sim.topology import Mesh
from repro.workloads import (
    WORKLOADS,
    WorkloadSpec,
    build_seed_for,
    build_workload,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_all_apps_and_patterns_registered(self):
        names = workload_names()
        for app in ("VOPD", "H264", "PIP"):
            assert app in names
        for pattern in ("uniform", "transpose", "shuffle", "bit_reverse",
                        "background_hotspot"):
            assert pattern in names

    def test_app_lookup_is_case_insensitive(self):
        assert get_workload("vopd") is get_workload("VOPD")

    def test_unknown_workload_rejected_with_listing(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("butterfly")

    def test_kinds_and_axes(self):
        assert get_workload("VOPD").kind == "app"
        assert get_workload("VOPD").load_axis == "bandwidth_scale"
        assert get_workload("transpose").kind == "pattern"
        assert get_workload("transpose").load_axis == "injection_rate"
        assert get_workload("background_hotspot").kind == "composite"


class TestWorkloadSpec:
    def test_of_coerces_and_merges(self):
        spec = WorkloadSpec.of("hotspot", hotspot_node=3)
        assert spec.name == "hotspot"
        assert spec.options == {"hotspot_node": 3}
        merged = WorkloadSpec.of(spec, hotspot_node=5)
        assert merged.options == {"hotspot_node": 5}
        assert WorkloadSpec.of(spec) is spec

    def test_spec_is_hashable_and_describes_itself(self):
        spec = WorkloadSpec.of("uniform")
        assert hash(spec) == hash(WorkloadSpec.of("uniform"))
        assert WorkloadSpec.of("hotspot", hotspot_node=3).describe() == (
            "hotspot(hotspot_node=3)"
        )


class TestAppPipeline:
    def test_app_build_matches_paper_mapping_flow(self, cfg):
        """The workload pipeline reproduces mapped_flows exactly: same
        NMAP placement, same west-first route selection."""
        from repro.eval.ablations import mapped_flows

        built = build_workload("VOPD", cfg)
        assert built.flows == tuple(mapped_flows("VOPD", cfg))
        assert built.mapping  # task -> node placement is exposed
        assert built.load_axis == "bandwidth_scale"

    def test_apps_are_seed_insensitive(self):
        assert build_seed_for("VOPD", 7) == 0
        assert build_seed_for("uniform", 7) == 7
        assert build_seed_for("background_hotspot", 7) == 7


class TestPatternPipeline:
    def test_pattern_routes_are_turn_model_legal_and_deadlock_free(self):
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        for name in ("transpose", "shuffle", "bit_reverse"):
            built = build_workload(name, cfg)
            assert all(
                path_legal(TurnModel.WEST_FIRST, f.route[:-1])
                for f in built.flows
            )
            assert is_deadlock_free(mesh, built.flows)

    def test_route_selection_deviates_from_xy_when_it_helps(self):
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        built = build_workload("transpose", cfg)
        assert any(
            f.route != xy_route(mesh, f.src, f.dst) for f in built.flows
        )

    def test_turn_model_param_forces_xy(self):
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        built = build_workload(WorkloadSpec.of("transpose", turn_model="xy"), cfg)
        assert all(
            f.route == xy_route(mesh, f.src, f.dst) for f in built.flows
        )

    def test_pattern_base_flows_carry_unit_rate(self, cfg):
        built = build_workload("transpose", cfg)
        for flow in built.flows:
            assert cfg.flow_rate_packets_per_cycle(
                flow.bandwidth_bps
            ) == pytest.approx(1.0)

    def test_traffic_applies_load_on_the_rate_axis(self, cfg):
        built = build_workload("transpose", cfg)
        traffic = built.traffic(cfg, load=0.05, seed=1)
        for flow in built.flows:
            assert traffic.rate(flow.flow_id) == pytest.approx(0.05)


class TestBypassQuality:
    def test_selected_routes_bypass_at_least_as_many_routers_as_xy(self):
        """Pattern traffic through route selection must not lose bypass
        coverage vs forced XY: on a transpose 8x8, at least as many
        routers end up fully bypassed (traversed but never latching)."""
        cfg = NocConfig(width=8, height=8)

        def fully_bypassed(turn_model):
            spec = WorkloadSpec.of("transpose", turn_model=turn_model)
            instance = build_workload_design(spec, "smart", cfg=cfg, load=0.01)
            crossed, stopped = set(), set()
            for flow in instance.flows:
                crossed.update(flow.routers(instance.mesh))
                stopped.update(instance.presets.stops_for_flow(flow))
            return crossed - stopped

        assert len(fully_bypassed("west_first")) >= len(fully_bypassed("xy"))


class TestComposite:
    def test_background_hotspot_sums_component_demands(self, cfg):
        """The composite's placed demands equal the pattern library's
        own background+hotspot mix: same (src, dst, weighted bandwidth)
        multiset."""
        mesh = Mesh(cfg.width, cfg.height)
        placed = get_workload("background_hotspot").placed(cfg, seed=3)
        from repro.sim.patterns import bandwidth_for_injection_rate

        unit = bandwidth_for_injection_rate(cfg, 1.0)
        expected = sorted(
            (s, d, w * unit)
            for s, d, w in pattern_pairs("background_hotspot", mesh, seed=3)
        )
        got = sorted((p.src, p.dst, p.bandwidth_bps) for p in placed)
        assert got == expected

    def test_composite_flow_ids_are_unique(self, cfg):
        built = build_workload("background_hotspot", cfg, seed=1)
        ids = [f.flow_id for f in built.flows]
        assert len(ids) == len(set(ids))

    def test_bad_composite_fractions_rejected(self):
        from repro.workloads import CompositeWorkload

        with pytest.raises(ValueError, match="sum to 1"):
            CompositeWorkload("broken", (("uniform", 0.5), ("hotspot", 0.2)))
        with pytest.raises(ValueError):
            CompositeWorkload("empty", ())


class TestWorkloadExperiments:
    def test_run_workload_on_a_pattern_produces_power_and_latency(self):
        from repro.eval.experiments import run_workload

        experiment = run_workload(
            "transpose", "smart", load=0.02,
            warmup_cycles=100, measure_cycles=800, drain_limit=4000,
        )
        assert experiment.app == "transpose"
        assert experiment.mean_latency > 0
        assert experiment.power.total_w > 0
        assert experiment.mapping == {}

    def test_run_workload_app_matches_run_app_defaults(self):
        from repro.eval.experiments import run_app, run_workload

        kwargs = dict(warmup_cycles=200, measure_cycles=2000, drain_limit=10000)
        via_workload = run_workload("PIP", "smart", load=1.0, **kwargs)
        via_app = run_app("PIP", "smart", **kwargs)
        assert via_workload.mean_latency == via_app.mean_latency
        assert via_workload.mapping == via_app.mapping

    def test_hpc_sweep_accepts_patterns_on_any_mesh(self):
        from repro.eval.ablations import hpc_sweep

        rows = hpc_sweep(
            "transpose", (1, 8), cfg=NocConfig(width=8, height=8),
            load=0.01, warmup_cycles=100, measure_cycles=800,
            drain_limit=4000,
        )
        assert rows[0]["workload"] == "transpose"
        assert rows[0]["mean_latency"] >= rows[1]["mean_latency"]
        assert rows[1]["forced_stops"] <= rows[0]["forced_stops"]


class TestNonminimalRouting:
    def test_routing_param_reaches_nonminimal_selection(self):
        """routing="nonminimal" routes the same demand set through
        repro.mapping.nonminimal: every route stays turn-model legal and
        within the detour budget of its minimal length."""
        cfg = NocConfig(width=8, height=8)
        minimal = build_workload("transpose", cfg)
        detoured = build_workload(
            WorkloadSpec.of("transpose", routing="nonminimal"), cfg
        )
        assert len(minimal.flows) == len(detoured.flows)
        min_len = {f.flow_id: len(f.route) for f in minimal.flows}
        for flow in detoured.flows:
            assert len(flow.route) >= min_len[flow.flow_id]
            assert len(flow.route) <= min_len[flow.flow_id] + 2

    def test_app_workload_supports_nonminimal(self):
        built = build_workload(
            WorkloadSpec.of("VOPD", routing="nonminimal"), NocConfig()
        )
        assert built.mapping is not None
        assert built.flows

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="unknown routing"):
            build_workload(
                WorkloadSpec.of("transpose", routing="diagonal"), NocConfig()
            )


class TestTenantMix:
    def test_registered_with_composite_kind(self):
        from repro.workloads import get_workload, workload_names

        assert "tenant_mix" in workload_names()
        mix = get_workload("tenant_mix")
        assert mix.kind == "composite"
        assert (mix.foreground, mix.background) == ("PIP", "hotspot")

    def test_flows_are_tenant_tagged(self, cfg):
        built = build_workload("tenant_mix", cfg, seed=1)
        tenants = {f.tenant for f in built.flows}
        assert tenants == {"PIP", "hotspot"}
        ids = [f.flow_id for f in built.flows]
        assert len(ids) == len(set(ids))

    def test_foreground_flow_ids_are_pinned(self, cfg):
        """The load axis must only scale the background tenant: every
        foreground flow id lands in fixed_flow_ids, no background one."""
        built = build_workload("tenant_mix", cfg, seed=1)
        fixed = set(built.fixed_flow_ids)
        assert fixed == {
            f.flow_id for f in built.flows if f.tenant == "PIP"
        }
        assert fixed  # PIP maps to a non-empty flow set
        assert any(f.tenant == "hotspot" for f in built.flows)

    def test_fixed_flows_exempt_from_load_scaling(self, cfg):
        """End to end: RateScaledTraffic built from the tenant mix keeps
        foreground rates identical across load points."""
        from repro.sim.traffic import RateScaledTraffic

        built = build_workload("tenant_mix", cfg, seed=1)
        light = RateScaledTraffic(
            cfg, built.flows, scale=0.001, seed=1, mode="predraw",
            fixed_flow_ids=built.fixed_flow_ids,
        )
        heavy = RateScaledTraffic(
            cfg, built.flows, scale=0.01, seed=1, mode="predraw",
            fixed_flow_ids=built.fixed_flow_ids,
        )
        for flow_id in built.fixed_flow_ids:
            assert light.rate(flow_id) == heavy.rate(flow_id)
        background = [
            f.flow_id for f in built.flows if f.tenant == "hotspot"
        ]
        assert any(
            heavy.rate(fid) > light.rate(fid) for fid in background
        )

    def test_same_workload_twice_rejected(self):
        from repro.workloads import TenantMixWorkload

        with pytest.raises(ValueError, match="distinct"):
            TenantMixWorkload("broken", foreground="PIP", background="PIP")


class TestRegisterWorkload:
    """Duplicate registrations must raise, never silently clobber."""

    def test_duplicate_name_raises(self):
        from repro.workloads import PatternWorkload, register_workload

        with pytest.raises(ValueError, match="already registered"):
            register_workload(PatternWorkload("uniform"))
        # The registry still holds the original, untouched.
        assert get_workload("uniform").kind == "pattern"

    def test_replace_flag_allows_overwrite(self):
        from repro.workloads import PatternWorkload, register_workload

        original = get_workload("uniform")
        substitute = PatternWorkload("uniform")
        try:
            assert register_workload(substitute, replace=True) is substitute
            assert get_workload("uniform") is substitute
        finally:
            register_workload(original, replace=True)
