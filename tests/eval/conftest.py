"""Shared fixtures for the farm test suites.

The farm's correctness story is "row-for-row equality with a
single-process sweep of the same spec", so most farm tests compare
against one serial reference sweep.  That sweep is session-scoped: the
simulations run once and every suite (core, faults, merge properties,
stress) reuses the rows.
"""

from __future__ import annotations

import pytest

from repro.eval.farm import enumerate_farm
from repro.eval.sweeps import read_sweep_stream, run_workload_sweep

#: Tiny but non-trivial run window shared by every farm test.
FARM_TINY = dict(warmup_cycles=100, measure_cycles=800, drain_limit=4000)

#: The shared grid: 2 designs x 2 loads x 1 seed = 4 points.
FARM_GRID = dict(designs=("mesh", "dedicated"), loads=(1.0, 4.0), seeds=(1,))

FARM_WORKLOAD = "PIP"


def strip_points(points):
    """Canonical row list for equality checks: drop the farm-only
    ``point`` annotation and order by grid key."""
    return sorted(
        ({k: v for k, v in p.items() if k != "point"} for p in points),
        key=lambda p: (p["load"], p["design"], p["seed"]),
    )


@pytest.fixture(scope="session")
def serial_reference(tmp_path_factory):
    """One serial sweep of the shared grid: aggregated rows + stream."""
    path = str(tmp_path_factory.mktemp("serial") / "stream.jsonl")
    rows = run_workload_sweep(
        FARM_WORKLOAD, processes=0, stream_path=path,
        **FARM_GRID, **FARM_TINY,
    )
    return {
        "rows": rows,
        "points": read_sweep_stream(path),
        "stream": path,
    }


@pytest.fixture
def farm_spec(tmp_path):
    """A fresh queue for the shared grid under this test's tmp dir."""
    return enumerate_farm(
        FARM_WORKLOAD, root=str(tmp_path / "farm"), **FARM_GRID, **FARM_TINY
    )
