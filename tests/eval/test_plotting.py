"""Sweep plotting tests (rendering is skipped without matplotlib)."""

import pytest

from repro.eval.plotting import (
    matplotlib_available,
    plot_sweep_stream,
    sweep_curves,
)
from repro.eval.sweeps import run_load_sweep
from repro.sim.stats import LatencySummary

_TINY = dict(warmup_cycles=100, measure_cycles=800, drain_limit=4000)


def _point(design, load, seed, latency, saturated=False, count=10):
    return {
        "design": design,
        "load": load,
        "seed": seed,
        "summary": LatencySummary(
            count=count, mean_head_latency=latency,
            mean_packet_latency=latency + 7, mean_network_latency=latency - 1,
            p95_head_latency=latency + 2, max_head_latency=latency + 5,
            min_head_latency=max(latency - 5, 1),
        ),
        "throughput": 0.5,
        "saturated": saturated,
        "clamped_flows": 0,
    }


class TestSweepCurves:
    def test_groups_by_design_sorted_by_load(self):
        curves = sweep_curves([
            _point("mesh", 2.0, 1, 20.0),
            _point("mesh", 1.0, 1, 10.0),
            _point("smart", 1.0, 1, 5.0),
        ])
        assert [load for load, _lat, _sat in curves["mesh"]] == [1.0, 2.0]
        assert curves["smart"][0][1] == pytest.approx(5.0)

    def test_seeds_pool_count_weighted(self):
        curves = sweep_curves([
            _point("mesh", 1.0, 1, 10.0, count=2),
            _point("mesh", 1.0, 2, 20.0, count=6),
        ])
        ((load, latency, saturated),) = curves["mesh"]
        assert load == 1.0
        assert latency == pytest.approx(17.5)
        assert saturated is False

    def test_saturation_is_sticky_across_seeds(self):
        curves = sweep_curves([
            _point("mesh", 1.0, 1, 10.0, saturated=False),
            _point("mesh", 1.0, 2, 90.0, saturated=True),
        ])
        assert curves["mesh"][0][2] is True


class TestPlotRendering:
    def test_plot_raises_cleanly_without_matplotlib(self, tmp_path):
        if matplotlib_available():
            pytest.skip("matplotlib installed; gating not exercised")
        with pytest.raises(RuntimeError, match="matplotlib"):
            plot_sweep_stream(str(tmp_path / "missing.jsonl"))

    def test_plot_renders_png_from_stream(self, tmp_path):
        pytest.importorskip("matplotlib")
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0), seeds=(1,),
            processes=0, stream_path=path, **_TINY,
        )
        out = plot_sweep_stream(path)
        assert out == str(tmp_path / "stream.png")
        with open(out, "rb") as fh:
            assert fh.read(8).startswith(b"\x89PNG")

    def test_empty_stream_rejected(self, tmp_path):
        pytest.importorskip("matplotlib")
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no grid points"):
            plot_sweep_stream(str(path))
