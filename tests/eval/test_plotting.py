"""Sweep plotting tests (rendering is skipped without matplotlib)."""

import pytest

from repro.eval.plotting import (
    matplotlib_available,
    plot_sweep_stream,
    sweep_curves,
)
from repro.eval.sweeps import run_load_sweep
from repro.sim.stats import LatencySummary

_TINY = dict(warmup_cycles=100, measure_cycles=800, drain_limit=4000)


def _point(design, load, seed, latency, saturated=False, count=10):
    return {
        "design": design,
        "load": load,
        "seed": seed,
        "summary": LatencySummary(
            count=count, mean_head_latency=latency,
            mean_packet_latency=latency + 7, mean_network_latency=latency - 1,
            p95_head_latency=latency + 2, max_head_latency=latency + 5,
            min_head_latency=max(latency - 5, 1),
        ),
        "throughput": 0.5,
        "saturated": saturated,
        "clamped_flows": 0,
    }


class TestSweepCurves:
    def test_groups_by_design_sorted_by_load(self):
        curves = sweep_curves([
            _point("mesh", 2.0, 1, 20.0),
            _point("mesh", 1.0, 1, 10.0),
            _point("smart", 1.0, 1, 5.0),
        ])
        assert [load for load, _lat, _sat in curves["mesh"]] == [1.0, 2.0]
        assert curves["smart"][0][1] == pytest.approx(5.0)

    def test_seeds_pool_count_weighted(self):
        curves = sweep_curves([
            _point("mesh", 1.0, 1, 10.0, count=2),
            _point("mesh", 1.0, 2, 20.0, count=6),
        ])
        ((load, latency, saturated),) = curves["mesh"]
        assert load == 1.0
        assert latency == pytest.approx(17.5)
        assert saturated is False

    def test_saturation_is_sticky_across_seeds(self):
        curves = sweep_curves([
            _point("mesh", 1.0, 1, 10.0, saturated=False),
            _point("mesh", 1.0, 2, 90.0, saturated=True),
        ])
        assert curves["mesh"][0][2] is True


class TestPlotRendering:
    def test_plot_raises_cleanly_without_matplotlib(self, tmp_path):
        if matplotlib_available():
            pytest.skip("matplotlib installed; gating not exercised")
        with pytest.raises(RuntimeError, match="matplotlib"):
            plot_sweep_stream(str(tmp_path / "missing.jsonl"))

    def test_plot_renders_png_from_stream(self, tmp_path):
        pytest.importorskip("matplotlib")
        path = str(tmp_path / "stream.jsonl")
        run_load_sweep(
            app="PIP", designs=("dedicated",), scales=(1.0, 4.0), seeds=(1,),
            processes=0, stream_path=path, **_TINY,
        )
        out = plot_sweep_stream(path)
        assert out == str(tmp_path / "stream.png")
        with open(out, "rb") as fh:
            assert fh.read(8).startswith(b"\x89PNG")

    def test_empty_stream_rejected(self, tmp_path):
        pytest.importorskip("matplotlib")
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no grid points"):
            plot_sweep_stream(str(path))


class TestTailCurves:
    def _hist_point(self, design, load, seed, values, saturated=False):
        from repro.sim.stats import LatencyHistogram

        hist = LatencyHistogram.from_values(values)
        point = _point(
            design, load, seed, sum(values) / len(values),
            saturated=saturated, count=len(values),
        )
        point["summary"].histogram = hist
        return point

    def test_pools_histograms_exact_to_bucket(self):
        from repro.eval.plotting import tail_curves
        from repro.sim.stats import LatencyHistogram

        fast = self._hist_point("mesh", 1.0, 1, [10] * 99 + [12])
        slow = self._hist_point("mesh", 1.0, 2, [100] * 100)
        curves = tail_curves([fast, slow], fractions=(0.5, 0.99))
        ((load, tails, saturated),) = curves["mesh"]
        assert load == 1.0 and saturated is False
        pooled = LatencyHistogram.from_values(
            [10] * 99 + [12] + [100] * 100
        )
        assert tails[0.5] == pooled.percentile(0.5)
        assert tails[0.99] == pooled.percentile(0.99)
        assert tails[0.5] < tails[0.99]

    def test_legacy_points_fall_back_to_summary_fields(self):
        from repro.eval.plotting import tail_curves

        point = _point("mesh", 2.0, 1, 30.0)  # no histogram
        point["summary"].p50_head_latency = 28.0
        point["summary"].p99_head_latency = 45.0
        curves = tail_curves([point], fractions=(0.5, 0.99))
        ((_, tails, _),) = curves["mesh"]
        assert tails[0.5] == 28.0
        assert tails[0.99] == 45.0

    def test_saturation_sticky_and_sorted_by_load(self):
        from repro.eval.plotting import tail_curves

        curves = tail_curves([
            self._hist_point("mesh", 2.0, 1, [50] * 10, saturated=True),
            self._hist_point("mesh", 1.0, 1, [10] * 10),
            self._hist_point("mesh", 2.0, 2, [55] * 10, saturated=False),
        ])
        loads = [load for load, _t, _s in curves["mesh"]]
        assert loads == [1.0, 2.0]
        assert curves["mesh"][1][2] is True

    def test_plot_tail_stream_gated_without_matplotlib(self, tmp_path):
        from repro.eval.plotting import matplotlib_available, plot_tail_stream

        if matplotlib_available():
            pytest.skip("matplotlib installed; gating not exercised")
        with pytest.raises(RuntimeError, match="matplotlib"):
            plot_tail_stream(str(tmp_path / "missing.jsonl"))


class TestZeroPacketGuards:
    def test_zero_packet_groups_yield_empty_bands(self):
        """A pooled group that delivered nothing (quiet tenant, dry
        scenario phase) gets an empty band dict, not NaN percentiles."""
        from repro.eval.plotting import tail_curves

        quiet = _point("mesh", 1.0, 1, float("nan"), count=0)
        quiet["summary"] = LatencySummary.empty()
        busy = _point("mesh", 2.0, 1, 20.0)
        busy["summary"].p50_head_latency = 19.0
        busy["summary"].p99_head_latency = 30.0
        curves = tail_curves([quiet, busy], fractions=(0.5, 0.99))
        (zero, nonzero) = curves["mesh"]
        assert zero == (1.0, {}, False)
        assert nonzero[1][0.5] == 19.0

    def test_all_zero_stream_plots_without_legend_warning(self, tmp_path):
        """Rendering a stream of zero-packet runs must not crash (or
        emit matplotlib's no-artist legend warning)."""
        import json
        import warnings

        from repro.eval.plotting import (
            matplotlib_available,
            plot_sweep_stream,
            plot_tail_stream,
        )
        from repro.eval.sweeps import _point_to_json

        if not matplotlib_available():
            pytest.skip("matplotlib not installed")
        path = str(tmp_path / "stream.jsonl")
        quiet = _point("mesh", 1.0, 1, float("nan"), count=0)
        quiet["summary"] = LatencySummary.empty()
        with open(path, "w") as fh:
            fh.write(json.dumps(_point_to_json(quiet)) + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert plot_sweep_stream(path, str(tmp_path / "a.png"))
            assert plot_tail_stream(path, str(tmp_path / "b.png"))
