"""Costed multi-app reconfiguration scenarios (SS V time-multiplexing)."""

import json

import pytest

from repro.config import NocConfig
from repro.eval.reconfig import (
    ScenarioPhase,
    ScenarioSpec,
    aggregate_scenario,
    enumerate_scenario_farm,
    fig1_scenario,
    run_scenario,
    run_scenario_stream,
    scenario_phase_table,
)
from repro.workloads import WorkloadSpec

#: Small, fast spec shared by most tests: two pattern phases.
FAST = dict(warmup_cycles=60, measure_cycles=400, drain_limit=6000)


def small_spec(names=("uniform", "hotspot"), **kwargs):
    options = dict(FAST)
    options.update(kwargs)
    return ScenarioSpec.of("small", list(names), **options)


class TestSpec:
    def test_fig1_sequence_matches_the_paper(self):
        spec = fig1_scenario()
        assert [p.workload.name for p in spec.phases] == [
            "WLAN", "H264", "VOPD",
        ]
        assert spec.design == "smart"
        assert "WLAN@1" in spec.describe()

    def test_single_phase_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ScenarioSpec.of("solo", ["uniform"])

    def test_phase_indices_are_the_load_axis(self):
        assert small_spec().phase_loads() == [0.0, 1.0]

    def test_header_carries_hashed_scenario_section(self):
        spec = small_spec()
        header = spec.stream_header(NocConfig())
        assert header["sweep_spec"]["scenario"]["name"] == "small"
        assert len(header["sweep_spec"]["scenario"]["phases"]) == 2
        # A different phase order is a different spec hash.
        other = small_spec(names=("hotspot", "uniform"))
        assert (
            other.stream_header(NocConfig())["spec_hash"]
            != header["spec_hash"]
        )


class TestRunScenario:
    def test_rows_carry_phase_fields_and_cumulative_clock(self):
        spec = small_spec()
        rows = run_scenario(spec, NocConfig(), seed=1)
        assert [r["phase"] for r in rows] == [0, 1]
        assert [r["load"] for r in rows] == [0.0, 1.0]
        assert [r["app"] for r in rows] == ["uniform", "hotspot"]
        # Phase 0 pays the full program, phase 1 only the diff; both on
        # a monotonically increasing simulated clock.
        assert rows[0]["reconfig_stores"] > 0
        assert rows[0]["reconfig_cycles"] == rows[0]["reconfig_stores"]
        assert rows[1]["clock_cycles"] > rows[0]["clock_cycles"]
        total = sum(
            r["reconfig_cycles"] + r["summary"].count * 0 for r in rows
        )
        assert rows[-1]["clock_cycles"] >= total

    def test_repeated_app_costs_nothing_to_reconfigure(self):
        spec = small_spec(names=("uniform", "uniform"))
        rows = run_scenario(spec, NocConfig(), seed=1)
        assert rows[0]["reconfig_stores"] > 0
        assert rows[1]["reconfig_stores"] == 0
        assert rows[1]["reconfig_cycles"] == 0

    def test_dedicated_design_has_no_presets_to_program(self):
        spec = small_spec(design="dedicated")
        rows = run_scenario(spec, NocConfig(), seed=1)
        assert all(r["reconfig_stores"] == 0 for r in rows)
        assert all(r["reconfig_cycles"] == 0 for r in rows)

    def test_cycles_per_store_scales_the_bill(self):
        cheap = run_scenario(small_spec(), NocConfig(), seed=1)
        costly = run_scenario(
            small_spec(cycles_per_store=4), NocConfig(), seed=1
        )
        assert (
            costly[0]["reconfig_cycles"] == 4 * cheap[0]["reconfig_cycles"]
        )

    def test_phase_load_override(self):
        spec = ScenarioSpec.of(
            "loads",
            [
                ScenarioPhase(WorkloadSpec.of("uniform"), load=0.02),
                ScenarioPhase(WorkloadSpec.of("uniform"), load=0.08),
            ],
            **FAST,
        )
        rows = run_scenario(spec, NocConfig(), seed=1)
        assert rows[0]["phase_load"] == 0.02
        assert rows[1]["phase_load"] == 0.08
        # The heavier phase injects more packets.
        assert rows[1]["summary"].count > rows[0]["summary"].count


class TestStreamAndAggregate:
    def test_stream_resume_reloads_complete_seeds(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "scenario.jsonl")
        first = run_scenario_stream(
            spec, seeds=(1, 2), stream_path=path, resume=False
        )
        assert len(first) == 4  # 2 phases x 2 seeds
        calls = []
        again = run_scenario_stream(
            spec, seeds=(1, 2), stream_path=path, resume=True,
            on_result=calls.append,
        )
        assert calls == []  # nothing re-ran
        assert len(again) == 4
        assert again == first

    def test_resume_refuses_a_different_scenario(self, tmp_path):
        path = str(tmp_path / "scenario.jsonl")
        run_scenario_stream(small_spec(), stream_path=path)
        other = small_spec(names=("hotspot", "uniform"))
        with pytest.raises(ValueError, match="spec hash"):
            run_scenario_stream(other, stream_path=path, resume=True)

    def test_partial_seed_reruns_whole_sequence(self, tmp_path):
        """Phases depend on their predecessor's presets: a seed with a
        missing phase row must rerun from phase 0."""
        spec = small_spec()
        path = str(tmp_path / "scenario.jsonl")
        run_scenario_stream(spec, seeds=(1,), stream_path=path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        with open(path, "w") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")  # drop phase 1's row
        calls = []
        rows = run_scenario_stream(
            spec, seeds=(1,), stream_path=path, resume=True,
            on_result=calls.append,
        )
        assert len(calls) == 2  # both phases re-ran
        assert len(rows) == 2

    def test_aggregate_and_phase_table(self):
        spec = small_spec()
        raw = run_scenario_stream(spec, seeds=(1, 2))
        aggregated = aggregate_scenario(spec, raw)
        assert len(aggregated) == 2
        assert aggregated[0]["smart_app"] == "uniform"
        assert aggregated[0]["smart_reconfig_cycles"] > 0
        table = scenario_phase_table(spec, raw)
        assert [r["app"] for r in table] == ["uniform", "hotspot"]
        assert table[1]["clock_cycles"] > table[0]["clock_cycles"]
        # The uniform phase drains; the hotspot phase saturates at its
        # default load on this mesh, and the table says so.
        assert table[0]["drained"] is True
        assert table[1]["drained"] is False


class TestFarmIntegration:
    def test_import_only_queue_round_trip(self, tmp_path):
        from repro.eval.farm import import_stream, load_farm, merge_farm

        spec = small_spec()
        root = str(tmp_path / "farm")
        stream = str(tmp_path / "scenario.jsonl")
        run_scenario_stream(spec, seeds=(1,), stream_path=stream)
        farm = enumerate_scenario_farm(spec, seeds=(1,), root=root)
        stats = import_stream(farm.root, stream)
        assert stats["imported"] == 2
        assert stats["outside_grid"] == 0
        result = merge_farm(farm.root)
        assert result.complete
        with open(result.json_path) as fh:
            merged = json.load(fh)
        rows = merged["rows"]
        assert [r["smart_app"] for r in rows] == ["uniform", "hotspot"]
        # Scenario queues cannot be worked, only imported.
        reloaded = load_farm(farm.root)
        with pytest.raises(ValueError, match="import"):
            reloaded.job_for(reloaded.points()[0])
