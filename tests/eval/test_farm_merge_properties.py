"""Property tests: the farm merge is a deterministic set union.

Randomized (but seeded) shard arrangements of the same underlying rows
must all merge to the same result:

* idempotency — ``merge(merge(X)) == merge(X)`` at the byte level;
* permutation invariance — shard order, row order within shards, and
  how rows are split across shards are all irrelevant;
* duplication invariance — repeating rows (the at-least-once execution
  the lease protocol permits) changes nothing;
* corruption determinism — even for conflicting duplicates the winner
  is a pure function of the row *set*, never of arrival order.

Each property runs across ``N_SEEDS`` seeded :class:`random.Random`
arrangements, so failures replay exactly.
"""

import copy
import json
import os
import random

import pytest

from repro.eval.farm import enumerate_farm, merge_farm, merge_rows, shard_path
from repro.eval.sweeps import _point_to_json
from tests.eval.conftest import FARM_GRID, FARM_TINY, FARM_WORKLOAD

N_SEEDS = 24


class _Torn:
    """A row stand-in that serialises to a torn (undecodable) line."""

    def __init__(self, text):
        self.text = text


def _encode(row):
    """Shard-line encoding for a decoded row (or a torn fragment)."""
    if isinstance(row, _Torn):
        return row.text
    return json.dumps(dict(_point_to_json(row), point=row["point"]))


@pytest.fixture(scope="module")
def base_rows(serial_reference, tmp_path_factory):
    """The serial sweep's rows annotated with their farm point hashes."""
    root = str(tmp_path_factory.mktemp("props") / "farm")
    spec = enumerate_farm(
        FARM_WORKLOAD, root=root, **FARM_GRID, **FARM_TINY
    )
    by_key = {(p.design, p.load, p.seed): p.point_hash for p in spec.points()}
    rows = []
    for row in serial_reference["points"]:
        key = (row["design"], row["load"], row["seed"])
        rows.append(dict(row, point=by_key[key]))
    assert len(rows) == len(spec.points())
    return rows


def _random_arrangement(rng, rows, max_shards=5, duplicate=True):
    """Split ``rows`` into shards at random: random order, random shard
    assignment, random duplication (each row lands 1-3 times)."""
    pool = []
    for row in rows:
        copies = rng.randint(1, 3) if duplicate else 1
        pool.extend(copy.deepcopy(row) for _ in range(copies))
    rng.shuffle(pool)
    shards = [[] for _ in range(rng.randint(1, max_shards))]
    for row in pool:
        rng.choice(shards).append(row)
    return [shard for shard in shards if shard]


class TestMergeRowsFunction:
    """Properties of the pure :func:`merge_rows` winner rule."""

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_permutation_and_duplication_invariance(self, base_rows, seed):
        rng = random.Random(seed)
        reference = merge_rows(base_rows)
        shards = _random_arrangement(rng, base_rows)
        arranged = merge_rows([row for shard in shards for row in shard])
        assert arranged == reference

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_merge_is_idempotent(self, base_rows, seed):
        rng = random.Random(seed)
        shards = _random_arrangement(rng, base_rows)
        once = merge_rows([row for shard in shards for row in shard])
        assert merge_rows(list(once.values())) == once

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_conflicting_duplicates_resolve_order_independently(
        self, base_rows, seed
    ):
        """If duplicates for one point ever *disagree* (which only
        corruption can produce), the winner must still be a function of
        the set of rows, not of the order they were scanned in."""
        rng = random.Random(seed)
        conflicted = [copy.deepcopy(r) for r in base_rows]
        victim = copy.deepcopy(rng.choice(conflicted))
        victim["throughput"] = float(rng.randint(1, 10**6))
        conflicted.append(victim)
        forward = merge_rows(conflicted)
        backward = merge_rows(list(reversed(conflicted)))
        shuffled = list(conflicted)
        rng.shuffle(shuffled)
        assert merge_rows(shuffled) == forward == backward


class TestMergeFarmFiles:
    """The same properties at the file level, via :func:`merge_farm`."""

    def _queue_with(self, tmp_path, shards):
        spec = enumerate_farm(
            FARM_WORKLOAD, root=str(tmp_path / "farm"),
            **FARM_GRID, **FARM_TINY,
        )
        for index, shard in enumerate(shards):
            with open(shard_path(spec, "w%d" % index), "w") as fh:
                for row in shard:
                    fh.write(_encode(row) + "\n")
        return spec

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_every_arrangement_merges_to_identical_bytes(
        self, base_rows, tmp_path, seed
    ):
        rng = random.Random(seed)
        plain = self._queue_with(tmp_path / "a", [base_rows])
        reference = merge_farm(plain)
        arranged = self._queue_with(
            tmp_path / "b", _random_arrangement(rng, base_rows)
        )
        result = merge_farm(arranged)
        assert result.complete
        assert (open(result.stream_path, "rb").read()
                == open(reference.stream_path, "rb").read())
        assert (json.load(open(result.json_path))["rows"]
                == json.load(open(reference.json_path))["rows"])

    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 4))
    def test_remerge_and_compact_preserve_bytes(
        self, base_rows, tmp_path, seed
    ):
        rng = random.Random(seed)
        spec = self._queue_with(
            tmp_path, _random_arrangement(rng, base_rows)
        )
        first = merge_farm(spec)
        bytes_first = open(first.stream_path, "rb").read()
        # merge(merge(X)) == merge(X): the merged stream feeds back in.
        second = merge_farm(spec)
        assert open(second.stream_path, "rb").read() == bytes_first
        # ...and stays stable once the shards are compacted away.
        third = merge_farm(spec, compact=True)
        fourth = merge_farm(spec)
        assert open(third.stream_path, "rb").read() == bytes_first
        assert open(fourth.stream_path, "rb").read() == bytes_first

    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 4))
    def test_random_torn_fragments_change_nothing(
        self, base_rows, tmp_path, seed
    ):
        """Torn half-rows sprinkled through the shards never affect the
        merged bytes — they are skipped, not repaired into rows."""
        rng = random.Random(seed)
        plain = self._queue_with(tmp_path / "a", [base_rows])
        reference = merge_farm(plain)
        shards = _random_arrangement(rng, base_rows)
        for shard in shards:
            if rng.random() < 0.7:
                fragment = _encode(rng.choice(base_rows))
                cut = rng.randint(1, max(1, len(fragment) - 2))
                shard.insert(rng.randrange(len(shard) + 1),
                             _Torn(fragment[:cut]))
        spec = self._queue_with(tmp_path / "b", shards)
        result = merge_farm(spec)
        assert result.complete
        assert (open(result.stream_path, "rb").read()
                == open(reference.stream_path, "rb").read())
