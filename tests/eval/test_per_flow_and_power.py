"""Per-flow statistics and honest (non-link-only) Dedicated power."""

import pytest

from repro.eval.experiments import run_app

FAST = dict(warmup_cycles=300, measure_cycles=5000, drain_limit=60000)


@pytest.fixture(scope="module")
def h264_smart():
    return run_app("H264", "smart", **FAST)


@pytest.fixture(scope="module")
def h264_dedicated():
    return run_app("H264", "dedicated", **FAST)


class TestPerFlowStats:
    def test_every_flow_reported(self, h264_smart):
        per_flow = h264_smart.result.per_flow
        injecting = {
            f.flow_id
            for f in h264_smart.flows
        }
        # Every flow with at least one delivered packet gets a summary.
        assert set(per_flow).issubset(injecting)
        assert len(per_flow) >= len(injecting) - 2  # rare low-bw flows may miss

    def test_single_cycle_flows_report_latency_one(self, h264_smart):
        network = h264_smart.instance.network
        for flow in h264_smart.flows:
            if network.stops_for_flow(flow):
                continue
            summary = h264_smart.result.per_flow.get(flow.flow_id)
            if summary is None:
                continue
            assert summary.min_head_latency == 1

    def test_stopped_flows_cost_three_per_stop(self, h264_smart):
        network = h264_smart.instance.network
        for flow in h264_smart.flows:
            stops = len(network.stops_for_flow(flow))
            summary = h264_smart.result.per_flow.get(flow.flow_id)
            if summary is None:
                continue
            assert summary.min_head_latency >= 1 + 3 * stops


class TestHonestDedicatedPower:
    def test_full_accounting_includes_sink_routers(self, h264_dedicated):
        """H264 has shared sinks, so the honest Dedicated accounting shows
        buffer/allocator energy the paper's link-only plot omits."""
        assert h264_dedicated.power.buffer_w == 0.0  # as plotted
        assert h264_dedicated.power_full.buffer_w > 0.0  # as built
        assert h264_dedicated.power_full.total_w > h264_dedicated.power.total_w

    def test_acknowledged_gap_is_meaningful(self, h264_dedicated):
        """The omitted sink-router power is a sizeable share — matching
        the paper's admission that it 'will not be negligible'."""
        omitted = (
            h264_dedicated.power_full.total_w - h264_dedicated.power.total_w
        )
        assert omitted / h264_dedicated.power_full.total_w > 0.2
