"""Evaluation harness tests: designs, experiments, reporting."""

import pytest

from repro.config import NocConfig
from repro.eval.designs import DESIGNS, build_design
from repro.eval.experiments import (
    fig10a_rows,
    fig10b_rows,
    headline_metrics,
    run_app,
    run_suite,
)
from repro.eval.report import render_table, rows_to_csv
from repro.eval.scenarios import fig7_flows

FAST = dict(warmup_cycles=300, measure_cycles=4000, drain_limit=40000)


class TestBuildDesign:
    def test_all_designs_build(self):
        for design in DESIGNS:
            instance = build_design(design, NocConfig(), fig7_flows())
            assert instance.design == design

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            build_design("torus", NocConfig(), fig7_flows())

    def test_case_insensitive(self):
        assert build_design("SMART", NocConfig(), fig7_flows()).design == "smart"


class TestRunApp:
    def test_vopd_smart(self):
        experiment = run_app("VOPD", "smart", **FAST)
        assert experiment.app == "VOPD"
        assert experiment.result.drained
        assert 1.0 <= experiment.mean_latency < 10.0
        assert experiment.power.total_w > 0

    def test_latency_ordering_one_app(self):
        mesh = run_app("PIP", "mesh", **FAST)
        smart = run_app("PIP", "smart", **FAST)
        dedicated = run_app("PIP", "dedicated", **FAST)
        assert dedicated.mean_latency <= smart.mean_latency < mesh.mean_latency

    def test_dedicated_power_is_link_only(self):
        experiment = run_app("VOPD", "dedicated", **FAST)
        assert experiment.power.buffer_w == 0.0
        assert experiment.power.link_w > 0.0
        assert experiment.power_full.total_w >= experiment.power.total_w

    def test_mapping_algorithm_forwarded(self):
        experiment = run_app("PIP", "smart", mapping_algorithm="row_major", **FAST)
        assert experiment.mapping == {
            task: node
            for node, task in enumerate(
                __import__("repro.apps", fromlist=["pip"]).pip().tasks
            )
        }


class TestSuiteAndRows:
    @pytest.fixture(scope="class")
    def suite(self):
        return run_suite(apps=("PIP", "VOPD"), **FAST)

    def test_matrix_complete(self, suite):
        assert set(suite) == {
            (app, design) for app in ("PIP", "VOPD") for design in DESIGNS
        }

    def test_fig10a_rows(self, suite):
        rows = fig10a_rows(suite)
        assert [r["app"] for r in rows] == ["VOPD", "PIP"]
        for row in rows:
            assert row["mesh"] > row["smart"]

    def test_fig10b_rows(self, suite):
        rows = fig10b_rows(suite)
        assert len(rows) == 6
        assert all(row["total_w"] > 0 for row in rows)

    def test_headline_metrics(self, suite):
        metrics = headline_metrics(suite)
        assert 0.3 < metrics.latency_saving_vs_mesh < 0.9
        assert metrics.power_ratio_mesh_over_smart > 1.2
        assert metrics.gap_vs_dedicated_cycles >= 0.0


class TestReport:
    ROWS = [
        {"app": "VOPD", "mesh": 8.43, "smart": 2.12},
        {"app": "PIP", "mesh": 8.71, "smart": 2.63},
    ]

    def test_render_table(self):
        text = render_table(self.ROWS, title="Fig 10a")
        assert "Fig 10a" in text
        assert "VOPD" in text
        assert "8.430" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_csv(self):
        csv_text = rows_to_csv(self.ROWS)
        assert csv_text.splitlines()[0] == "app,mesh,smart"
        assert "VOPD" in csv_text

    def test_column_selection(self):
        text = render_table(self.ROWS, columns=["app"])
        assert "mesh" not in text
