"""Dedicated baseline: event kernel vs legacy kernel equivalence.

Mirrors ``tests/sim/test_event_kernel.py`` for the Dedicated ideal
yardstick: direct ejections and shared-sink ejections run as scheduled
chain events, sink allocation is wake-driven, and none of it may be
observable next to the per-cycle kernels.
"""

import pytest

from repro.config import NocConfig
from repro.eval.dedicated import DEDICATED_KERNELS, DedicatedNetwork
from repro.sim.patterns import synthetic_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, ScriptedTraffic
from repro.workloads import build_workload


def _result_tuple(result):
    return (
        result.summary,
        result.per_flow,
        result.counters,
        result.total_cycles,
        result.drained,
        result.undelivered_measured,
    )


class TestDedicatedEventEquivalence:
    def test_event_kernel_registered(self):
        assert "event" in DEDICATED_KERNELS

    def test_unknown_kernel_rejected(self, cfg, mesh):
        with pytest.raises(ValueError):
            DedicatedNetwork(
                cfg, mesh, [], ScriptedTraffic([]), kernel="warp"
            )

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("pattern", ["uniform", "hotspot"])
    def test_patterns_identical_8x8(self, pattern, seed):
        """Uniform mixes direct and shared-sink ejections; hotspot is
        all shared-sink serialisation (the worst case)."""
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        rate = 0.01 if pattern == "hotspot" else 0.015
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            flows = synthetic_flows(
                pattern, cfg, injection_rate=rate, seed=seed
            )
            traffic = BernoulliTraffic(cfg, flows, seed=seed, mode=mode)
            net = DedicatedNetwork(cfg, mesh, flows, traffic, kernel=kernel)
            results[kernel] = _result_tuple(
                net.run(warmup_cycles=150, measure_cycles=1200,
                        drain_limit=15000)
            )
        assert results["legacy"] == results["event"]

    @pytest.mark.parametrize("app", ["VOPD", "MWD"])
    def test_apps_identical(self, cfg, mesh, app):
        built = build_workload(app, cfg)
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            traffic = RateScaledTraffic(
                cfg, built.flows, scale=8.0, seed=2, mode=mode
            )
            net = DedicatedNetwork(
                cfg, mesh, built.flows, traffic, kernel=kernel
            )
            results[kernel] = _result_tuple(
                net.run(warmup_cycles=150, measure_cycles=1200,
                        drain_limit=15000)
            )
        assert results["legacy"] == results["event"]

    def test_run_cycles_settles_chains(self):
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        out = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            flows = synthetic_flows(
                "uniform", cfg, injection_rate=0.02, seed=3
            )
            traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
            net = DedicatedNetwork(cfg, mesh, flows, traffic, kernel=kernel)
            net.run_cycles(1237)
            out[kernel] = (net.counters, net.stats.delivered_total)
        assert out["legacy"] == out["event"]
