"""Dedicated baseline: event kernel vs legacy kernel equivalence.

Mirrors ``tests/sim/test_event_kernel.py`` for the Dedicated ideal
yardstick: direct ejections, shared-sink *feed* chains (deferred
channel writes) and shared-sink ejections run as scheduled chain
events with feeder-ordered settlement, sink allocation is wake-driven,
and none of it may be observable next to the per-cycle kernels.
"""

import pytest

from repro.config import NocConfig
from repro.eval.dedicated import (
    DEDICATED_KERNELS,
    DedicatedNetwork,
    _DedEjectChain,
    _DedFeedChain,
)
from repro.sim.patterns import synthetic_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, ScriptedTraffic

RUN = dict(warmup_cycles=150, measure_cycles=1200, drain_limit=15000)


class TestDedicatedEventEquivalence:
    def test_event_kernel_registered(self):
        assert "event" in DEDICATED_KERNELS

    def test_unknown_kernel_rejected(self, cfg, mesh):
        with pytest.raises(ValueError):
            DedicatedNetwork(
                cfg, mesh, [], ScriptedTraffic([]), kernel="warp"
            )

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("pattern", ["uniform", "hotspot"])
    def test_patterns_identical_8x8(
        self, make_workload, run_design, pattern, seed
    ):
        """Uniform mixes direct and shared-sink ejections; hotspot is
        all shared-sink serialisation (the worst case).  Patterns run
        through the shared workload pipeline, exactly as the sweeps
        build them."""
        cfg = NocConfig(width=8, height=8)
        rate = 0.01 if pattern == "hotspot" else 0.015
        built = make_workload(pattern, cfg, seed=seed)
        legacy = run_design(
            built, cfg, "dedicated", "legacy", rate, seed, **RUN
        )
        event = run_design(
            built, cfg, "dedicated", "event", rate, seed, **RUN
        )
        assert legacy == event

    @pytest.mark.parametrize("app", ["VOPD", "MWD"])
    def test_apps_identical(
        self, cfg, make_workload, run_design, app
    ):
        built = make_workload(app, cfg)
        legacy = run_design(built, cfg, "dedicated", "legacy", 8.0, 2, **RUN)
        event = run_design(built, cfg, "dedicated", "event", 8.0, 2, **RUN)
        assert legacy == event

    def test_run_cycles_settles_chains(self):
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        out = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            flows = synthetic_flows(
                "uniform", cfg, injection_rate=0.02, seed=3
            )
            traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
            net = DedicatedNetwork(cfg, mesh, flows, traffic, kernel=kernel)
            net.run_cycles(1237)
            out[kernel] = (net.counters, net.stats.delivered_total)
        assert out["legacy"] == out["event"]

    def test_feed_chains_defer_and_link_to_ejections(self):
        """White-box: a hotspot run holds _DedFeedChain writers whose
        consuming ejection chains link back to them as feeders."""
        cfg = NocConfig(width=8, height=8)
        mesh = Mesh(8, 8)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.05, seed=1)
        traffic = BernoulliTraffic(cfg, flows, seed=1, mode="predraw")
        net = DedicatedNetwork(cfg, mesh, flows, traffic, kernel="event")
        seen_feed = False
        seen_linked_eject = False
        for _ in range(400):
            net.step()
            kinds = {type(c) for c in net._chains.values()}
            if _DedFeedChain in kinds:
                seen_feed = True
            if any(
                type(c) is _DedEjectChain and c.feeder is not None
                for c in net._chains.values()
            ):
                seen_linked_eject = True
            if seen_feed and seen_linked_eject:
                break
        assert seen_feed, "no channel feed chain was ever deferred"
        assert seen_linked_eject, "no ejection chain linked its feeder"
