"""Paper-figure scenario tests."""

from repro.eval.scenarios import FIG1_APPS, FIG7_STOP_TIMES, fig7_flows
from repro.sim.topology import Mesh


class TestFig7Scenario:
    def test_four_flows(self):
        flows = fig7_flows()
        assert len(flows) == 4
        assert [f.name for f in flows] == ["blue", "red", "green", "purple"]

    def test_blue_path_matches_paper(self, mesh):
        blue = fig7_flows()[0]
        assert blue.routers(mesh) == [8, 9, 10, 11, 7, 3]

    def test_red_overlaps_blue_on_9_10(self, mesh):
        blue, red = fig7_flows()[:2]
        shared = set(blue.links(mesh)) & set(red.links(mesh))
        assert shared == {(9, 10)}

    def test_green_purple_disjoint_from_everything(self, mesh):
        flows = fig7_flows()
        for clean in flows[2:]:
            for other in flows:
                if other is clean:
                    continue
                assert not set(clean.links(mesh)) & set(other.links(mesh))

    def test_stop_times_constant(self):
        assert FIG7_STOP_TIMES == (1, 4, 7)


class TestFig1Apps:
    def test_names(self):
        assert FIG1_APPS == ("WLAN", "H264", "VOPD")

    def test_all_loadable(self):
        from repro.apps.registry import evaluation_task_graph

        for app in FIG1_APPS:
            graph = evaluation_task_graph(app)
            assert graph.num_tasks <= Mesh(4, 4).num_nodes
