"""Dedicated baseline tests: 1-cycle links, destination serialization."""

import pytest

from repro.config import NocConfig
from repro.eval.dedicated import DedicatedNetwork
from repro.sim.flow import Flow, xy_route
from repro.sim.topology import Mesh
from repro.sim.traffic import ScriptedTraffic


def build(flows, schedule, cycles=100):
    cfg = NocConfig()
    mesh = Mesh(4, 4)
    net = DedicatedNetwork(cfg, mesh, flows, ScriptedTraffic(schedule))
    net.stats.measuring = True
    net.run_cycles(cycles)
    return net, {p.flow_id: p for p in net.stats.measured_delivered}


def flow(fid, src, dst, bw=1e6):
    mesh = Mesh(4, 4)
    return Flow(fid, src, dst, bw, xy_route(mesh, src, dst))


class TestUncontended:
    def test_single_cycle_any_distance(self):
        """A lone flow is 1 cycle NIC-to-NIC regardless of distance."""
        for src, dst in ((0, 1), (0, 15), (12, 3)):
            _net, got = build([flow(0, src, dst)], [(1, 0)])
            assert got[0].head_latency == 1

    def test_packet_streams_at_link_rate(self):
        _net, got = build([flow(0, 0, 15)], [(1, 0)])
        assert got[0].packet_latency == 8

    def test_link_mm_is_manhattan(self):
        net, _ = build([flow(0, 0, 15)], [(1, 0)])
        assert net.counters.link_flit_mm == pytest.approx(8 * 6.0)

    def test_no_sink_router_for_single_flow(self):
        net, _ = build([flow(0, 0, 15)], [])
        assert net.sinks == {}
        assert net.counters.buffer_writes == 0


class TestSharedSink:
    def make_shared(self, schedule, cycles=200):
        flows = [flow(0, 0, 5), flow(1, 10, 5), flow(2, 6, 5)]
        return build(flows, schedule, cycles)

    def test_stop_costs_three_cycles(self):
        """§VI: flows to a shared destination 'stop at a router at the
        destination to go up serially into the NIC' — one stop = +3."""
        _net, got = self.make_shared([(1, 0)])
        assert got[0].head_latency == 4

    def test_simultaneous_arrivals_serialise(self):
        _net, got = self.make_shared([(1, 0), (1, 1)])
        latencies = sorted((got[0].head_latency, got[1].head_latency))
        assert latencies[0] == 4
        assert latencies[1] == 4 + 8

    def test_three_way_contention(self):
        _net, got = self.make_shared([(1, 0), (1, 1), (1, 2)], cycles=300)
        latencies = sorted(p.head_latency for p in got.values())
        assert latencies == [4, 12, 20]

    def test_sources_do_not_interfere(self):
        """Unlike SMART, Dedicated has no source-side multiplexing: two
        flows from one source to distinct sinks both take 1 cycle."""
        flows = [flow(0, 5, 0), flow(1, 5, 15)]
        _net, got = build(flows, [(1, 0), (1, 1)])
        assert got[0].head_latency == 1
        assert got[1].head_latency == 1

    def test_sink_counters(self):
        net, _ = self.make_shared([(1, 0)])
        assert net.counters.buffer_writes == 8
        assert net.counters.buffer_reads == 8
        assert net.counters.crossbar_traversals == 8


class TestRun:
    def test_run_api(self):
        flows = [flow(0, 0, 5, bw=1e8), flow(1, 10, 5, bw=1e8)]
        cfg = NocConfig()
        net = DedicatedNetwork(cfg, Mesh(4, 4), flows,
                               __import__("repro.sim.traffic", fromlist=["BernoulliTraffic"]).BernoulliTraffic(cfg, flows, seed=2))
        result = net.run(warmup_cycles=200, measure_cycles=2000, drain_limit=20000)
        assert result.drained
        assert result.summary.count > 0
        assert result.summary.mean_head_latency >= 1.0
