"""Core farm tests: queue, leases, workers, merge, import, CLI.

Crash/fault scenarios live in ``test_farm_faults.py``, merge-idempotency
properties in ``test_farm_merge_properties.py``, and the real
multi-process stress run in ``test_farm_stress.py``.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.eval.farm import (
    acquire_lease,
    enumerate_farm,
    farm_status,
    import_stream,
    load_farm,
    merge_farm,
    point_hash,
    release_lease,
    resolve_spec_dir,
    shard_path,
    work_on,
)
from repro.eval.sweeps import (
    read_sweep_header,
    read_sweep_stream,
    run_workload_sweep,
    write_sweep_json,
)
from tests.eval.conftest import FARM_GRID, FARM_TINY, FARM_WORKLOAD, strip_points


def _age_lease(spec, ph, seconds=3600):
    """Backdate a lease's mtime so it reads as crashed."""
    path = os.path.join(spec.root, "leases", "%s.lease" % ph)
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestEnumerate:
    def test_queue_directory_is_content_addressed(self, farm_spec):
        assert os.path.basename(farm_spec.root) == farm_spec.spec_hash
        assert os.path.isfile(os.path.join(farm_spec.root, "spec.json"))

    def test_points_follow_sweep_enumeration_order(self, farm_spec):
        points = farm_spec.points()
        assert [(p.load, p.design, p.seed) for p in points] == [
            (load, design, seed)
            for load in FARM_GRID["loads"]
            for design in FARM_GRID["designs"]
            for seed in FARM_GRID["seeds"]
        ]
        assert len({p.point_hash for p in points}) == len(points)

    def test_point_hash_is_stable_and_spec_scoped(self):
        one = point_hash("abc", "mesh", 1.0, 1)
        assert one == point_hash("abc", "mesh", 1.0, 1)
        assert one != point_hash("abc", "mesh", 2.0, 1)
        assert one != point_hash("def", "mesh", 1.0, 1)

    def test_reenumerate_is_idempotent(self, tmp_path):
        kwargs = dict(root=str(tmp_path / "farm"), **FARM_GRID, **FARM_TINY)
        first = enumerate_farm(FARM_WORKLOAD, **kwargs)
        again = enumerate_farm(FARM_WORKLOAD, **kwargs)
        assert again == first

    def test_reenumerate_unions_the_grid(self, tmp_path):
        root = str(tmp_path / "farm")
        first = enumerate_farm(
            FARM_WORKLOAD, designs=("mesh",), loads=(1.0,), seeds=(1,),
            root=root, **FARM_TINY,
        )
        wider = enumerate_farm(
            FARM_WORKLOAD, designs=("mesh", "dedicated"), loads=(2.0, 1.0),
            seeds=(1, 2), root=root, **FARM_TINY,
        )
        assert wider.root == first.root
        # First-seen order is preserved, new values append.
        assert wider.loads == (1.0, 2.0)
        assert wider.designs == ("mesh", "dedicated")
        assert wider.seeds == (1, 2)
        # Old point hashes are a subset: finished work is never orphaned.
        old = {p.point_hash for p in first.points()}
        assert old <= {p.point_hash for p in wider.points()}

    def test_load_rejects_tampered_spec(self, farm_spec):
        path = os.path.join(farm_spec.root, "spec.json")
        data = json.load(open(path))
        data["sweep_spec"]["workload"] = "VOPD"
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(ValueError, match="inconsistent"):
            load_farm(farm_spec.root)

    def test_resolve_spec_dir(self, farm_spec, tmp_path):
        root = os.path.dirname(farm_spec.root)
        assert resolve_spec_dir(farm_spec.root) == farm_spec.root
        assert resolve_spec_dir(farm_spec.spec_hash, root=root) == farm_spec.root
        assert resolve_spec_dir(farm_spec.spec_hash[:6], root=root) \
            == farm_spec.root
        with pytest.raises(FileNotFoundError):
            resolve_spec_dir("nope", root=root)


class TestLeases:
    def test_exclusive_acquisition(self, farm_spec):
        ph = farm_spec.points()[0].point_hash
        assert acquire_lease(farm_spec, ph, "a")
        assert not acquire_lease(farm_spec, ph, "b")
        release_lease(farm_spec, ph)
        assert acquire_lease(farm_spec, ph, "b")

    def test_stale_lease_is_stolen(self, farm_spec):
        ph = farm_spec.points()[0].point_hash
        assert acquire_lease(farm_spec, ph, "crashed", ttl=600)
        assert not acquire_lease(farm_spec, ph, "b", ttl=600)
        _age_lease(farm_spec, ph)
        assert acquire_lease(farm_spec, ph, "b", ttl=600)

    def test_writer_declared_ttl_wins(self, farm_spec):
        """A lease declaring a long TTL is not stolen by an impatient
        worker configured with a short one."""
        ph = farm_spec.points()[0].point_hash
        assert acquire_lease(farm_spec, ph, "slow", ttl=100000)
        _age_lease(farm_spec, ph, seconds=3600)
        assert not acquire_lease(farm_spec, ph, "fast", ttl=1)


class TestWorkAndMerge:
    def test_single_worker_completes_the_grid(self, farm_spec):
        assert work_on(farm_spec, worker="w1") == len(farm_spec.points())
        assert work_on(farm_spec, worker="w2") == 0  # nothing left
        status = farm_status(farm_spec)
        assert status["pending"] == 0
        assert status["leases_fresh"] == status["leases_stale"] == 0
        assert status["duplicates"] == 0

    def test_rows_are_point_annotated(self, farm_spec):
        work_on(farm_spec, worker="w1")
        rows = [
            json.loads(line)
            for line in open(shard_path(farm_spec, "w1"))
        ]
        hashes = {p.point_hash for p in farm_spec.points()}
        assert {row["point"] for row in rows} == hashes

    def test_merge_matches_serial_sweep_row_for_row(
        self, farm_spec, serial_reference
    ):
        work_on(farm_spec, worker="w1")
        result = merge_farm(farm_spec)
        assert result.complete
        merged = read_sweep_stream(result.stream_path)
        assert strip_points(merged) == strip_points(serial_reference["points"])

    def test_merged_stream_resumes_as_a_sweep(
        self, farm_spec, serial_reference, tmp_path
    ):
        """The canonical merged stream is a valid, complete sweep stream:
        resuming it runs zero new simulations and reproduces the
        aggregated rows."""
        work_on(farm_spec, worker="w1")
        result = merge_farm(farm_spec)
        resume_path = str(tmp_path / "resume.jsonl")
        with open(result.stream_path) as src, open(resume_path, "w") as dst:
            dst.write(src.read())
        rows = run_workload_sweep(
            FARM_WORKLOAD, processes=0, stream_path=resume_path,
            resume=True, **FARM_GRID, **FARM_TINY,
        )
        assert rows == serial_reference["rows"]

    def test_merged_json_matches_serial_aggregation(
        self, farm_spec, serial_reference, tmp_path
    ):
        work_on(farm_spec, worker="w1")
        result = merge_farm(farm_spec)
        expected = write_sweep_json(
            str(tmp_path / "serial.json"), serial_reference["rows"]
        )
        assert (json.load(open(result.json_path))["rows"]
                == json.load(open(expected))["rows"])
        assert os.path.isfile(result.markdown_path)
        assert "farm %s" % farm_spec.spec_hash in open(result.markdown_path).read()

    def test_merge_is_idempotent_at_file_level(self, farm_spec):
        work_on(farm_spec, worker="w1")
        first = merge_farm(farm_spec)
        bytes_first = open(first.stream_path, "rb").read()
        second = merge_farm(farm_spec)
        assert open(second.stream_path, "rb").read() == bytes_first
        assert (json.load(open(first.json_path))["rows"]
                == json.load(open(second.json_path))["rows"])

    def test_compact_folds_shards_into_merged_stream(self, farm_spec):
        work_on(farm_spec, worker="w1")
        result = merge_farm(farm_spec, compact=True)
        assert farm_status(farm_spec)["shards"] == 0
        again = merge_farm(farm_spec)
        assert again.complete
        assert (open(again.stream_path, "rb").read()
                == open(result.stream_path, "rb").read())

    def test_compact_refuses_while_leases_are_fresh(self, farm_spec):
        work_on(farm_spec, worker="w1")
        ph = farm_spec.points()[0].point_hash
        os.unlink(os.path.join(farm_spec.root, "done", ph))
        assert acquire_lease(farm_spec, ph, "live")
        with pytest.raises(RuntimeError, match="refusing to compact"):
            merge_farm(farm_spec, compact=True)

    def test_merge_reports_missing_points(self, farm_spec):
        work_on(farm_spec, worker="w1", max_points=2)
        result = merge_farm(farm_spec)
        assert not result.complete
        assert result.done_points == 2
        assert len(result.missing) == 2


class TestImport:
    def test_sweep_stream_imports_as_shard(self, farm_spec, serial_reference):
        stats = import_stream(farm_spec, serial_reference["stream"])
        assert stats == {"imported": 4, "outside_grid": 0}
        # The imported rows satisfy the whole queue: no work left.
        assert work_on(farm_spec, worker="w1") == 0
        result = merge_farm(farm_spec)
        assert result.complete
        assert strip_points(read_sweep_stream(result.stream_path)) \
            == strip_points(serial_reference["points"])

    def test_rows_outside_the_grid_are_skipped(
        self, tmp_path, serial_reference
    ):
        narrow = enumerate_farm(
            FARM_WORKLOAD, designs=("mesh", "dedicated"), loads=(1.0,),
            seeds=(1,), root=str(tmp_path / "narrow"), **FARM_TINY,
        )
        stats = import_stream(narrow, serial_reference["stream"])
        assert stats == {"imported": 2, "outside_grid": 2}

    def test_incompatible_stream_is_refused(self, farm_spec, tmp_path):
        other = str(tmp_path / "other.jsonl")
        run_workload_sweep(
            "VOPD", designs=("dedicated",), loads=(1.0,), seeds=(1,),
            processes=0, stream_path=other, **FARM_TINY,
        )
        with pytest.raises(ValueError, match="refusing to import"):
            import_stream(farm_spec, other)

    def test_headerless_stream_is_refused(
        self, farm_spec, serial_reference, tmp_path
    ):
        legacy = str(tmp_path / "legacy.jsonl")
        lines = open(serial_reference["stream"]).readlines()
        with open(legacy, "w") as fh:
            fh.writelines(lines[1:])
        assert read_sweep_header(legacy) is None
        with pytest.raises(ValueError, match="header"):
            import_stream(farm_spec, legacy)


class TestFarmCli:
    def test_enumerate_work_merge_status_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "farm")
        main(["farm", "enumerate", "--workload", "PIP",
              "--designs", "dedicated", "--loads", "1", "--measure", "800",
              "--root", root, "--quiet"])
        spec_dir = capsys.readouterr().out.strip()
        assert os.path.isfile(os.path.join(spec_dir, "spec.json"))
        main(["farm", "work", "--spec", spec_dir, "--root", root])
        assert "landed 1 point" in capsys.readouterr().out
        main(["farm", "merge", "--spec", spec_dir, "--root", root,
              "--expect-complete"])
        out = capsys.readouterr().out
        assert "merged 1/1 points" in out
        main(["farm", "status", "--spec", spec_dir, "--root", root,
              "--expect-complete"])
        assert "%-14s %s" % ("pending", 0) in capsys.readouterr().out

    def test_status_expect_complete_fails_on_pending(self, tmp_path, capsys):
        root = str(tmp_path / "farm")
        main(["farm", "enumerate", "--workload", "PIP",
              "--designs", "dedicated", "--loads", "1,2", "--measure", "800",
              "--root", root, "--quiet"])
        spec_dir = capsys.readouterr().out.strip()
        with pytest.raises(SystemExit, match="incomplete"):
            main(["farm", "status", "--spec", spec_dir, "--root", root,
                  "--expect-complete"])

    def test_spec_resolves_by_hash_prefix(self, tmp_path, capsys):
        root = str(tmp_path / "farm")
        main(["farm", "enumerate", "--workload", "PIP",
              "--designs", "dedicated", "--loads", "1", "--measure", "800",
              "--root", root, "--quiet"])
        spec_dir = capsys.readouterr().out.strip()
        spec_hash = os.path.basename(spec_dir)
        main(["farm", "status", "--spec", spec_hash[:8], "--root", root])
        assert spec_hash in capsys.readouterr().out
