"""Layout generation tests (Fig 8/9)."""

import dataclasses

import pytest

from repro.config import NocConfig
from repro.rtl.layout import Rect, generate_layout, tx_block_layout


class TestTxBlock:
    def test_fig8_regular_column(self):
        block = tx_block_layout(32, "tx")
        assert block.bits == 32
        xs = {x for x, _y in block.cells}
        assert xs == {0.0}  # single regular column
        ys = sorted(y for _x, y in block.cells)
        steps = {round(b - a, 6) for a, b in zip(ys, ys[1:])}
        assert len(steps) == 1  # perfectly regular pitch

    def test_height_scales_with_bits(self):
        assert tx_block_layout(64, "tx").height_um == pytest.approx(
            2 * tx_block_layout(32, "tx").height_um
        )

    def test_rx_kind(self):
        assert tx_block_layout(8, "rx").kind == "rx"

    def test_bad_args(self):
        with pytest.raises(ValueError):
            tx_block_layout(0)
        with pytest.raises(ValueError):
            tx_block_layout(8, "zz")


class TestRect:
    def test_overlap(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 1, 1))  # touching edges don't overlap

    def test_center(self):
        assert Rect(0, 0, 2, 4).center == (1.0, 2.0)


class TestNocLayout:
    def test_fig9_dimensions(self):
        layout = generate_layout(NocConfig())
        assert layout.die_w_mm == pytest.approx(4.0)
        assert layout.die_h_mm == pytest.approx(4.0)
        assert len(layout.by_kind("router")) == 16
        assert len(layout.by_kind("core")) == 16

    def test_no_overlaps(self):
        generate_layout(NocConfig()).check_no_overlaps()

    def test_network_is_small_fraction(self):
        """Routers + VLR blocks leave almost the whole tile to the core."""
        layout = generate_layout(NocConfig())
        assert layout.network_area_fraction() < 0.10

    def test_wirelength_matches_grid(self):
        layout = generate_layout(NocConfig())
        # 48 directed links x 1 mm between router centres.
        assert layout.total_link_wirelength_mm() == pytest.approx(48.0)

    def test_tx_rx_only_on_mesh_facing_sides(self):
        layout = generate_layout(NocConfig())
        # Corner router 0 has 2 neighbours -> 2 tx + 2 rx blocks.
        r0_blocks = [
            p for p in layout.placements
            if p.name.startswith(("tx_0_", "rx_0_"))
        ]
        assert len(r0_blocks) == 4

    def test_ascii_floorplan(self):
        art = generate_layout(NocConfig()).ascii_floorplan()
        assert "R0" in art and "R15" in art
        assert "4x4" in art

    def test_def_text(self):
        text = generate_layout(NocConfig()).def_text()
        assert "DIEAREA ( 0 0 ) ( 4000 4000 )" in text
        assert "END DESIGN" in text

    def test_non_square(self):
        cfg = dataclasses.replace(NocConfig(), width=2, height=3)
        layout = generate_layout(cfg)
        assert layout.die_w_mm == pytest.approx(2.0)
        assert layout.die_h_mm == pytest.approx(3.0)
        layout.check_no_overlaps()
