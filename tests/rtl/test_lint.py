"""Verilog lint self-tests: it must catch real generator bugs."""

from repro.rtl.lint import lint_verilog, strip_comments

GOOD = """
module adder (
    input [3:0] a,
    input [3:0] b,
    output [4:0] y
);
    assign y = a + b;
endmodule

module top (
    input [3:0] x,
    output [4:0] z
);
    wire [3:0] one;
    assign one = 4'd1;

    adder u0 (
        .a(x),
        .b(one),
        .y(z)
    );
endmodule
"""


class TestAcceptsGood:
    def test_clean(self):
        report = lint_verilog(GOOD)
        assert report.ok, report.errors
        assert report.modules == ["adder", "top"]


class TestCatchesBad:
    def test_missing_endmodule(self):
        bad = GOOD.replace("endmodule", "", 1)
        assert not lint_verilog(bad).ok

    def test_undeclared_identifier(self):
        bad = GOOD.replace("assign y = a + b;", "assign y = a + ghost;")
        report = lint_verilog(bad)
        assert any("ghost" in e for e in report.errors)

    def test_undefined_module_instantiated(self):
        bad = GOOD.replace("adder u0", "missing_block u0")
        report = lint_verilog(bad)
        assert any("missing_block" in e for e in report.errors)

    def test_unbalanced_begin(self):
        bad = GOOD + "\nmodule t2 (input c); always @(*) begin end begin endmodule\n"
        assert not lint_verilog(bad).ok

    def test_empty_source(self):
        assert not lint_verilog("").ok


class TestStripComments:
    def test_line_comment(self):
        assert "secret" not in strip_comments("wire a; // secret")

    def test_block_comment(self):
        assert "secret" not in strip_comments("wire /* secret */ a;")

    def test_multiline_block(self):
        text = "wire a;\n/* one\ntwo */\nwire b;"
        out = strip_comments(text)
        assert "one" not in out and "wire b;" in out

    def test_literals_ignored(self):
        source = """
module lit (input clk, output reg [63:0] v);
    always @(posedge clk) v <= 64'hdead_beef;
endmodule
"""
        report = lint_verilog(source)
        assert report.ok, report.errors
