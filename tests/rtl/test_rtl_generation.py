"""RTL generation tests: router library, NoC top, lint cleanliness."""

import dataclasses

import pytest

from repro.config import NocConfig
from repro.rtl.lint import lint_verilog
from repro.rtl.noc_gen import build_noc_netlist, build_noc_top
from repro.rtl.router_gen import build_router_library
from repro.rtl.verilog import emit_module, emit_netlist


@pytest.fixture(scope="module")
def noc_text():
    return emit_netlist(build_noc_netlist(NocConfig()), "test build")


class TestRouterLibrary:
    def test_expected_modules(self):
        netlist = build_router_library(NocConfig())
        assert set(netlist.modules) == {
            "vlr_rx", "vlr_tx", "vlr_rx_block", "vlr_tx_block", "vc_fifo",
            "rr_arbiter", "data_crossbar", "credit_crossbar",
            "bypass_input_mux", "config_reg", "smart_router",
        }

    def test_validates(self):
        build_router_library(NocConfig()).validate()

    def test_router_port_count(self):
        netlist = build_router_library(NocConfig())
        router = netlist.get("smart_router")
        # 5 ports x 6 signals + clk/rst + 3 config = 35.
        assert len(router.ports) == 35

    def test_vc_fifo_instances_per_port(self):
        netlist = build_router_library(NocConfig())
        router = netlist.get("smart_router")
        fifos = [i for i in router.instances if i.module == "vc_fifo"]
        assert len(fifos) == 5 * 2  # 5 ports x 2 VCs

    def test_two_crossbars(self):
        netlist = build_router_library(NocConfig())
        router = netlist.get("smart_router")
        xbars = [i for i in router.instances if "crossbar" in i.module]
        assert len(xbars) == 2


class TestNocTop:
    def test_sixteen_routers(self):
        top = build_noc_top(NocConfig())
        routers = [i for i in top.instances if i.module == "smart_router"]
        assert len(routers) == 16

    def test_node_ids_are_config_addresses(self):
        from repro.core.reconfiguration import DEFAULT_BASE_ADDR

        top = build_noc_top(NocConfig())
        ids = sorted(
            inst.parameters["NODE_ID"]
            for inst in top.instances
            if inst.module == "smart_router"
        )
        assert ids[0] == DEFAULT_BASE_ADDR
        assert ids[1] - ids[0] == 8

    def test_nic_ports_exposed(self):
        top = build_noc_top(NocConfig())
        names = {p.name for p in top.ports}
        for node in range(16):
            assert "nic%d_in_data" % node in names
            assert "nic%d_out_data" % node in names

    def test_non_square_mesh(self):
        cfg = dataclasses.replace(NocConfig(), width=2, height=3)
        top = build_noc_top(cfg)
        routers = [i for i in top.instances if i.module == "smart_router"]
        assert len(routers) == 6


class TestEmission:
    def test_lint_clean(self, noc_text):
        report = lint_verilog(noc_text)
        assert report.ok, report.errors

    def test_substantial_output(self, noc_text):
        assert len(noc_text.splitlines()) > 1000

    def test_modules_emitted_leaves_first(self, noc_text):
        assert noc_text.index("module vlr_rx") < noc_text.index(
            "module smart_router"
        )
        assert noc_text.index("module smart_router") < noc_text.index(
            "module smart_noc"
        )

    def test_blackbox_marker(self):
        from repro.rtl.router_gen import build_vlr_rx

        text = emit_module(build_vlr_rx())
        assert "black box" in text

    def test_parameter_override_emitted(self, noc_text):
        assert ".NODE_ID(" in noc_text
