"""Liberty (.lib) and LEF emission tests."""

import pytest

from repro.rtl.liberty import emit_lef, emit_liberty


@pytest.fixture(scope="module")
def lib_text():
    return emit_liberty(34)


@pytest.fixture(scope="module")
def lef_text():
    return emit_lef(34)


class TestLiberty:
    def test_balanced_braces(self, lib_text):
        assert lib_text.count("{") == lib_text.count("}")

    def test_cells_present(self, lib_text):
        assert "cell (vlr_tx_block_34b)" in lib_text
        assert "cell (vlr_rx_block_34b)" in lib_text
        assert "cell (fs_repeater)" in lib_text

    def test_per_bit_pins(self, lib_text):
        assert "pin (lines_in_0)" in lib_text
        assert "pin (lines_out_33)" in lib_text

    def test_vlr_faster_than_full_swing(self, lib_text):
        """Chip: 60 ps/mm VLR vs 100 ps/mm full-swing — the Tx half delay
        written for the VLR cells must be below the fs_repeater's."""
        import re

        values = [float(v) for v in re.findall(r'values \("([\d.]+)"\)', lib_text)]
        vlr = min(values)
        full = max(values)
        assert vlr < full

    def test_library_header(self, lib_text):
        assert lib_text.startswith("library (smart_45nm)")


class TestLef:
    def test_macros_present(self, lef_text):
        assert "MACRO VLR_TX_BLOCK_34B" in lef_text
        assert "MACRO VLR_RX_BLOCK_34B" in lef_text

    def test_pins_per_bit(self, lef_text):
        assert lef_text.count("PIN LINE_") == 2 * 34

    def test_sizes_match_block_layout(self, lef_text):
        from repro.rtl.layout import tx_block_layout

        block = tx_block_layout(34, "tx")
        assert ("SIZE %.3f BY %.3f ;" % (block.width_um, block.height_um)) in lef_text

    def test_ends_library(self, lef_text):
        assert lef_text.rstrip().endswith("END LIBRARY")
