"""Verilog emitter detail tests."""

import pytest

from repro.rtl.netlist import Module, Netlist, ParamDecl, PortDecl
from repro.rtl.verilog import emit_module, emit_netlist


def leaf():
    module = Module(
        "leaf",
        ports=[PortDecl("a", "input", 4), PortDecl("y", "output")],
        parameters=[ParamDecl("W", 4)],
        comment="a leaf",
    )
    module.assign("y", "|a")
    return module


class TestEmitModule:
    def test_comment_emitted(self):
        assert emit_module(leaf()).startswith("// a leaf")

    def test_parameter_block(self):
        text = emit_module(leaf())
        assert "parameter W = 4" in text

    def test_port_ranges(self):
        text = emit_module(leaf())
        assert "input [3:0] a" in text
        assert "output y" in text

    def test_assign(self):
        assert "assign y = |a;" in emit_module(leaf())

    def test_boolean_parameter_rendering(self):
        module = Module("m", parameters=[ParamDecl("EN", True)])
        assert "parameter EN = 1'b1" in emit_module(module)

    def test_portless_module(self):
        module = Module("empty")
        text = emit_module(module)
        assert "module empty ();" in text
        assert text.rstrip().endswith("endmodule")

    def test_raw_block_indented(self):
        module = Module("m")
        module.add_raw("always @(*) begin\nend")
        text = emit_module(module)
        assert "    always @(*) begin" in text

    def test_instance_emission(self):
        netlist = Netlist()
        netlist.add(leaf())
        top = Module("top", ports=[PortDecl("x", "input", 4)])
        top.wire("w")
        top.instantiate("leaf", "u0", {"a": "x", "y": "w"}, {"W": 4})
        netlist.add(top)
        text = emit_netlist(netlist)
        assert "leaf #(.W(4)) u0 (" in text
        assert ".a(x)" in text and ".y(w)" in text


class TestEmitNetlist:
    def test_header_comment(self):
        netlist = Netlist()
        netlist.add(leaf())
        text = emit_netlist(netlist, header_comment="line1\nline2")
        assert text.startswith("// line1\n// line2")

    def test_validation_runs(self):
        netlist = Netlist()
        top = Module("top")
        top.instantiate("ghost", "u0", {})
        netlist.add(top)
        with pytest.raises(ValueError):
            emit_netlist(netlist)

    def test_single_trailing_newline(self):
        netlist = Netlist()
        netlist.add(leaf())
        text = emit_netlist(netlist)
        assert text.endswith("endmodule\n")
