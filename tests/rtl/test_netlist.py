"""Netlist IR tests."""

import pytest

from repro.rtl.netlist import (
    Instance,
    Module,
    Netlist,
    ParamDecl,
    PortDecl,
    WireDecl,
    check_identifier,
)


class TestIdentifiers:
    def test_valid(self):
        assert check_identifier("u_router_0") == "u_router_0"
        assert check_identifier("_x$y") == "_x$y"

    @pytest.mark.parametrize("bad", ["9lives", "a-b", "", "a b", "café"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            check_identifier(bad)


class TestDecls:
    def test_port_range(self):
        assert PortDecl("d", "input", 32).range_str == "[31:0] "
        assert PortDecl("v", "output").range_str == ""

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            PortDecl("d", "sideways")

    def test_bad_width(self):
        with pytest.raises(ValueError):
            PortDecl("d", "input", 0)
        with pytest.raises(ValueError):
            WireDecl("w", -1)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            WireDecl("w", 1, kind="tri")


class TestModule:
    def test_duplicate_port_rejected(self):
        with pytest.raises(ValueError):
            Module("m", ports=[PortDecl("a", "input"), PortDecl("a", "output")])

    def test_wire_name_collision_with_port(self):
        module = Module("m", ports=[PortDecl("a", "input")])
        with pytest.raises(ValueError):
            module.wire("a")

    def test_builder_methods(self):
        module = Module("m")
        name = module.wire("data", 8)
        module.assign(name, "8'hff")
        assert module.wires[0].width == 8
        assert module.assigns[0].lhs == "data"


class TestNetlistValidation:
    def make_pair(self):
        netlist = Netlist()
        leaf = Module("leaf", ports=[PortDecl("a", "input"), PortDecl("y", "output")],
                      parameters=[ParamDecl("W", 1)])
        top = Module("top")
        netlist.add(leaf)
        netlist.add(top)
        return netlist, top

    def test_good_instance(self):
        netlist, top = self.make_pair()
        top.instantiate("leaf", "u0", {"a": "1'b0", "y": "w"}, {"W": 2})
        netlist.validate()

    def test_unknown_module(self):
        netlist, top = self.make_pair()
        top.instantiate("ghost", "u0", {})
        with pytest.raises(ValueError):
            netlist.validate()

    def test_unknown_port(self):
        netlist, top = self.make_pair()
        top.instantiate("leaf", "u0", {"zz": "w"})
        with pytest.raises(ValueError):
            netlist.validate()

    def test_unknown_parameter(self):
        netlist, top = self.make_pair()
        top.instantiate("leaf", "u0", {"a": "w"}, {"NOPE": 1})
        with pytest.raises(ValueError):
            netlist.validate()

    def test_duplicate_instance_name(self):
        netlist, top = self.make_pair()
        top.instantiate("leaf", "u0", {"a": "x"})
        top.instantiate("leaf", "u0", {"a": "y"})
        with pytest.raises(ValueError):
            netlist.validate()

    def test_duplicate_module_rejected(self):
        netlist = Netlist()
        netlist.add(Module("m"))
        with pytest.raises(ValueError):
            netlist.add(Module("m"))

    def test_top_candidates(self):
        netlist, top = self.make_pair()
        top.instantiate("leaf", "u0", {"a": "x", "y": "y0"})
        assert netlist.top_candidates() == ["top"]
