"""Application suite tests (§VI, Fig 10)."""

import pytest

from repro.apps.mms import MMS_SCALE
from repro.apps.registry import (
    PAPER_APP_ORDER,
    all_evaluation_task_graphs,
    app_names,
    evaluation_task_graph,
    native_task_graph,
)
from repro.config import NocConfig
from repro.sim.topology import Mesh


class TestRegistry:
    def test_paper_order(self):
        assert app_names() == [
            "H264", "MMS_DEC", "MMS_ENC", "MMS_MP3", "MWD", "VOPD", "WLAN", "PIP",
        ]

    def test_all_graphs_build(self):
        graphs = all_evaluation_task_graphs()
        assert len(graphs) == 8

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            native_task_graph("DOOM")

    def test_case_insensitive(self):
        assert native_task_graph("vopd").name == "VOPD"


class TestGraphShapes:
    @pytest.mark.parametrize("name", PAPER_APP_ORDER)
    def test_fits_4x4_mesh(self, name):
        graph = evaluation_task_graph(name)
        assert 2 <= graph.num_tasks <= 16

    @pytest.mark.parametrize("name", PAPER_APP_ORDER)
    def test_positive_bandwidths(self, name):
        graph = evaluation_task_graph(name)
        assert all(e.bandwidth_bps > 0 for e in graph.edges)

    @pytest.mark.parametrize("name", PAPER_APP_ORDER)
    def test_weakly_connected(self, name):
        graph = evaluation_task_graph(name)
        seen = {graph.tasks[0]}
        frontier = [graph.tasks[0]]
        while frontier:
            task = frontier.pop()
            for other in graph.neighbors(task):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert seen == set(graph.tasks)

    @pytest.mark.parametrize("name", PAPER_APP_ORDER)
    def test_load_feasible_at_2ghz(self, name):
        """Every flow must fit in a 32-bit 2 GHz channel (footnote 9's
        scaling keeps MMS 'reasonable')."""
        cfg = NocConfig()
        graph = evaluation_task_graph(name)
        for edge in graph.edges:
            assert cfg.flow_rate_flits_per_cycle(edge.bandwidth_bps) < 1.0


class TestMmsScaling:
    @pytest.mark.parametrize("name", ["MMS_DEC", "MMS_ENC", "MMS_MP3"])
    def test_scaled_100x(self, name):
        native = native_task_graph(name)
        scaled = evaluation_task_graph(name)
        assert scaled.total_bandwidth_bps() == pytest.approx(
            native.total_bandwidth_bps() * MMS_SCALE
        )
        assert scaled.name == name

    def test_non_mms_not_scaled(self):
        assert evaluation_task_graph("VOPD").total_bandwidth_bps() == (
            native_task_graph("VOPD").total_bandwidth_bps()
        )


class TestHubStructure:
    """§VI: H264 and MMS_MP3 have 'one core acts as a sink for most flows,
    while another acts as the source for most flows'."""

    @pytest.mark.parametrize("name", ["H264", "MMS_MP3"])
    def test_hub_source_and_sink(self, name):
        graph = evaluation_task_graph(name)
        _, fan_in = graph.max_fan_in_task()
        _, fan_out = graph.max_fan_out_task()
        assert fan_in >= 3
        assert fan_out >= 3

    @pytest.mark.parametrize("name", ["VOPD", "WLAN", "PIP"])
    def test_pipeline_apps_have_no_big_source_hub(self, name):
        graph = evaluation_task_graph(name)
        _, fan_out = graph.max_fan_out_task()
        assert fan_out <= 2
