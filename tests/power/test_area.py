"""Area model tests."""

import pytest

from repro.config import NocConfig
from repro.mapping.nmap import map_application
from repro.apps.registry import evaluation_task_graph
from repro.power.area import (
    dedicated_overhead_ratio,
    dedicated_wiring_mm,
    mesh_wiring_mm,
    noc_area_mm2,
    router_area,
)
from repro.sim.topology import Mesh


class TestRouterArea:
    def test_buffers_dominate(self, cfg):
        area = router_area(cfg)
        assert area.buffers_um2 > area.crossbar_um2
        assert area.buffers_um2 > area.config_um2

    def test_router_fits_in_tile(self, cfg):
        """Fig 9: routers + link circuits are a small fraction of the
        1 mm2 tile."""
        area = router_area(cfg)
        assert area.total_mm2 < 0.1

    def test_total_noc_area(self, cfg):
        assert noc_area_mm2(cfg) == pytest.approx(16 * router_area(cfg).total_mm2)

    def test_as_dict_keys(self, cfg):
        keys = set(router_area(cfg).as_dict())
        assert keys == {
            "buffers_um2", "crossbar_um2", "allocators_um2", "vlr_um2",
            "config_um2",
        }


class TestWiring:
    def test_mesh_wiring(self, cfg, mesh):
        # 48 directed links x 1 mm x 34 bits.
        assert mesh_wiring_mm(mesh, cfg) == pytest.approx(48 * 34.0)

    def test_dedicated_needs_wiring_per_app(self, cfg, mesh):
        graph = evaluation_task_graph("H264")
        _mapping, flows = map_application(graph, mesh)
        wiring = dedicated_wiring_mm(mesh, flows, cfg)
        assert wiring > 0

    def test_dedicated_overhead_positive(self, cfg, mesh):
        """The paper: 'While this has area overheads...' — dedicated
        point-to-point wiring is a substantial fraction of (or exceeds)
        the entire shared mesh, per application."""
        ratios = []
        for app in ("H264", "VOPD", "WLAN"):
            graph = evaluation_task_graph(app)
            _mapping, flows = map_application(graph, mesh)
            ratios.append(dedicated_overhead_ratio(mesh, flows, cfg))
        assert all(r > 0.2 for r in ratios)
