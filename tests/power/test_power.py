"""Power model tests (energy params + accounting)."""

import dataclasses

import pytest

from repro.config import NocConfig
from repro.power.accounting import PowerBreakdown, power_from_counters
from repro.power.energy import (
    VLR_LOW_SWING_FJ_PER_BIT_MM,
    EnergyParams,
)
from repro.sim.stats import EventCounters


class TestEnergyParams:
    def test_link_energy_from_table1(self, cfg):
        params = EnergyParams.default_45nm(cfg)
        # 104 fJ/b/mm x 32 bits = 3.328 pJ per flit-mm.
        assert params.link_pj_per_flit_mm == pytest.approx(
            VLR_LOW_SWING_FJ_PER_BIT_MM * 32 / 1000.0
        )

    def test_width_scaling(self):
        wide = EnergyParams.default_45nm(NocConfig())
        # Narrower flits make 16-flit packets: VCT needs deeper VCs.
        narrow_cfg = dataclasses.replace(
            NocConfig(), flit_bits=16, packet_bits=256, vc_depth_flits=16
        )
        narrow = EnergyParams.default_45nm(narrow_cfg)
        assert narrow.buffer_write_pj == pytest.approx(wide.buffer_write_pj / 2)
        assert narrow.link_pj_per_flit_mm == pytest.approx(
            wide.link_pj_per_flit_mm / 2
        )


def make_counters(**kwargs):
    counters = EventCounters(cycles=20000)
    for key, value in kwargs.items():
        setattr(counters, key, value)
    return counters


class TestAccounting:
    def test_zero_activity_zero_power(self, cfg):
        breakdown = power_from_counters(make_counters(), cfg)
        assert breakdown.total_w == 0.0

    def test_category_mapping(self, cfg):
        counters = make_counters(
            buffer_writes=1000,
            buffer_reads=1000,
            sa_requests=100,
            sa_grants=50,
            crossbar_traversals=2000,
            pipeline_latches=1500,
            link_flit_mm=4000.0,
            credit_mm=100.0,
            credit_crossbar_traversals=50,
        )
        breakdown = power_from_counters(counters, cfg)
        assert breakdown.buffer_w > 0
        assert breakdown.allocator_w > 0
        assert breakdown.xbar_w > 0
        assert breakdown.link_w > 0
        assert breakdown.total_w == pytest.approx(
            breakdown.buffer_w
            + breakdown.allocator_w
            + breakdown.xbar_w
            + breakdown.link_w
        )

    def test_hand_computed_link_power(self, cfg):
        counters = make_counters(link_flit_mm=1e6)
        breakdown = power_from_counters(counters, cfg)
        window_s = 20000 * cfg.cycle_time_s
        expected = 1e6 * 3.328e-12 / window_s
        assert breakdown.link_w == pytest.approx(expected, rel=1e-6)

    def test_link_only_mode(self, cfg):
        counters = make_counters(buffer_writes=5000, link_flit_mm=1000.0)
        full = power_from_counters(counters, cfg)
        link_only = power_from_counters(counters, cfg, link_only=True)
        assert link_only.buffer_w == 0.0
        assert link_only.link_w == pytest.approx(full.link_w)
        assert link_only.total_w < full.total_w

    def test_empty_window_rejected(self, cfg):
        with pytest.raises(ValueError):
            power_from_counters(EventCounters(), cfg)

    def test_as_dict_matches_fig10b_legend(self, cfg):
        breakdown = power_from_counters(make_counters(buffer_writes=1), cfg)
        assert list(breakdown.as_dict()) == [
            "Buffer",
            "Allocator",
            "Xbar (flit + credit) + Pipeline register",
            "Link",
        ]

    def test_scaled(self):
        breakdown = PowerBreakdown(1.0, 2.0, 3.0, 4.0)
        assert breakdown.scaled(0.5).total_w == pytest.approx(5.0)
