"""NMAP mapping algorithm tests."""

import pytest

from repro.apps.registry import evaluation_task_graph
from repro.mapping.nmap import (
    map_application,
    nmap_modified,
    nmap_original,
    random_map,
    row_major,
)
from repro.mapping.task_graph import task_graph_from_tuples
from repro.mapping.turn_model import TurnModel, is_deadlock_free
from repro.sim.topology import Mesh


def pipeline_graph(n=6):
    tasks = ["t%d" % i for i in range(n)]
    return task_graph_from_tuples(
        "pipe", [(tasks[i], tasks[i + 1], 100) for i in range(n - 1)]
    )


class TestMappingValidity:
    @pytest.mark.parametrize("mapper", [nmap_modified, nmap_original, row_major])
    def test_bijective_into_mesh(self, mapper, mesh):
        graph = pipeline_graph(10)
        mapping = mapper(graph, mesh)
        assert set(mapping) == set(graph.tasks)
        nodes = list(mapping.values())
        assert len(nodes) == len(set(nodes))
        assert all(0 <= n < 16 for n in nodes)

    def test_random_map_valid(self, mesh):
        mapping = random_map(pipeline_graph(8), mesh, seed=3)
        assert len(set(mapping.values())) == 8

    def test_too_many_tasks_rejected(self):
        graph = pipeline_graph(10)
        with pytest.raises(ValueError):
            nmap_modified(graph, Mesh(3, 3))


class TestPaperHeuristic:
    def test_hottest_task_mapped_to_center(self, mesh):
        """§VI: highest-demand task goes to the most-connected core."""
        graph = evaluation_task_graph("VOPD")
        mapping = nmap_modified(graph, mesh)
        hottest = max(graph.tasks, key=lambda t: (graph.comm_demand(t), t))
        assert mapping[hottest] in {5, 6, 9, 10}

    def test_deterministic(self, mesh):
        graph = evaluation_task_graph("H264")
        assert nmap_modified(graph, mesh) == nmap_modified(graph, mesh)

    def test_adjacent_pipeline_stages_placed_close(self, mesh):
        graph = pipeline_graph(8)
        mapping = nmap_modified(graph, mesh)
        distances = [
            mesh.hop_distance(mapping["t%d" % i], mapping["t%d" % (i + 1)])
            for i in range(7)
        ]
        assert sum(distances) / len(distances) <= 1.5

    def test_modified_beats_row_major_on_hops(self, mesh):
        graph = evaluation_task_graph("VOPD")

        def weighted_hops(mapping):
            return sum(
                edge.bandwidth_bps
                * mesh.hop_distance(mapping[edge.src], mapping[edge.dst])
                for edge in graph.edges
            )

        assert weighted_hops(nmap_modified(graph, mesh)) < weighted_hops(
            row_major(graph, mesh)
        )


class TestMapApplication:
    def test_full_flow(self, mesh):
        graph = evaluation_task_graph("PIP")
        mapping, flows = map_application(graph, mesh)
        assert len(flows) == graph.num_edges
        assert is_deadlock_free(mesh, flows)
        for flow, edge in zip(flows, graph.edges):
            assert flow.src == mapping[edge.src]
            assert flow.dst == mapping[edge.dst]
            assert flow.bandwidth_bps == edge.bandwidth_bps

    def test_unknown_algorithm_rejected(self, mesh):
        with pytest.raises(ValueError):
            map_application(pipeline_graph(4), mesh, algorithm="magic")

    def test_all_algorithms_produce_routable_flows(self, mesh):
        graph = evaluation_task_graph("MWD")
        for algorithm in ("nmap_modified", "nmap_original", "row_major", "random"):
            _mapping, flows = map_application(graph, mesh, algorithm=algorithm)
            for flow in flows:
                assert flow.hops(mesh) == mesh.hop_distance(flow.src, flow.dst)

    def test_turn_model_honoured(self, mesh):
        from repro.mapping.turn_model import path_legal

        graph = evaluation_task_graph("VOPD")
        _mapping, flows = map_application(graph, mesh, turn_model=TurnModel.XY)
        for flow in flows:
            assert path_legal(TurnModel.XY, flow.route)
