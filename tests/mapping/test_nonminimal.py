"""Non-minimal routing tests (§VI extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NocConfig
from repro.core.noc_builder import build_smart_noc
from repro.mapping.nonminimal import (
    enumerate_paths_with_detours,
    legal_routes_with_detours,
    select_routes_nonminimal,
)
from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.turn_model import TurnModel, is_deadlock_free
from repro.sim.topology import Mesh, Port
from repro.sim.traffic import ScriptedTraffic


class TestEnumeration:
    def test_zero_detour_equals_minimal(self, mesh):
        paths = enumerate_paths_with_detours(mesh, 0, 15, max_detour_hops=0)
        assert all(len(p) == 6 for p in paths)
        assert len(paths) == 20  # C(6,3)

    def test_detours_add_longer_paths(self, mesh):
        minimal = enumerate_paths_with_detours(mesh, 0, 3, 0)
        detoured = enumerate_paths_with_detours(mesh, 0, 3, 2)
        assert len(detoured) > len(minimal)
        assert {len(p) for p in detoured} == {3, 5}

    def test_paths_are_simple(self, mesh):
        for path in enumerate_paths_with_detours(mesh, 0, 5, 4):
            nodes = [0]
            for direction in path:
                nodes.append(mesh.neighbor(nodes[-1], direction))
            assert len(nodes) == len(set(nodes))

    def test_shortest_first(self, mesh):
        paths = enumerate_paths_with_detours(mesh, 0, 1, 2)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_bad_args(self, mesh):
        with pytest.raises(ValueError):
            enumerate_paths_with_detours(mesh, 3, 3)
        with pytest.raises(ValueError):
            enumerate_paths_with_detours(mesh, 0, 1, max_detour_hops=-1)

    def test_legal_routes_obey_model(self, mesh):
        from repro.mapping.turn_model import path_legal

        for route in legal_routes_with_detours(mesh, 0, 15, TurnModel.WEST_FIRST, 2):
            assert route[-1] is Port.CORE
            assert path_legal(TurnModel.WEST_FIRST, route)


class TestDetoursRemoveStops:
    def test_nested_flows_become_conflict_free(self):
        """Flow A 0->3 and flow B 1->2 share link 1->2 minimally; a free
        2-hop detour for B makes both single-cycle."""
        cfg = NocConfig()
        mesh = Mesh(4, 4)
        placed = [
            PlacedFlow(0, 0, 3, 100.0),
            PlacedFlow(1, 1, 2, 50.0),
        ]
        minimal = select_routes(mesh, placed)
        detoured = select_routes_nonminimal(mesh, placed, max_detour_hops=2)

        noc_min = build_smart_noc(cfg, minimal, traffic=ScriptedTraffic([]))
        noc_det = build_smart_noc(cfg, detoured, traffic=ScriptedTraffic([]))
        min_stops = sum(
            len(noc_min.network.stops_for_flow(f)) for f in minimal
        )
        det_stops = sum(
            len(noc_det.network.stops_for_flow(f)) for f in detoured
        )
        assert min_stops > 0
        assert det_stops == 0

    def test_detour_actually_single_cycle(self):
        """End to end: the detoured flows really deliver in one cycle."""
        cfg = NocConfig()
        mesh = Mesh(4, 4)
        placed = [PlacedFlow(0, 0, 3, 100.0), PlacedFlow(1, 1, 2, 50.0)]
        flows = select_routes_nonminimal(mesh, placed, max_detour_hops=2)
        noc = build_smart_noc(
            cfg, flows, traffic=ScriptedTraffic([(1, 0), (1, 1)])
        )
        noc.network.stats.measuring = True
        noc.network.run_cycles(40)
        for packet in noc.network.stats.measured_delivered:
            assert packet.head_latency == 1

    def test_no_detour_when_no_conflict(self, mesh):
        placed = [PlacedFlow(0, 0, 15, 1.0)]
        flows = select_routes_nonminimal(mesh, placed, max_detour_hops=2)
        assert flows[0].hops(mesh) == 6  # stays minimal

    def test_detours_respect_hpc_budget(self, mesh):
        placed = [PlacedFlow(0, 0, 15, 1.0)]
        flows = select_routes_nonminimal(
            mesh, placed, max_detour_hops=4, hpc_max=8
        )
        assert flows[0].hops(mesh) <= 8


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_nonminimal_routes_deadlock_free(data):
    """Detoured route sets still keep the CDG acyclic (turn-model
    legality is checked pairwise, which covers non-minimal paths)."""
    mesh = Mesh(4, 4)
    n = data.draw(st.integers(1, 8), label="n")
    placed = []
    for i in range(n):
        src = data.draw(st.integers(0, 15), label="src%d" % i)
        dst = data.draw(
            st.integers(0, 15).filter(lambda d: d != src), label="dst%d" % i
        )
        placed.append(PlacedFlow(i, src, dst, float(i + 1)))
    flows = select_routes_nonminimal(mesh, placed, max_detour_hops=2)
    assert is_deadlock_free(mesh, flows)
