"""Turn model and deadlock-freedom tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.turn_model import (
    TurnModel,
    channel_dependency_graph,
    enumerate_minimal_paths,
    is_deadlock_free,
    legal_minimal_routes,
    path_legal,
    turn_allowed,
)
from repro.sim.flow import Flow
from repro.sim.topology import Mesh, Port


class TestTurnRules:
    def test_uturns_never_allowed(self):
        for model in TurnModel:
            for direction in (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH):
                assert not turn_allowed(model, direction, direction.opposite)

    def test_straight_always_allowed(self):
        for model in TurnModel:
            for direction in (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH):
                assert turn_allowed(model, direction, direction)

    def test_xy_prohibits_y_to_x(self):
        assert not turn_allowed(TurnModel.XY, Port.NORTH, Port.EAST)
        assert not turn_allowed(TurnModel.XY, Port.SOUTH, Port.WEST)
        assert turn_allowed(TurnModel.XY, Port.EAST, Port.NORTH)

    def test_west_first_prohibits_turns_into_west(self):
        assert not turn_allowed(TurnModel.WEST_FIRST, Port.NORTH, Port.WEST)
        assert not turn_allowed(TurnModel.WEST_FIRST, Port.SOUTH, Port.WEST)
        assert turn_allowed(TurnModel.WEST_FIRST, Port.WEST, Port.NORTH)

    def test_north_last_prohibits_turns_out_of_north(self):
        assert not turn_allowed(TurnModel.NORTH_LAST, Port.NORTH, Port.EAST)
        assert not turn_allowed(TurnModel.NORTH_LAST, Port.NORTH, Port.WEST)
        assert turn_allowed(TurnModel.NORTH_LAST, Port.EAST, Port.NORTH)

    def test_negative_first(self):
        assert not turn_allowed(TurnModel.NEGATIVE_FIRST, Port.NORTH, Port.WEST)
        assert not turn_allowed(TurnModel.NEGATIVE_FIRST, Port.EAST, Port.SOUTH)
        assert turn_allowed(TurnModel.NEGATIVE_FIRST, Port.WEST, Port.NORTH)

    def test_core_turn_rejected(self):
        with pytest.raises(ValueError):
            turn_allowed(TurnModel.XY, Port.CORE, Port.EAST)


class TestPathEnumeration:
    def test_count_is_binomial(self, mesh):
        # 0 -> 15: 3 east + 3 north = C(6,3) = 20 minimal orderings.
        assert len(enumerate_minimal_paths(mesh, 0, 15)) == 20

    def test_straight_line_single_path(self, mesh):
        assert len(enumerate_minimal_paths(mesh, 0, 3)) == 1

    def test_xy_admits_exactly_one(self, mesh):
        for src, dst in ((0, 15), (12, 3), (5, 10)):
            assert len(legal_minimal_routes(mesh, src, dst, TurnModel.XY)) == 1

    def test_west_first_admits_more_than_xy(self, mesh):
        xy = legal_minimal_routes(mesh, 0, 15, TurnModel.XY)
        wf = legal_minimal_routes(mesh, 0, 15, TurnModel.WEST_FIRST)
        assert len(wf) > len(xy)

    def test_all_routes_end_with_core(self, mesh):
        for route in legal_minimal_routes(mesh, 0, 15, TurnModel.WEST_FIRST):
            assert route[-1] is Port.CORE

    def test_path_legal(self):
        assert path_legal(TurnModel.XY, (Port.EAST, Port.NORTH))
        assert not path_legal(TurnModel.XY, (Port.NORTH, Port.EAST))

    def test_enumeration_is_capped_not_factorial(self):
        # 30-hop pair on a 16x16 mesh: C(30,15) ~ 155M interleavings,
        # but enumeration must stop at the cap (and return quickly).
        from repro.mapping.turn_model import MAX_MINIMAL_PATHS

        mesh = Mesh(16, 16)
        paths = enumerate_minimal_paths(mesh, 255, 0)
        assert len(paths) == MAX_MINIMAL_PATHS

    @pytest.mark.parametrize("model", list(TurnModel))
    def test_long_paths_keep_a_legal_route_despite_the_cap(self, model):
        """On a 16x16 mesh a west+south (or east+south) pair's only
        legal ordering can sort past the enumeration cap; the canonical
        fallback must still yield a legal minimal route."""
        mesh = Mesh(16, 16)
        for src, dst in ((255, 0), (240, 15), (0, 255), (15, 240)):
            routes = legal_minimal_routes(mesh, src, dst, model)
            assert routes
            for route in routes:
                assert path_legal(model, route[:-1])
                assert route[-1] is Port.CORE
                Flow(0, src, dst, 1.0, route).routers(mesh)  # mesh-legal


class TestDeadlockFreedom:
    def test_cyclic_routes_detected(self, mesh):
        # Four flows forming a ring: 0->1->5->4->0 dependencies.
        flows = [
            Flow(0, 0, 5, 1.0, (Port.EAST, Port.NORTH, Port.CORE)),
            Flow(1, 1, 4, 1.0, (Port.NORTH, Port.WEST, Port.CORE)),
            Flow(2, 5, 0, 1.0, (Port.WEST, Port.SOUTH, Port.CORE)),
            Flow(3, 4, 1, 1.0, (Port.SOUTH, Port.EAST, Port.CORE)),
        ]
        assert not is_deadlock_free(mesh, flows)

    def test_xy_routes_always_deadlock_free(self, mesh):
        from repro.sim.flow import xy_route

        flows = [
            Flow(i, src, dst, 1.0, xy_route(mesh, src, dst))
            for i, (src, dst) in enumerate(
                (s, d) for s in mesh.nodes() for d in mesh.nodes() if s != d
            )
        ]
        assert is_deadlock_free(mesh, flows)

    def test_cdg_nodes_are_links(self, mesh):
        flows = [Flow(0, 0, 2, 1.0, (Port.EAST, Port.EAST, Port.CORE))]
        graph = channel_dependency_graph(mesh, flows)
        assert set(graph.nodes) == {(0, 1), (1, 2)}
        assert list(graph.edges) == [((0, 1), (1, 2))]


@settings(max_examples=60, deadline=None)
@given(data=st.data(), model=st.sampled_from(list(TurnModel)))
def test_property_turn_model_routes_are_deadlock_free(data, model):
    """Any single choice of legal minimal route per random flow keeps the
    channel dependency graph acyclic — the Glass-Ni guarantee."""
    mesh = Mesh(4, 4)
    n_flows = data.draw(st.integers(1, 12), label="n_flows")
    flows = []
    for i in range(n_flows):
        src = data.draw(st.integers(0, 15), label="src%d" % i)
        dst = data.draw(
            st.integers(0, 15).filter(lambda d: d != src), label="dst%d" % i
        )
        routes = legal_minimal_routes(mesh, src, dst, model)
        route = data.draw(st.sampled_from(routes), label="route%d" % i)
        flows.append(Flow(i, src, dst, 1.0, route))
    assert is_deadlock_free(mesh, flows)
