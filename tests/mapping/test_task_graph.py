"""Task graph data structure tests."""

import pytest

from repro.mapping.task_graph import MB, TaskEdge, TaskGraph, task_graph_from_tuples


def small_graph():
    return task_graph_from_tuples(
        "toy",
        [("a", "b", 100), ("b", "c", 50), ("a", "c", 25)],
    )


class TestConstruction:
    def test_tasks_inferred(self):
        graph = small_graph()
        assert graph.tasks == ("a", "b", "c")
        assert graph.num_edges == 3

    def test_bandwidth_units(self):
        graph = small_graph()
        assert graph.edges[0].bandwidth_bps == pytest.approx(100 * MB)

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph("bad", ["a", "b"], [
                TaskEdge("a", "b", 1.0), TaskEdge("a", "b", 2.0)])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            TaskEdge("a", "a", 1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            TaskEdge("a", "b", 0.0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph("bad", ["a"], [TaskEdge("a", "zz", 1.0)])

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph("bad", ["a", "a"], [])


class TestQueries:
    def test_comm_demand(self):
        graph = small_graph()
        assert graph.comm_demand("a") == pytest.approx(125 * MB)
        assert graph.comm_demand("b") == pytest.approx(150 * MB)

    def test_neighbors(self):
        graph = small_graph()
        assert set(graph.neighbors("a")) == {"b", "c"}

    def test_bandwidth_between_both_directions(self):
        graph = task_graph_from_tuples(
            "bi", [("a", "b", 10), ("b", "a", 5)]
        )
        assert graph.bandwidth_between("a", "b") == pytest.approx(15 * MB)

    def test_degrees_and_hubs(self):
        graph = task_graph_from_tuples(
            "hub",
            [("src", "x", 1), ("src", "y", 1), ("src", "z", 1),
             ("x", "sink", 1), ("y", "sink", 1)],
        )
        assert graph.max_fan_out_task() == ("src", 3)
        assert graph.max_fan_in_task() == ("sink", 2)

    def test_total_bandwidth(self):
        assert small_graph().total_bandwidth_bps() == pytest.approx(175 * MB)

    def test_adjacency_symmetric(self):
        adj = small_graph().adjacency()
        assert adj["a"]["b"] == adj["b"]["a"]


class TestScaling:
    def test_scaled_preserves_structure(self):
        graph = small_graph().scaled(100.0)
        assert graph.num_tasks == 3
        assert graph.edges[0].bandwidth_bps == pytest.approx(100 * 100 * MB)

    def test_scaled_name(self):
        assert small_graph().scaled(2.0).name == "toy_x2"
        assert small_graph().scaled(2.0, name="kept").name == "kept"

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            small_graph().scaled(0.0)
