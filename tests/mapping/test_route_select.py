"""Route selection tests: conflict-minimising minimal routes."""

from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.turn_model import TurnModel, is_deadlock_free
from repro.sim.topology import Mesh


class TestSelectRoutes:
    def test_returns_one_route_per_flow_in_order(self, mesh):
        placed = [
            PlacedFlow(0, 0, 15, 100.0),
            PlacedFlow(1, 3, 12, 50.0),
        ]
        flows = select_routes(mesh, placed)
        assert [f.flow_id for f in flows] == [0, 1]
        for flow, p in zip(flows, placed):
            assert flow.src == p.src and flow.dst == p.dst
            assert flow.hops(mesh) == mesh.hop_distance(p.src, p.dst)

    def test_avoids_shared_links_when_possible(self, mesh):
        """Two parallel flows with alternate minimal routes should not
        share any link (a shared link means two forced stops)."""
        placed = [
            PlacedFlow(0, 0, 5, 100.0),   # 0->5: E,N or N,E
            PlacedFlow(1, 4, 1, 100.0),   # 4->1: E,S or S,E
        ]
        flows = select_routes(mesh, placed, model=TurnModel.WEST_FIRST)
        links0 = set(flows[0].links(mesh))
        links1 = set(flows[1].links(mesh))
        assert not links0 & links1

    def test_xy_model_reduces_to_xy(self, mesh):
        from repro.sim.flow import xy_route

        placed = [PlacedFlow(0, 0, 15, 1.0), PlacedFlow(1, 12, 3, 1.0)]
        flows = select_routes(mesh, placed, model=TurnModel.XY)
        for flow, p in zip(flows, placed):
            assert flow.route == xy_route(mesh, p.src, p.dst)

    def test_selected_routes_deadlock_free(self, mesh):
        import random

        rng = random.Random(0)
        placed = []
        for i in range(20):
            src = rng.randrange(16)
            dst = rng.randrange(16)
            while dst == src:
                dst = rng.randrange(16)
            placed.append(PlacedFlow(i, src, dst, rng.uniform(1, 100)))
        flows = select_routes(mesh, placed, model=TurnModel.WEST_FIRST)
        assert is_deadlock_free(mesh, flows)

    def test_heavy_flows_routed_first_get_clean_paths(self, mesh):
        # The heavy flow should keep a conflict-free route even when a
        # light competitor is declared first.
        placed = [
            PlacedFlow(0, 0, 5, 1.0),
            PlacedFlow(1, 1, 4, 1000.0),
        ]
        flows = select_routes(mesh, placed, model=TurnModel.WEST_FIRST)
        links0 = set(flows[0].links(mesh))
        links1 = set(flows[1].links(mesh))
        assert not links0 & links1

    def test_names_preserved(self, mesh):
        placed = [PlacedFlow(0, 0, 1, 1.0, name="a->b")]
        assert select_routes(mesh, placed)[0].name == "a->b"
