"""Pinned-task mapping tests (heterogeneous SoC scenario, §VI)."""

import pytest

from repro.apps.registry import evaluation_task_graph
from repro.mapping.nmap import nmap_modified
from repro.sim.topology import Mesh


class TestPins:
    def test_pins_are_honoured(self, mesh):
        graph = evaluation_task_graph("VOPD")
        pins = {"vld": 0, "vop_mem": 15}
        mapping = nmap_modified(graph, mesh, pinned=pins)
        assert mapping["vld"] == 0
        assert mapping["vop_mem"] == 15
        assert len(set(mapping.values())) == graph.num_tasks

    def test_unknown_task_rejected(self, mesh):
        graph = evaluation_task_graph("PIP")
        with pytest.raises(ValueError):
            nmap_modified(graph, mesh, pinned={"ghost": 0})

    def test_core_out_of_mesh_rejected(self, mesh):
        graph = evaluation_task_graph("PIP")
        with pytest.raises(ValueError):
            nmap_modified(graph, mesh, pinned={"hs": 99})

    def test_double_pin_rejected(self, mesh):
        graph = evaluation_task_graph("PIP")
        with pytest.raises(ValueError):
            nmap_modified(graph, mesh, pinned={"hs": 0, "vs": 0})

    def test_no_pins_matches_default(self, mesh):
        graph = evaluation_task_graph("MWD")
        assert nmap_modified(graph, mesh) == nmap_modified(graph, mesh, pinned={})

    def test_adversarial_pins_lengthen_paths(self, mesh):
        graph = evaluation_task_graph("VOPD")
        free = nmap_modified(graph, mesh)
        hottest = sorted(graph.tasks, key=lambda t: (-graph.comm_demand(t), t))
        pinned = nmap_modified(
            graph, mesh, pinned={hottest[0]: 0, hottest[1]: 15}
        )

        def weighted_hops(mapping):
            return sum(
                edge.bandwidth_bps
                * mesh.hop_distance(mapping[edge.src], mapping[edge.dst])
                for edge in graph.edges
            )

        assert weighted_hops(pinned) > weighted_hops(free)
