"""CLI behavior of ``repro lint`` plus the clean-tree gate."""

from __future__ import annotations

import os

import pytest

from repro.__main__ import main as repro_main
from repro.analysis import check_paths
from repro.analysis.cli import run_lint

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

BAD_SNIPPET = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


def test_src_repro_tree_is_clean():
    """The acceptance gate: the checker runs clean on src/repro."""
    src = os.path.join(REPO_ROOT, "src", "repro")
    findings = check_paths([src])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_violating_file_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "sim" / "network.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_SNIPPET)
    code = run_lint([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "network.py" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    good = tmp_path / "src" / "repro" / "sim" / "network.py"
    good.parent.mkdir(parents=True)
    good.write_text("X = 1\n")
    assert run_lint([str(good)]) == 0
    assert capsys.readouterr().out == ""


def test_directory_walk_finds_nested_violations(tmp_path):
    sim = tmp_path / "repro" / "sim"
    sim.mkdir(parents=True)
    (sim / "__init__.py").write_text("")
    bad = sim / "network.py"
    bad.write_text(BAD_SNIPPET)
    findings = check_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["DET001"]


def test_missing_path_exits_2(capsys):
    assert run_lint(["no/such/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_unknown_rule_exits_2(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("X = 1\n")
    assert run_lint([str(target)], rules=["NOP999"]) == 2
    assert "NOP999" in capsys.readouterr().err


def test_list_rules(capsys):
    assert run_lint([], list_rules=True) == 0
    out = capsys.readouterr().out
    for rule_id in ("RNG001", "DET001", "CNT001", "ORD001", "CHN001",
                    "API001"):
        assert rule_id in out


def test_repro_main_lint_subcommand(tmp_path):
    good = tmp_path / "clean.py"
    good.write_text("X = 1\n")
    # Clean run returns normally; violations raise SystemExit(1).
    repro_main(["lint", str(good)])
    bad = tmp_path / "src" / "repro" / "sim" / "network.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_SNIPPET)
    with pytest.raises(SystemExit) as excinfo:
        repro_main(["lint", str(bad)])
    assert excinfo.value.code == 1


def test_relative_to_rebases_reported_paths(tmp_path):
    bad = tmp_path / "src" / "repro" / "sim" / "network.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_SNIPPET)
    findings = check_paths([str(bad)], relative_to=str(tmp_path))
    assert findings[0].path == os.path.join("src", "repro", "sim",
                                            "network.py")
