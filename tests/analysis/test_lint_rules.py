"""Fixture-driven tests: every checker rule, good and bad snippets.

Each rule gets at least one passing snippet and two failing snippets,
run through :func:`repro.analysis.check_source` with a synthetic path
that routes the snippet into the rule's scope.  Suppression-comment
semantics get their own section.
"""

from __future__ import annotations

import textwrap

from repro.analysis import BARE_SUPPRESSION_RULE, RULES, check_source
from repro.analysis.core import _load_builtin_rules


def lint(source, path, rule):
    """Run one rule over a dedented snippet; return finding rule ids."""
    findings = check_source(
        textwrap.dedent(source), path=path, rules=[rule]
    )
    return [f.rule for f in findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        _load_builtin_rules()
        assert set(RULES) >= {
            "RNG001", "DET001", "CNT001", "ORD001", "CHN001", "API001"
        }
        for rule in RULES.values():
            assert rule.rule_id and rule.summary and rule.rationale

    def test_unknown_rule_id_rejected(self):
        try:
            check_source("x = 1\n", path="src/repro/sim/x.py",
                         rules=["NOP999"])
        except ValueError as exc:
            assert "NOP999" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_syntax_error_reported_as_parse_finding(self):
        findings = check_source("def broken(:\n", path="src/repro/sim/x.py")
        assert [f.rule for f in findings] == ["PARSE"]


class TestRng001:
    PATH = "src/repro/sim/traffic.py"

    def test_seeded_random_instance_passes(self):
        src = """
            import random

            def draws(seed):
                rng = random.Random(seed)
                return [rng.random() for _ in range(4)]
        """
        assert lint(src, self.PATH, "RNG001") == []

    def test_module_level_draw_fails(self):
        src = """
            import random

            def draw():
                return random.randint(0, 7)
        """
        assert lint(src, self.PATH, "RNG001") == ["RNG001"]

    def test_global_seed_call_fails(self):
        src = """
            import random

            def reseed(seed):
                random.seed(seed)
        """
        assert lint(src, self.PATH, "RNG001") == ["RNG001"]

    def test_from_import_draw_fails(self):
        src = """
            from random import shuffle

            def mix(items):
                shuffle(items)
        """
        assert lint(src, self.PATH, "RNG001") == ["RNG001"]

    def test_numpy_global_draw_fails(self):
        src = """
            import numpy as np

            def draw():
                return np.random.rand()
        """
        assert lint(src, self.PATH, "RNG001") == ["RNG001"]

    def test_seeded_default_rng_passes_unseeded_fails(self):
        good = """
            import numpy as np

            def gen(seed):
                return np.random.default_rng(seed)
        """
        bad = """
            import numpy as np

            def gen():
                return np.random.default_rng()
        """
        assert lint(good, self.PATH, "RNG001") == []
        assert lint(bad, self.PATH, "RNG001") == ["RNG001"]

    def test_out_of_scope_module_ignored(self):
        src = """
            import random

            def draw():
                return random.random()
        """
        assert lint(src, "src/repro/circuits/link_design.py",
                    "RNG001") == []


class TestDet001:
    PATH = "src/repro/sim/network.py"

    def test_clean_simulation_code_passes(self):
        src = """
            def advance(cycle, table, segment):
                entry = table[segment.key]
                return cycle + entry
        """
        assert lint(src, self.PATH, "DET001") == []

    def test_wall_clock_fails(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert lint(src, self.PATH, "DET001") == ["DET001"]

    def test_os_urandom_fails(self):
        src = """
            import os

            def entropy():
                return os.urandom(8)
        """
        assert lint(src, self.PATH, "DET001") == ["DET001"]

    def test_id_as_key_fails(self):
        src = """
            def index(table, segment):
                return table[id(segment)]
        """
        assert lint(src, self.PATH, "DET001") == ["DET001"]

    def test_raw_hash_fails(self):
        src = """
            def bucket(key, n):
                return hash(key) % n
        """
        assert lint(src, self.PATH, "DET001") == ["DET001"]


class TestCnt001:
    PATH = "src/repro/sim/stats.py"

    def test_integral_arithmetic_passes(self):
        src = """
            def settle(counters, flits, hops):
                counters.buffer_writes += flits
                counters.crossbar_traversals += flits * hops
                half = flits // 2
                counters.buffer_reads += half
        """
        assert lint(src, self.PATH, "CNT001") == []

    def test_true_division_fails(self):
        src = """
            def settle(counters, flits):
                counters.buffer_reads += flits / 2
        """
        assert lint(src, self.PATH, "CNT001") == ["CNT001"]

    def test_float_cast_fails(self):
        src = """
            def settle(counters, flits):
                counters.sa_grants = float(flits)
        """
        assert lint(src, self.PATH, "CNT001") == ["CNT001"]

    def test_float_literal_fails(self):
        src = """
            def reset(counters):
                counters.credit_events = 0.0
        """
        assert lint(src, self.PATH, "CNT001") == ["CNT001"]

    def test_mm_counter_allows_float_literal_but_not_division(self):
        good = """
            def settle(counters, hops, pitch):
                counters.link_flit_mm += hops * pitch
        """
        bad = """
            def settle(counters, hops):
                counters.link_flit_mm += hops / 2
        """
        assert lint(good, self.PATH, "CNT001") == []
        assert lint(bad, self.PATH, "CNT001") == ["CNT001"]

    def test_non_counter_names_unconstrained(self):
        src = """
            def ratio(hits, total):
                share = hits / total
                return share
        """
        assert lint(src, self.PATH, "CNT001") == []


class TestOrd001:
    PATH = "src/repro/sim/network.py"

    def test_sorted_iteration_passes(self):
        src = """
            def scan(net):
                for node in sorted(net.active):
                    net.visit(node)
        """
        assert lint(src, self.PATH, "ORD001") == []

    def test_for_over_set_fails(self):
        src = """
            def scan(nodes):
                live = set(nodes)
                for node in live:
                    print(node)
        """
        assert lint(src, self.PATH, "ORD001") == ["ORD001"]

    def test_list_of_set_fails(self):
        src = """
            def snapshot(nodes):
                live = {n for n in nodes if n}
                return list(live)
        """
        assert lint(src, self.PATH, "ORD001") == ["ORD001"]

    def test_comprehension_over_set_attribute_fails(self):
        src = """
            from typing import Set

            class Net:
                def __init__(self):
                    self.active: Set[int] = set()

                def labels(self):
                    return [str(n) for n in self.active]
        """
        assert lint(src, self.PATH, "ORD001") == ["ORD001"]

    def test_dict_keys_iteration_fails(self):
        src = """
            def scan(table):
                for key in table.keys():
                    print(key)
        """
        assert lint(src, self.PATH, "ORD001") == ["ORD001"]

    def test_order_insensitive_reducer_passes(self):
        src = """
            def total(nodes):
                live = set(nodes)
                return sum(n for n in live)
        """
        assert lint(src, self.PATH, "ORD001") == []

    def test_non_hot_module_ignored(self):
        src = """
            def scan(nodes):
                for node in set(nodes):
                    print(node)
        """
        assert lint(src, "src/repro/sim/traffic.py", "ORD001") == []


class TestChn001:
    PATH = "src/repro/sim/network.py"

    def test_batched_settlement_passes(self):
        src = """
            class _FooChain:
                def advance(self, through):
                    count = through - self.next_send + 1
                    counters = self.net.counters
                    counters.buffer_reads += count
        """
        assert lint(src, self.PATH, "CHN001") == []

    def test_counter_write_outside_advance_fails(self):
        src = """
            class _FooChain:
                def __init__(self, net):
                    net.counters.buffer_reads += 1
        """
        assert lint(src, self.PATH, "CHN001") == ["CHN001"]

    def test_helper_method_write_fails(self):
        src = """
            class _FooChain:
                def poke(self):
                    self.net.counters.sa_grants += 2
        """
        assert lint(src, self.PATH, "CHN001") == ["CHN001"]

    def test_overwrite_inside_advance_fails(self):
        src = """
            class _FooChain:
                def advance(self, through):
                    self.net.counters.buffer_reads = through
        """
        assert lint(src, self.PATH, "CHN001") == ["CHN001"]

    def test_non_chain_class_unconstrained(self):
        src = """
            class Network:
                def step(self):
                    self.counters.buffer_reads += 1
        """
        assert lint(src, self.PATH, "CHN001") == []


class TestApi001:
    PATH = "src/repro/workloads.py"

    def test_documented_annotated_surface_passes(self):
        src = '''
            """Module docstring."""

            def build(name: str, seed: int = 0) -> dict:
                """Build a workload."""
                return {"name": name, "seed": seed}

            class Workload:
                """A workload."""

                def describe(self) -> str:
                    """Label."""
                    return "w"
        '''
        assert lint(src, self.PATH, "API001") == []

    def test_missing_docstring_fails(self):
        src = """
            def build(name: str) -> dict:
                return {"name": name}
        """
        assert lint(src, self.PATH, "API001") == ["API001"]

    def test_missing_annotations_fail(self):
        src = '''
            def build(name, seed):
                """Build a workload."""
                return (name, seed)
        '''
        findings = lint(src, self.PATH, "API001")
        # no return annotation + two unannotated parameters
        assert findings == ["API001", "API001", "API001"]

    def test_private_names_exempt(self):
        src = """
            def _helper(x):
                return x

            class _Hidden:
                def poke(self, y):
                    return y
        """
        assert lint(src, self.PATH, "API001") == []

    def test_out_of_scope_module_ignored(self):
        src = """
            def build(name):
                return name
        """
        assert lint(src, "src/repro/sim/traffic.py", "API001") == []


class TestSuppression:
    PATH = "src/repro/sim/network.py"

    BAD = """
        import time

        def stamp():
            return time.time()
    """

    def test_justified_inline_marker_suppresses(self):
        src = """
            import time

            def stamp():
                return time.time()  # repro-lint: ok DET001 -- log only
        """
        assert lint(src, self.PATH, "DET001") == []

    def test_justified_standalone_marker_covers_next_line(self):
        src = """
            import time

            def stamp():
                # repro-lint: ok DET001 -- feeds the progress log only,
                # never simulation state
                return time.time()
        """
        assert lint(src, self.PATH, "DET001") == []

    def test_unjustified_marker_reports_sup001(self):
        src = """
            import time

            def stamp():
                return time.time()  # repro-lint: ok DET001
        """
        assert lint(src, self.PATH, "DET001") == [BARE_SUPPRESSION_RULE]

    def test_marker_for_other_rule_does_not_suppress(self):
        src = """
            import time

            def stamp():
                return time.time()  # repro-lint: ok ORD001 -- wrong rule
        """
        assert lint(src, self.PATH, "DET001") == ["DET001"]

    def test_marker_inside_string_literal_is_inert(self):
        src = '''
            import time

            MARKER = "# repro-lint: ok DET001 -- not a comment"

            def stamp():
                return time.time()
        '''
        assert lint(src, self.PATH, "DET001") == ["DET001"]

    def test_unsuppressed_snippet_fails(self):
        assert lint(self.BAD, self.PATH, "DET001") == ["DET001"]

    def test_comma_separated_rules_all_suppressed(self):
        src = """
            import time

            def stamp(table, segment):
                # repro-lint: ok DET001, ORD001 -- diagnostics only
                return time.time()
        """
        assert lint(src, self.PATH, "DET001") == []
