"""NocConfig validation and derived-quantity tests."""

import dataclasses

import pytest

from repro.config import TABLE_II_CONFIG, NocConfig


class TestTableII:
    def test_paper_defaults(self):
        cfg = TABLE_II_CONFIG
        assert cfg.width == 4 and cfg.height == 4
        assert cfg.flit_bits == 32
        assert cfg.packet_bits == 256
        assert cfg.vcs_per_port == 2
        assert cfg.vc_depth_flits == 10
        assert cfg.credit_bits == 2
        assert cfg.head_header_bits == 20
        assert cfg.body_header_bits == 4
        assert cfg.freq_hz == pytest.approx(2e9)
        assert cfg.vdd == pytest.approx(0.9)
        assert cfg.technology_nm == 45
        assert cfg.hpc_max == 8

    def test_derived(self):
        cfg = TABLE_II_CONFIG
        assert cfg.num_nodes == 16
        assert cfg.flits_per_packet == 8
        assert cfg.cycle_time_s == pytest.approx(0.5e-9)
        assert cfg.min_credit_bits == 2


class TestValidation:
    def test_packet_must_divide_into_flits(self):
        with pytest.raises(ValueError):
            NocConfig(packet_bits=250)

    def test_vc_depth_must_hold_packet(self):
        # Virtual cut-through requirement (§IV).
        with pytest.raises(ValueError):
            NocConfig(vc_depth_flits=7)

    def test_credit_width_must_cover_vcs(self):
        with pytest.raises(ValueError):
            NocConfig(vcs_per_port=4, credit_bits=2)
        NocConfig(vcs_per_port=4, credit_bits=3)  # ok

    def test_dimensions(self):
        with pytest.raises(ValueError):
            NocConfig(width=0)
        with pytest.raises(ValueError):
            NocConfig(height=-1)

    def test_hpc_max_positive(self):
        with pytest.raises(ValueError):
            NocConfig(hpc_max=0)

    def test_vcs_positive(self):
        with pytest.raises(ValueError):
            NocConfig(vcs_per_port=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TABLE_II_CONFIG.width = 8


class TestRates:
    def test_flit_rate(self):
        cfg = NocConfig()
        # 8 GB/s saturates the 32-bit 2 GHz channel.
        assert cfg.flow_rate_flits_per_cycle(8e9) == pytest.approx(1.0)

    def test_packet_rate(self):
        cfg = NocConfig()
        assert cfg.flow_rate_packets_per_cycle(8e9) == pytest.approx(1.0 / 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NocConfig().flow_rate_flits_per_cycle(-1.0)

    def test_scaling_with_frequency(self):
        slow = dataclasses.replace(NocConfig(), freq_hz=1e9)
        fast = NocConfig()
        assert slow.flow_rate_flits_per_cycle(1e9) == pytest.approx(
            2 * fast.flow_rate_flits_per_cycle(1e9)
        )
