"""Unit tests for the CI benchmark-regression gate."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "check_regression.py"
)


@pytest.fixture(scope="module")
def _checker_module():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def checker(_checker_module, monkeypatch):
    # When the suite itself runs under GitHub Actions, main() would
    # otherwise append the fake tables below to the real job summary.
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    return _checker_module


ENV = {
    "platform": "Linux-test", "machine": "x86_64",
    "cpu_count": 8, "python": "3.11.7",
}


def _bench(rate, event_rate=None, env=ENV, cycles=12000, speedup=None):
    doc = {
        "bench": "kernel_speed",
        "cycles": cycles,
        "smart_uniform": {"active_cycles_per_sec": rate},
        "environment": dict(env),
    }
    if event_rate is not None:
        doc["smart_uniform"]["event_cycles_per_sec"] = event_rate
    if speedup is not None:
        doc["smart_uniform"]["event_speedup_vs_active"] = speedup
    return doc


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestRateDiscovery:
    def test_iter_rates_finds_nested_metrics(self, checker):
        doc = _bench(1000.0, event_rate=2000.0)
        doc["top_cycles_per_sec"] = 5.0
        rates = dict(checker.iter_rates(doc))
        assert rates == {
            "smart_uniform.active_cycles_per_sec": 1000.0,
            "smart_uniform.event_cycles_per_sec": 2000.0,
            "top_cycles_per_sec": 5.0,
        }

    def test_iter_speedups_finds_ratio_metrics(self, checker):
        doc = _bench(1000.0, speedup=1.59)
        assert dict(checker.iter_speedups(doc)) == {
            "smart_uniform.event_speedup_vs_active": 1.59,
        }

    def test_environment_comparison(self, checker):
        other = dict(ENV, cpu_count=4)
        assert "cpu_count" in checker.MACHINE_KEYS
        assert checker.comparable_machines(_bench(1.0), _bench(1.0))
        assert not checker.comparable_machines(
            _bench(1.0), _bench(1.0, env=other)
        )
        assert not checker.comparable_machines({}, _bench(1.0))

    def test_missing_cpu_count_is_not_comparable(self, checker):
        """Stamps that both omit cpu_count must not match on None ==
        None: a single-core runner would gate absolute rates against a
        multi-core baseline."""
        stripped = {k: v for k, v in ENV.items() if k != "cpu_count"}
        assert not checker.comparable_machines(
            _bench(1.0, env=stripped), _bench(1.0, env=stripped)
        )
        assert not checker.comparable_machines(
            _bench(1.0), _bench(1.0, env=stripped)
        )
        assert not checker.comparable_machines(
            _bench(1.0, env=stripped), _bench(1.0)
        )

    def test_run_length_joins_comparability(self, checker):
        """Short-mode rates (fewer simulated cycles) never gate against
        long-run baselines, even on the same machine."""
        assert checker.comparable_runs(_bench(1.0), _bench(1.0))
        assert not checker.comparable_runs(
            _bench(1.0), _bench(1.0, cycles=6000)
        )


class TestGate:
    def test_ok_within_threshold(self, checker, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        fresh = _write(tmp_path, "fresh.json", _bench(800.0))
        assert checker.main([baseline, fresh, "--threshold", "0.30"]) == 0
        out = capsys.readouterr().out
        assert "| ok |" in out

    def test_regression_beyond_threshold_fails(self, checker, tmp_path):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        fresh = _write(tmp_path, "fresh.json", _bench(600.0))
        assert checker.main([baseline, fresh, "--threshold", "0.30"]) == 1

    def test_cross_machine_regression_only_warns(
        self, checker, tmp_path, capsys
    ):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        fresh = _write(
            tmp_path, "fresh.json",
            _bench(100.0, env=dict(ENV, platform="Darwin-test")),
        )
        assert checker.main([baseline, fresh, "--threshold", "0.30"]) == 0
        out = capsys.readouterr().out
        assert "cross-machine" in out
        assert "regressed" in out  # still reported in the table

    def test_short_mode_rate_drop_only_warns(self, checker, tmp_path):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        fresh = _write(
            tmp_path, "fresh.json", _bench(600.0, cycles=6000)
        )
        assert checker.main([baseline, fresh, "--threshold", "0.30"]) == 0

    def test_speedup_regression_enforced_cross_machine(
        self, checker, tmp_path
    ):
        """Kernel speedup ratios transfer across hardware, so a >30%
        ratio collapse fails even when rates are warn-only."""
        baseline = _write(
            tmp_path, "base.json", _bench(1000.0, speedup=1.6)
        )
        fresh = _write(
            tmp_path, "fresh.json",
            _bench(950.0, speedup=1.0,
                   env=dict(ENV, platform="Darwin-test"), cycles=6000),
        )
        assert checker.main([baseline, fresh, "--threshold", "0.30"]) == 1

    def test_missing_metric_fails_even_cross_machine(
        self, checker, tmp_path
    ):
        baseline = _write(
            tmp_path, "base.json", _bench(1000.0, event_rate=2000.0)
        )
        fresh = _write(
            tmp_path, "fresh.json",
            _bench(1000.0, env=dict(ENV, platform="Darwin-test")),
        )
        assert checker.main([baseline, fresh]) == 1

    def test_summary_file_receives_table(self, checker, tmp_path):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        fresh = _write(tmp_path, "fresh.json", _bench(990.0))
        summary = tmp_path / "summary.md"
        assert checker.main(
            [baseline, fresh, "--summary", str(summary)]
        ) == 0
        text = summary.read_text()
        assert "| metric |" in text
        assert "smart_uniform.active_cycles_per_sec" in text

    def test_odd_file_count_is_usage_error(self, checker, tmp_path):
        baseline = _write(tmp_path, "base.json", _bench(1000.0))
        with pytest.raises(SystemExit) as exc:
            checker.main([baseline])
        assert exc.value.code == 2
