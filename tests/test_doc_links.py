"""Unit tests for the docs dead-link checker (tools/check_doc_links.py)."""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "tools", "check_doc_links.py"
)
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return str(path)


class TestCheckFile:
    def test_good_links_pass(self, checker, tmp_path):
        write(tmp_path, "docs/other.md", "# Target Section\nbody\n")
        doc = write(
            tmp_path, "docs/index.md",
            "# Index\n"
            "[file](other.md) and [anchor](other.md#target-section)\n"
            "[self](#index) and [up](../docs/other.md)\n",
        )
        assert checker.check_file(doc, str(tmp_path)) == []

    def test_missing_file_reported(self, checker, tmp_path):
        doc = write(tmp_path, "docs/index.md", "[gone](nowhere.md)\n")
        ((path, target, reason),) = checker.check_file(doc, str(tmp_path))
        assert target == "nowhere.md"
        assert reason == "missing file"

    def test_missing_anchor_reported(self, checker, tmp_path):
        write(tmp_path, "docs/other.md", "# Only Heading\n")
        doc = write(
            tmp_path, "docs/index.md", "[bad](other.md#renamed-away)\n"
        )
        ((_, target, reason),) = checker.check_file(doc, str(tmp_path))
        assert target == "other.md#renamed-away"
        assert reason == "missing anchor"

    def test_fenced_examples_ignored(self, checker, tmp_path):
        doc = write(
            tmp_path, "docs/index.md",
            "```\n[example](missing.md)\n```\n"
            "and `[inline](also_missing.md)` code\n",
        )
        assert checker.check_file(doc, str(tmp_path)) == []

    def test_external_and_out_of_repo_skipped(self, checker, tmp_path):
        doc = write(
            tmp_path, "docs/index.md",
            "[site](https://example.com/x.md)\n"
            "[mail](mailto:a@b.c)\n"
            "[badge](../../actions/workflows/ci.yml/badge.svg)\n",
        )
        assert checker.check_file(doc, str(tmp_path)) == []

    def test_duplicate_headings_get_suffixed_anchors(self, checker, tmp_path):
        target = write(
            tmp_path, "docs/other.md", "# Same\ntext\n# Same\nmore\n"
        )
        assert checker.heading_anchors(target) == {"same", "same-1"}
        doc = write(tmp_path, "docs/index.md", "[second](other.md#same-1)\n")
        assert checker.check_file(doc, str(tmp_path)) == []

    def test_code_span_headings_slug_like_github(self, checker, tmp_path):
        target = write(
            tmp_path, "docs/api.md", "## `repro.sim.stats` reference\n"
        )
        assert "reprosimstats-reference" in checker.heading_anchors(target)


class TestRepoDocs:
    def test_committed_docs_have_no_dead_links(self, checker):
        """The real repo's README/docs/results must stay link-clean —
        the same invocation CI runs."""
        targets = checker.default_targets(_ROOT)
        assert targets  # README + docs/*.md at minimum
        problems = []
        for path in targets:
            problems.extend(checker.check_file(path, _ROOT))
        assert problems == []
