"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.config import NocConfig
from repro.eval.designs import build_design
from repro.eval.scenarios import fig7_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import RateScaledTraffic
from repro.workloads import build_seed_for, build_workload


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seeds",
        type=int,
        default=20,
        help="number of randomized seeds for the cross-kernel "
        "equivalence fuzzer (tests/sim/test_kernel_fuzz.py); CI widens "
        "this to >= 100",
    )


def pytest_generate_tests(metafunc):
    if "fuzz_seed" in metafunc.fixturenames:
        count = metafunc.config.getoption("--fuzz-seeds")
        metafunc.parametrize(
            "fuzz_seed", range(count), ids=lambda s: "seed%d" % s
        )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Append a repro command for each failed fuzz case.

    When ``SMART_FUZZ_REPRO_FILE`` is set (the CI fuzz job points it at
    an artifact path), every failing test whose id carries a fuzz seed
    gets one ready-to-run pytest command line appended, so a red CI run
    ships its own reproducers.
    """
    outcome = yield
    report = outcome.get_result()
    path = os.environ.get("SMART_FUZZ_REPRO_FILE")
    if not path or report.when != "call" or not report.failed:
        return
    if "fuzz_seed" not in getattr(item, "fixturenames", ()):
        return
    seeds = item.config.getoption("--fuzz-seeds")
    with open(path, "a") as fh:
        fh.write(
            "PYTHONPATH=src python -m pytest '%s' --fuzz-seeds %d\n"
            % (item.nodeid, seeds)
        )


@pytest.fixture
def cfg() -> NocConfig:
    """The paper's Table II configuration."""
    return NocConfig()


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def fig7_flow_set():
    return fig7_flows()


def kernel_traffic_mode(kernel: str) -> str:
    """The traffic mode each kernel is equivalence-tested with.

    The legacy kernel polls ``packets_at`` every cycle, so it pairs
    with the literal one-draw-per-cycle mode; the event-driven kernels
    pair with the bit-identical pre-drawn schedule.
    """
    return "legacy" if kernel == "legacy" else "predraw"


@pytest.fixture
def make_workload():
    """Factory: registry name -> BuiltWorkload, with the seed rule the
    sweep layer uses (seed-insensitive workloads always build seed 0)."""

    def factory(name, cfg, seed: int = 0):
        return build_workload(name, cfg, seed=build_seed_for(name, seed))

    return factory


@pytest.fixture
def make_network():
    """Factory: (BuiltWorkload, cfg, design, kernel, ...) -> simulator.

    Builds any of the paper's three designs over the workload's routed
    flows with a rate-scaled traffic model whose mode follows the
    kernel (see :func:`kernel_traffic_mode`).  Returns the
    ``DesignInstance`` — ``.network`` is the Network/DedicatedNetwork,
    ``.run(...)`` runs it.
    """

    def factory(built, cfg, design="smart", kernel="active", load=1.0,
                seed=1):
        traffic = RateScaledTraffic(
            cfg, built.flows, scale=load, seed=seed,
            mode=kernel_traffic_mode(kernel),
        )
        return build_design(
            design, cfg, built.flows, traffic=traffic, kernel=kernel
        )

    return factory


@pytest.fixture
def run_design(make_network):
    """Factory: build a design, run it, return a comparable tuple.

    The tuple covers everything the kernel-equivalence suites compare:
    latency summaries, per-flow summaries, event counters, the
    simulated window and drain status.
    """

    def factory(built, cfg, design, kernel, load, seed, **run_kwargs):
        result = make_network(
            built, cfg, design=design, kernel=kernel, load=load, seed=seed
        ).run(**run_kwargs)
        return (
            result.summary,
            result.per_flow,
            result.counters,
            result.measured_cycles,
            result.total_cycles,
            result.drained,
            result.undelivered_measured,
        )

    return factory
