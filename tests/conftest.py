"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import NocConfig
from repro.eval.scenarios import fig7_flows
from repro.sim.flow import Flow
from repro.sim.topology import Mesh, Port


@pytest.fixture
def cfg() -> NocConfig:
    """The paper's Table II configuration."""
    return NocConfig()


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def fig7_flow_set():
    return fig7_flows()
