"""Synthetic traffic-pattern library tests (destination distributions)."""

import collections

import pytest

from repro.config import NocConfig
from repro.sim.flow import validate_flow_set
from repro.sim.patterns import (
    BACKGROUND_FRACTION,
    PATTERNS,
    bandwidth_for_injection_rate,
    pattern_pairs,
    synthetic_flows,
)
from repro.sim.topology import Mesh


class TestRateConversion:
    def test_round_trips_through_config(self, cfg):
        bw = bandwidth_for_injection_rate(cfg, 0.125)
        assert cfg.flow_rate_packets_per_cycle(bw) == pytest.approx(0.125)

    def test_negative_rate_rejected(self, cfg):
        with pytest.raises(ValueError):
            bandwidth_for_injection_rate(cfg, -0.1)


class TestDestinations:
    def test_transpose_swaps_coordinates(self):
        cfg = NocConfig(width=4, height=4)
        mesh = Mesh(4, 4)
        flows = synthetic_flows("transpose", cfg, injection_rate=0.01)
        assert len(flows) == 12  # 16 nodes minus the 4 diagonal ones
        for flow in flows:
            x, y = mesh.coords(flow.src)
            assert mesh.coords(flow.dst) == (y, x)

    def test_transpose_needs_square_mesh(self):
        cfg = NocConfig(width=4, height=2)
        with pytest.raises(ValueError):
            synthetic_flows("transpose", cfg, injection_rate=0.01)

    def test_bit_complement_reflects_both_axes(self):
        cfg = NocConfig(width=5, height=3)
        mesh = Mesh(5, 3)
        flows = synthetic_flows("bit_complement", cfg, injection_rate=0.01)
        assert len(flows) == 14  # 15 nodes minus the centre fixed point
        for flow in flows:
            x, y = mesh.coords(flow.src)
            assert mesh.coords(flow.dst) == (4 - x, 2 - y)

    def test_hotspot_all_point_at_hotspot(self):
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.01,
                                hotspot_node=5)
        assert len(flows) == 15
        assert {f.dst for f in flows} == {5}
        assert 5 not in {f.src for f in flows}

    def test_hotspot_defaults_to_central_node(self):
        cfg = NocConfig(width=4, height=4)
        mesh = Mesh(4, 4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.01)
        assert {f.dst for f in flows} == {mesh.center_nodes()[0]}

    def test_uniform_every_node_sources_once(self):
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=7)
        assert sorted(f.src for f in flows) == list(range(16))
        assert all(f.src != f.dst for f in flows)

    def test_uniform_destinations_spread_over_mesh(self):
        """Across many seeds, each node should be drawn as a destination
        roughly uniformly (1/15 of draws on a 4x4 mesh)."""
        cfg = NocConfig(width=4, height=4)
        counts = collections.Counter()
        draws = 0
        for seed in range(60):
            for flow in synthetic_flows("uniform", cfg, injection_rate=0.01,
                                        seed=seed):
                counts[flow.dst] += 1
                draws += 1
        assert set(counts) == set(range(16))
        expected = draws / 16
        for node, count in counts.items():
            assert count == pytest.approx(expected, rel=0.5), node

    def test_uniform_deterministic_per_seed(self):
        cfg = NocConfig(width=4, height=4)
        a = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=3)
        b = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=3)
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]


class TestPermutationPatterns:
    """shuffle / bit_reverse are permutations on power-of-two meshes."""

    @pytest.mark.parametrize("pattern", ("shuffle", "bit_reverse"))
    @pytest.mark.parametrize("dims", ((4, 4), (8, 8), (4, 2)))
    def test_permutation_on_power_of_two_meshes(self, pattern, dims):
        width, height = dims
        mesh = Mesh(width, height)
        pairs = pattern_pairs(pattern, mesh)
        srcs = [s for s, _d, _w in pairs]
        dsts = [d for _s, d, _w in pairs]
        # A bijection minus its fixed points: sources and destinations
        # are the same node set, each appearing exactly once.
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)
        assert set(srcs) == set(dsts)
        assert all(s != d for s, d, _w in pairs)

    def test_shuffle_rotates_index_bits(self):
        mesh = Mesh(8, 8)  # 64 nodes, 6 index bits
        for src, dst, _w in pattern_pairs("shuffle", mesh):
            assert dst == ((src << 1) | (src >> 5)) & 63

    def test_bit_reverse_is_an_involution(self):
        mesh = Mesh(8, 8)
        forward = {s: d for s, d, _w in pattern_pairs("bit_reverse", mesh)}
        for src, dst in forward.items():
            assert forward[dst] == src

    @pytest.mark.parametrize("pattern", ("shuffle", "bit_reverse"))
    def test_non_power_of_two_mesh_rejected(self, pattern):
        cfg = NocConfig(width=3, height=3)
        with pytest.raises(ValueError, match="power-of-two"):
            synthetic_flows(pattern, cfg, injection_rate=0.01)


class TestBackgroundHotspot:
    def test_splits_per_node_rate_between_components(self, cfg):
        """Every node sources the full per-node rate, split between the
        uniform background and the hotspot overlay (the hotspot node
        itself only sources background)."""
        mesh = Mesh(cfg.width, cfg.height)
        hotspot = mesh.center_nodes()[0]
        flows = synthetic_flows("background_hotspot", cfg,
                                injection_rate=0.1, seed=2)
        per_src = collections.defaultdict(float)
        for flow in flows:
            per_src[flow.src] += cfg.flow_rate_packets_per_cycle(
                flow.bandwidth_bps
            )
        for node in mesh.nodes():
            expected = 0.1 if node != hotspot else 0.1 * BACKGROUND_FRACTION
            assert per_src[node] == pytest.approx(expected), node

    def test_component_weights(self):
        mesh = Mesh(4, 4)
        hotspot = mesh.center_nodes()[0]
        weights = {w for _s, _d, w in pattern_pairs("background_hotspot", mesh)}
        assert weights == {BACKGROUND_FRACTION, 1.0 - BACKGROUND_FRACTION}
        overlay = [
            (s, d) for s, d, w in pattern_pairs("background_hotspot", mesh)
            if w == 1.0 - BACKGROUND_FRACTION
        ]
        assert {d for _s, d in overlay} == {hotspot}
        assert len(overlay) == mesh.num_nodes - 1

    @pytest.mark.parametrize("fraction", (0.0, 1.0, -0.5, 1.5))
    def test_bad_background_fraction_rejected(self, fraction):
        with pytest.raises(ValueError, match="background fraction"):
            pattern_pairs("background_hotspot", Mesh(4, 4),
                          background_fraction=fraction)

    def test_background_follows_seed(self):
        mesh = Mesh(4, 4)
        one = pattern_pairs("background_hotspot", mesh, seed=1)
        two = pattern_pairs("background_hotspot", mesh, seed=2)
        assert one != two


class TestFlowSets:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_flow_sets_are_mesh_legal(self, pattern):
        cfg = NocConfig(width=8, height=8)
        flows = synthetic_flows(pattern, cfg, injection_rate=0.02)
        validate_flow_set(flows, Mesh(8, 8))

    @pytest.mark.parametrize(
        "pattern", [p for p in PATTERNS if p != "background_hotspot"]
    )
    def test_rates_match_request(self, pattern, cfg):
        flows = synthetic_flows(pattern, cfg, injection_rate=0.05)
        for flow in flows:
            assert cfg.flow_rate_packets_per_cycle(
                flow.bandwidth_bps
            ) == pytest.approx(0.05)

    def test_unknown_pattern_rejected(self, cfg):
        with pytest.raises(ValueError):
            synthetic_flows("butterfly", cfg, injection_rate=0.01)

    def test_bad_hotspot_node_rejected(self, cfg):
        with pytest.raises(ValueError):
            synthetic_flows("hotspot", cfg, injection_rate=0.01,
                            hotspot_node=99)
