"""Synthetic traffic-pattern library tests (destination distributions)."""

import collections

import pytest

from repro.config import NocConfig
from repro.sim.flow import validate_flow_set
from repro.sim.patterns import (
    PATTERNS,
    bandwidth_for_injection_rate,
    synthetic_flows,
)
from repro.sim.topology import Mesh


class TestRateConversion:
    def test_round_trips_through_config(self, cfg):
        bw = bandwidth_for_injection_rate(cfg, 0.125)
        assert cfg.flow_rate_packets_per_cycle(bw) == pytest.approx(0.125)

    def test_negative_rate_rejected(self, cfg):
        with pytest.raises(ValueError):
            bandwidth_for_injection_rate(cfg, -0.1)


class TestDestinations:
    def test_transpose_swaps_coordinates(self):
        cfg = NocConfig(width=4, height=4)
        mesh = Mesh(4, 4)
        flows = synthetic_flows("transpose", cfg, injection_rate=0.01)
        assert len(flows) == 12  # 16 nodes minus the 4 diagonal ones
        for flow in flows:
            x, y = mesh.coords(flow.src)
            assert mesh.coords(flow.dst) == (y, x)

    def test_transpose_needs_square_mesh(self):
        cfg = NocConfig(width=4, height=2)
        with pytest.raises(ValueError):
            synthetic_flows("transpose", cfg, injection_rate=0.01)

    def test_bit_complement_reflects_both_axes(self):
        cfg = NocConfig(width=5, height=3)
        mesh = Mesh(5, 3)
        flows = synthetic_flows("bit_complement", cfg, injection_rate=0.01)
        assert len(flows) == 14  # 15 nodes minus the centre fixed point
        for flow in flows:
            x, y = mesh.coords(flow.src)
            assert mesh.coords(flow.dst) == (4 - x, 2 - y)

    def test_hotspot_all_point_at_hotspot(self):
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.01,
                                hotspot_node=5)
        assert len(flows) == 15
        assert {f.dst for f in flows} == {5}
        assert 5 not in {f.src for f in flows}

    def test_hotspot_defaults_to_central_node(self):
        cfg = NocConfig(width=4, height=4)
        mesh = Mesh(4, 4)
        flows = synthetic_flows("hotspot", cfg, injection_rate=0.01)
        assert {f.dst for f in flows} == {mesh.center_nodes()[0]}

    def test_uniform_every_node_sources_once(self):
        cfg = NocConfig(width=4, height=4)
        flows = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=7)
        assert sorted(f.src for f in flows) == list(range(16))
        assert all(f.src != f.dst for f in flows)

    def test_uniform_destinations_spread_over_mesh(self):
        """Across many seeds, each node should be drawn as a destination
        roughly uniformly (1/15 of draws on a 4x4 mesh)."""
        cfg = NocConfig(width=4, height=4)
        counts = collections.Counter()
        draws = 0
        for seed in range(60):
            for flow in synthetic_flows("uniform", cfg, injection_rate=0.01,
                                        seed=seed):
                counts[flow.dst] += 1
                draws += 1
        assert set(counts) == set(range(16))
        expected = draws / 16
        for node, count in counts.items():
            assert count == pytest.approx(expected, rel=0.5), node

    def test_uniform_deterministic_per_seed(self):
        cfg = NocConfig(width=4, height=4)
        a = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=3)
        b = synthetic_flows("uniform", cfg, injection_rate=0.01, seed=3)
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]


class TestFlowSets:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_flow_sets_are_mesh_legal(self, pattern):
        cfg = NocConfig(width=8, height=8)
        flows = synthetic_flows(pattern, cfg, injection_rate=0.02)
        validate_flow_set(flows, Mesh(8, 8))

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_rates_match_request(self, pattern, cfg):
        flows = synthetic_flows(pattern, cfg, injection_rate=0.05)
        for flow in flows:
            assert cfg.flow_rate_packets_per_cycle(
                flow.bandwidth_bps
            ) == pytest.approx(0.05)

    def test_unknown_pattern_rejected(self, cfg):
        with pytest.raises(ValueError):
            synthetic_flows("butterfly", cfg, injection_rate=0.01)

    def test_bad_hotspot_node_rejected(self, cfg):
        with pytest.raises(ValueError):
            synthetic_flows("hotspot", cfg, injection_rate=0.01,
                            hotspot_node=99)
