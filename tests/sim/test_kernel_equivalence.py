"""Active-set kernel vs legacy kernel: results must be identical.

The active-set kernel skips provably-idle routers, NICs and cycles; these
tests pin down that the optimisation is unobservable — identical latency
summaries, event counters, and per-packet timestamps on scripted and
Bernoulli workloads, across mesh and SMART designs.
"""

import pytest

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.eval.designs import build_design
from repro.eval.scenarios import fig7_flows
from repro.mapping.nmap import map_application
from repro.apps.registry import evaluation_task_graph
from repro.sim.patterns import synthetic_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, ScriptedTraffic


def _app_flows(app, cfg):
    graph = evaluation_task_graph(app)
    _mapping, flows = map_application(
        graph, Mesh(cfg.width, cfg.height), algorithm="nmap_modified", seed=1
    )
    return flows


class TestScriptedEquivalence:
    def test_fig7_per_packet_latencies_identical(self, cfg):
        results = {}
        for kernel in ("legacy", "active"):
            flows = fig7_flows()
            schedule = [(1, f.flow_id) for f in flows]
            noc = build_smart_noc(
                cfg, flows, traffic=ScriptedTraffic(schedule), kernel=kernel
            )
            noc.network.stats.measuring = True
            noc.network.run_cycles(200)
            results[kernel] = {
                p.flow_id: (p.create_cycle, p.inject_cycle,
                            p.head_arrive_cycle, p.tail_arrive_cycle)
                for p in noc.network.stats.measured_delivered
            }
            results[kernel, "counters"] = noc.network.counters
        assert results["legacy"] == results["active"]
        assert results["legacy", "counters"] == results["active", "counters"]

    def test_fig7_active_kernel_keeps_single_cycle_paths(self, cfg):
        flows = fig7_flows()
        noc = build_smart_noc(
            cfg, flows, traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
            kernel="active",
        )
        noc.network.stats.measuring = True
        noc.network.run_cycles(200)
        by_name = {
            flows[p.flow_id].name: p.head_latency
            for p in noc.network.stats.measured_delivered
        }
        assert by_name["green"] == 1
        assert by_name["purple"] == 1


class TestBernoulliEquivalence:
    @pytest.mark.parametrize("design", ["mesh", "smart"])
    @pytest.mark.parametrize("app", ["PIP", "VOPD"])
    def test_app_runs_identical(self, cfg, app, design):
        flows = _app_flows(app, cfg)
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("active", "predraw")):
            traffic = BernoulliTraffic(cfg, flows, seed=1, mode=mode)
            instance = build_design(
                design, cfg, flows, traffic=traffic, kernel=kernel
            )
            r = instance.run(
                warmup_cycles=200, measure_cycles=2000, drain_limit=20000
            )
            results[kernel] = (r.summary, r.per_flow, r.counters,
                               r.total_cycles, r.drained)
        assert results["legacy"] == results["active"]

    def test_saturated_run_identical_and_survives(self, cfg):
        """Past saturation (clamped flows) both kernels agree and neither
        crashes — the sweep regression that motivated the clamp fix."""
        flows = _app_flows("PIP", cfg)
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("active", "predraw")):
            traffic = RateScaledTraffic(cfg, flows, scale=1024.0, seed=1, mode=mode)
            assert traffic.clamped_rates, "scale 1024 should clamp some flow"
            instance = build_design(
                "mesh", cfg, flows, traffic=traffic, kernel=kernel
            )
            r = instance.run(
                warmup_cycles=100, measure_cycles=1000, drain_limit=500
            )
            results[kernel] = (r.summary, r.counters, r.drained)
        assert results["legacy"] == results["active"]

    def test_synthetic_pattern_runs_identical(self):
        cfg = NocConfig(width=6, height=6)
        flows = synthetic_flows("bit_complement", cfg, injection_rate=0.01)
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("active", "predraw")):
            traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
            noc = build_mesh_noc(cfg, flows, traffic=traffic, kernel=kernel)
            noc.network.stats.measuring = True
            noc.network.run_cycles(3000)
            results[kernel] = (
                noc.network.stats.summary(),
                noc.network.counters,
            )
        assert results["legacy"] == results["active"]


class TestKernelSelection:
    def test_unknown_kernel_rejected(self, cfg, fig7_flow_set):
        with pytest.raises(ValueError):
            build_smart_noc(
                cfg, fig7_flow_set,
                traffic=ScriptedTraffic([]), kernel="warp",
            )

    def test_idle_network_gates_every_router(self, cfg, fig7_flow_set):
        """With no traffic the active kernel must report zero clocked
        router-cycles while still counting total router-cycles."""
        noc = build_smart_noc(
            cfg, fig7_flow_set, traffic=ScriptedTraffic([]), kernel="active"
        )
        noc.network.run_cycles(500)
        assert noc.network.counters.clock_router_cycles == 0
        assert noc.network.counters.total_router_cycles == 500 * 16
