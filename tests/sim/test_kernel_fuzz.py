"""Cross-kernel equivalence fuzzer: legacy == active == event, always.

Every kernel change inherits this harness: each seed draws a random
mesh size, workload/pattern, load point, VC count, packet length and
HPC_max (small HPC_max values force deep hand-off cascades through the
event kernel's feeder-ordered settlement), runs all three kernels over
the identical scenario and asserts bit-identity of every event counter,
the latency summaries, per-flow summaries and drain status.

The batched legs additionally draw a batch size (2-8) and assert that
:func:`repro.sim.batch.run_batched` — the lockstep multi-seed engine
for event-kernel lanes, the generic driver for Dedicated — reproduces
every per-seed result bit-identically against serial runs.

The seed count defaults to 20 and widens via the ``--fuzz-seeds``
pytest option (see ``tests/conftest.py``); CI runs ``--fuzz-seeds 100``
and uploads one ready-to-run repro command per failing seed as a job
artifact (``SMART_FUZZ_REPRO_FILE``).

To reproduce one failing seed locally::

    PYTHONPATH=src python -m pytest \
        'tests/sim/test_kernel_fuzz.py::test_mesh_smart_kernels_bit_identical[seed7]'
"""

import dataclasses
import math
import random

from repro.config import NocConfig
from repro.eval.designs import build_design
from repro.sim.batch import BatchedEventNetworks, run_batched
from repro.sim.traffic import RateScaledTraffic
from repro.workloads import build_seed_for, build_workload

#: Kernels under test; ``legacy`` is the behavioural reference.
FUZZ_KERNELS = ("legacy", "active", "event")


def draw_case(fuzz_seed: int, dedicated: bool = False) -> dict:
    """One randomized scenario, fully determined by the seed."""
    rng = random.Random(0xF0 + fuzz_seed)
    width = rng.randint(2, 6)
    height = rng.randint(2, 6)
    nodes = width * height
    pool = ["uniform", "hotspot", "bit_complement", "background_hotspot"]
    if width == height:
        pool.append("transpose")
    if nodes & (nodes - 1) == 0:
        pool.extend(["shuffle", "bit_reverse"])
    vcs = rng.choice([1, 2, 3])
    cfg = NocConfig(
        width=width,
        height=height,
        vcs_per_port=vcs,
        credit_bits=max(1, math.ceil(math.log2(vcs))) + 1,
        packet_bits=rng.choice([32, 64, 256]),
        hpc_max=rng.choice([1, 2, 3, 8]),
    )
    return {
        "cfg": cfg,
        "pattern": rng.choice(pool),
        "design": "dedicated" if dedicated else rng.choice(["smart", "mesh"]),
        "load": round(rng.uniform(0.005, 0.25), 4),
        "traffic_seed": rng.randint(1, 999),
        "run": dict(
            warmup_cycles=rng.choice([0, 60, 137]),
            measure_cycles=rng.choice([400, 611]),
            drain_limit=6000,
        ),
    }


def run_case(case: dict, kernel: str):
    cfg = case["cfg"]
    built = build_workload(
        case["pattern"], cfg,
        seed=build_seed_for(case["pattern"], case["traffic_seed"]),
    )
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=case["load"], seed=case["traffic_seed"],
        mode="legacy" if kernel == "legacy" else "predraw",
        arrival=case.get("arrival", "bernoulli"),
        arrival_params=case.get("arrival_params"),
    )
    instance = build_design(
        case["design"], cfg, built.flows, traffic=traffic, kernel=kernel
    )
    result = instance.run(**case["run"])
    return result


def assert_identical(case: dict, reference, candidate, kernel: str) -> None:
    """Per-counter bit-identity with a self-describing failure.

    ``summary`` equality covers the latency histogram bucket-for-bucket
    (dataclass equality recurses into ``LatencySummary.histogram``);
    ``per_tenant`` and ``node_delivered_flits`` extend the contract to
    the tenant and per-node bandwidth accounting.
    """
    ref_counters = dataclasses.asdict(reference.counters)
    cand_counters = dataclasses.asdict(candidate.counters)
    for name, ref_value in ref_counters.items():
        assert cand_counters[name] == ref_value, (
            "counter %r differs on kernel %r (%r != %r) for case %r"
            % (name, kernel, cand_counters[name], ref_value, case)
        )
    for attr in ("summary", "per_flow", "per_tenant",
                 "node_delivered_flits", "measured_cycles", "total_cycles",
                 "drained", "undelivered_measured"):
        assert getattr(candidate, attr) == getattr(reference, attr), (
            "%s differs on kernel %r for case %r" % (attr, kernel, case)
        )


def build_lane(case: dict, traffic_seed: int, kernel: str = "event"):
    """One network lane for the batched legs (shared built workload)."""
    cfg = case["cfg"]
    built = build_workload(
        case["pattern"], cfg,
        seed=build_seed_for(case["pattern"], case["traffic_seed"]),
    )
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=case["load"], seed=traffic_seed,
        mode="predraw",
        arrival=case.get("arrival", "bernoulli"),
        arrival_params=case.get("arrival_params"),
    )
    return build_design(
        case["design"], cfg, built.flows, traffic=traffic, kernel=kernel
    ).network


def batch_case(fuzz_seed: int, dedicated: bool = False):
    """Scenario plus a drawn batch size (2-8) and per-lane seeds."""
    case = draw_case(fuzz_seed, dedicated=dedicated)
    rng = random.Random(0xBA7C4 + fuzz_seed)
    batch = rng.randint(2, 8)
    seeds = [case["traffic_seed"] + 1000 * i for i in range(batch)]
    return case, seeds


def assert_batched_identical(case: dict, seeds, kernel: str) -> None:
    """Per-seed, per-counter bit-identity of batched vs serial runs."""
    serial = [
        build_lane(case, s, kernel).run(**case["run"]) for s in seeds
    ]
    batched = run_batched(
        [build_lane(case, s, kernel) for s in seeds], **case["run"]
    )
    assert len(batched) == len(seeds)
    for seed, reference, candidate in zip(seeds, serial, batched):
        assert_identical(
            dict(case, batch_traffic_seed=seed), reference, candidate,
            "%s-batched" % kernel,
        )


def bursty_case(fuzz_seed: int) -> dict:
    """A scenario driven by a randomized ON-OFF/MMPP arrival process."""
    case = draw_case(fuzz_seed)
    rng = random.Random(0xB4257 + fuzz_seed)
    case["arrival"] = rng.choice(["onoff", "mmpp"])
    case["arrival_params"] = {
        "on_cycles": rng.choice([4.0, 16.0, 48.0]),
        "off_cycles": rng.choice([8.0, 64.0, 150.0]),
    }
    if case["arrival"] == "mmpp":
        case["arrival_params"]["quiet_scale"] = rng.choice([0.1, 0.25, 0.5])
    return case


def trace_case(fuzz_seed: int):
    """A randomized packet capture replayed on a drawn mesh/design."""
    from repro.sim.trace import TraceRecord

    rng = random.Random(0x7D0CE + fuzz_seed)
    width = rng.randint(2, 5)
    height = rng.randint(2, 5)
    nodes = width * height
    cfg = NocConfig(
        width=width,
        height=height,
        vcs_per_port=rng.choice([1, 2]),
        packet_bits=rng.choice([64, 256]),
        hpc_max=rng.choice([1, 2, 8]),
    )
    records = []
    for _ in range(rng.randint(5, 80)):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        if src == dst:
            continue
        records.append(TraceRecord(rng.randrange(500), src, dst))
    if not records:
        records.append(TraceRecord(0, 0, nodes - 1))
    return cfg, sorted(records), rng.choice(["smart", "mesh", "dedicated"])


def test_trace_replay_bit_identical(fuzz_seed):
    """Replaying a capture gives per-counter identical results on all
    three kernels and the single-lane batched engine."""
    from repro.sim.trace import compare_results, replay_all_kernels

    cfg, records, design = trace_case(fuzz_seed)
    results = replay_all_kernels(records, cfg, design=design)
    assert sorted(results) == ["active", "event", "event+batched", "legacy"]
    assert compare_results(results) == []


def test_scenario_phases_bit_identical(fuzz_seed):
    """Reconfiguration scenarios replay per-row identical on every
    kernel: same latency histograms, node flit counts, reconfiguration
    bills and cumulative clocks."""
    from repro.eval.reconfig import ScenarioSpec, run_scenario

    rng = random.Random(0x5CE7A + fuzz_seed)
    cfg = NocConfig(
        width=rng.randint(2, 4),
        height=rng.randint(2, 4),
        hpc_max=rng.choice([1, 2, 8]),
    )
    pool = ["uniform", "hotspot", "bit_complement"]
    names = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
    loads = [round(rng.uniform(0.01, 0.1), 3) for _ in names]
    seed = rng.randint(1, 999)

    def rows_for(kernel):
        spec = ScenarioSpec.of(
            "fuzz", names, design=rng.choice(["smart", "mesh"]),
            kernel=kernel, warmup_cycles=60, measure_cycles=400,
            drain_limit=6000,
        )
        spec = dataclasses.replace(spec, phases=tuple(
            dataclasses.replace(p, load=load)
            for p, load in zip(spec.phases, loads)
        ))
        return run_scenario(spec, cfg, seed=seed)

    rng_state = rng.getstate()
    reference = rows_for("legacy")
    for kernel in FUZZ_KERNELS[1:]:
        rng.setstate(rng_state)  # same design draw for every kernel
        assert rows_for(kernel) == reference, (
            "scenario rows differ on kernel %r (phases %r, cfg %r)"
            % (kernel, names, cfg)
        )


def test_mesh_smart_kernels_bit_identical(fuzz_seed):
    case = draw_case(fuzz_seed)
    reference = run_case(case, "legacy")
    for kernel in FUZZ_KERNELS[1:]:
        assert_identical(case, reference, run_case(case, kernel), kernel)


def test_bursty_arrivals_bit_identical(fuzz_seed):
    """MMPP/ON-OFF injection stays bit-identical across all kernels."""
    case = bursty_case(fuzz_seed)
    reference = run_case(case, "legacy")
    for kernel in FUZZ_KERNELS[1:]:
        assert_identical(case, reference, run_case(case, kernel), kernel)


def test_batched_bursty_bit_identical(fuzz_seed):
    """Lockstep engine == serial event runs under bursty arrivals,
    histogram buckets and per-node flit counters included."""
    case = bursty_case(fuzz_seed)
    rng = random.Random(0xBB + fuzz_seed)
    seeds = [case["traffic_seed"] + 1000 * i for i in range(rng.randint(2, 5))]
    assert_batched_identical(case, seeds, "event")


def test_dedicated_kernels_bit_identical(fuzz_seed):
    case = draw_case(fuzz_seed, dedicated=True)
    reference = run_case(case, "legacy")
    for kernel in FUZZ_KERNELS[1:]:
        assert_identical(case, reference, run_case(case, kernel), kernel)


def test_batched_event_bit_identical(fuzz_seed):
    """Lockstep engine == serial event runs, for every seed in a batch."""
    case, seeds = batch_case(fuzz_seed)
    assert_batched_identical(case, seeds, "event")


def test_batched_dedicated_bit_identical(fuzz_seed):
    """The generic lockstep driver reproduces Dedicated runs exactly."""
    case, seeds = batch_case(fuzz_seed, dedicated=True)
    assert_batched_identical(case, seeds, "event")


def test_batched_sanitize_soa_cross_checks(monkeypatch):
    """SMART_SANITIZE=1 runs the SoA column/object cross-checks on the
    batched engine at every sync, and they fire on corrupted columns."""
    from repro.sim import sanitizer

    monkeypatch.setenv("SMART_SANITIZE", "1")
    case, seeds = batch_case(3)
    lanes = [build_lane(case, s) for s in seeds]
    assert all(net.sanitize for net in lanes)
    eng = BatchedEventNetworks(lanes)
    assert eng.sanitize
    eng.run_cycles(400)  # syncs run check_batch without raising

    eng.occ[0] -= 1  # corrupt one occupancy column entry
    try:
        sanitizer.check_batch(eng)
    except sanitizer.SanitizerError:
        pass
    else:
        raise AssertionError(
            "check_batch accepted a corrupted occupancy column"
        )
