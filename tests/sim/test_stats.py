"""Statistics and event-counter tests."""

import math

import pytest

from repro.sim.packet import Packet
from repro.sim.stats import (
    EventCounters,
    LatencySummary,
    StatsCollector,
    _percentile,
)


def delivered_packet(create=0, inject=0, head=5, tail=12, flow=0):
    packet = Packet(flow_id=flow, src=0, dst=1, size_flits=8, create_cycle=create)
    packet.inject_cycle = inject
    packet.head_arrive_cycle = head
    packet.tail_arrive_cycle = tail
    return packet


class TestEventCounters:
    def test_delta(self):
        counters = EventCounters()
        counters.buffer_writes = 10
        counters.link_flit_mm = 4.0
        snap = counters.snapshot()
        counters.buffer_writes = 25
        counters.link_flit_mm = 9.0
        counters.cycles = 100
        delta = counters.delta(snap)
        assert delta.buffer_writes == 15
        assert delta.link_flit_mm == pytest.approx(5.0)
        assert delta.cycles == 100

    def test_snapshot_is_independent(self):
        counters = EventCounters()
        snap = counters.snapshot()
        counters.sa_grants = 7
        assert snap.sa_grants == 0


class TestPercentile:
    def test_median(self):
        assert _percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert _percentile([0, 10], 0.5) == pytest.approx(5.0)

    def test_empty_is_nan(self):
        assert math.isnan(_percentile([], 0.5))


class TestStatsCollector:
    def test_measures_only_inside_window(self):
        stats = StatsCollector()
        early = delivered_packet()
        stats.on_create(early)
        stats.measuring = True
        tracked = delivered_packet()
        stats.on_create(tracked)
        stats.measuring = False
        stats.on_deliver(early)
        stats.on_deliver(tracked)
        assert stats.created_total == 2
        assert stats.delivered_total == 2
        assert [p.pid for p in stats.measured_delivered] == [tracked.pid]

    def test_outstanding(self):
        stats = StatsCollector()
        stats.measuring = True
        packet = delivered_packet()
        stats.on_create(packet)
        assert stats.outstanding_measured == 1
        stats.on_deliver(packet)
        assert stats.outstanding_measured == 0

    def test_summary_values(self):
        stats = StatsCollector()
        stats.measuring = True
        p1 = delivered_packet(create=0, head=0, tail=7)   # head latency 1
        p2 = delivered_packet(create=0, head=6, tail=13)  # head latency 7
        for p in (p1, p2):
            stats.on_create(p)
            stats.on_deliver(p)
        summary = stats.summary()
        assert summary.count == 2
        assert summary.mean_head_latency == pytest.approx(4.0)
        assert summary.min_head_latency == 1
        assert summary.max_head_latency == 7
        assert summary.mean_packet_latency == pytest.approx((8 + 14) / 2)

    def test_empty_summary(self):
        summary = StatsCollector().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean_head_latency)
        assert LatencySummary.empty().count == 0

    def test_per_flow_summary(self):
        stats = StatsCollector()
        stats.measuring = True
        p1 = delivered_packet(flow=1, head=0)
        p2 = delivered_packet(flow=2, head=3)
        for p in (p1, p2):
            stats.on_create(p)
            stats.on_deliver(p)
        by_flow = stats.per_flow_summary()
        assert set(by_flow) == {1, 2}
        assert by_flow[1].count == 1
        assert by_flow[2].mean_head_latency == pytest.approx(4.0)


class TestHistogramBuckets:
    """Bucket-scheme invariants for the log-linear latency histogram."""

    def test_buckets_tile_contiguously(self):
        from repro.sim.stats import HIST_NUM_BUCKETS, hist_bucket_bounds

        previous_high = 0.0
        for bucket in range(HIST_NUM_BUCKETS):
            low, high = hist_bucket_bounds(bucket)
            assert low == previous_high + 1
            assert high >= low
            previous_high = high
        assert math.isinf(high)

    def test_value_lands_in_its_bucket(self):
        from repro.sim.stats import hist_bucket, hist_bucket_bounds

        for value in list(range(1, 4097)) + [2**20 - 1, 2**20, 2**25]:
            low, high = hist_bucket_bounds(hist_bucket(value))
            assert low <= value <= high, value

    def test_relative_width_bound(self):
        from repro.sim.stats import HIST_NUM_BUCKETS, hist_bucket_bounds

        for bucket in range(HIST_NUM_BUCKETS - 1):  # clamp bucket exempt
            low, high = hist_bucket_bounds(bucket)
            # any value in the bucket is within 12.5% of the reported
            # upper edge (exact buckets below 8 have zero error)
            assert (high - low) / low <= 0.125 + 1e-9


class TestLatencyHistogram:
    def _random_values(self, seed, n=500):
        import random

        rng = random.Random(seed)
        return [
            max(1, int(rng.lognormvariate(3.0, 1.5))) for _ in range(n)
        ]

    def test_percentiles_bracket_exact_order_statistics(self):
        """Nearest-rank percentiles land inside the reported bucket."""
        from repro.sim.stats import LatencyHistogram

        for seed in range(10):
            values = sorted(self._random_values(seed))
            hist = LatencyHistogram.from_values(values)
            for fraction in (0.5, 0.95, 0.99, 0.999):
                rank = min(len(values),
                           max(1, math.ceil(fraction * len(values))))
                exact = values[rank - 1]
                low, high = hist.percentile_bounds(fraction)
                assert low <= exact <= high, (seed, fraction)
                # The reported point estimate is the bucket's upper
                # edge: within 12.5% relative error of the exact value.
                assert hist.percentile(fraction) == high

    def test_merge_equals_from_values(self):
        from repro.sim.stats import LatencyHistogram

        a = self._random_values(1)
        b = self._random_values(2)
        merged = LatencyHistogram.from_values(a)
        merged.merge(LatencyHistogram.from_values(b))
        assert merged == LatencyHistogram.from_values(a + b)
        assert merged.total == len(a) + len(b)

    def test_sparse_round_trip(self):
        from repro.sim.stats import LatencyHistogram

        hist = LatencyHistogram.from_values(self._random_values(3))
        sparse = hist.to_sparse()
        assert all(isinstance(k, str) for k in sparse)
        assert LatencyHistogram.from_sparse(sparse) == hist

    def test_empty_percentile_is_nan(self):
        from repro.sim.stats import LatencyHistogram

        assert math.isnan(LatencyHistogram().percentile(0.99))

    def test_wrong_length_rejected(self):
        from repro.sim.stats import LatencyHistogram

        with pytest.raises(ValueError):
            LatencyHistogram([0, 1, 2])


class TestPooledAggregation:
    """Pooled-histogram percentiles vs the legacy weighted-mean path."""

    def _summary(self, heads):
        from repro.sim.stats import _summarize

        packets = []
        for head in heads:
            packet = delivered_packet(create=0, head=head - 1,
                                      tail=head + 6)
            packets.append(packet)
        return _summarize(packets)

    def test_pooled_percentile_is_exact_to_bucket(self):
        """With histograms on every replication the aggregate p95 is the
        pooled order statistic (to bucket resolution), NOT the weighted
        mean of per-seed p95s."""
        from repro.sim.stats import aggregate_summaries

        # Two very different replications: weighted-mean-of-p95s would
        # sit far from the true pooled p95.
        fast = self._summary([10] * 99 + [12])
        slow = self._summary([100] * 100)
        pooled = aggregate_summaries([fast, slow])
        values = sorted([10] * 99 + [12] + [100] * 100)
        exact = values[math.ceil(0.95 * len(values)) - 1]
        low, high = pooled.histogram.percentile_bounds(0.95)
        assert low <= exact <= high
        assert pooled.p95_head_latency == high
        weighted = (fast.count * fast.p95_head_latency
                    + slow.count * slow.p95_head_latency) / pooled.count
        assert abs(pooled.p95_head_latency - exact) < abs(weighted - exact)

    def test_weighted_fallback_without_histograms(self):
        """Replications lacking histograms (legacy rows) fall back to
        the count-weighted mean, preserving the old behaviour."""
        from repro.sim.stats import aggregate_summaries

        a = self._summary([10, 20, 30])
        b = self._summary([40, 50, 60])
        a.histogram = None
        pooled = aggregate_summaries([a, b])
        assert pooled.histogram is None
        expected = (3 * a.p95_head_latency + 3 * b.p95_head_latency) / 6
        assert pooled.p95_head_latency == pytest.approx(expected)

    def test_pooled_histogram_total_matches_count(self):
        from repro.sim.stats import aggregate_summaries

        a = self._summary([5, 6, 7])
        b = self._summary([8, 9])
        pooled = aggregate_summaries([a, b])
        assert pooled.histogram.total == pooled.count == 5


class TestTenantAccounting:
    def _collector(self):
        stats = StatsCollector(tenants={1: "fg", 2: "bg"})
        stats.measuring = True
        for flow, head in ((1, 4), (1, 6), (2, 49), (3, 200)):
            packet = delivered_packet(flow=flow, head=head, tail=head + 7)
            stats.on_create(packet)
            stats.on_deliver(packet)
        return stats

    def test_per_tenant_summaries(self):
        stats = self._collector()
        per_tenant = stats.per_tenant_summary()
        assert set(per_tenant) == {"fg", "bg"}
        assert per_tenant["fg"].count == 2
        assert per_tenant["bg"].count == 1
        # untagged flow 3 counts globally but under no tenant
        assert stats.summary().count == 4
        assert per_tenant["fg"].histogram.total == 2

    def test_untenanted_collector_reports_nothing(self):
        stats = StatsCollector()
        stats.measuring = True
        packet = delivered_packet()
        stats.on_create(packet)
        stats.on_deliver(packet)
        assert stats.per_tenant_summary() == {}

    def test_slo_verdicts(self):
        from repro.sim.stats import slo_verdicts

        per_tenant = self._collector().per_tenant_summary()
        verdicts = slo_verdicts(
            per_tenant, {"fg": 10.0, "bg": 10.0, "ghost": 1.0}
        )
        assert verdicts == {"fg": True, "bg": False}

    def test_node_flit_counters(self):
        stats = self._collector()
        # every delivered_packet targets dst=1 with 8 flits
        assert stats.node_flits == {1: 4 * 8}
