"""Statistics and event-counter tests."""

import math

import pytest

from repro.sim.packet import Packet
from repro.sim.stats import (
    EventCounters,
    LatencySummary,
    StatsCollector,
    _percentile,
)


def delivered_packet(create=0, inject=0, head=5, tail=12, flow=0):
    packet = Packet(flow_id=flow, src=0, dst=1, size_flits=8, create_cycle=create)
    packet.inject_cycle = inject
    packet.head_arrive_cycle = head
    packet.tail_arrive_cycle = tail
    return packet


class TestEventCounters:
    def test_delta(self):
        counters = EventCounters()
        counters.buffer_writes = 10
        counters.link_flit_mm = 4.0
        snap = counters.snapshot()
        counters.buffer_writes = 25
        counters.link_flit_mm = 9.0
        counters.cycles = 100
        delta = counters.delta(snap)
        assert delta.buffer_writes == 15
        assert delta.link_flit_mm == pytest.approx(5.0)
        assert delta.cycles == 100

    def test_snapshot_is_independent(self):
        counters = EventCounters()
        snap = counters.snapshot()
        counters.sa_grants = 7
        assert snap.sa_grants == 0


class TestPercentile:
    def test_median(self):
        assert _percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert _percentile([0, 10], 0.5) == pytest.approx(5.0)

    def test_empty_is_nan(self):
        assert math.isnan(_percentile([], 0.5))


class TestStatsCollector:
    def test_measures_only_inside_window(self):
        stats = StatsCollector()
        early = delivered_packet()
        stats.on_create(early)
        stats.measuring = True
        tracked = delivered_packet()
        stats.on_create(tracked)
        stats.measuring = False
        stats.on_deliver(early)
        stats.on_deliver(tracked)
        assert stats.created_total == 2
        assert stats.delivered_total == 2
        assert [p.pid for p in stats.measured_delivered] == [tracked.pid]

    def test_outstanding(self):
        stats = StatsCollector()
        stats.measuring = True
        packet = delivered_packet()
        stats.on_create(packet)
        assert stats.outstanding_measured == 1
        stats.on_deliver(packet)
        assert stats.outstanding_measured == 0

    def test_summary_values(self):
        stats = StatsCollector()
        stats.measuring = True
        p1 = delivered_packet(create=0, head=0, tail=7)   # head latency 1
        p2 = delivered_packet(create=0, head=6, tail=13)  # head latency 7
        for p in (p1, p2):
            stats.on_create(p)
            stats.on_deliver(p)
        summary = stats.summary()
        assert summary.count == 2
        assert summary.mean_head_latency == pytest.approx(4.0)
        assert summary.min_head_latency == 1
        assert summary.max_head_latency == 7
        assert summary.mean_packet_latency == pytest.approx((8 + 14) / 2)

    def test_empty_summary(self):
        summary = StatsCollector().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean_head_latency)
        assert LatencySummary.empty().count == 0

    def test_per_flow_summary(self):
        stats = StatsCollector()
        stats.measuring = True
        p1 = delivered_packet(flow=1, head=0)
        p2 = delivered_packet(flow=2, head=3)
        for p in (p1, p2):
            stats.on_create(p)
            stats.on_deliver(p)
        by_flow = stats.per_flow_summary()
        assert set(by_flow) == {1, 2}
        assert by_flow[1].count == 1
        assert by_flow[2].mean_head_latency == pytest.approx(4.0)
