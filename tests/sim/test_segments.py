"""Segment and segment-map tests."""

import pytest

from repro.sim.segments import (
    BufferEnd,
    NicEnd,
    NicStart,
    OutputStart,
    Segment,
    SegmentMap,
)
from repro.sim.topology import Port


def seg(start, end, hops=1, crossed=(0,), extra=0):
    return Segment(start=start, end=end, hops=hops, routers_crossed=tuple(crossed), extra_cycles=extra)


class TestSegment:
    def test_crossbar_traversals(self):
        s = seg(NicStart(0), NicEnd(3), hops=3, crossed=(0, 1, 2, 3))
        assert s.crossbar_traversals == 4

    def test_length_mm(self):
        s = seg(OutputStart(0, Port.EAST), BufferEnd(2, Port.WEST), hops=2, crossed=(0, 1))
        assert s.length_mm(1.0) == pytest.approx(2.0)
        assert s.length_mm(0.5) == pytest.approx(1.0)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            seg(NicStart(0), NicEnd(1), hops=-1)


class TestSegmentMap:
    def test_lookup_by_start_and_end(self):
        smap = SegmentMap()
        s = seg(NicStart(0), BufferEnd(1, Port.WEST))
        smap.add(s)
        assert smap.from_start(NicStart(0)) is s
        assert smap.ending_at(BufferEnd(1, Port.WEST)) is s
        assert smap.has_start(NicStart(0))
        assert not smap.has_start(NicStart(9))

    def test_duplicate_start_rejected(self):
        smap = SegmentMap()
        smap.add(seg(NicStart(0), BufferEnd(1, Port.WEST)))
        with pytest.raises(ValueError):
            smap.add(seg(NicStart(0), NicEnd(2)))

    def test_duplicate_end_rejected(self):
        # An input port has exactly one physical driver.
        smap = SegmentMap()
        smap.add(seg(OutputStart(0, Port.EAST), BufferEnd(1, Port.WEST)))
        with pytest.raises(ValueError):
            smap.add(seg(NicStart(5), BufferEnd(1, Port.WEST)))

    def test_missing_lookup_raises(self):
        smap = SegmentMap()
        with pytest.raises(KeyError):
            smap.from_start(NicStart(0))
        with pytest.raises(KeyError):
            smap.ending_at(NicEnd(0))

    def test_max_hops(self):
        smap = SegmentMap()
        assert smap.max_hops() == 0
        smap.add(seg(NicStart(0), NicEnd(3), hops=3, crossed=(0, 1, 2, 3)))
        smap.add(seg(NicStart(1), NicEnd(2), hops=1, crossed=(1, 2)))
        assert smap.max_hops() == 3

    def test_len(self):
        smap = SegmentMap()
        smap.add(seg(NicStart(0), NicEnd(1)))
        assert len(smap) == 1

    def test_start_end_types_hashable_and_distinct(self):
        assert NicStart(1) != OutputStart(1, Port.EAST)
        assert BufferEnd(1, Port.WEST) != NicEnd(1)
        assert len({NicStart(1), NicStart(1)}) == 1
