"""Cycle-exact timing tests against the paper's Fig 6/7 semantics.

These are the load-bearing tests of the reproduction: they pin the SMART
pipeline timing (single-cycle multi-hop bypass, 3-cycle stop cost) and the
baseline mesh timing (3-cycle router + 1-cycle link per hop) to the
figures in the paper.
"""

import pytest

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.sim.flow import Flow
from repro.sim.topology import Port
from repro.sim.traffic import ScriptedTraffic

from repro.eval.scenarios import fig7_flows


def run_scripted(builder, flows, schedule, cycles=80, cfg=None):
    noc = builder(cfg or NocConfig(), flows, traffic=ScriptedTraffic(schedule))
    noc.network.stats.measuring = True
    noc.network.run_cycles(cycles)
    delivered = {p.flow_id: p for p in noc.network.stats.measured_delivered}
    return noc, delivered


class TestSmartFig7:
    def test_non_overlapping_flow_single_cycle(self):
        """Green flow: NIC-to-NIC in one cycle across 3 hops + ejection."""
        flows = fig7_flows()
        _noc, got = run_scripted(build_smart_noc, flows, [(1, 2)])
        assert got[2].head_latency == 1

    def test_purple_flow_single_cycle(self):
        flows = fig7_flows()
        _noc, got = run_scripted(build_smart_noc, flows, [(1, 3)])
        assert got[3].head_latency == 1

    def test_blue_flow_stops_at_9_and_10(self):
        flows = fig7_flows()
        noc, got = run_scripted(build_smart_noc, flows, [(1, 0)])
        assert noc.network.stops_for_flow(flows[0]) == [9, 10]
        # Fig 7 annotations: arrives at 9 at cycle 1, at 10 at cycle 4,
        # at NIC3 at cycle 7.
        assert got[0].head_arrive_cycle == 7
        assert got[0].head_latency == 7

    def test_red_flow_same_stop_structure(self):
        flows = fig7_flows()
        noc, got = run_scripted(build_smart_noc, flows, [(1, 1)])
        assert noc.network.stops_for_flow(flows[1]) == [9, 10]
        assert got[1].head_latency == 7

    def test_packet_latency_adds_serialization(self):
        flows = fig7_flows()
        _noc, got = run_scripted(build_smart_noc, flows, [(1, 2)])
        # 8-flit packet: head at cycle 1, tail 7 cycles later.
        assert got[2].packet_latency == 8

    def test_simultaneous_red_blue_serialise(self):
        """Footnote 7: flits arriving at router 9 together leave serially."""
        flows = fig7_flows()
        _noc, got = run_scripted(
            build_smart_noc, flows, [(1, 0), (1, 1)], cycles=120
        )
        latencies = sorted([got[0].head_latency, got[1].head_latency])
        # One packet wins SA and sees 7; the loser waits for the 8-flit
        # winner to clear the shared output (8 cycles later).
        assert latencies[0] == 7
        assert latencies[1] == 7 + 8

    def test_single_cycle_flows_listed_in_presets(self):
        flows = fig7_flows()
        noc = build_smart_noc(NocConfig(), flows, traffic=ScriptedTraffic([]))
        singles = {f.flow_id for f in noc.presets.single_cycle_flows()}
        assert singles == {2, 3}


class TestMeshBaseline:
    def test_four_cycles_per_hop(self):
        """§VI: 3 cycles in router + 1 cycle in link; r routers => 4r."""
        flows = fig7_flows()
        _noc, got = run_scripted(build_mesh_noc, flows, [(1, 2)], cycles=120)
        # Green 12->15: 4 routers.
        assert got[2].head_latency == 16

    def test_blue_flow_mesh(self):
        flows = fig7_flows()
        _noc, got = run_scripted(build_mesh_noc, flows, [(1, 0)], cycles=160)
        # Blue 8->3: 6 routers => 24 cycles.
        assert got[0].head_latency == 24

    def test_mesh_stops_at_every_router(self):
        flows = fig7_flows()
        noc = build_mesh_noc(NocConfig(), flows, traffic=ScriptedTraffic([]))
        assert noc.network.stops_for_flow(flows[0]) == [8, 9, 10, 11, 7, 3]


class TestWorstCase:
    def test_all_conflicting_smart_approaches_mesh(self):
        """Footnote 10: with every router a stop, SMART ~= Mesh (SMART
        still merges ST+link, saving 1 cycle/hop)."""
        cfg = NocConfig()
        flow = Flow(0, 0, 3, 1e6, route=(Port.EAST, Port.EAST, Port.EAST, Port.CORE))
        from repro.core.presets import compute_presets
        from repro.sim.network import Network
        from repro.sim.topology import Mesh

        mesh = Mesh(4, 4)
        presets = compute_presets(cfg, mesh, [flow], force_all_stops=True)
        net = Network(cfg, mesh, [flow], presets.router_configs(),
                      presets.segment_map, ScriptedTraffic([(1, 0)]))
        net.stats.measuring = True
        net.run_cycles(60)
        packet = net.stats.measured_delivered[0]
        # 4 routers, 3 cycles each, ST+link merged: 1 + 3*4 - 1 = 12... the
        # injection cycle plus three 3-cycle stops plus final stop's ST.
        assert packet.head_latency == 1 + 3 * 4


class TestVcBackpressure:
    def test_vc_exhaustion_throttles_injection(self):
        """With 2 VCs at the shared stop, a burst of packets serialises."""
        cfg = NocConfig()
        flows = fig7_flows()
        schedule = [(1, 0)] * 5  # five blue packets at once
        noc, got = run_scripted(build_smart_noc, flows, schedule, cycles=400)
        arrivals = sorted(
            p.head_arrive_cycle
            for p in noc.network.stats.measured_delivered
        )
        assert len(arrivals) == 5
        # Packets stream one after another: at least 8 cycles apart.
        for a, b in zip(arrivals, arrivals[1:]):
            assert b - a >= 8

    def test_conservation_under_burst(self):
        flows = fig7_flows()
        schedule = [(c, f.flow_id) for c in range(1, 30, 3) for f in fig7_flows()]
        noc, _got = run_scripted(build_smart_noc, flows, schedule, cycles=600)
        assert noc.network.stats.created_total == noc.network.stats.delivered_total


class TestCounters:
    def test_bypass_avoids_buffer_events(self):
        flows = fig7_flows()
        noc, _ = run_scripted(build_smart_noc, flows, [(1, 2)])
        counters = noc.network.counters
        # Green flow never stops: no buffer writes/reads at all.
        assert counters.buffer_writes == 0
        assert counters.buffer_reads == 0
        # But it crosses 4 crossbars (12, 13, 14, 15) per flit.
        assert counters.crossbar_traversals == 8 * 4

    def test_stop_counts_buffer_events(self):
        flows = fig7_flows()
        noc, _ = run_scripted(build_smart_noc, flows, [(1, 0)])
        counters = noc.network.counters
        # Blue stops twice: 8 flits written+read at 9 and at 10.
        assert counters.buffer_writes == 16
        assert counters.buffer_reads == 16

    def test_link_mm_matches_hops(self):
        flows = fig7_flows()
        noc, _ = run_scripted(build_smart_noc, flows, [(1, 2)])
        # Green traverses 3 links of 1 mm per flit.
        assert noc.network.counters.link_flit_mm == pytest.approx(8 * 3.0)

    def test_credit_events_on_tail(self):
        flows = fig7_flows()
        noc, _ = run_scripted(build_smart_noc, flows, [(1, 2)], cycles=60)
        # One packet, one segment: one credit from the sink NIC.
        assert noc.network.counters.credit_events == 1
