"""Virtual channel buffer and free-VC queue tests."""

import pytest

from repro.sim.buffers import FreeVcQueue, InputBuffer, VirtualChannel
from repro.sim.packet import Flit, FlitType, Packet


def flit(ftype=FlitType.HEAD, seq=0, packet=None):
    packet = packet or Packet(flow_id=0, src=0, dst=1, size_flits=8, create_cycle=0)
    return Flit(packet, ftype, seq)


class TestVirtualChannel:
    def test_write_sets_vc_and_busy(self):
        vc = VirtualChannel(1, 10)
        f = flit()
        vc.write(f, arrival_cycle=5)
        assert f.vc == 1
        assert vc.busy
        assert len(vc) == 1

    def test_bw_stage_timing(self):
        # Arrival at end of cycle T => SA-eligible from T+2 (BW occupies T+1).
        vc = VirtualChannel(0, 10)
        vc.write(flit(), arrival_cycle=5)
        assert not vc.front_eligible(5)
        assert not vc.front_eligible(6)
        assert vc.front_eligible(7)

    def test_fifo_order(self):
        vc = VirtualChannel(0, 10)
        packet = Packet(flow_id=0, src=0, dst=1, size_flits=8, create_cycle=0)
        flits = packet.flits()
        for i, f in enumerate(flits[:3]):
            vc.write(f, arrival_cycle=i)
        assert vc.read() is flits[0]
        assert vc.read() is flits[1]

    def test_tail_read_frees_vc(self):
        vc = VirtualChannel(0, 10)
        packet = Packet(flow_id=0, src=0, dst=1, size_flits=2, create_cycle=0)
        head, tail = packet.flits()
        vc.write(head, 0)
        vc.write(tail, 1)
        vc.read()
        assert vc.busy
        vc.read()
        assert not vc.busy

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 2)
        packet = Packet(flow_id=0, src=0, dst=1, size_flits=8, create_cycle=0)
        flits = packet.flits()
        vc.write(flits[0], 0)
        vc.write(flits[1], 1)
        with pytest.raises(OverflowError):
            vc.write(flits[2], 2)

    def test_head_into_busy_vc_raises(self):
        vc = VirtualChannel(0, 10)
        vc.write(flit(), 0)
        with pytest.raises(RuntimeError):
            vc.write(flit(), 1)

    def test_read_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualChannel(0, 10).read()


class TestInputBuffer:
    def test_vc_count(self, cfg):
        buffer = InputBuffer(cfg.vcs_per_port, cfg.vc_depth_flits)
        assert len(buffer.vcs) == 2
        assert buffer.empty

    def test_occupancy(self):
        buffer = InputBuffer(2, 10)
        buffer.vc(0).write(flit(), 0)
        assert buffer.occupancy() == 1
        assert not buffer.empty

    def test_zero_vcs_rejected(self):
        with pytest.raises(ValueError):
            InputBuffer(0, 10)


class TestFreeVcQueue:
    def test_starts_with_all_vcs(self):
        queue = FreeVcQueue(2)
        assert queue.available(0)
        assert queue.acquire(0) == 0
        assert queue.acquire(0) == 1
        assert not queue.available(0)

    def test_acquire_empty_raises(self):
        queue = FreeVcQueue(1)
        queue.acquire(0)
        with pytest.raises(IndexError):
            queue.acquire(0)

    def test_credit_latency_respected(self):
        queue = FreeVcQueue(1)
        queue.acquire(0)
        queue.release(0, usable_cycle=10)
        assert not queue.available(9)
        assert queue.available(10)
        assert queue.acquire(10) == 0

    def test_release_unknown_vc_raises(self):
        with pytest.raises(ValueError):
            FreeVcQueue(2).release(5, 0)

    def test_outstanding_tracks_inflight(self):
        queue = FreeVcQueue(2)
        assert queue.outstanding() == 0
        queue.acquire(0)
        assert queue.outstanding() == 1
        queue.release(0, 5)
        assert queue.outstanding() == 0

    def test_fifo_credit_order(self):
        queue = FreeVcQueue(2)
        a = queue.acquire(0)
        b = queue.acquire(0)
        queue.release(b, 5)
        queue.release(a, 6)
        assert queue.acquire(10) == b
        assert queue.acquire(10) == a

    def test_out_of_order_release_promotes_earliest(self):
        """A late-usable credit released first must not head-of-line-block
        an earlier-usable credit released after it."""
        queue = FreeVcQueue(2)
        a = queue.acquire(0)
        b = queue.acquire(0)
        queue.release(a, usable_cycle=20)
        queue.release(b, usable_cycle=5)
        assert queue.available(5)
        assert queue.acquire(5) == b
        assert not queue.available(19)
        assert queue.acquire(20) == a

    def test_same_cycle_releases_stay_fifo(self):
        queue = FreeVcQueue(3)
        ids = [queue.acquire(0) for _ in range(3)]
        for vc in (ids[2], ids[0], ids[1]):
            queue.release(vc, usable_cycle=4)
        assert [queue.acquire(4) for _ in range(3)] == [ids[2], ids[0], ids[1]]

    def test_outstanding_with_pending_heap(self):
        queue = FreeVcQueue(2)
        queue.acquire(0)
        queue.acquire(0)
        queue.release(1, 30)
        assert queue.outstanding() == 1
