"""Traffic model tests."""

import pytest

from repro.config import NocConfig
from repro.sim.flow import Flow
from repro.sim.topology import Port
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, ScriptedTraffic


def make_flow(fid=0, bw=1e9):
    return Flow(fid, 0, 1, bw, route=(Port.EAST, Port.CORE))


class TestBernoulli:
    def test_rate_conversion(self, cfg):
        # 1 GB/s = 8 Gb/s over a 64 Gb/s channel (32 bit @ 2 GHz)
        flow = make_flow(bw=1e9)
        traffic = BernoulliTraffic(cfg, [flow])
        assert traffic.rate(0) == pytest.approx(
            1e9 * 8 / 32 / 2e9 / 8
        )

    def test_empirical_rate_matches(self, cfg):
        flow = make_flow(bw=4e9)  # rate = 0.0625 packets/cycle
        traffic = BernoulliTraffic(cfg, [flow], seed=7)
        n = 200000
        injections = sum(traffic.packets_at(flow, c) for c in range(n))
        expected = traffic.rate(0) * n
        assert injections == pytest.approx(expected, rel=0.05)

    def test_deterministic_across_instances(self, cfg):
        flow = make_flow(bw=4e9)
        t1 = BernoulliTraffic(cfg, [flow], seed=3)
        t2 = BernoulliTraffic(cfg, [flow], seed=3)
        seq1 = [t1.packets_at(flow, c) for c in range(1000)]
        seq2 = [t2.packets_at(flow, c) for c in range(1000)]
        assert seq1 == seq2

    def test_different_seeds_differ(self, cfg):
        flow = make_flow(bw=4e9)
        t1 = BernoulliTraffic(cfg, [flow], seed=1)
        t2 = BernoulliTraffic(cfg, [flow], seed=2)
        assert [t1.packets_at(flow, c) for c in range(2000)] != [
            t2.packets_at(flow, c) for c in range(2000)
        ]

    def test_zero_bandwidth_never_injects(self, cfg):
        flow = Flow(0, 0, 1, 0.0, route=(Port.EAST, Port.CORE))
        traffic = BernoulliTraffic(cfg, [flow])
        assert all(traffic.packets_at(flow, c) == 0 for c in range(100))

    def test_oversubscribed_flow_rejected(self, cfg):
        flow = make_flow(bw=1e12)
        with pytest.raises(ValueError):
            BernoulliTraffic(cfg, [flow])


class TestScripted:
    def test_exact_injection(self):
        flow = make_flow(0)
        traffic = ScriptedTraffic([(3, 0), (3, 0), (7, 0)])
        assert traffic.packets_at(flow, 3) == 2
        assert traffic.packets_at(flow, 7) == 1
        assert traffic.packets_at(flow, 5) == 0

    def test_remaining(self):
        traffic = ScriptedTraffic([(1, 0), (2, 1)])
        assert traffic.remaining() == 2


class TestRateScaled:
    def test_scaling_changes_rate(self, cfg):
        flow = make_flow(bw=4e9)
        base = BernoulliTraffic(cfg, [flow], seed=5)
        half = RateScaledTraffic(cfg, [flow], scale=0.5, seed=5)
        n = 100000
        base_count = sum(base.packets_at(flow, c) for c in range(n))
        half_count = sum(half.packets_at(flow, c) for c in range(n))
        assert half_count == pytest.approx(base_count / 2, rel=0.1)

    def test_negative_scale_rejected(self, cfg):
        with pytest.raises(ValueError):
            RateScaledTraffic(cfg, [make_flow()], scale=-1.0)
