"""Traffic model tests."""

import pytest

from repro.config import NocConfig
from repro.sim.flow import Flow
from repro.sim.topology import Port
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, ScriptedTraffic


def make_flow(fid=0, bw=1e9):
    return Flow(fid, 0, 1, bw, route=(Port.EAST, Port.CORE))


class TestBernoulli:
    def test_rate_conversion(self, cfg):
        # 1 GB/s = 8 Gb/s over a 64 Gb/s channel (32 bit @ 2 GHz)
        flow = make_flow(bw=1e9)
        traffic = BernoulliTraffic(cfg, [flow])
        assert traffic.rate(0) == pytest.approx(
            1e9 * 8 / 32 / 2e9 / 8
        )

    def test_empirical_rate_matches(self, cfg):
        flow = make_flow(bw=4e9)  # rate = 0.0625 packets/cycle
        traffic = BernoulliTraffic(cfg, [flow], seed=7)
        n = 200000
        injections = sum(traffic.packets_at(flow, c) for c in range(n))
        expected = traffic.rate(0) * n
        assert injections == pytest.approx(expected, rel=0.05)

    def test_deterministic_across_instances(self, cfg):
        flow = make_flow(bw=4e9)
        t1 = BernoulliTraffic(cfg, [flow], seed=3)
        t2 = BernoulliTraffic(cfg, [flow], seed=3)
        seq1 = [t1.packets_at(flow, c) for c in range(1000)]
        seq2 = [t2.packets_at(flow, c) for c in range(1000)]
        assert seq1 == seq2

    def test_different_seeds_differ(self, cfg):
        flow = make_flow(bw=4e9)
        t1 = BernoulliTraffic(cfg, [flow], seed=1)
        t2 = BernoulliTraffic(cfg, [flow], seed=2)
        assert [t1.packets_at(flow, c) for c in range(2000)] != [
            t2.packets_at(flow, c) for c in range(2000)
        ]

    def test_zero_bandwidth_never_injects(self, cfg):
        flow = Flow(0, 0, 1, 0.0, route=(Port.EAST, Port.CORE))
        traffic = BernoulliTraffic(cfg, [flow])
        assert all(traffic.packets_at(flow, c) == 0 for c in range(100))

    def test_oversubscribed_flow_rejected(self, cfg):
        flow = make_flow(bw=1e12)
        with pytest.raises(ValueError):
            BernoulliTraffic(cfg, [flow])


class TestScripted:
    def test_exact_injection(self):
        flow = make_flow(0)
        traffic = ScriptedTraffic([(3, 0), (3, 0), (7, 0)])
        assert traffic.packets_at(flow, 3) == 2
        assert traffic.packets_at(flow, 7) == 1
        assert traffic.packets_at(flow, 5) == 0

    def test_remaining_decrements_on_injection(self):
        flow0, flow1 = make_flow(0), make_flow(1)
        traffic = ScriptedTraffic([(1, 0), (2, 1)])
        assert traffic.remaining() == 2
        assert traffic.packets_at(flow0, 1) == 1
        assert traffic.remaining() == 1
        assert traffic.packets_at(flow1, 2) == 1
        assert traffic.remaining() == 0

    def test_next_injection_cycle(self):
        flow = make_flow(0)
        traffic = ScriptedTraffic([(3, 0), (7, 0)])
        assert traffic.next_injection_cycle(flow, 0) == 3
        assert traffic.next_injection_cycle(flow, 4) == 7
        assert traffic.packets_at(flow, 7) == 1
        assert traffic.next_injection_cycle(flow, 8) is None


class TestBernoulliModes:
    def test_predraw_schedule_matches_legacy_stream(self, cfg):
        """predraw consumes the same RNG stream, so the schedule is
        bit-identical to the seed kernel's one-draw-per-cycle."""
        flow = make_flow(bw=4e9)
        legacy = BernoulliTraffic(cfg, [flow], seed=9, mode="legacy")
        predraw = BernoulliTraffic(cfg, [flow], seed=9, mode="predraw")
        n = 20000
        legacy_seq = [legacy.packets_at(flow, c) for c in range(n)]
        predraw_seq = [predraw.packets_at(flow, c) for c in range(n)]
        assert legacy_seq == predraw_seq

    def test_predraw_next_injection_consistent(self, cfg):
        flow = make_flow(bw=4e9)
        a = BernoulliTraffic(cfg, [flow], seed=2)
        b = BernoulliTraffic(cfg, [flow], seed=2)
        injections = [c for c in range(5000) if a.packets_at(flow, c)]
        skipped = []
        cycle = 0
        while len(skipped) < len(injections):
            nxt = b.next_injection_cycle(flow, cycle)
            assert b.packets_at(flow, nxt) == 1
            skipped.append(nxt)
            cycle = nxt + 1
        assert skipped == injections

    def test_geometric_mode_rate_matches(self, cfg):
        flow = make_flow(bw=4e9)  # rate = 0.0625 packets/cycle
        traffic = BernoulliTraffic(cfg, [flow], seed=11, mode="geometric")
        n = 200000
        injections = sum(traffic.packets_at(flow, c) for c in range(n))
        assert injections == pytest.approx(traffic.rate(0) * n, rel=0.05)

    def test_unknown_mode_rejected(self, cfg):
        with pytest.raises(ValueError):
            BernoulliTraffic(cfg, [make_flow()], mode="bogus")

    def test_saturated_flow_injects_every_cycle(self, cfg):
        flow = make_flow(bw=1e12)
        traffic = BernoulliTraffic(cfg, [flow], clamp=True)
        assert traffic.rate(0) == 1.0
        assert 0 in traffic.clamped_rates
        assert all(traffic.packets_at(flow, c) == 1 for c in range(50))


class TestRateScaled:
    def test_scaling_changes_rate(self, cfg):
        flow = make_flow(bw=4e9)
        base = BernoulliTraffic(cfg, [flow], seed=5)
        half = RateScaledTraffic(cfg, [flow], scale=0.5, seed=5)
        n = 100000
        base_count = sum(base.packets_at(flow, c) for c in range(n))
        half_count = sum(half.packets_at(flow, c) for c in range(n))
        assert half_count == pytest.approx(base_count / 2, rel=0.1)

    def test_negative_scale_rejected(self, cfg):
        with pytest.raises(ValueError):
            RateScaledTraffic(cfg, [make_flow()], scale=-1.0)

    def test_rate_delegates_to_wrapped_model(self, cfg):
        flow = make_flow(bw=4e9)
        scaled = RateScaledTraffic(cfg, [flow], scale=2.0, seed=5)
        base = BernoulliTraffic(cfg, [flow], seed=5)
        assert scaled.rate(0) == pytest.approx(2.0 * base.rate(0))

    def test_oversubscribed_scale_clamps_to_saturation(self, cfg):
        """Sweeps past saturation clamp at 1 packet/cycle instead of
        raising, and record the clamp."""
        flow = make_flow(bw=4e9)  # rate 0.0625 -> x32 = 2.0 packets/cycle
        traffic = RateScaledTraffic(cfg, [flow], scale=32.0, seed=5)
        assert traffic.rate(0) == 1.0
        assert traffic.clamped_rates[0] == pytest.approx(2.0)
        assert all(traffic.packets_at(flow, c) == 1 for c in range(100))

    def test_unclamped_flows_not_recorded(self, cfg):
        traffic = RateScaledTraffic(cfg, [make_flow(bw=4e9)], scale=2.0)
        assert traffic.clamped_rates == {}


class TestMmpp:
    def _model(self, cfg, flow, seed=5, **kwargs):
        from repro.sim.traffic import MmppTraffic

        kwargs.setdefault("on_cycles", 16.0)
        kwargs.setdefault("off_cycles", 48.0)
        return MmppTraffic(cfg, [flow], seed=seed, **kwargs)

    def test_mean_rate_matches_configured_bandwidth(self, cfg):
        flow = make_flow(bw=4e9)  # 0.0625 packets/cycle mean
        traffic = self._model(cfg, flow, quiet_scale=0.25)
        n = 400000
        injections = sum(traffic.packets_at(flow, c) for c in range(n))
        assert injections == pytest.approx(traffic.rate(0) * n, rel=0.05)

    def test_deterministic_across_instances(self, cfg):
        flow = make_flow(bw=4e9)
        t1 = self._model(cfg, flow)
        t2 = self._model(cfg, flow)
        assert [t1.packets_at(flow, c) for c in range(5000)] == [
            t2.packets_at(flow, c) for c in range(5000)
        ]

    def test_query_order_independence(self, cfg):
        """Cycle-by-cycle polling and next-injection jumping must see
        the identical schedule (the active/event kernel contract)."""
        flow = make_flow(bw=4e9)
        polled = self._model(cfg, flow)
        jumped = self._model(cfg, flow)
        schedule = [
            c for c in range(20000) if polled.packets_at(flow, c)
        ]
        cycle, jumps = 0, []
        while True:
            nxt = jumped.next_injection_cycle(flow, cycle)
            if nxt is None or nxt >= 20000:
                break
            assert jumped.packets_at(flow, nxt) == 1
            jumps.append(nxt)
            cycle = nxt + 1
        assert schedule == jumps

    def test_onoff_is_burstier_than_bernoulli(self, cfg):
        """Silent-quiet ON-OFF injection at the same mean rate has a
        higher per-window variance than the memoryless process."""
        import statistics

        flow = make_flow(bw=4e9)
        onoff = self._model(cfg, flow, quiet_scale=0.0,
                            on_cycles=32.0, off_cycles=96.0)
        bernoulli = BernoulliTraffic(cfg, [flow], seed=5)
        window = 64

        def window_counts(traffic):
            counts = []
            for start in range(0, 64000, window):
                counts.append(sum(
                    traffic.packets_at(flow, c)
                    for c in range(start, start + window)
                ))
            return counts

        assert (statistics.pvariance(window_counts(onoff))
                > 1.5 * statistics.pvariance(window_counts(bernoulli)))

    def test_burst_rate_clamp_recorded(self, cfg):
        # Mean rate 0.5 with duty 0.25 and silent quiet state needs a
        # burst rate of 2.0 packets/cycle -> clamps at 1, recorded.
        flow = make_flow(bw=32e9)  # rate 0.5
        traffic = self._model(cfg, flow, quiet_scale=0.0, clamp=True)
        assert 0 in traffic.clamped_rates
        assert traffic.clamped_rates[0] == pytest.approx(2.0)

    def test_invalid_params_rejected(self, cfg):
        flow = make_flow(bw=4e9)
        with pytest.raises(ValueError):
            self._model(cfg, flow, on_cycles=0.5)
        with pytest.raises(ValueError):
            self._model(cfg, flow, quiet_scale=1.5)


class TestRateScaledArrivals:
    def test_unknown_arrival_rejected(self, cfg):
        with pytest.raises(ValueError, match="arrival"):
            RateScaledTraffic(cfg, [make_flow(bw=4e9)], scale=1.0,
                              arrival="poisson")

    def test_bernoulli_rejects_burst_params(self, cfg):
        with pytest.raises(ValueError, match="arrival_params"):
            RateScaledTraffic(cfg, [make_flow(bw=4e9)], scale=1.0,
                              arrival_params={"on_cycles": 8.0})

    def test_mmpp_arrival_wraps_mmpp(self, cfg):
        from repro.sim.traffic import MmppTraffic

        traffic = RateScaledTraffic(
            cfg, [make_flow(bw=4e9)], scale=2.0, arrival="mmpp",
            arrival_params={"on_cycles": 8.0, "off_cycles": 24.0},
        )
        assert isinstance(traffic._inner, MmppTraffic)
        assert traffic._inner.quiet_scale == 0.25  # mmpp default
        assert traffic.rate(0) == pytest.approx(0.0625 * 2.0)

    def test_fixed_flows_exempt_from_scaling(self, cfg):
        fixed = make_flow(fid=0, bw=4e9)
        swept = Flow(1, 1, 0, 4e9, route=(Port.WEST, Port.CORE))
        traffic = RateScaledTraffic(
            cfg, [fixed, swept], scale=4.0, fixed_flow_ids=(0,),
        )
        assert traffic.rate(0) == pytest.approx(0.0625)
        assert traffic.rate(1) == pytest.approx(0.25)


class TestOfferedVsAchieved:
    """Clamping (port saturation, burst ceilings) lowers the *achieved*
    mean injection rate below the *offered* one; both are queryable."""

    def test_bernoulli_unclamped_rates_coincide(self, cfg):
        traffic = BernoulliTraffic(cfg, [make_flow(bw=4e9)], seed=5)
        assert traffic.offered_rate(0) == traffic.achieved_rate(0)
        assert traffic.achieved_rate(0) == traffic.rate(0)

    def test_saturation_clamp_lowers_achieved(self, cfg):
        # rate 0.0625 x32 = 2.0 offered, clamped to 1.0 packet/cycle.
        traffic = RateScaledTraffic(
            cfg, [make_flow(bw=4e9)], scale=32.0, seed=5
        )
        assert traffic.offered_rate(0) == pytest.approx(2.0)
        assert traffic.achieved_rate(0) == pytest.approx(1.0)
        assert traffic.total_offered_rate() == pytest.approx(2.0)
        assert traffic.total_achieved_rate() == pytest.approx(1.0)

    def test_mmpp_burst_clamp_lowers_achieved_mean(self, cfg):
        from repro.sim.traffic import MmppTraffic

        # Mean 0.5 at duty 0.25 with a silent quiet state offers a
        # burst rate of 2.0 -> clamps at 1.0, so the achieved mean is
        # 1.0 * duty = 0.25: half the offered load.
        flow = make_flow(bw=32e9)
        traffic = MmppTraffic(
            cfg, [flow], seed=5, on_cycles=16.0, off_cycles=48.0,
            quiet_scale=0.0, clamp=True,
        )
        assert traffic.offered_rate(0) == pytest.approx(0.5)
        assert traffic.achieved_rate(0) == pytest.approx(0.25)
        n = 200000
        injections = sum(traffic.packets_at(flow, c) for c in range(n))
        assert injections == pytest.approx(
            traffic.achieved_rate(0) * n, rel=0.05
        )

    def test_rate_scaled_totals_sum_wrapped_flows(self, cfg):
        flows = [make_flow(fid=0, bw=4e9),
                 Flow(1, 1, 0, 4e9, route=(Port.WEST, Port.CORE))]
        traffic = RateScaledTraffic(
            cfg, flows, scale=2.0, seed=5, arrival="mmpp",
            arrival_params={"on_cycles": 8.0, "off_cycles": 24.0},
        )
        assert traffic.total_offered_rate() == pytest.approx(
            sum(traffic.offered_rate(f.flow_id) for f in flows)
        )
        assert traffic.total_achieved_rate() <= traffic.total_offered_rate()
