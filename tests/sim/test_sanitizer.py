"""Sanitizer mode: deliberate corruption must raise SanitizerError.

Each test builds a small running network, corrupts one piece of
kernel-internal derived state (active sets, cached occupancy, counter
types, chain feeder links) and asserts the sanitizer reports it on the
next step/sync.  A no-corruption control per kernel pins down that
sanitize mode is silent on healthy runs.
"""

from __future__ import annotations

import pytest

from repro.config import NocConfig
from repro.core.noc_builder import build_smart_noc
from repro.eval.dedicated import DedicatedNetwork
from repro.sim.network import KERNELS, Network
from repro.sim.sanitizer import SanitizerError, resolve, sanitize_from_env
from repro.workloads import get_workload


def make_network(kernel, load=0.3, seed=3, sanitize=True):
    """A transpose-pattern SMART network with sanitize mode enabled."""
    cfg = NocConfig()
    built = get_workload("transpose").build(cfg)
    noc = build_smart_noc(
        cfg, list(built.flows),
        traffic=built.traffic(cfg, load=load, seed=seed),
    )
    base = noc.network
    return Network(
        cfg, base.mesh, base.flows,
        {r.node: r.config for r in base.routers.values()},
        base.segments,
        built.traffic(cfg, load=load, seed=seed),
        kernel=kernel,
        sanitize=sanitize,
    )


class TestEnvResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("SMART_SANITIZE", "1")
        assert resolve(False) is False
        monkeypatch.delenv("SMART_SANITIZE")
        assert resolve(True) is True

    def test_env_flag_default(self, monkeypatch):
        monkeypatch.delenv("SMART_SANITIZE", raising=False)
        assert sanitize_from_env() is False
        monkeypatch.setenv("SMART_SANITIZE", "0")
        assert sanitize_from_env() is False
        monkeypatch.setenv("SMART_SANITIZE", "1")
        assert sanitize_from_env() is True

    def test_network_reads_env(self, monkeypatch):
        monkeypatch.setenv("SMART_SANITIZE", "1")
        assert make_network("active", sanitize=None).sanitize is True


class TestHealthyRuns:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_sanitized_run_is_silent(self, kernel):
        net = make_network(kernel)
        net.run_cycles(120)
        net._sync()

    @pytest.mark.parametrize("kernel", ("active", "event"))
    def test_sanitized_dedicated_run_is_silent(self, kernel):
        cfg = NocConfig()
        built = get_workload("transpose").build(cfg)
        net = DedicatedNetwork(
            cfg, __import__("repro.sim.topology", fromlist=["Mesh"]).Mesh(
                cfg.width, cfg.height
            ),
            list(built.flows),
            built.traffic(cfg, load=0.3, seed=3),
            kernel=kernel,
            sanitize=True,
        )
        net.run_cycles(120)
        net._sync()


class TestActiveSetCorruption:
    def test_event_kernel_catches_dropped_router(self):
        net = make_network("event")
        net.run_cycles(60)
        busy = [
            node for node in sorted(net._active_routers)
            if net.routers[node].active
        ]
        assert busy, "fixture must produce active routers"
        net._active_routers.discard(busy[0])
        with pytest.raises(SanitizerError, match="_active_routers"):
            net.run_cycles(1)

    def test_event_kernel_catches_clock_ports_drift(self):
        net = make_network("event")
        net.run_cycles(60)
        net._clock_ports += 1
        with pytest.raises(SanitizerError, match="_clock_ports"):
            net.run_cycles(1)

    def test_event_kernel_catches_spurious_member(self):
        net = make_network("event")
        net.run_cycles(60)
        idle = [
            node for node in sorted(net.routers)
            if not net.routers[node].active
        ]
        assert idle, "fixture must leave some idle routers"
        # The exact set must not contain idle routers: membership alone
        # inflates the event kernel's clock accounting.
        net._active_routers.add(idle[0])
        net._clock_ports += len(net.routers[idle[0]].buffers)
        with pytest.raises(SanitizerError, match="_active_routers"):
            net.run_cycles(1)


class TestOccupancyCorruption:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_occupancy_drift_caught(self, kernel):
        net = make_network(kernel)
        net.run_cycles(60)
        router = next(
            (r for r in net.routers.values() if r.occupancy), None
        )
        assert router is not None, "fixture must buffer flits"
        router.occupancy += 1
        with pytest.raises(SanitizerError, match="occupancy"):
            net.run_cycles(1)


class TestCounterCorruption:
    def test_float_counter_caught_at_sync(self):
        net = make_network("active")
        net.run_cycles(40)
        net.counters.buffer_reads = float(net.counters.buffer_reads)
        with pytest.raises(SanitizerError, match="buffer_reads"):
            net._sync()

    def test_fractional_mm_counter_caught_at_sync(self):
        net = make_network("active")
        net.run_cycles(40)
        assert float(net._mm_per_hop).is_integer()
        net.counters.link_flit_mm += 0.5
        with pytest.raises(SanitizerError, match="link_flit_mm"):
            net._sync()


class _StubChain:
    """Minimal chain-shaped object for corrupting the settlement graph."""

    def __init__(self, cid, feeder=None):
        self.cid = cid
        self.feeder = feeder

    def advance(self, through):
        pass


class TestChainGraphCorruption:
    def _with_stubs(self, *stubs):
        net = make_network("event")
        net.run_cycles(20)
        for stub in stubs:
            net._chains[stub.cid] = stub
        return net

    def test_backward_feeder_links_pass(self):
        producer = _StubChain(10**9)
        consumer = _StubChain(10**9 + 1, feeder=producer)
        net = self._with_stubs(producer, consumer)
        net._sync()

    def test_forward_feeder_link_caught(self):
        producer = _StubChain(10**9)
        consumer = _StubChain(10**9 + 1, feeder=producer)
        producer.feeder = consumer  # points forward: settlement order broken
        net = self._with_stubs(producer, consumer)
        with pytest.raises(SanitizerError, match="feeder"):
            net._sync()

    def test_self_feeding_chain_caught(self):
        loop = _StubChain(10**9)
        loop.feeder = loop
        net = self._with_stubs(loop)
        with pytest.raises(SanitizerError, match="feeder"):
            net._sync()

    def test_mismatched_registration_caught(self):
        stray = _StubChain(10**9)
        net = make_network("event")
        net.run_cycles(20)
        net._chains[10**9 + 7] = stray  # registered under the wrong cid
        with pytest.raises(SanitizerError, match="cid"):
            net._sync()


class TestHistogramCorruption:
    """check_batch cross-checks lane histograms and node-flit counters
    against ground truth recomputed from the delivered-packet lists."""

    def _measuring_engine(self, cycles=300):
        from repro.sim.batch import BatchedEventNetworks

        lanes = [make_network("event", seed=seed) for seed in (3, 5)]
        for net in lanes:
            net.stats.measuring = True
        engine = BatchedEventNetworks(lanes)
        engine.run_cycles(cycles)
        return engine, lanes

    def test_healthy_histograms_pass(self):
        from repro.sim import sanitizer

        engine, lanes = self._measuring_engine()
        assert any(net.stats.hist.total for net in lanes), (
            "fixture must deliver measured packets"
        )
        sanitizer.check_batch(engine)

    def test_histogram_corruption_caught(self):
        from repro.sim import sanitizer

        engine, lanes = self._measuring_engine()
        lanes[0].stats.hist.counts[10] += 1
        with pytest.raises(SanitizerError, match="histogram"):
            sanitizer.check_batch(engine)

    def test_node_flit_corruption_caught(self):
        from repro.sim import sanitizer

        engine, lanes = self._measuring_engine()
        stats = lanes[1].stats
        assert stats.node_flits, "fixture must deliver measured packets"
        node = next(iter(stats.node_flits))
        stats.node_flits[node] += 1
        with pytest.raises(SanitizerError, match="node"):
            sanitizer.check_batch(engine)
