"""Mesh topology unit tests."""

import pytest

from repro.sim.topology import CARDINALS, DIRECTION_VECTORS, Mesh, Port


class TestPort:
    def test_paper_port_order(self):
        assert [p.name for p in Port] == ["EAST", "SOUTH", "WEST", "NORTH", "CORE"]

    def test_opposites_are_involutions(self):
        for port in CARDINALS:
            assert port.opposite.opposite is port

    def test_core_opposite_is_core(self):
        assert Port.CORE.opposite is Port.CORE

    def test_cardinality(self):
        assert all(p.is_cardinal for p in CARDINALS)
        assert not Port.CORE.is_cardinal

    def test_direction_vectors_are_units(self):
        for dx, dy in DIRECTION_VECTORS.values():
            assert abs(dx) + abs(dy) == 1


class TestMesh:
    def test_node_numbering_matches_paper(self):
        mesh = Mesh(4, 4)
        # Fig 1: node 0 bottom-left, 12 top-left, 15 top-right.
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(12) == (0, 3)
        assert mesh.coords(15) == (3, 3)

    def test_node_at_roundtrip(self):
        mesh = Mesh(5, 3)
        for node in mesh.nodes():
            assert mesh.node_at(*mesh.coords(node)) == node

    def test_neighbors(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor(5, Port.EAST) == 6
        assert mesh.neighbor(5, Port.WEST) == 4
        assert mesh.neighbor(5, Port.NORTH) == 9
        assert mesh.neighbor(5, Port.SOUTH) == 1
        assert mesh.neighbor(5, Port.CORE) is None

    def test_edge_neighbors_are_none(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor(0, Port.WEST) is None
        assert mesh.neighbor(0, Port.SOUTH) is None
        assert mesh.neighbor(15, Port.EAST) is None
        assert mesh.neighbor(15, Port.NORTH) is None

    def test_degree(self):
        mesh = Mesh(4, 4)
        assert mesh.degree(0) == 2
        assert mesh.degree(1) == 3
        assert mesh.degree(5) == 4

    def test_direction_between(self):
        mesh = Mesh(4, 4)
        assert mesh.direction_between(8, 9) is Port.EAST
        assert mesh.direction_between(9, 8) is Port.WEST
        assert mesh.direction_between(9, 13) is Port.NORTH
        assert mesh.direction_between(13, 9) is Port.SOUTH

    def test_direction_between_non_adjacent_raises(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            mesh.direction_between(0, 15)

    def test_hop_distance(self):
        mesh = Mesh(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(0, 0) == 0
        assert mesh.hop_distance(8, 3) == 5

    def test_distance_mm_uses_pitch(self):
        mesh = Mesh(4, 4)
        assert mesh.distance_mm(0, 15) == pytest.approx(6.0)
        assert mesh.distance_mm(0, 15, mm_per_hop=0.5) == pytest.approx(3.0)

    def test_links_count(self):
        mesh = Mesh(4, 4)
        # 2 * (W*(H-1) + H*(W-1)) directed links.
        assert sum(1 for _ in mesh.links()) == 2 * (4 * 3 + 4 * 3)

    def test_center_nodes_max_degree_first(self):
        mesh = Mesh(4, 4)
        centers = mesh.center_nodes()
        assert set(centers) == {5, 6, 9, 10}
        assert all(mesh.degree(c) == 4 for c in centers)

    def test_center_of_odd_mesh(self):
        mesh = Mesh(3, 3)
        assert mesh.center_nodes()[0] == 4

    def test_bad_node_raises(self):
        mesh = Mesh(2, 2)
        with pytest.raises(ValueError):
            mesh.coords(4)
        with pytest.raises(ValueError):
            mesh.coords(-1)

    def test_bad_dimensions_raise(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(4, -1)

    def test_single_node_mesh(self):
        mesh = Mesh(1, 1)
        assert mesh.num_nodes == 1
        assert mesh.neighbors(0) == []
