"""Event kernel vs legacy kernel: results must be bit-identical.

The event kernel schedules deterministic chain traversals as single
heap events — including cascades through intermediate hand-offs, whose
feeder-ordered settlement is pinned here at adversarial snapshot cycles
— and runs switch allocation only on wake events; these tests pin down
that none of it is observable: identical latency summaries, per-flow
summaries, event counters and per-packet timestamps across every
registered workload (all 8 SoC apps and all 6 synthetic patterns),
multiple seeds, both the mesh and SMART designs, and saturated
(clamped) operation.
"""

import pytest

from repro.apps.registry import PAPER_APP_ORDER
from repro.config import NocConfig
from repro.core.noc_builder import build_smart_noc
from repro.sim.flow import Flow
from repro.sim.network import KERNELS, _MidChain, _NicMidChain
from repro.sim.patterns import PATTERNS
from repro.sim.topology import Port
from repro.sim.traffic import RateScaledTraffic, ScriptedTraffic
from repro.workloads import build_workload

#: The six pure synthetic patterns; the background_hotspot composite
#: (summed uniform + hotspot demand sets) gets its own case below.
PURE_PATTERNS = tuple(p for p in PATTERNS if p != "background_hotspot")

#: Short-but-representative run window; small enough that the full
#: 8-app x 6-pattern matrix stays in tier-1 budget, long enough that
#: measurement-window snapshots land mid-chain.
RUN = dict(warmup_cycles=150, measure_cycles=900, drain_limit=12000)


class TestScriptedEquivalence:
    def test_fig7_per_packet_timestamps_identical(self, cfg, fig7_flow_set):
        results = {}
        for kernel in ("legacy", "event"):
            flows = list(fig7_flow_set)
            noc = build_smart_noc(
                cfg, flows,
                traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
                kernel=kernel,
            )
            noc.network.stats.measuring = True
            noc.network.run_cycles(200)
            results[kernel] = (
                {
                    p.flow_id: (p.create_cycle, p.inject_cycle,
                                p.head_arrive_cycle, p.tail_arrive_cycle)
                    for p in noc.network.stats.measured_delivered
                },
                noc.network.counters,
            )
        assert results["legacy"] == results["event"]

    def test_fig7_single_cycle_paths_preserved(self, cfg, fig7_flow_set):
        flows = list(fig7_flow_set)
        noc = build_smart_noc(
            cfg, flows,
            traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
            kernel="event",
        )
        noc.network.stats.measuring = True
        noc.network.run_cycles(200)
        by_name = {
            flows[p.flow_id].name: p.head_latency
            for p in noc.network.stats.measured_delivered
        }
        assert by_name["green"] == 1
        assert by_name["purple"] == 1


class TestAllWorkloadsEquivalence:
    """The acceptance matrix: every registered workload, across seeds."""

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_apps_identical_on_smart(
        self, cfg, make_workload, run_design, app, seed
    ):
        built = make_workload(app, cfg, seed=seed)
        legacy = run_design(built, cfg, "smart", "legacy", 4.0, seed, **RUN)
        event = run_design(built, cfg, "smart", "event", 4.0, seed, **RUN)
        assert legacy == event

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("pattern", PURE_PATTERNS)
    def test_patterns_identical_on_smart_8x8(
        self, make_workload, run_design, pattern, seed
    ):
        cfg = NocConfig(width=8, height=8)
        built = make_workload(pattern, cfg, seed=seed)
        legacy = run_design(built, cfg, "smart", "legacy", 0.01, seed, **RUN)
        event = run_design(built, cfg, "smart", "event", 0.01, seed, **RUN)
        assert legacy == event

    def test_composite_workload_identical_on_smart_8x8(
        self, make_workload, run_design
    ):
        """The background_hotspot mix sums demand sets, so sources
        inject several flows through one NIC port — worth its own pin."""
        cfg = NocConfig(width=8, height=8)
        built = make_workload("background_hotspot", cfg, seed=1)
        legacy = run_design(built, cfg, "smart", "legacy", 0.02, 1, **RUN)
        event = run_design(built, cfg, "smart", "event", 0.02, 1, **RUN)
        assert legacy == event

    @pytest.mark.parametrize("app", ["PIP", "VOPD"])
    def test_apps_identical_on_mesh(self, cfg, make_workload, run_design, app):
        built = make_workload(app, cfg)
        legacy = run_design(built, cfg, "mesh", "legacy", 4.0, 1, **RUN)
        event = run_design(built, cfg, "mesh", "event", 4.0, 1, **RUN)
        assert legacy == event

    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement"])
    def test_patterns_identical_on_mesh_8x8(
        self, make_workload, run_design, pattern
    ):
        cfg = NocConfig(width=8, height=8)
        built = make_workload(pattern, cfg)
        legacy = run_design(built, cfg, "mesh", "legacy", 0.01, 1, **RUN)
        event = run_design(built, cfg, "mesh", "event", 0.01, 1, **RUN)
        assert legacy == event

    def test_saturated_run_identical_and_survives(
        self, cfg, make_workload, make_network
    ):
        """Past saturation (clamped flows) the event kernel agrees with
        the legacy kernel and neither crashes."""
        built = make_workload("PIP", cfg)
        results = {}
        for kernel in ("legacy", "event"):
            instance = make_network(
                built, cfg, design="mesh", kernel=kernel, load=1024.0, seed=1
            )
            assert instance.network.traffic.clamped_rates, \
                "scale 1024 should clamp flows"
            r = instance.run(
                warmup_cycles=100, measure_cycles=1000, drain_limit=500
            )
            results[kernel] = (r.summary, r.counters, r.drained)
        assert results["legacy"] == results["event"]

    def test_run_cycles_settles_chains(self, make_workload, make_network):
        """Counters read after run_cycles must already include in-flight
        chain traversals (the _sync settlement path)."""
        cfg = NocConfig(width=8, height=8)
        built = make_workload("uniform", cfg, seed=3)
        counters = {}
        for kernel in ("legacy", "event"):
            net = make_network(
                built, cfg, design="smart", kernel=kernel, load=0.02, seed=3
            ).network
            # An odd cycle count lands mid-packet for most streams.
            net.run_cycles(1237)
            counters[kernel] = (net.counters, net.stats.delivered_total)
        assert counters["legacy"] == counters["event"]


# ----------------------------------------------------------------------
# Cascaded chains: snapshots at adversarial cycles, chain graph, unchain
# ----------------------------------------------------------------------

#: Cascade scenario: an 8x2 mesh with HPC_max=2 chops a west-to-east
#: route into four 2-hop segments, so one packet crosses three
#: intermediate hand-offs (NIC chain -> mid-chain -> mid-chain -> final
#: chain) — the deepest cascade expressible on this mesh.
CASCADE_CFG = NocConfig(width=8, height=2, hpc_max=2)
INJECT_CYCLE = 5


def cascade_flows(contended: bool = False):
    flows = [
        Flow(0, 0, 7, 1e6, route=(Port.EAST,) * 7 + (Port.CORE,),
             name="cascade"),
    ]
    if contended:
        # Joins the first flow's path at router 2 and shares the
        # east-bound links (and therefore the hand-off stops) to 6.
        flows.append(
            Flow(1, 10, 6, 1e6,
                 route=(Port.SOUTH,) + (Port.EAST,) * 4 + (Port.CORE,),
                 name="crosser")
        )
    return flows


def cascade_network(kernel, contended=False, inject=(INJECT_CYCLE,)):
    flows = cascade_flows(contended)
    schedule = [
        (cycle, flow.flow_id) for cycle in inject for flow in flows
    ]
    noc = build_smart_noc(
        CASCADE_CFG, flows, traffic=ScriptedTraffic(schedule), kernel=kernel
    )
    return noc.network


def cascade_state(net):
    """Everything a per-cycle kernel exposes at a snapshot boundary."""
    return (
        net.counters,
        net.stats.delivered_total,
        {
            node: [len(vc) for buf in router.buffers.values()
                   for vc in buf.vcs]
            for node, router in sorted(net.routers.items())
        },
        {node: sink.flits_received
         for node, sink in sorted(net.nic_sinks.items())},
    )


class TestMidChainSnapshots:
    """Counter snapshots taken mid-cascade must equal a per-cycle run.

    PR 4 pinned only end-of-run and coarse (measurement-window)
    snapshots; these cuts land *inside* the deferred window of every
    chain in a producer -> consumer cascade: mid-chain, exactly at each
    hand-off, and one cycle before the tail.
    """

    def test_cascade_uses_mid_chains(self):
        """The scenario actually exercises the new machinery: a NIC
        chain feeding mid-chains feeding a final chain, linked into a
        dependency graph."""
        net = cascade_network("event")
        net.run_cycles(INJECT_CYCLE + 5)
        kinds = {type(c).__name__ for c in net._chains.values()}
        assert "_NicMidChain" in kinds
        assert "_MidChain" in kinds
        mids = [c for c in net._chains.values() if type(c) is _MidChain]
        feeders = {c.feeder for c in mids if c.feeder is not None}
        assert feeders, "mid-chains must link back to their feeders"
        assert all(
            type(f) in (_MidChain, _NicMidChain) for f in feeders
        )

    @pytest.mark.parametrize("contended", [False, True],
                             ids=["single-flow", "contended"])
    @pytest.mark.parametrize("cut", range(INJECT_CYCLE, INJECT_CYCLE + 35))
    def test_snapshot_matches_per_cycle_run(self, contended, cut):
        """Dense cut sweep across the whole cascade window: every
        prefix of the run settles to the exact per-cycle state."""
        legacy = cascade_network("legacy", contended)
        legacy.run_cycles(cut)
        event = cascade_network("event", contended)
        event.run_cycles(cut)
        assert cascade_state(legacy) == cascade_state(event)

    def test_snapshot_exactly_at_handoffs_and_before_tail(self):
        """Name the adversarial cuts explicitly: each hand-off cycle
        (first buffer write at an intermediate router, probed from a
        legacy run) and one cycle before the packet's tail arrival."""
        probe = cascade_network("legacy")
        handoffs = []
        last_writes = 0
        while probe.stats.delivered_total == 0:
            probe.step()
            if probe.counters.buffer_writes > last_writes:
                last_writes = probe.counters.buffer_writes
                handoffs.append(probe.cycle)
            assert probe.cycle < 200, "cascade never delivered"
        tail_cycle = probe.cycle
        assert len(handoffs) >= 3, "expected >= 3 hand-off stops"
        for cut in sorted(set(handoffs + [tail_cycle - 1])):
            legacy = cascade_network("legacy")
            legacy.run_cycles(cut)
            event = cascade_network("event")
            event.run_cycles(cut)
            assert cascade_state(legacy) == cascade_state(event), \
                "snapshot diverged at cut %d" % cut

    def test_back_to_back_packets_through_cascade(self):
        """Consecutive packets reuse hand-off VCs; credits and busy
        flags must settle across chain generations."""
        inject = (INJECT_CYCLE, INJECT_CYCLE + 2, INJECT_CYCLE + 11)
        for cut in (18, 27, 33, 60):
            legacy = cascade_network("legacy", inject=inject)
            legacy.run_cycles(cut)
            event = cascade_network("event", inject=inject)
            event.run_cycles(cut)
            assert cascade_state(legacy) == cascade_state(event), \
                "snapshot diverged at cut %d" % cut


class TestUnchain:
    """A consumer stall un-chains its feeders: the reverted streams run
    per-cycle, settle exactly once, and stay bit-identical."""

    def _unchained_run(self, victim_type, cut=INJECT_CYCLE + 6):
        net = cascade_network("event")
        net.run_cycles(cut)
        victims = [
            c for c in net._chains.values() if type(c) is victim_type
        ]
        assert victims, "no %s in flight at cut %d" % (victim_type, cut)
        victim = victims[0]
        # Un-chain through the stall entry point: the key of the
        # hand-off VC the victim writes into.  The cycle argument is
        # the tick in which the (hypothetical) stall is observed — the
        # tick about to execute.
        node, port, vc_id = victim.writer_key
        assert net._ev_unchain_feeders(node, port, vc_id, net.cycle)
        assert victim.cid not in net._chains
        assert net._chain_writers.get(victim.writer_key) is not victim
        net.run_cycles(60 - cut)
        return net

    @pytest.mark.parametrize("victim_type", [_MidChain, _NicMidChain],
                             ids=["mid-chain", "nic-chain"])
    def test_unchained_stream_stays_bit_identical(self, victim_type):
        legacy = cascade_network("legacy")
        legacy.run_cycles(60)
        event = self._unchained_run(victim_type)
        assert cascade_state(legacy) == cascade_state(event)

    def test_unchain_is_recursive_over_feeders(self):
        """Un-chaining a consumer's feeder also un-chains the feeder's
        own feeder (the whole upstream cascade reverts)."""
        net = cascade_network("event")
        net.run_cycles(INJECT_CYCLE + 6)
        mids = [c for c in net._chains.values() if type(c) is _MidChain]
        with_feeder = [c for c in mids if c.feeder is not None
                       and c.feeder.cid in net._chains]
        assert with_feeder, "expected a mid-chain with a live feeder"
        victim = with_feeder[0]
        feeder = victim.feeder
        net._ev_unchain(victim, net.cycle)
        assert victim.cid not in net._chains
        assert feeder.cid not in net._chains, "feeder must revert too"
        legacy = cascade_network("legacy")
        legacy.run_cycles(60)
        net.run_cycles(60 - (INJECT_CYCLE + 6))
        assert cascade_state(legacy) == cascade_state(net)

    def test_unchain_without_writer_is_a_noop(self):
        net = cascade_network("event")
        net.run_cycles(2)
        assert not net._ev_unchain_feeders(0, Port.EAST, 0, net.cycle)


class TestKernelSelection:
    def test_event_kernel_registered(self):
        assert "event" in KERNELS

    def test_unknown_kernel_rejected(self, cfg, fig7_flow_set):
        with pytest.raises(ValueError):
            build_smart_noc(
                cfg, fig7_flow_set,
                traffic=ScriptedTraffic([]), kernel="warp",
            )

    def test_idle_network_gates_every_router(self, cfg, fig7_flow_set):
        noc = build_smart_noc(
            cfg, fig7_flow_set, traffic=ScriptedTraffic([]), kernel="event"
        )
        noc.network.run_cycles(500)
        assert noc.network.counters.clock_router_cycles == 0
        assert noc.network.counters.total_router_cycles == 500 * 16


class TestChainDepthDiagnostic:
    def test_cascade_config_is_cascade_heavy(self):
        """The BuiltWorkload diagnostic selects cascade regimes: the
        same demands that are fully bypassed at HPC_max=8 become deep
        cascades at HPC_max=2."""
        wide = NocConfig(width=8, height=2, hpc_max=8)
        narrow = CASCADE_CFG
        built_wide = build_workload("transpose", NocConfig(width=4, height=4))
        assert built_wide.chain_depth(NocConfig(width=4, height=4)) >= 1
        from repro.workloads import BuiltWorkload
        built = BuiltWorkload(
            "cascade", "injection_rate", tuple(cascade_flows())
        )
        assert built.chain_depth(wide) == 1
        assert built.chain_depth(narrow) == 4
        assert built.chain_depths(narrow) == {0: 4}
