"""Event kernel vs legacy kernel: results must be bit-identical.

The event kernel schedules deterministic chain traversals as single
heap events and runs switch allocation only on wake events; these tests
pin down that none of it is observable — identical latency summaries,
per-flow summaries, event counters and per-packet timestamps across
every registered workload (all 8 SoC apps and all 6 synthetic
patterns), multiple seeds, both the mesh and SMART designs, and
saturated (clamped) operation.
"""

import pytest

from repro.apps.registry import PAPER_APP_ORDER
from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.eval.designs import build_design
from repro.eval.scenarios import fig7_flows
from repro.sim.network import KERNELS
from repro.sim.patterns import PATTERNS
from repro.sim.traffic import RateScaledTraffic, ScriptedTraffic
from repro.workloads import build_seed_for, build_workload

#: The six pure synthetic patterns; the background_hotspot composite
#: (summed uniform + hotspot demand sets) gets its own case below.
PURE_PATTERNS = tuple(p for p in PATTERNS if p != "background_hotspot")

#: Short-but-representative run window; small enough that the full
#: 8-app x 6-pattern matrix stays in tier-1 budget, long enough that
#: measurement-window snapshots land mid-chain.
RUN = dict(warmup_cycles=150, measure_cycles=900, drain_limit=12000)


def _result_tuple(result):
    return (
        result.summary,
        result.per_flow,
        result.counters,
        result.measured_cycles,
        result.total_cycles,
        result.drained,
        result.undelivered_measured,
    )


def _run(built, cfg, design, kernel, mode, load, seed):
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=load, seed=seed, mode=mode
    )
    instance = build_design(
        design, cfg, built.flows, traffic=traffic, kernel=kernel
    )
    return _result_tuple(instance.run(**RUN))


class TestScriptedEquivalence:
    def test_fig7_per_packet_timestamps_identical(self, cfg):
        results = {}
        for kernel in ("legacy", "event"):
            flows = fig7_flows()
            noc = build_smart_noc(
                cfg, flows,
                traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
                kernel=kernel,
            )
            noc.network.stats.measuring = True
            noc.network.run_cycles(200)
            results[kernel] = (
                {
                    p.flow_id: (p.create_cycle, p.inject_cycle,
                                p.head_arrive_cycle, p.tail_arrive_cycle)
                    for p in noc.network.stats.measured_delivered
                },
                noc.network.counters,
            )
        assert results["legacy"] == results["event"]

    def test_fig7_single_cycle_paths_preserved(self, cfg):
        flows = fig7_flows()
        noc = build_smart_noc(
            cfg, flows,
            traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
            kernel="event",
        )
        noc.network.stats.measuring = True
        noc.network.run_cycles(200)
        by_name = {
            flows[p.flow_id].name: p.head_latency
            for p in noc.network.stats.measured_delivered
        }
        assert by_name["green"] == 1
        assert by_name["purple"] == 1


class TestAllWorkloadsEquivalence:
    """The acceptance matrix: every registered workload, across seeds."""

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_apps_identical_on_smart(self, cfg, app, seed):
        built = build_workload(app, cfg, seed=build_seed_for(app, seed))
        legacy = _run(built, cfg, "smart", "legacy", "legacy", 4.0, seed)
        event = _run(built, cfg, "smart", "event", "predraw", 4.0, seed)
        assert legacy == event

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("pattern", PURE_PATTERNS)
    def test_patterns_identical_on_smart_8x8(self, pattern, seed):
        cfg = NocConfig(width=8, height=8)
        built = build_workload(
            pattern, cfg, seed=build_seed_for(pattern, seed)
        )
        legacy = _run(built, cfg, "smart", "legacy", "legacy", 0.01, seed)
        event = _run(built, cfg, "smart", "event", "predraw", 0.01, seed)
        assert legacy == event

    def test_composite_workload_identical_on_smart_8x8(self):
        """The background_hotspot mix sums demand sets, so sources
        inject several flows through one NIC port — worth its own pin."""
        cfg = NocConfig(width=8, height=8)
        built = build_workload(
            "background_hotspot", cfg,
            seed=build_seed_for("background_hotspot", 1),
        )
        legacy = _run(built, cfg, "smart", "legacy", "legacy", 0.02, 1)
        event = _run(built, cfg, "smart", "event", "predraw", 0.02, 1)
        assert legacy == event

    @pytest.mark.parametrize("app", ["PIP", "VOPD"])
    def test_apps_identical_on_mesh(self, cfg, app):
        built = build_workload(app, cfg)
        legacy = _run(built, cfg, "mesh", "legacy", "legacy", 4.0, 1)
        event = _run(built, cfg, "mesh", "event", "predraw", 4.0, 1)
        assert legacy == event

    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement"])
    def test_patterns_identical_on_mesh_8x8(self, pattern):
        cfg = NocConfig(width=8, height=8)
        built = build_workload(pattern, cfg)
        legacy = _run(built, cfg, "mesh", "legacy", "legacy", 0.01, 1)
        event = _run(built, cfg, "mesh", "event", "predraw", 0.01, 1)
        assert legacy == event

    def test_saturated_run_identical_and_survives(self, cfg):
        """Past saturation (clamped flows) the event kernel agrees with
        the legacy kernel and neither crashes."""
        built = build_workload("PIP", cfg)
        results = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            traffic = RateScaledTraffic(
                cfg, built.flows, scale=1024.0, seed=1, mode=mode
            )
            assert traffic.clamped_rates, "scale 1024 should clamp flows"
            instance = build_design(
                "mesh", cfg, built.flows, traffic=traffic, kernel=kernel
            )
            r = instance.run(
                warmup_cycles=100, measure_cycles=1000, drain_limit=500
            )
            results[kernel] = (r.summary, r.counters, r.drained)
        assert results["legacy"] == results["event"]

    def test_run_cycles_settles_chains(self):
        """Counters read after run_cycles must already include in-flight
        chain traversals (the _sync settlement path)."""
        cfg = NocConfig(width=8, height=8)
        built = build_workload("uniform", cfg, seed=3)
        counters = {}
        for kernel, mode in (("legacy", "legacy"), ("event", "predraw")):
            traffic = RateScaledTraffic(
                cfg, built.flows, scale=0.02, seed=3, mode=mode
            )
            noc = build_smart_noc(
                cfg, built.flows, traffic=traffic, kernel=kernel
            )
            # An odd cycle count lands mid-packet for most streams.
            noc.network.run_cycles(1237)
            counters[kernel] = (
                noc.network.counters, noc.network.stats.delivered_total
            )
        assert counters["legacy"] == counters["event"]


class TestKernelSelection:
    def test_event_kernel_registered(self):
        assert "event" in KERNELS

    def test_unknown_kernel_rejected(self, cfg, fig7_flow_set):
        with pytest.raises(ValueError):
            build_smart_noc(
                cfg, fig7_flow_set,
                traffic=ScriptedTraffic([]), kernel="warp",
            )

    def test_idle_network_gates_every_router(self, cfg, fig7_flow_set):
        noc = build_smart_noc(
            cfg, fig7_flow_set, traffic=ScriptedTraffic([]), kernel="event"
        )
        noc.network.run_cycles(500)
        assert noc.network.counters.clock_router_cycles == 0
        assert noc.network.counters.total_router_cycles == 500 * 16
