"""Packet and flit unit tests."""

import pytest

from repro.sim.packet import Flit, FlitType, Packet


def make_packet(size=8, create=10):
    return Packet(flow_id=0, src=0, dst=5, size_flits=size, create_cycle=create)


class TestFlitType:
    def test_head_tail_flags(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail


class TestPacket:
    def test_flit_sequence_paper_sizes(self):
        # Table II: 256-bit packets of 32-bit flits = 8 flits.
        flits = make_packet(8).flits()
        assert len(flits) == 8
        assert flits[0].ftype is FlitType.HEAD
        assert flits[-1].ftype is FlitType.TAIL
        assert all(f.ftype is FlitType.BODY for f in flits[1:-1])
        assert [f.seq for f in flits] == list(range(8))

    def test_single_flit_packet(self):
        flits = make_packet(1).flits()
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.HEAD_TAIL

    def test_two_flit_packet_has_no_body(self):
        flits = make_packet(2).flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(0)

    def test_unique_pids(self):
        assert make_packet().pid != make_packet().pid

    def test_head_latency_single_cycle(self):
        packet = make_packet(create=5)
        packet.inject_cycle = 5
        packet.head_arrive_cycle = 5
        # Fig 7: same-cycle NIC-to-NIC traversal counts as latency 1.
        assert packet.head_latency == 1

    def test_packet_latency_includes_serialization(self):
        packet = make_packet(size=8, create=0)
        packet.inject_cycle = 0
        packet.head_arrive_cycle = 0
        packet.tail_arrive_cycle = 7
        assert packet.packet_latency == 8

    def test_network_latency_excludes_source_queueing(self):
        packet = make_packet(create=0)
        packet.inject_cycle = 4
        packet.head_arrive_cycle = 4
        assert packet.network_latency == 1
        assert packet.head_latency == 5

    def test_latency_before_delivery_raises(self):
        packet = make_packet()
        with pytest.raises(ValueError):
            _ = packet.head_latency
        with pytest.raises(ValueError):
            _ = packet.packet_latency

    def test_delivered_flag(self):
        packet = make_packet()
        assert not packet.delivered
        packet.tail_arrive_cycle = 3
        assert packet.delivered


class TestFlit:
    def test_flit_vc_mutable(self):
        packet = make_packet()
        flit = Flit(packet, FlitType.HEAD, 0)
        assert flit.vc is None
        flit.vc = 1
        assert flit.vc == 1

    def test_repr_mentions_type(self):
        flit = make_packet().flits()[0]
        assert "head" in repr(flit)
