"""Flow and route representation tests."""

import pytest

from repro.sim.flow import Flow, validate_flow_set, xy_route
from repro.sim.topology import Mesh, Port


class TestFlowValidation:
    def test_route_must_end_with_core(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 1, 1e6, route=(Port.EAST,))

    def test_route_cannot_eject_early(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 2, 1e6, route=(Port.EAST, Port.CORE, Port.CORE))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 3, 3, 1e6, route=(Port.CORE,))

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 1, -5.0, route=(Port.EAST, Port.CORE))

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 1, 1e6, route=())


class TestFlowGeometry:
    def test_routers_fig7_blue(self, mesh):
        blue = Flow(
            0, 8, 3, 1e6,
            route=(Port.EAST, Port.EAST, Port.EAST, Port.SOUTH, Port.SOUTH, Port.CORE),
        )
        assert blue.routers(mesh) == [8, 9, 10, 11, 7, 3]
        assert blue.hops(mesh) == 5

    def test_route_leaving_mesh_raises(self, mesh):
        flow = Flow(0, 3, 7, 1e6, route=(Port.EAST, Port.NORTH, Port.CORE))
        with pytest.raises(ValueError):
            flow.routers(mesh)

    def test_route_wrong_destination_raises(self, mesh):
        flow = Flow(0, 0, 5, 1e6, route=(Port.EAST, Port.CORE))  # ends at 1
        with pytest.raises(ValueError):
            flow.routers(mesh)

    def test_port_traversals(self, mesh):
        flow = Flow(0, 0, 5, 1e6, route=(Port.EAST, Port.NORTH, Port.CORE))
        assert flow.port_traversals(mesh) == [
            (0, Port.CORE, Port.EAST),
            (1, Port.WEST, Port.NORTH),
            (5, Port.SOUTH, Port.CORE),
        ]

    def test_links(self, mesh):
        flow = Flow(0, 0, 5, 1e6, route=(Port.EAST, Port.NORTH, Port.CORE))
        assert flow.links(mesh) == [(0, 1), (1, 5)]


class TestXyRoute:
    def test_east_then_north(self, mesh):
        assert xy_route(mesh, 0, 5) == (Port.EAST, Port.NORTH, Port.CORE)

    def test_west_then_south(self, mesh):
        assert xy_route(mesh, 15, 0) == (
            Port.WEST, Port.WEST, Port.WEST,
            Port.SOUTH, Port.SOUTH, Port.SOUTH, Port.CORE,
        )

    def test_straight_line(self, mesh):
        assert xy_route(mesh, 0, 3) == (Port.EAST, Port.EAST, Port.EAST, Port.CORE)

    def test_self_route_rejected(self, mesh):
        with pytest.raises(ValueError):
            xy_route(mesh, 3, 3)

    def test_route_is_minimal(self, mesh):
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                route = xy_route(mesh, src, dst)
                flow = Flow(0, src, dst, 1.0, route)
                assert flow.hops(mesh) == mesh.hop_distance(src, dst)


class TestValidateFlowSet:
    def test_duplicate_ids_rejected(self, mesh):
        flows = [
            Flow(0, 0, 1, 1e6, route=(Port.EAST, Port.CORE)),
            Flow(0, 1, 2, 1e6, route=(Port.EAST, Port.CORE)),
        ]
        with pytest.raises(ValueError):
            validate_flow_set(flows, mesh)

    def test_valid_set_passes(self, mesh, fig7_flow_set):
        validate_flow_set(fig7_flow_set, mesh)
