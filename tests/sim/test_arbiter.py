"""Arbiter tests: round-robin fairness is what serialises Fig 7's
red/blue flows at a shared output port."""

import pytest

from repro.sim.arbiter import FixedPriorityArbiter, RoundRobinArbiter


class TestFixedPriority:
    def test_grants_first(self):
        arb = FixedPriorityArbiter()
        assert arb.grant(["b", "a"]) == "b"

    def test_empty_returns_none(self):
        assert FixedPriorityArbiter().grant([]) is None


class TestRoundRobin:
    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        for _ in range(5):
            assert arb.grant(["b"]) == "b"

    def test_rotates_among_persistent_requesters(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        grants = [arb.grant(["a", "b", "c"]) for _ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_fairness_two_requesters(self):
        arb = RoundRobinArbiter(["red", "blue"])
        grants = [arb.grant(["red", "blue"]) for _ in range(10)]
        assert grants.count("red") == 5
        assert grants.count("blue") == 5

    def test_priority_moves_past_winner(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant(["a", "c"]) == "a"
        # After a wins, b has priority; b not requesting, c is next.
        assert arb.grant(["a", "c"]) == "c"
        assert arb.grant(["a", "c"]) == "a"

    def test_empty_returns_none(self):
        arb = RoundRobinArbiter(["a"])
        assert arb.grant([]) is None

    def test_unknown_requester_raises(self):
        arb = RoundRobinArbiter(["a"])
        with pytest.raises(ValueError):
            arb.grant(["zz"])

    def test_duplicate_clients_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a", "a"])

    def test_no_clients_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter([])

    def test_tuple_clients(self):
        # The router uses (input port, VC id) pairs as clients.
        arb = RoundRobinArbiter([("w", 0), ("w", 1), ("e", 0)])
        assert arb.grant([("e", 0), ("w", 1)]) in {("e", 0), ("w", 1)}

    def test_clients_copy(self):
        clients = ["a", "b"]
        arb = RoundRobinArbiter(clients)
        clients.append("c")
        assert arb.clients == ["a", "b"]
