"""Trace replay: parsing, flow derivation, cross-kernel identity."""

import pytest

from repro.config import NocConfig
from repro.sim.trace import (
    TraceRecord,
    compare_results,
    load_trace,
    parse_trace_csv,
    parse_trace_jsonl,
    replay_all_kernels,
    replay_trace,
    trace_flows,
    trace_span,
    write_trace_jsonl,
)

RECORDS = [
    TraceRecord(0, 0, 5),
    TraceRecord(3, 1, 14),
    TraceRecord(3, 0, 5),
    TraceRecord(9, 12, 3),
]


class TestParsing:
    def test_jsonl_accepts_gem5_style_aliases(self):
        text = (
            '{"time": 4, "source": 1, "destination": 2}\n'
            "# a comment line\n"
            "\n"
            '{"cycle": 0, "src": 3, "dst": 0}\n'
        )
        records = parse_trace_jsonl(text)
        assert records == [TraceRecord(4, 1, 2), TraceRecord(0, 3, 0)]

    def test_csv_header_aliases(self):
        text = "tick,source,dest\n5,2,7\n1,0,3\n"
        assert parse_trace_csv(text) == [
            TraceRecord(5, 2, 7),
            TraceRecord(1, 0, 3),
        ]

    def test_csv_without_required_columns_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_trace_csv("cycle,src\n1,2\n")

    def test_jsonl_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            parse_trace_jsonl('{"cycle": 1, "src": 2}\n')

    def test_record_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            TraceRecord(-1, 0, 1)
        with pytest.raises(ValueError, match="self-loop"):
            TraceRecord(0, 3, 3)

    def test_jsonl_round_trip_sorts(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        write_trace_jsonl(str(path), RECORDS)
        assert load_trace(str(path)) == sorted(RECORDS)

    def test_span(self):
        assert trace_span(RECORDS) == 10
        assert trace_span([]) == 0


class TestFlows:
    def test_one_flow_per_pair_with_observed_rate(self):
        cfg = NocConfig()
        flows, schedule = trace_flows(cfg, sorted(RECORDS))
        pairs = {(f.src, f.dst) for f in flows}
        assert pairs == {(0, 5), (1, 14), (12, 3)}
        # Every injection appears once, in capture order.
        assert len(schedule) == len(RECORDS)
        assert [cycle for cycle, _fid in schedule] == sorted(
            r.cycle for r in RECORDS
        )
        # (0, 5) carries twice the observed rate of the single-packet
        # pairs: bandwidth is packets/span scaled to bytes/s.
        by_pair = {(f.src, f.dst): f for f in flows}
        assert by_pair[(0, 5)].bandwidth_bps == pytest.approx(
            2 * by_pair[(1, 14)].bandwidth_bps
        )


class TestReplay:
    def test_all_kernels_and_batched_lane_identical(self):
        results = replay_all_kernels(sorted(RECORDS), NocConfig())
        assert sorted(results) == [
            "active", "event", "event+batched", "legacy",
        ]
        assert compare_results(results) == []
        assert results["legacy"].summary.count == len(RECORDS)
        assert results["legacy"].drained

    def test_empty_trace_runs_and_drains(self):
        result = replay_trace([], NocConfig())
        assert result.summary.count == 0
        assert result.drained

    def test_compare_results_reports_divergence(self):
        base = replay_trace(sorted(RECORDS), NocConfig())
        other = replay_trace(sorted(RECORDS)[:2], NocConfig())
        mismatches = compare_results({"legacy": base, "active": other})
        assert mismatches
        assert any("active" in line for line in mismatches)

    def test_replay_from_file_path(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        write_trace_jsonl(str(path), sorted(RECORDS))
        result = replay_trace(str(path), NocConfig(), design="mesh")
        assert result.summary.count == len(RECORDS)
