"""Chip-measurement and BER model tests (§III)."""

import pytest

from repro.circuits.signaling import (
    BER_TARGET,
    CHIP_FULL_SWING,
    CHIP_LINK_MM,
    CHIP_VLR,
    chip_measurements,
)


class TestChipNumbers:
    """The fabricated 45 nm SOI test-chip measurements."""

    def test_vlr_max_rate(self):
        vlr, _ = chip_measurements()
        assert vlr["max_rate_gbps"] == pytest.approx(6.8)

    def test_vlr_power_and_energy(self):
        vlr, _ = chip_measurements()
        assert vlr["power_mw"] == pytest.approx(4.14, abs=0.05)
        assert vlr["energy_fj_per_bit"] == pytest.approx(608, rel=0.01)

    def test_vlr_at_5p5(self):
        vlr, _ = chip_measurements()
        assert vlr["power_mw_at_5p5"] == pytest.approx(3.78, abs=0.05)
        assert vlr["energy_fj_per_bit_at_5p5"] == pytest.approx(687, rel=0.01)

    def test_full_swing_numbers(self):
        _, full = chip_measurements()
        assert full["max_rate_gbps"] == pytest.approx(5.5)
        assert full["power_mw"] == pytest.approx(4.21, abs=0.05)
        assert full["energy_fj_per_bit"] == pytest.approx(765, rel=0.01)

    def test_delays(self):
        vlr, full = chip_measurements()
        assert vlr["delay_ps_per_mm"] == 60.0
        assert full["delay_ps_per_mm"] == 100.0

    def test_ber_below_target_at_max(self):
        vlr, full = chip_measurements()
        assert vlr["ber_at_max"] < BER_TARGET
        assert full["ber_at_max"] < BER_TARGET


class TestBerModel:
    def test_ber_monotonic_in_rate(self):
        rates = [2.0, 4.0, 6.0, 6.8, 7.2]
        bers = [CHIP_VLR.ber(r) for r in rates]
        assert bers == sorted(bers)

    def test_full_swing_fails_at_vlr_rate(self):
        """Full-swing cannot sustain 6.8 Gb/s at the BER target."""
        assert CHIP_FULL_SWING.ber(6.8) > BER_TARGET

    def test_eye_closes_at_intrinsic_rate(self):
        assert CHIP_VLR.eye_margin_v(CHIP_VLR.intrinsic_rate_gbps) == 0.0
        assert CHIP_VLR.ber(CHIP_VLR.intrinsic_rate_gbps + 1) == 0.5

    def test_margin_positive_below_max(self):
        assert CHIP_VLR.eye_margin_v(5.0) > 0.0

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            CHIP_VLR.ber(0.0)
        with pytest.raises(ValueError):
            CHIP_VLR.energy_fj_per_bit_mm(-2.0)


class TestEnergyLaw:
    def test_static_dominates_vlr(self):
        """The VLR's static current paths make its energy/bit fall with
        rate (more bits amortise the static power)."""
        assert CHIP_VLR.energy_fj_per_bit_mm(6.8) < CHIP_VLR.energy_fj_per_bit_mm(4.0)

    def test_full_swing_flat(self):
        assert CHIP_FULL_SWING.energy_fj_per_bit_mm(
            5.5
        ) == CHIP_FULL_SWING.energy_fj_per_bit_mm(3.0)

    def test_power_scales_with_length(self):
        assert CHIP_VLR.power_mw(5.0, 2 * CHIP_LINK_MM) == pytest.approx(
            2 * CHIP_VLR.power_mw(5.0, CHIP_LINK_MM)
        )
