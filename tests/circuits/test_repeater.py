"""Full-swing repeater model tests."""

import pytest

from repro.circuits.repeater import (
    RepeaterDesign,
    dynamic_energy_fj_per_bit_mm,
    full_swing_delay_ps_per_mm,
    optimal_size,
    stage_delay_ps,
)
from repro.circuits.wire import MIN_DRC, WIDE_SPACING, extract_wire


class TestRepeaterDesign:
    def test_size_scales_drive(self):
        small = RepeaterDesign(10)
        big = RepeaterDesign(100)
        assert big.drive_ohm < small.drive_ohm
        assert big.input_c_f > small.input_c_f

    def test_min_size_enforced(self):
        with pytest.raises(ValueError):
            RepeaterDesign(0.5)


class TestDelay:
    def test_repeated_wire_delay_in_measured_range(self):
        """The chip measures ~100 ps/mm full-swing at min pitch; an ideal
        optimally-sized repeater is somewhat faster."""
        wire = extract_wire(MIN_DRC)
        delay = full_swing_delay_ps_per_mm(wire)
        assert 40.0 < delay < 110.0

    def test_wide_spacing_is_faster(self):
        assert full_swing_delay_ps_per_mm(
            extract_wire(WIDE_SPACING)
        ) < full_swing_delay_ps_per_mm(extract_wire(MIN_DRC))

    def test_optimal_size_is_optimal(self):
        wire = extract_wire(MIN_DRC)
        best = optimal_size(wire)
        t_best = stage_delay_ps(RepeaterDesign(best), wire)
        for factor in (0.5, 0.8, 1.25, 2.0):
            other = stage_delay_ps(RepeaterDesign(best * factor), wire)
            assert other >= t_best * 0.999

    def test_delay_grows_with_segment_length(self):
        wire = extract_wire(MIN_DRC)
        repeater = RepeaterDesign(60)
        assert stage_delay_ps(repeater, wire, 2.0) > 2 * stage_delay_ps(
            repeater, wire, 1.0
        )

    def test_zero_segment_rejected(self):
        with pytest.raises(ValueError):
            stage_delay_ps(RepeaterDesign(10), extract_wire(MIN_DRC), 0.0)


class TestEnergy:
    def test_energy_scales_with_vdd_squared(self):
        wire = extract_wire(MIN_DRC)
        assert dynamic_energy_fj_per_bit_mm(wire, 1.0) == pytest.approx(
            dynamic_energy_fj_per_bit_mm(wire, 0.5) * 4
        )

    def test_activity_scaling(self):
        wire = extract_wire(MIN_DRC)
        assert dynamic_energy_fj_per_bit_mm(
            wire, 0.9, activity=0.25
        ) == pytest.approx(dynamic_energy_fj_per_bit_mm(wire, 0.9) / 4)

    def test_table1_magnitude(self):
        """Random-data activity (~0.5) at 0.9 V lands in Table I's
        80-140 fJ/b/mm band."""
        wire = extract_wire(WIDE_SPACING)
        energy = dynamic_energy_fj_per_bit_mm(wire, 0.9, activity=0.5)
        assert 30.0 < energy < 140.0
