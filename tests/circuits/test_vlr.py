"""VLR behavioural model tests (Fig 2/3)."""

import numpy as np
import pytest

from repro.circuits.vlr import (
    VlrParams,
    simulate_full_swing_stage,
    simulate_vlr_stage,
)
from repro.circuits.wire import MIN_DRC, extract_wire

BITS = [0, 1, 0, 1, 1, 0, 1, 0, 0, 1]
RATE = 6.8  # the chip's max VLR data rate


@pytest.fixture(scope="module")
def waves():
    wire = extract_wire(MIN_DRC)
    low = simulate_vlr_stage(VlrParams(), wire, BITS, RATE)
    full = simulate_full_swing_stage(wire, BITS, RATE)
    return low, full


class TestFig3Shapes:
    def test_low_swing_is_lower(self, waves):
        low, full = waves
        assert low.swing_pp < full.swing_pp * 0.7

    def test_low_swing_centered_near_lock(self, waves):
        low, _ = waves
        params = VlrParams()
        mid = (low.volts.max() + low.volts.min()) / 2.0
        assert abs(mid - params.v_lock) < 0.12

    def test_full_swing_reaches_rails(self, waves):
        _, full = waves
        assert full.volts.max() > 0.8
        assert full.volts.min() < 0.1

    def test_vlr_has_overshoot(self, waves):
        """The delayed feedback overshoots the settled level — the paper's
        'transient overshoots at node X'."""
        low, _ = waves
        settled_high = np.percentile(low.volts, 80)
        assert low.volts.max() - settled_high > 0.01

    def test_vlr_never_rails(self, waves):
        low, _ = waves
        assert low.volts.max() < 0.85
        assert low.volts.min() > 0.05


class TestDynamics:
    def test_vlr_transitions_faster(self):
        """The locked swing crosses the receiver threshold sooner than the
        full-swing RC edge crosses mid-rail (60 vs 100 ps/mm on chip)."""
        wire = extract_wire(MIN_DRC)
        params = VlrParams()
        bits = [0, 1]
        low = simulate_vlr_stage(params, wire, bits, 2.0)
        full = simulate_full_swing_stage(wire, bits, 2.0)
        bit_time_ps = 500.0

        def rise_cross(wave, level):
            idx = np.flatnonzero(wave.volts[len(wave.volts) // 2 :] >= level)
            return idx[0] if len(idx) else 10**9

        low_cross = rise_cross(low, params.v_lock + 0.02)
        full_cross = rise_cross(full, 0.45)
        assert low_cross < full_cross

    def test_waveform_lengths_match_bits(self):
        wire = extract_wire(MIN_DRC)
        wave = simulate_vlr_stage(VlrParams(), wire, [0, 1, 0], 1.0)
        assert len(wave.time_ps) == len(wave.volts)
        assert wave.time_ps[-1] == pytest.approx(3 * 1000.0, rel=0.01)

    def test_bad_rate_rejected(self):
        wire = extract_wire(MIN_DRC)
        with pytest.raises(ValueError):
            simulate_vlr_stage(VlrParams(), wire, BITS, 0.0)
