"""Wire RC model tests."""

import pytest

from repro.circuits.wire import (
    MIN_DRC,
    WIDE_SPACING,
    WireGeometry,
    WireModel,
    extract_wire,
)


class TestExtraction:
    def test_45nm_magnitudes(self):
        wire = extract_wire(MIN_DRC)
        # Typical 45 nm intermediate-layer wire: several hundred ohm/mm,
        # 100-250 fF/mm.
        assert 300 < wire.r_ohm_per_mm < 3000
        assert 50e-15 < wire.c_f_per_mm < 400e-15

    def test_wider_spacing_cuts_coupling(self):
        tight = extract_wire(MIN_DRC)
        wide = extract_wire(WIDE_SPACING)
        assert wide.c_f_per_mm < tight.c_f_per_mm
        assert wide.r_ohm_per_mm == pytest.approx(tight.r_ohm_per_mm)

    def test_wider_wire_cuts_resistance(self):
        narrow = extract_wire(WireGeometry(0.14, 0.14))
        wide = extract_wire(WireGeometry(0.28, 0.14))
        assert wide.r_ohm_per_mm < narrow.r_ohm_per_mm

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            WireGeometry(width_um=0.0, spacing_um=0.14)

    def test_pitch(self):
        assert MIN_DRC.pitch_um == pytest.approx(0.28)
        assert WIDE_SPACING.pitch_um == pytest.approx(0.42)


class TestElmore:
    def test_quadratic_in_length(self):
        wire = extract_wire(MIN_DRC)
        assert wire.elmore_delay_ps(2.0) == pytest.approx(
            4 * wire.elmore_delay_ps(1.0)
        )

    def test_unrepeated_10mm_is_slow(self):
        """The motivation for repeaters: 10 mm unrepeated is far beyond a
        500 ps clock."""
        wire = extract_wire(MIN_DRC)
        assert wire.elmore_delay_ps(10.0) > 1000.0

    def test_rc_product(self):
        wire = WireModel(r_ohm_per_mm=1000.0, c_f_per_mm=100e-15)
        assert wire.rc_s_per_mm2 == pytest.approx(1e-10)
