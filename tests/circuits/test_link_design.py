"""Table I regeneration tests — exact reproduction of the paper's table."""

import pytest

from repro.circuits.link_design import (
    FAB_VARIANTS,
    FULL_SWING_OPT,
    LOW_SWING_OPT,
    OPT_VARIANTS,
    PAPER_TABLE1,
    LinkVariant,
    Swing,
    smart_hpc_max,
    table1,
)


class TestTable1Exact:
    def test_every_cell_matches_paper(self):
        """All 12 (variant, rate) cells: hop counts exact, energies exact
        after rounding."""
        entries = table1()
        assert len(entries) == 12
        for entry in entries:
            hops, energy = PAPER_TABLE1[(entry.variant, entry.data_rate_gbps)]
            assert entry.max_hops == hops, entry
            assert round(entry.energy_fj_per_bit_mm) == energy, entry

    def test_headline_8mm_at_2ghz(self):
        """'At 2 GHz, 8-hop (8 mm) link can be traversed in a cycle at
        104 fJ/b/mm.'"""
        assert LOW_SWING_OPT.max_hops_per_cycle(2.0) == 8
        assert LOW_SWING_OPT.energy_fj_per_bit_mm(2.0) == pytest.approx(104.0)
        assert smart_hpc_max() == 8


class TestShape:
    def test_low_swing_reaches_farther(self):
        """At every rate, the VLR spans at least as many hops as the
        full-swing repeater — the point of §III."""
        for full, low in (OPT_VARIANTS, FAB_VARIANTS):
            for rate in (1.0, 2.0, 3.0, 4.0, 5.0, 5.5):
                assert low.max_hops_per_cycle(rate) >= full.max_hops_per_cycle(rate)

    def test_hops_decrease_with_rate(self):
        for variant in OPT_VARIANTS + FAB_VARIANTS:
            hops = [variant.max_hops_per_cycle(r) for r in (1.0, 2.0, 3.0, 4.0, 5.0)]
            assert hops == sorted(hops, reverse=True)

    def test_delay_superlinear_in_hops(self):
        for variant in OPT_VARIANTS + FAB_VARIANTS:
            t4 = variant.path_delay_ps(4) - variant.path_delay_ps(3)
            t8 = variant.path_delay_ps(8) - variant.path_delay_ps(7)
            assert t8 >= t4

    def test_swing_labels(self):
        assert FULL_SWING_OPT.swing is Swing.FULL
        assert LOW_SWING_OPT.swing is Swing.LOW


class TestValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            LOW_SWING_OPT.max_hops_per_cycle(0.0)
        with pytest.raises(ValueError):
            LOW_SWING_OPT.energy_fj_per_bit_mm(-1.0)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            LOW_SWING_OPT.path_delay_ps(-1)

    def test_zero_hop_delay_is_overhead(self):
        assert LOW_SWING_OPT.path_delay_ps(0) == pytest.approx(
            LOW_SWING_OPT.t_txrx_ps
        )

    def test_impossible_rate_gives_zero_hops(self):
        slow = LinkVariant(
            name="slow", swing=Swing.FULL, t_txrx_ps=900.0, t_mm_ps=200.0,
            t_jitter_ps=0.0, e_dyn_fj=100.0, p_static_fj_g=0.0,
            k_slew_fj_per_g=0.0, m_fj_per_g2=0.0,
        )
        assert slow.max_hops_per_cycle(2.0) == 0
