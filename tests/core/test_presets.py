"""Preset computation tests: the bypass legality rule of §IV."""

import dataclasses

import pytest

from repro.config import NocConfig
from repro.core.presets import InputMode, compute_presets
from repro.eval.scenarios import fig7_flows
from repro.sim.flow import Flow
from repro.sim.segments import BufferEnd, NicEnd, NicStart, OutputStart
from repro.sim.topology import Mesh, Port


def presets_for(flows, cfg=None, **kwargs):
    cfg = cfg or NocConfig()
    return compute_presets(cfg, Mesh(cfg.width, cfg.height), flows, **kwargs)


class TestSingleFlow:
    def test_lone_flow_fully_bypassed(self):
        flow = Flow(0, 0, 3, 1e6, route=(Port.EAST, Port.EAST, Port.EAST, Port.CORE))
        presets = presets_for([flow])
        assert presets.stops_for_flow(flow) == []
        segment = presets.segment_map.from_start(NicStart(0))
        assert isinstance(segment.end, NicEnd)
        assert segment.end.node == 3
        assert segment.hops == 3
        assert segment.routers_crossed == (0, 1, 2, 3)

    def test_unused_routers_fully_gated(self):
        flow = Flow(0, 0, 1, 1e6, route=(Port.EAST, Port.CORE))
        presets = presets_for([flow])
        assert presets.routers[15].is_fully_bypassed()
        assert presets.routers[15].used_inputs() == []


class TestOutputContention:
    def test_two_flows_sharing_output_stop(self):
        """Red/blue of Fig 7: shared output => stop before it (and after,
        where they diverge)."""
        flows = fig7_flows()
        presets = presets_for(flows)
        blue, red = flows[0], flows[1]
        assert presets.stops_for_flow(blue) == [9, 10]
        assert presets.stops_for_flow(red) == [9, 10]
        router9 = presets.routers[9]
        assert router9.input_mode[Port.WEST] is InputMode.BUFFERED
        assert router9.input_mode[Port.NORTH] is InputMode.BUFFERED
        assert Port.EAST in router9.dynamic_outputs

    def test_input_divergence_forces_stop(self):
        """Two flows entering the same input but leaving differently: a
        static select would duplicate flits onto the wrong path."""
        f1 = Flow(0, 0, 2, 1e6, route=(Port.EAST, Port.EAST, Port.CORE))
        f2 = Flow(1, 0, 5, 1e6, route=(Port.EAST, Port.NORTH, Port.CORE))
        presets = presets_for([f1, f2])
        # Both enter router 1 via WEST; f1 goes EAST, f2 goes NORTH.
        assert presets.routers[1].input_mode[Port.WEST] is InputMode.BUFFERED
        assert presets.stops_for_flow(f1) == [1]
        assert presets.stops_for_flow(f2) == [1]

    def test_source_hub_stops_at_source(self):
        """A NIC sourcing flows with different first hops buffers C-in."""
        f1 = Flow(0, 5, 6, 1e6, route=(Port.EAST, Port.CORE))
        f2 = Flow(1, 5, 9, 1e6, route=(Port.NORTH, Port.CORE))
        presets = presets_for([f1, f2])
        assert presets.routers[5].input_mode[Port.CORE] is InputMode.BUFFERED
        assert presets.stops_for_flow(f1) == [5]

    def test_sink_hub_stops_at_destination(self):
        """Multiple flows into one NIC stop at the destination router to
        go up serially (§VI)."""
        f1 = Flow(0, 4, 6, 1e6, route=(Port.EAST, Port.EAST, Port.CORE))
        f2 = Flow(1, 2, 6, 1e6, route=(Port.NORTH, Port.CORE))
        presets = presets_for([f1, f2])
        assert Port.CORE in presets.routers[6].dynamic_outputs
        assert presets.stops_for_flow(f1) == [6]
        assert presets.stops_for_flow(f2) == [6]

    def test_merging_flows_share_downstream_segment(self):
        """After stopping at a merge point, flows continue together."""
        f1 = Flow(0, 0, 3, 1e6, route=(Port.EAST, Port.EAST, Port.EAST, Port.CORE))
        f2 = Flow(1, 5, 3, 1e6, route=(Port.SOUTH, Port.EAST, Port.EAST, Port.CORE))
        presets = presets_for([f1, f2])
        # Both use router 1's EAST output: both stop at router 1, then
        # share the bypass chain 1 -> 2 -> 3 -> NIC3.
        segment = presets.segment_map.from_start(OutputStart(1, Port.EAST))
        assert isinstance(segment.end, NicEnd)
        assert segment.end.node == 3
        assert presets.stops_for_flow(f1) == [1]
        assert presets.stops_for_flow(f2) == [1]


class TestForceAllStops:
    def test_mesh_mode_buffers_everything(self):
        flows = fig7_flows()
        presets = presets_for(flows, force_all_stops=True, link_extra_cycles=1)
        for flow in flows:
            assert presets.stops_for_flow(flow) == flow.routers(Mesh(4, 4))
        for segment in presets.segment_map.segments():
            assert segment.hops <= 1
            if segment.hops == 1:
                assert segment.extra_cycles == 1

    def test_one_cycle_links_zero_for_mesh(self):
        presets = presets_for(fig7_flows(), force_all_stops=True, link_extra_cycles=1)
        assert presets.one_cycle_link_count() == 0


class TestHpcMax:
    def test_long_chain_forced_stop(self):
        """An 8x1 traversal at HPC_max=4 must stop midway."""
        cfg = dataclasses.replace(NocConfig(), width=8, height=1, hpc_max=4)
        mesh = Mesh(8, 1)
        flow = Flow(0, 0, 7, 1e6, route=tuple([Port.EAST] * 7 + [Port.CORE]))
        presets = compute_presets(cfg, mesh, [flow])
        assert presets.segment_map.max_hops() <= 4
        assert len(presets.forced_stops) >= 1
        stops = presets.stops_for_flow(flow)
        assert stops, "flow must stop at least once"

    def test_no_forced_stop_within_limit(self):
        cfg = NocConfig()  # hpc_max=8 covers any 4x4 path
        presets = presets_for(fig7_flows(), cfg=cfg)
        assert presets.forced_stops == ()

    def test_hpc_one_stops_every_router(self):
        cfg = dataclasses.replace(NocConfig(), hpc_max=1)
        flow = Flow(0, 0, 3, 1e6, route=(Port.EAST, Port.EAST, Port.EAST, Port.CORE))
        presets = presets_for([flow], cfg=cfg)
        assert presets.segment_map.max_hops() == 1
        assert presets.stops_for_flow(flow) == [1, 2]


class TestStructuralInvariants:
    def test_static_output_has_single_source(self):
        presets = presets_for(fig7_flows())
        for node, rp in presets.routers.items():
            sources = list(rp.static_source.values())
            assert len(sources) == len(set(sources)) or not sources

    def test_every_flow_decomposes_into_segments(self):
        flows = fig7_flows()
        presets = presets_for(flows)
        for flow in flows:
            stops = presets.stops_for_flow(flow)
            # Segment count = stops + 1 (NIC start to each stop to NIC end).
            count = 1
            node_ports = flow.port_traversals(Mesh(4, 4))
            count += len(stops)
            assert count >= 1

    def test_one_cycle_link_count_positive_for_smart(self):
        presets = presets_for(fig7_flows())
        assert presets.one_cycle_link_count() > 0

    def test_router_configs_consistent(self):
        presets = presets_for(fig7_flows())
        configs = presets.router_configs()
        for node, rc in configs.items():
            assert set(rc.buffered_inputs).isdisjoint(rc.bypassed_inputs)
