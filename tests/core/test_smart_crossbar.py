"""Structural crossbar/router spec tests (Fig 5/6)."""

import pytest

from repro.config import NocConfig
from repro.core.smart_crossbar import build_router_spec


class TestRouterSpec:
    def test_table_ii_spec(self):
        spec = build_router_spec(NocConfig())
        assert spec.num_ports == 5
        assert spec.data_xbar.data_bits == 32
        assert spec.credit_xbar.data_bits == 2
        assert spec.data_xbar.select_bits == 3  # 6 sources -> 3 bits

    def test_buffer_bits(self):
        spec = build_router_spec(NocConfig())
        # 5 ports x 2 VCs x 10 flits x 32 bits
        assert spec.buffer_bits == 5 * 2 * 10 * 32

    def test_vlr_bits_cover_data_and_credit(self):
        spec = build_router_spec(NocConfig())
        assert spec.vlr_rx_bits == 4 * (32 + 2)
        assert spec.vlr_tx_bits == spec.vlr_rx_bits

    def test_pipeline_stages_match_fig6(self):
        spec = build_router_spec(NocConfig())
        assert spec.pipeline_stages() == (
            "Buffer Write",
            "Switch Allocation",
            "SMART Crossbar + Link",
        )

    def test_mux_counts(self):
        spec = build_router_spec(NocConfig())
        assert spec.data_xbar.mux_count == 5
        assert spec.data_xbar.bypass_mux_count == 5
        assert spec.data_xbar.crosspoints == 5 * 5 * 32

    def test_bad_port_count_rejected(self):
        with pytest.raises(ValueError):
            build_router_spec(NocConfig(), num_ports=1)
