"""Reverse credit mesh tests (§IV Flow Control)."""

from repro.config import NocConfig
from repro.core.credit_network import (
    credit_crossbar_width_bits,
    derive_credit_network,
)
from repro.core.presets import compute_presets
from repro.eval.scenarios import fig7_flows
from repro.sim.segments import NicStart
from repro.sim.topology import Mesh, Port


def fig7_credit():
    cfg = NocConfig()
    presets = compute_presets(cfg, Mesh(4, 4), fig7_flows())
    return presets, derive_credit_network(presets)


class TestMirrorPresets:
    def test_bypass_mirrored(self):
        """Data bypass p->q at a router implies credit preset out p from q."""
        presets, credit = fig7_credit()
        for node, rp in presets.routers.items():
            for in_port, out_port in rp.bypass_out.items():
                assert credit.presets[node][in_port] is out_port

    def test_buffered_routers_have_no_credit_preset_for_that_port(self):
        presets, credit = fig7_credit()
        # Router 9 buffers WEST: no credit preset keyed WEST there.
        assert Port.WEST not in credit.presets[9]

    def test_preset_count_matches_bypasses(self):
        presets, credit = fig7_credit()
        bypasses = sum(
            len(rp.bypass_out) for rp in presets.routers.values()
        )
        assert credit.preset_count() == bypasses


class TestCreditPaths:
    def test_paths_reverse_crossings(self):
        presets, credit = fig7_credit()
        # The green flow's injection segment crosses 12,13,14,15; the
        # credit from NIC15 retraces 15,14,13,12.
        segment = presets.segment_map.from_start(NicStart(12))
        assert credit.credit_path_for(segment) == (15, 14, 13, 12)

    def test_every_segment_has_a_path(self):
        presets, credit = fig7_credit()
        for segment in presets.segment_map.segments():
            assert credit.credit_path_for(segment) == tuple(
                reversed(segment.routers_crossed)
            )


class TestWidth:
    def test_paper_width_for_two_vcs(self):
        """§IV: 2 VCs => 2-bit credit crossbars."""
        assert credit_crossbar_width_bits(2) == 2

    def test_four_vcs(self):
        assert credit_crossbar_width_bits(4) == 3

    def test_one_vc(self):
        assert credit_crossbar_width_bits(1) == 2

    def test_matches_table_ii(self):
        cfg = NocConfig()
        assert credit_crossbar_width_bits(cfg.vcs_per_port) == cfg.credit_bits
