"""Reconfiguration register tests (§V)."""

import pytest

from repro.config import NocConfig
from repro.core.presets import InputMode, compute_presets
from repro.core.reconfiguration import (
    DEFAULT_BASE_ADDR,
    REGISTER_STRIDE_BYTES,
    compile_program,
    decode_router,
    diff_program,
    encode_router,
)
from repro.eval.scenarios import fig7_flows
from repro.sim.topology import Mesh, Port


def fig7_presets():
    cfg = NocConfig()
    return compute_presets(cfg, Mesh(4, 4), fig7_flows())


class TestEncodeDecode:
    def test_roundtrip_all_routers(self):
        presets = fig7_presets()
        program = compile_program(presets, "fig7")
        for node, rp in presets.routers.items():
            decoded = decode_router(node, program.register_for_node(node))
            assert decoded.valid
            for port in Port:
                expect_bypass = rp.input_mode[port] is InputMode.BYPASS
                assert decoded.bypass_enable[port] == expect_bypass
                if expect_bypass:
                    assert decoded.bypass_out[port] is rp.bypass_out[port]
            for port in Port:
                if port in rp.static_source:
                    assert decoded.output_select[port] is rp.static_source[port]
                elif port in rp.dynamic_outputs:
                    assert decoded.output_select[port] == "dynamic"
                else:
                    assert decoded.output_select[port] is None

    def test_clock_gating_bits(self):
        presets = fig7_presets()
        program = compile_program(presets)
        # Router 14 is on the green bypass chain: WEST in is bypassed,
        # so its WEST port clock is gated.
        decoded = decode_router(14, program.register_for_node(14))
        assert decoded.clock_gated[Port.WEST]
        # Router 9 buffers WEST (blue stops there): not gated.
        decoded9 = decode_router(9, program.register_for_node(9))
        assert not decoded9.clock_gated[Port.WEST]

    def test_value_fits_double_word(self):
        presets = fig7_presets()
        for node, rp in presets.routers.items():
            from repro.core.credit_network import derive_credit_network
            credit = derive_credit_network(presets)
            value = encode_router(rp, credit.presets[node])
            assert 0 <= value < (1 << 64)

    def test_corrupt_register_detected(self):
        # Bypass enabled but bound output = none must raise on decode.
        bad = (1 << 63) | 1 | (0b111 << 5)
        with pytest.raises(ValueError):
            decode_router(0, bad)


class TestProgram:
    def test_sixteen_stores_for_4x4(self):
        """§V: 'for a 16-node SMART NoC, there are 16 registers to be set
        which correspond to 16 instructions.'"""
        program = compile_program(fig7_presets(), "fig7")
        assert program.cost_instructions == 16
        assert program.cost_cycles() == 16

    def test_addresses_are_strided(self):
        program = compile_program(fig7_presets())
        addresses = [op.address for op in program.stores]
        assert addresses == [
            DEFAULT_BASE_ADDR + n * REGISTER_STRIDE_BYTES for n in range(16)
        ]

    def test_register_for_missing_node_raises(self):
        program = compile_program(fig7_presets())
        with pytest.raises(KeyError):
            program.register_for_node(99)

    def test_store_repr(self):
        program = compile_program(fig7_presets())
        assert "store" in str(program.stores[0])


class TestDiff:
    def test_identical_programs_diff_empty(self):
        a = compile_program(fig7_presets(), "a")
        b = compile_program(fig7_presets(), "b")
        assert diff_program(a, b).cost_instructions == 0

    def test_different_apps_have_nonempty_diff(self):
        cfg = NocConfig()
        mesh = Mesh(4, 4)
        a = compile_program(compute_presets(cfg, mesh, fig7_flows()), "fig7")
        from repro.sim.flow import Flow
        other = [Flow(0, 0, 15, 1e6,
                      route=(Port.EAST, Port.EAST, Port.EAST,
                             Port.NORTH, Port.NORTH, Port.NORTH, Port.CORE))]
        b = compile_program(compute_presets(cfg, mesh, other), "diag")
        delta = diff_program(a, b)
        assert 0 < delta.cost_instructions <= 16

    def test_mismatched_bases_rejected(self):
        a = compile_program(fig7_presets(), base_addr=0x1000)
        b = compile_program(fig7_presets(), base_addr=0x2000)
        with pytest.raises(ValueError):
            diff_program(a, b)
