"""Randomized properties of the SS V register encoding and diffing.

Each seed draws a mesh size and a routed workload, compiles the preset
registers and checks (a) decode(encode) reproduces every preset field
and (b) diff_program emits exactly the changed registers — no more, no
fewer.  Widens with ``--fuzz-seeds`` like the kernel fuzzer.
"""

import random

from repro.config import NocConfig
from repro.core.credit_network import derive_credit_network
from repro.core.presets import InputMode, compute_presets
from repro.core.reconfiguration import (
    compile_program,
    decode_router,
    diff_program,
    encode_router,
)
from repro.sim.topology import Mesh, Port
from repro.workloads import build_seed_for, build_workload


def drawn_presets(rng, cfg=None):
    """Presets for a random routed pattern on a random mesh."""
    if cfg is None:
        cfg = NocConfig(
            width=rng.randint(2, 6),
            height=rng.randint(2, 6),
            hpc_max=rng.choice([1, 2, 3, 8]),
        )
    pool = ["uniform", "hotspot", "bit_complement"]
    if cfg.width == cfg.height:
        pool.append("transpose")
    pattern = rng.choice(pool)
    built = build_workload(
        pattern, cfg, seed=build_seed_for(pattern, rng.randint(1, 999))
    )
    return cfg, compute_presets(cfg, Mesh(cfg.width, cfg.height), built.flows)


def test_encode_decode_roundtrip(fuzz_seed):
    """decode(encode(presets)) reproduces every field of every router."""
    rng = random.Random(0x9E6 + fuzz_seed)
    _cfg, presets = drawn_presets(rng)
    credit = derive_credit_network(presets)
    for node, rp in presets.routers.items():
        value = encode_router(rp, credit.presets[node])
        assert 0 <= value < (1 << 64)
        decoded = decode_router(node, value)
        assert decoded.valid
        for port in Port:
            mode = rp.input_mode.get(port, InputMode.UNUSED)
            assert decoded.bypass_enable[port] == (mode is InputMode.BYPASS)
            if mode is InputMode.BYPASS:
                assert decoded.bypass_out[port] is rp.bypass_out[port]
            else:
                assert port not in decoded.bypass_out
            if port in rp.static_source:
                assert decoded.output_select[port] is rp.static_source[port]
            elif port in rp.dynamic_outputs:
                assert decoded.output_select[port] == "dynamic"
            else:
                assert decoded.output_select[port] is None
            assert decoded.clock_gated[port] == (
                mode is not InputMode.BUFFERED
                and port not in rp.dynamic_outputs
            )
            credit_out = credit.presets[node].get(port)
            if credit_out is None:
                assert port not in decoded.credit_out_select
            else:
                assert decoded.credit_out_select[port] is credit_out


def test_diff_program_is_minimal_and_complete(fuzz_seed):
    """The diff is exactly the changed registers: applying it on top of
    the old register file reproduces the new one (completeness), and it
    never carries an unchanged register (minimality)."""
    rng = random.Random(0xD1FF + fuzz_seed)
    cfg, old_presets = drawn_presets(rng)
    _same, new_presets = drawn_presets(rng, cfg=cfg)  # same mesh, new app
    old = compile_program(old_presets, "old")
    new = compile_program(new_presets, "new")
    delta = diff_program(old, new)

    old_regs = {op.address: op.value for op in old.stores}
    new_regs = {op.address: op.value for op in new.stores}
    for op in delta.stores:  # minimality: every store changes something
        assert old_regs[op.address] != op.value
    applied = dict(old_regs)
    applied.update({op.address: op.value for op in delta.stores})
    assert applied == new_regs  # completeness

    # Self-diff is free; the full program never beats the diff.
    assert diff_program(new, new).cost_instructions == 0
    assert delta.cost_instructions <= new.cost_instructions
    assert delta.cost_cycles(3) == 3 * delta.cost_instructions
