"""NoC builder tests."""

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.eval.scenarios import fig7_flows
from repro.sim.traffic import ScriptedTraffic


class TestBuilders:
    def test_smart_instance(self):
        noc = build_smart_noc(NocConfig(), fig7_flows(), traffic=ScriptedTraffic([]))
        assert noc.design == "smart"
        assert noc.mesh.num_nodes == 16
        assert noc.presets.segment_map.max_hops() <= noc.cfg.hpc_max

    def test_mesh_instance(self):
        noc = build_mesh_noc(NocConfig(), fig7_flows(), traffic=ScriptedTraffic([]))
        assert noc.design == "mesh"
        assert noc.presets.one_cycle_link_count() == 0

    def test_default_traffic_is_bernoulli(self):
        noc = build_smart_noc(NocConfig(), fig7_flows())
        result = noc.run(warmup_cycles=50, measure_cycles=200, drain_limit=5000)
        assert result.measured_cycles == 200

    def test_run_returns_result(self):
        noc = build_smart_noc(NocConfig(), fig7_flows(), traffic=ScriptedTraffic([(1, 2)]))
        result = noc.run(warmup_cycles=0, measure_cycles=30, drain_limit=100)
        assert result.drained
        assert result.summary.count == 1
        assert result.summary.mean_head_latency == 1
