"""Source-route encoding tests (2 bits per router, §IV)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NocConfig
from repro.core.source_routing import (
    CODE_CORE,
    CODE_LEFT,
    CODE_RIGHT,
    CODE_STRAIGHT,
    build_header,
    decode_route,
    encode_route,
    max_route_routers,
    relative_code,
    resolve_relative,
)
from repro.sim.flow import xy_route
from repro.sim.topology import Mesh, Port


class TestRelativeCodes:
    def test_straight(self):
        assert relative_code(Port.EAST, Port.EAST) == CODE_STRAIGHT

    def test_left_right_headings(self):
        # Heading east: left is north, right is south.
        assert relative_code(Port.EAST, Port.NORTH) == CODE_LEFT
        assert relative_code(Port.EAST, Port.SOUTH) == CODE_RIGHT
        # Heading north: left is west, right is east.
        assert relative_code(Port.NORTH, Port.WEST) == CODE_LEFT
        assert relative_code(Port.NORTH, Port.EAST) == CODE_RIGHT

    def test_core(self):
        assert relative_code(Port.WEST, Port.CORE) == CODE_CORE

    def test_uturn_rejected(self):
        with pytest.raises(ValueError):
            relative_code(Port.EAST, Port.WEST)

    def test_resolve_inverts(self):
        for heading in (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH):
            for out in Port:
                if out.is_cardinal and out is heading.opposite:
                    continue
                code = relative_code(heading, out)
                assert resolve_relative(heading, code) is out


class TestEncodeDecode:
    def test_two_bits_per_router(self):
        route = (Port.EAST, Port.EAST, Port.CORE)
        assert encode_route(route) < (1 << (2 * len(route)))

    def test_roundtrip_simple(self):
        route = (Port.NORTH, Port.EAST, Port.SOUTH, Port.CORE)
        assert decode_route(encode_route(route), len(route)) == route

    def test_invalid_routes_rejected(self):
        with pytest.raises(ValueError):
            encode_route((Port.EAST, Port.EAST))  # no CORE
        with pytest.raises(ValueError):
            encode_route((Port.CORE,))  # never leaves the source

    def test_all_mesh_pairs_roundtrip(self):
        mesh = Mesh(4, 4)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                route = xy_route(mesh, src, dst)
                assert decode_route(encode_route(route), len(route)) == route


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_random_mesh_routes_roundtrip(data):
    """Property: any legal route on any mesh survives encode/decode."""
    width = data.draw(st.integers(2, 6), label="width")
    height = data.draw(st.integers(2, 6), label="height")
    mesh = Mesh(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1), label="src")
    dst = data.draw(
        st.integers(0, mesh.num_nodes - 1).filter(lambda d: d != src),
        label="dst",
    )
    route = xy_route(mesh, src, dst)
    assert decode_route(encode_route(route), len(route)) == route


class TestHeaderBudget:
    def test_table_ii_header_fits_4x4(self):
        cfg = NocConfig()
        # 20-bit header - 6 overhead = 14 bits = 7 routers: the longest
        # minimal path in a 4x4 mesh.
        assert max_route_routers(cfg) == 7
        mesh = Mesh(4, 4)
        route = xy_route(mesh, 0, 15)  # 7 routers
        header = build_header(route, cfg, vc_id=1)
        assert header.num_routers == 7
        assert header.bit_length() <= cfg.head_header_bits

    def test_oversized_route_rejected(self):
        cfg = NocConfig()
        mesh = Mesh(8, 8)
        route = xy_route(mesh, 0, 63)  # 15 routers
        with pytest.raises(ValueError):
            build_header(route, cfg)

    def test_bad_vc_rejected(self):
        cfg = NocConfig()
        route = (Port.EAST, Port.CORE)
        with pytest.raises(ValueError):
            build_header(route, cfg, vc_id=5)
