"""End-to-end invariants across the full paper flow, per application."""

import pytest

from repro.apps.registry import PAPER_APP_ORDER
from repro.eval.experiments import run_app

FAST = dict(warmup_cycles=300, measure_cycles=5000, drain_limit=60000)


@pytest.fixture(scope="module")
def all_results():
    results = {}
    for app in PAPER_APP_ORDER:
        for design in ("mesh", "smart", "dedicated"):
            results[(app, design)] = run_app(app, design, **FAST)
    return results


class TestConservation:
    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    @pytest.mark.parametrize("design", ["mesh", "smart", "dedicated"])
    def test_all_measured_packets_delivered(self, all_results, app, design):
        result = all_results[(app, design)].result
        assert result.drained
        assert result.undelivered_measured == 0
        assert result.summary.count > 0


class TestLatencyOrdering:
    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_dedicated_le_smart_lt_mesh(self, all_results, app):
        mesh = all_results[(app, "mesh")].mean_latency
        smart = all_results[(app, "smart")].mean_latency
        dedicated = all_results[(app, "dedicated")].mean_latency
        assert dedicated <= smart + 0.25  # small stochastic tolerance
        assert smart < mesh

    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_latencies_at_least_one_cycle(self, all_results, app):
        for design in ("mesh", "smart", "dedicated"):
            assert all_results[(app, design)].mean_latency >= 1.0


class TestPowerOrdering:
    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_smart_saves_power_vs_mesh(self, all_results, app):
        mesh = all_results[(app, "mesh")].power.total_w
        smart = all_results[(app, "smart")].power.total_w
        assert smart < mesh

    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_link_power_similar_across_designs(self, all_results, app):
        """'All designs send the same traffic through the network, and
        hence have similar link power.'  Dedicated differs only by path
        lengths (direct vs minimal mesh routes are equal in Manhattan
        geometry)."""
        mesh = all_results[(app, "mesh")].power.link_w
        smart = all_results[(app, "smart")].power.link_w
        assert smart == pytest.approx(mesh, rel=0.15)

    @pytest.mark.parametrize("app", PAPER_APP_ORDER)
    def test_buffer_power_collapses_under_smart(self, all_results, app):
        mesh = all_results[(app, "mesh")].power.buffer_w
        smart = all_results[(app, "smart")].power.buffer_w
        assert smart < mesh * 0.75


class TestSmartStops:
    def test_pipeline_apps_mostly_bypass(self, all_results):
        """VOPD/WLAN flows should rarely stop more than once."""
        for app in ("VOPD", "WLAN"):
            experiment = all_results[(app, "smart")]
            network = experiment.instance.network
            stop_counts = [
                len(network.stops_for_flow(flow)) for flow in experiment.flows
            ]
            assert sum(stop_counts) / len(stop_counts) <= 1.5

    def test_hub_apps_stop_more(self, all_results):
        hub = all_results[("H264", "smart")]
        pipe = all_results[("WLAN", "smart")]

        def avg_stops(experiment):
            network = experiment.instance.network
            return sum(
                len(network.stops_for_flow(f)) for f in experiment.flows
            ) / len(experiment.flows)

        assert avg_stops(hub) > avg_stops(pipe)
