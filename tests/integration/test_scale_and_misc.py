"""Beyond-4x4 scale tests and miscellaneous end-to-end behaviours."""

import dataclasses

import pytest

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.sim.flow import Flow, xy_route
from repro.sim.stats import accepted_flits_per_cycle
from repro.sim.topology import Mesh, Port
from repro.sim.traffic import BernoulliTraffic, ScriptedTraffic


def cfg_8x8():
    return dataclasses.replace(NocConfig(), width=8, height=8)


class TestEightByEight:
    def test_cross_chip_needs_one_stop(self):
        """0 -> 63 is 14 hops; with HPC_max=8 exactly one forced stop
        splits it, so the flit arrives in 1 + 3 cycles."""
        cfg = cfg_8x8()
        mesh = Mesh(8, 8)
        flow = Flow(0, 0, 63, 1e6, xy_route(mesh, 0, 63))
        noc = build_smart_noc(cfg, [flow], traffic=ScriptedTraffic([(1, 0)]))
        assert len(noc.presets.forced_stops) == 1
        noc.network.stats.measuring = True
        noc.network.run_cycles(60)
        packet = noc.network.stats.measured_delivered[0]
        assert packet.head_latency == 4

    def test_same_flow_on_mesh_is_15x_slower(self):
        cfg = cfg_8x8()
        mesh = Mesh(8, 8)
        flow = Flow(0, 0, 63, 1e6, xy_route(mesh, 0, 63))
        noc = build_mesh_noc(cfg, [flow], traffic=ScriptedTraffic([(1, 0)]))
        noc.network.stats.measuring = True
        noc.network.run_cycles(120)
        packet = noc.network.stats.measured_delivered[0]
        # 15 routers x 4 cycles/hop.
        assert packet.head_latency == 60

    def test_8mm_reach_exactly(self):
        """An 8-hop path fits in precisely one cycle (Table I's headline)."""
        cfg = cfg_8x8()
        mesh = Mesh(8, 8)
        flow = Flow(0, 0, 8 * 8 - 8 * 8 + 8, 1e6, xy_route(mesh, 0, 8))
        # node 8 is (0,1); pick a straight 8-hop path instead: 0 -> 7 is 7
        # hops; use (0,0) -> (7,1): 8 hops.
        dst = mesh.node_at(7, 1)
        flow = Flow(0, 0, dst, 1e6, xy_route(mesh, 0, dst))
        noc = build_smart_noc(cfg, [flow], traffic=ScriptedTraffic([(1, 0)]))
        assert noc.presets.forced_stops == ()
        noc.network.stats.measuring = True
        noc.network.run_cycles(40)
        assert noc.network.stats.measured_delivered[0].head_latency == 1


class TestPipelineStageNics:
    def test_nic_can_source_and_sink_concurrently(self):
        """A pipeline stage's NIC ejects flow A while injecting flow B."""
        cfg = NocConfig()
        mesh = Mesh(4, 4)
        a = Flow(0, 0, 1, 1e6, xy_route(mesh, 0, 1))
        b = Flow(1, 1, 2, 1e6, xy_route(mesh, 1, 2))
        noc = build_smart_noc(cfg, [a, b], traffic=ScriptedTraffic([(1, 0), (1, 1)]))
        noc.network.stats.measuring = True
        noc.network.run_cycles(40)
        got = {p.flow_id: p for p in noc.network.stats.measured_delivered}
        assert got[0].head_latency == 1
        assert got[1].head_latency == 1


class TestThroughputHelpers:
    def test_accepted_flits_per_cycle(self):
        cfg = NocConfig()
        mesh = Mesh(4, 4)
        flow = Flow(0, 0, 5, 4e8, xy_route(mesh, 0, 5))
        noc = build_smart_noc(cfg, [flow], traffic=BernoulliTraffic(cfg, [flow], seed=9))
        result = noc.run(warmup_cycles=500, measure_cycles=8000, drain_limit=40000)
        measured = accepted_flits_per_cycle(result, cfg.flits_per_packet)
        offered = cfg.flow_rate_flits_per_cycle(4e8)
        assert measured == pytest.approx(offered, rel=0.15)

    def test_zero_window(self):
        from repro.sim.stats import LatencySummary, SimResult, EventCounters

        result = SimResult(
            summary=LatencySummary.empty(),
            per_flow={},
            counters=EventCounters(),
            measured_cycles=0,
            total_cycles=0,
            drained=True,
        )
        assert accepted_flits_per_cycle(result, 8) == 0.0


class TestRectangularMeshes:
    @pytest.mark.parametrize("width,height", [(2, 2), (8, 2), (3, 5)])
    def test_smart_works_on_any_mesh(self, width, height):
        cfg = dataclasses.replace(NocConfig(), width=width, height=height)
        mesh = Mesh(width, height)
        src, dst = 0, mesh.num_nodes - 1
        flow = Flow(0, src, dst, 1e6, xy_route(mesh, src, dst))
        noc = build_smart_noc(cfg, [flow], traffic=ScriptedTraffic([(1, 0)]))
        noc.network.stats.measuring = True
        noc.network.run_cycles(100)
        assert noc.network.stats.delivered_total == 1
