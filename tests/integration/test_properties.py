"""Property-based tests over random flow sets (hypothesis).

These pin the structural invariants of the SMART preset computation and
the simulator's conservation properties for arbitrary mapped traffic.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NocConfig
from repro.core.presets import InputMode, compute_presets
from repro.mapping.turn_model import TurnModel, legal_minimal_routes
from repro.sim.flow import Flow
from repro.sim.network import Network
from repro.sim.segments import BufferEnd, NicEnd
from repro.sim.topology import Mesh, Port
from repro.sim.traffic import ScriptedTraffic


@st.composite
def flow_sets(draw, max_flows=10, width=4, height=4):
    mesh = Mesh(width, height)
    n = draw(st.integers(1, max_flows))
    flows = []
    for i in range(n):
        src = draw(st.integers(0, mesh.num_nodes - 1))
        dst = draw(
            st.integers(0, mesh.num_nodes - 1).filter(lambda d: d != src)
        )
        model = draw(st.sampled_from([TurnModel.XY, TurnModel.WEST_FIRST]))
        route = draw(st.sampled_from(legal_minimal_routes(mesh, src, dst, model)))
        flows.append(Flow(i, src, dst, 1e6, route))
    return flows


@settings(max_examples=40, deadline=None)
@given(flows=flow_sets())
def test_presets_respect_legality_invariants(flows):
    """For every computed preset: a bypassed input's flows all share one
    output, and that output serves only them."""
    cfg = NocConfig()
    mesh = Mesh(4, 4)
    presets = compute_presets(cfg, mesh, flows)
    flows_in = {}
    flows_out = {}
    out_at = {}
    for flow in flows:
        for node, in_port, out_port in flow.port_traversals(mesh):
            flows_in.setdefault((node, in_port), set()).add(flow.flow_id)
            flows_out.setdefault((node, out_port), set()).add(flow.flow_id)
            out_at[(node, flow.flow_id)] = out_port
    for node, rp in presets.routers.items():
        for in_port, mode in rp.input_mode.items():
            if mode is not InputMode.BYPASS:
                continue
            fset = flows_in[(node, in_port)]
            outs = {out_at[(node, fid)] for fid in fset}
            assert len(outs) == 1
            q = next(iter(outs))
            assert flows_out[(node, q)] == fset


@settings(max_examples=40, deadline=None)
@given(flows=flow_sets())
def test_segment_chain_matches_route(flows):
    """Walking a flow's segments visits exactly its routed routers."""
    cfg = NocConfig()
    mesh = Mesh(4, 4)
    presets = compute_presets(cfg, mesh, flows)
    net = Network(cfg, mesh, flows, presets.router_configs(),
                  presets.segment_map, ScriptedTraffic([]))
    for flow in flows:
        crossed = []
        for segment in net.flow_segments(flow):
            crossed.extend(segment.routers_crossed)
        assert crossed == flow.routers(mesh)


@settings(max_examples=25, deadline=None)
@given(flows=flow_sets(max_flows=8), data=st.data())
def test_simulation_delivers_everything(flows, data):
    """Conservation: every injected packet reaches its destination NIC,
    under arbitrary burst schedules."""
    cfg = NocConfig()
    mesh = Mesh(4, 4)
    presets = compute_presets(cfg, mesh, flows)
    schedule = []
    for flow in flows:
        count = data.draw(st.integers(0, 3), label="pkts%d" % flow.flow_id)
        for k in range(count):
            cycle = data.draw(st.integers(1, 20), label="cyc%d_%d" % (flow.flow_id, k))
            schedule.append((cycle, flow.flow_id))
    net = Network(cfg, mesh, flows, presets.router_configs(),
                  presets.segment_map, ScriptedTraffic(schedule))
    net.run_cycles(800)
    assert net.stats.created_total == len(schedule)
    assert net.stats.delivered_total == len(schedule)


@settings(max_examples=25, deadline=None)
@given(flows=flow_sets(max_flows=6))
def test_hpc_max_always_respected(flows):
    """No segment ever exceeds HPC_max, for any hpc_max setting."""
    for limit in (1, 2, 4, 8):
        cfg = dataclasses.replace(NocConfig(), hpc_max=limit)
        presets = compute_presets(cfg, Mesh(4, 4), flows)
        assert presets.segment_map.max_hops() <= limit


@settings(max_examples=30, deadline=None)
@given(flows=flow_sets())
def test_segment_ends_are_exclusive(flows):
    """Each buffered input port / sink NIC is the end of exactly one
    segment (unique driver), and segment ends cover all stops."""
    cfg = NocConfig()
    mesh = Mesh(4, 4)
    presets = compute_presets(cfg, mesh, flows)
    ends = [s.end for s in presets.segment_map.segments()]
    assert len(ends) == len(set(ends))
    for end in ends:
        if isinstance(end, BufferEnd):
            mode = presets.routers[end.node].input_mode[end.port]
            assert mode is InputMode.BUFFERED
        else:
            assert isinstance(end, NicEnd)
            assert any(f.dst == end.node for f in flows)
