"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        assert set(sub.choices) == {
            "table1", "table2", "chip", "fig7", "fig10a", "fig10b", "run",
            "apps", "sweep", "workloads", "plot", "lint", "farm",
            "trace", "scenario",
        }

    def test_run_requires_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "VOPD", "torus"])

    def test_unknown_workload_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workload", "butterfly"])

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--size", "8by8"])


class TestCommands:
    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "low-swing*" in out and "104" in out

    def test_table2(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "4x4 mesh" in out and "2, 10-flit deep" in out

    def test_chip(self, capsys):
        main(["chip"])
        out = capsys.readouterr().out
        assert "6.8 Gb/s" in out and "608 fJ/b" in out

    def test_fig7(self, capsys):
        main(["fig7"])
        out = capsys.readouterr().out
        assert "green" in out and "[9, 10]" in out

    def test_apps(self, capsys):
        main(["apps"])
        out = capsys.readouterr().out
        for app in ("H264", "VOPD", "PIP"):
            assert app in out

    def test_run(self, capsys):
        main(["run", "PIP", "smart", "--measure", "2000"])
        out = capsys.readouterr().out
        assert "PIP on smart" in out

    def test_sweep_app(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep_PIP.json")
        main([
            "sweep", "--app", "PIP", "--designs", "mesh,smart",
            "--loads", "1,32", "--measure", "1000", "--jobs", "2",
            "--out", out_path,
        ])
        out = capsys.readouterr().out
        assert "Latency vs load (PIP" in out
        assert "mesh" in out and "smart" in out
        assert "32" in out  # the post-saturation point ran instead of crashing

    def test_sweep_pattern(self, capsys, tmp_path):
        main([
            "sweep", "--pattern", "transpose", "--designs", "smart",
            "--loads", "0.01", "--measure", "1000", "--jobs", "1",
            "--out", str(tmp_path / "sweep.json"),
        ])
        out = capsys.readouterr().out
        assert "Latency vs injection rate (transpose" in out

    def test_sweep_workload_with_size(self, capsys, tmp_path):
        """The acceptance flow: a pattern workload on a non-4x4 mesh
        through the full mapping -> route-selection -> preset pipeline."""
        main([
            "sweep", "--workload", "transpose", "--size", "8x8",
            "--designs", "mesh,smart", "--loads", "0.01",
            "--measure", "500", "--jobs", "0",
            "--out", str(tmp_path / "sweep.json"),
        ])
        out = capsys.readouterr().out
        assert "Latency vs injection rate (transpose" in out
        assert "mesh" in out and "smart" in out

    def test_workloads_lists_registry(self, capsys):
        main(["workloads"])
        out = capsys.readouterr().out
        for name in ("VOPD", "transpose", "shuffle", "bit_reverse",
                     "background_hotspot"):
            assert name in out
        assert "injection_rate" in out and "bandwidth_scale" in out

    def test_plot_exits_cleanly_without_matplotlib(self, tmp_path):
        from repro.eval.plotting import matplotlib_available

        if matplotlib_available():
            pytest.skip("matplotlib installed; gating not exercised")
        with pytest.raises(SystemExit, match="matplotlib"):
            main(["plot", str(tmp_path / "whatever.jsonl")])

    def test_sweep_out_writes_rows_and_stream(self, capsys, tmp_path):
        """--out persists aggregated rows + a JSONL stream and prints
        both paths; progress lines stream one per grid point."""
        import json

        out_path = str(tmp_path / "sweep_PIP.json")
        main([
            "sweep", "--app", "PIP", "--designs", "dedicated",
            "--loads", "1,4", "--measure", "500", "--jobs", "0",
            "--out", out_path,
        ])
        out = capsys.readouterr().out
        assert out_path in out
        data = json.load(open(out_path))
        assert data["meta"]["app"] == "PIP"
        assert [row["load"] for row in data["rows"]] == [1.0, 4.0]
        stream_path = str(tmp_path / "sweep_PIP.jsonl")
        assert stream_path in out
        # Header line + one line per grid point.
        assert len(open(stream_path).readlines()) == 3
        from repro.eval.sweeps import read_sweep_header, read_sweep_stream

        assert read_sweep_header(stream_path)["sweep_spec"]["workload"] == "PIP"
        assert len(read_sweep_stream(stream_path)) == 2
        assert "[1/2]" in out and "[2/2]" in out

    def test_sweep_resume_skips_streamed_points(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.json")
        args = [
            "sweep", "--app", "PIP", "--designs", "dedicated",
            "--loads", "1", "--measure", "500", "--jobs", "0",
            "--out", out_path,
        ]
        main(args)
        capsys.readouterr()
        main(args + ["--resume"])
        out = capsys.readouterr().out
        assert "[1/1]" not in out  # nothing re-ran
        assert "Latency vs load (PIP" in out


class TestSweepKernelFlag:
    def test_sweep_accepts_event_kernel(self, capsys, tmp_path):
        main([
            "sweep", "--workload", "transpose", "--designs", "smart",
            "--loads", "0.01", "--measure", "500", "--jobs", "0",
            "--kernel", "event", "--out", str(tmp_path / "sweep.json"),
        ])
        out = capsys.readouterr().out
        assert "Latency vs injection rate (transpose" in out
        import json
        meta = json.load(open(str(tmp_path / "sweep.json")))["meta"]
        assert meta["kernel"] == "event"

    def test_resume_with_mismatched_kernel_refuses_stream(
        self, capsys, tmp_path
    ):
        args = [
            "sweep", "--workload", "transpose", "--designs", "smart",
            "--loads", "0.01", "--measure", "500", "--jobs", "0",
            "--out", str(tmp_path / "sweep.json"),
        ]
        main(args + ["--kernel", "active"])
        capsys.readouterr()
        with pytest.raises(ValueError, match="refusing to resume"):
            main(args + ["--kernel", "event", "--resume"])

    def test_unknown_kernel_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workload", "PIP", "--kernel", "warp"])


class TestArrivalAndSloFlags:
    def test_sweep_accepts_mmpp_arrival(self, capsys, tmp_path):
        import json

        main([
            "sweep", "--workload", "transpose", "--designs", "mesh",
            "--loads", "0.01", "--measure", "500", "--jobs", "0",
            "--kernel", "event", "--arrival", "mmpp",
            "--on-cycles", "8", "--off-cycles", "24",
            "--out", str(tmp_path / "sweep.json"),
        ])
        capsys.readouterr()
        data = json.load(open(str(tmp_path / "sweep.json")))
        assert data["meta"]["arrival"] == "mmpp"
        assert data["meta"]["arrival_params"]["on_cycles"] == 8.0
        assert data["rows"][0]["mesh_p99"] is not None

    def test_burst_knobs_require_bursty_arrival(self):
        with pytest.raises(SystemExit, match="on-cycles"):
            main([
                "sweep", "--workload", "transpose", "--designs", "mesh",
                "--loads", "0.01", "--jobs", "0", "--on-cycles", "8",
            ])

    def test_unknown_arrival_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workload", "PIP", "--arrival", "poisson"])

    def test_sweep_slo_adds_verdict_columns(self, capsys, tmp_path):
        import json

        main([
            "sweep", "--workload", "tenant_mix", "--designs", "mesh",
            "--loads", "0.005", "--measure", "500", "--jobs", "0",
            "--kernel", "event", "--slo", "50",
            "--out", str(tmp_path / "sweep.json"),
        ])
        capsys.readouterr()
        row = json.load(open(str(tmp_path / "sweep.json")))["rows"][0]
        assert isinstance(row["mesh_PIP_slo_ok"], bool)
        assert isinstance(row["mesh_hotspot_slo_ok"], bool)

    def test_plot_histogram_gated_without_matplotlib(self, tmp_path):
        from repro.eval.plotting import matplotlib_available

        if matplotlib_available():
            pytest.skip("matplotlib installed; gating not exercised")
        with pytest.raises(SystemExit, match="matplotlib"):
            main(["plot", "--histogram", str(tmp_path / "whatever.jsonl")])


SPEC_YAML = """\
workloads:
  - name: cli_pairs
    kind: demands
    demands:
      - src: 0
        dst: 5
        mbps: 400
"""


@pytest.fixture
def scratch_registry():
    from repro.workloads import WORKLOADS

    before = dict(WORKLOADS)
    yield
    WORKLOADS.clear()
    WORKLOADS.update(before)


class TestWorkloadFileFlags:
    def test_sweep_from_spec_file(self, capsys, tmp_path, scratch_registry):
        path = tmp_path / "wl.yaml"
        path.write_text(SPEC_YAML)
        main([
            "sweep", "--workload-file", str(path), "--designs", "mesh",
            "--loads", "1", "--measure", "400", "--jobs", "0",
            "--out", str(tmp_path / "sweep.json"),
        ])
        out = capsys.readouterr().out
        assert "cli_pairs" in out

    def test_file_workload_needs_workload_file(self):
        with pytest.raises(SystemExit, match="workload-file"):
            main(["sweep", "--file-workload", "cli_pairs"])

    def test_unknown_file_workload_listed(self, tmp_path, scratch_registry):
        path = tmp_path / "wl.yaml"
        path.write_text(SPEC_YAML)
        with pytest.raises(SystemExit, match="cli_pairs"):
            main([
                "sweep", "--workload-file", str(path),
                "--file-workload", "nonesuch",
            ])

    def test_farm_enumerate_needs_a_source(self, tmp_path):
        with pytest.raises(SystemExit, match="workload"):
            main(["farm", "enumerate", "--root", str(tmp_path / "farm")])


class TestTraceCommand:
    def test_replay_reports_identity(self, capsys, tmp_path):
        from repro.sim.trace import TraceRecord, write_trace_jsonl

        path = str(tmp_path / "cap.jsonl")
        write_trace_jsonl(path, [
            TraceRecord(0, 0, 5), TraceRecord(2, 1, 14),
            TraceRecord(7, 12, 3),
        ])
        main(["trace", path, "--design", "smart"])
        out = capsys.readouterr().out
        assert "3 packet(s)" in out
        assert "bit-identical across 4 kernel(s)" in out

    def test_no_batched_drops_the_extra_lane(self, capsys, tmp_path):
        from repro.sim.trace import TraceRecord, write_trace_jsonl

        path = str(tmp_path / "cap.jsonl")
        write_trace_jsonl(path, [TraceRecord(0, 0, 5)])
        main(["trace", path, "--no-batched"])
        out = capsys.readouterr().out
        assert "bit-identical across 3 kernel(s)" in out


class TestScenarioCommand:
    def test_default_fig1_sequence(self, capsys, tmp_path):
        main([
            "scenario", "--measure", "800", "--warmup", "100",
            "--out", str(tmp_path / "scenario.jsonl"),
        ])
        out = capsys.readouterr().out
        assert "WLAN" in out and "H264" in out and "VOPD" in out
        assert "reconfig" in out

    def test_named_phases_with_loads_and_farm(
        self, capsys, tmp_path, scratch_registry
    ):
        spec = tmp_path / "wl.yaml"
        spec.write_text(SPEC_YAML)
        main([
            "scenario", "uniform", "cli_pairs",
            "--workload-file", str(spec), "--loads", "0.02,1",
            "--measure", "400", "--warmup", "50", "--seeds", "2",
            "--out", str(tmp_path / "scenario.jsonl"),
            "--farm-root", str(tmp_path / "farm"),
        ])
        out = capsys.readouterr().out
        assert "cli_pairs" in out
        assert "farm import" in out

    def test_mismatched_loads_rejected(self):
        with pytest.raises(SystemExit, match="phase"):
            main(["scenario", "uniform", "hotspot", "--loads", "0.1"])
