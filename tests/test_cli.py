"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        assert set(sub.choices) == {
            "table1", "table2", "chip", "fig7", "fig10a", "fig10b", "run",
            "apps", "sweep",
        }

    def test_run_requires_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "VOPD", "torus"])


class TestCommands:
    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "low-swing*" in out and "104" in out

    def test_table2(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "4x4 mesh" in out and "2, 10-flit deep" in out

    def test_chip(self, capsys):
        main(["chip"])
        out = capsys.readouterr().out
        assert "6.8 Gb/s" in out and "608 fJ/b" in out

    def test_fig7(self, capsys):
        main(["fig7"])
        out = capsys.readouterr().out
        assert "green" in out and "[9, 10]" in out

    def test_apps(self, capsys):
        main(["apps"])
        out = capsys.readouterr().out
        for app in ("H264", "VOPD", "PIP"):
            assert app in out

    def test_run(self, capsys):
        main(["run", "PIP", "smart", "--measure", "2000"])
        out = capsys.readouterr().out
        assert "PIP on smart" in out

    def test_sweep_app(self, capsys):
        main([
            "sweep", "--app", "PIP", "--designs", "mesh,smart",
            "--loads", "1,32", "--measure", "1000", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert "Latency vs load (PIP" in out
        assert "mesh" in out and "smart" in out
        assert "32" in out  # the post-saturation point ran instead of crashing

    def test_sweep_pattern(self, capsys):
        main([
            "sweep", "--pattern", "transpose", "--designs", "smart",
            "--loads", "0.01", "--measure", "1000", "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert "Latency vs injection rate (transpose" in out
