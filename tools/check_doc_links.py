"""Dead-link checker for the repo's markdown docs (stdlib only).

Scans markdown files for inline links and images (``[text](target)``),
and fails when a *relative* target does not exist on disk or a
``#fragment`` does not match any heading anchor in the target file —
the two drift shapes a docs pass keeps accumulating: renamed files and
renamed sections.

What is checked:

* relative file targets — resolved against the linking file's
  directory; must exist (``docs/stats.md``, ``../README.md``,
  committed ``results/*.md`` reports, source files ...);
* intra- and cross-file anchors — ``#buckets`` or
  ``other.md#buckets`` must match a heading in the target markdown
  file, slugged the way GitHub does (lowercase, punctuation stripped,
  spaces to hyphens, ``-N`` suffixes for duplicates);
* external links (``http://``, ``https://``, ``mailto:``) are *not*
  fetched — network is neither available nor deterministic in CI.

Fenced code blocks and inline code spans are ignored, so markdown
examples inside ``` fences never count as links.

Usage::

    python tools/check_doc_links.py [file.md ...]

With no arguments, checks ``README.md`` plus every ``docs/*.md`` and
``results/*.md`` under the repo root (the directory holding this
script's parent).  Exits 1 listing every dead link, 0 when clean.
"""

import os
import re
import sys

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text):
    """Markdown minus fenced blocks and inline code spans."""
    lines, fenced = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            lines.append(_CODE_SPAN.sub("", line))
    return "\n".join(lines)


def _slug(heading):
    """GitHub's heading-to-anchor slug (sans emoji edge cases)."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path):
    """Every anchor a markdown file exposes, duplicate-suffixed."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    anchors, seen = set(), {}
    fenced = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if fenced:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else "%s-%d" % (slug, count))
    return anchors


def check_file(path, root):
    """Dead links in one markdown file, as (path, target, reason) rows."""
    with open(path, encoding="utf-8") as fh:
        text = _strip_code(fh.read())
    problems = []
    base = os.path.dirname(os.path.abspath(path))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("<"):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not resolved.startswith(root + os.sep):
                continue  # climbs out of the repo (GitHub web paths)
            if not os.path.exists(resolved):
                problems.append((path, target, "missing file"))
                continue
        else:
            resolved = os.path.abspath(path)
        if fragment:
            if not resolved.endswith((".md", ".markdown")):
                continue  # anchors into source files: not checkable
            if fragment.lower() not in heading_anchors(resolved):
                problems.append((path, target, "missing anchor"))
    return problems


def default_targets(root):
    targets = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        targets.append(readme)
    for sub in ("docs", "results"):
        folder = os.path.join(root, sub)
        if not os.path.isdir(folder):
            continue
        for name in sorted(os.listdir(folder)):
            if name.endswith(".md"):
                targets.append(os.path.join(folder, name))
    return targets


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = argv or default_targets(root)
    problems = []
    for path in targets:
        problems.extend(check_file(path, root))
    for path, target, reason in problems:
        print("%s: dead link (%s): %s" % (os.path.relpath(path, root),
                                          reason, target))
    if problems:
        print("%d dead link(s) in %d file(s) checked"
              % (len(problems), len(targets)))
        return 1
    print("docs links ok: %d file(s) checked" % len(targets))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
