"""Fig 10a: average packet network latency across the SoC suite.

Shape targets from the paper: SMART cuts latency ~60% vs the mesh (to
~3.8 cycles on average, within ~1.5 cycles of the Dedicated ideal);
PIP/VOPD/WLAN are near-identical to Dedicated; H264 and MMS_MP3 trail
Dedicated by 2-4 cycles because of their hub source/sink structure.
"""

from conftest import fig10_suite, save_rows

from repro.eval.experiments import fig10a_rows, headline_metrics
from repro.eval.report import render_table

PAPER_SAVING = 0.601
PAPER_SMART_MEAN = 3.8
PAPER_GAP = 1.5


def test_fig10a_latency(benchmark):
    suite = benchmark.pedantic(fig10_suite, rounds=1, iterations=1)
    rows = fig10a_rows(suite)
    metrics = headline_metrics(suite)
    print()
    print(render_table(rows, title="Fig 10a: average packet latency (cycles)"))
    print(
        "SMART saving vs Mesh: %.1f%% (paper %.1f%%) | SMART mean %.2f "
        "(paper %.1f) | gap vs Dedicated %.2f (paper %.1f)"
        % (
            100 * metrics.latency_saving_vs_mesh,
            100 * PAPER_SAVING,
            metrics.mean_latency_smart,
            PAPER_SMART_MEAN,
            metrics.gap_vs_dedicated_cycles,
            PAPER_GAP,
        )
    )
    save_rows("fig10a_latency", rows)

    by_app = {row["app"]: row for row in rows}
    # Headline: roughly 60% saving, small gap to Dedicated.
    assert 0.45 <= metrics.latency_saving_vs_mesh <= 0.75
    assert metrics.gap_vs_dedicated_cycles <= 2.5
    assert metrics.mean_latency_smart <= PAPER_SMART_MEAN + 1.0
    # Pipeline apps: SMART ~ Dedicated (within ~1.2 cycles).
    for app in ("PIP", "VOPD", "WLAN"):
        gap = by_app[app]["smart"] - by_app[app]["dedicated"]
        assert gap <= 1.2, (app, gap)
    # Hub apps: Dedicated wins by 2-4ish cycles.
    for app in ("H264", "MMS_MP3"):
        gap = by_app[app]["smart"] - by_app[app]["dedicated"]
        assert 1.5 <= gap <= 4.5, (app, gap)
    # SMART always beats the mesh, on every app.
    for row in rows:
        assert row["smart"] < row["mesh"]
