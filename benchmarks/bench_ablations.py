"""Ablation benches over SMART's design choices (DESIGN.md A1-A5)."""

from conftest import save_rows

from repro.eval.ablations import (
    channel_split,
    hpc_sweep,
    mapping_comparison,
    route_selection_comparison,
    vc_sweep,
)
from repro.eval.report import render_table

KW = dict(warmup_cycles=500, measure_cycles=10000, drain_limit=100000)


def test_ablation_hpc_max(benchmark):
    """A1: how far must a single cycle reach?"""
    rows = benchmark.pedantic(
        lambda: hpc_sweep("VOPD", (1, 2, 4, 8), **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A1: HPC_max sweep (VOPD, SMART)"))
    save_rows("ablation_hpcmax", rows)
    latencies = [r["mean_latency"] for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    assert rows[-1]["forced_stops"] == 0


def test_ablation_mapping(benchmark):
    """A2: the modified NMAP vs baselines."""
    rows = benchmark.pedantic(
        lambda: mapping_comparison("VOPD", **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A2: mapping algorithm (VOPD, SMART)"))
    save_rows("ablation_mapping", rows)
    by_alg = {r["algorithm"]: r["mean_latency"] for r in rows}
    assert by_alg["nmap_modified"] <= by_alg["row_major"]
    assert by_alg["nmap_modified"] <= by_alg["random"]


def test_ablation_channel_split(benchmark):
    """A3: the §VI future-work channel split on a hub-limited app."""
    rows = benchmark.pedantic(
        lambda: channel_split("H264", **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A3: channel splitting (H264, SMART)"))
    save_rows("ablation_split", rows)
    assert rows[1]["mean_latency_ns"] < rows[0]["mean_latency_ns"]


def test_ablation_vcs(benchmark):
    """A4: VC count sensitivity."""
    rows = benchmark.pedantic(
        lambda: vc_sweep("H264", (1, 2, 4), **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A4: VCs per port (H264, SMART)"))
    save_rows("ablation_vcs", rows)
    latencies = [r["mean_latency"] for r in rows]
    assert latencies[0] >= latencies[1] >= latencies[2] - 1e-9


def test_ablation_route_selection(benchmark):
    """A5: XY vs west-first conflict-minimising selection."""
    rows = benchmark.pedantic(
        lambda: route_selection_comparison("MWD", **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A5: route selection (MWD, SMART)"))
    save_rows("ablation_routes", rows)
    by_model = {r["turn_model"]: r for r in rows}
    assert (
        by_model["west_first"]["mean_stops_per_flow"]
        <= by_model["xy"]["mean_stops_per_flow"] + 1e-9
    )
