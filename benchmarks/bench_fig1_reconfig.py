"""Fig 1: the mesh reconfigures into three app-tailored topologies.

For WLAN, H264 and VOPD: map the application, compute presets, compile the
reconfiguration program, and report how much of the network becomes
single-cycle ("all links in bold take one-cycle").
"""

from conftest import save_rows

from repro.config import NocConfig
from repro.core.presets import compute_presets
from repro.core.reconfiguration import compile_program, diff_program
from repro.eval.report import render_table
from repro.eval.scenarios import FIG1_APPS
from repro.mapping.nmap import map_application
from repro.apps.registry import evaluation_task_graph
from repro.sim.topology import Mesh


def _generate():
    cfg = NocConfig()
    mesh = Mesh(cfg.width, cfg.height)
    rows = []
    programs = []
    for app in FIG1_APPS:
        graph = evaluation_task_graph(app)
        _mapping, flows = map_application(graph, mesh)
        presets = compute_presets(cfg, mesh, flows)
        program = compile_program(presets, app)
        programs.append(program)
        rows.append(
            {
                "app": app,
                "flows": len(flows),
                "one_cycle_links": presets.one_cycle_link_count(),
                "single_cycle_flows": len(presets.single_cycle_flows()),
                "reconfig_stores": program.cost_instructions,
            }
        )
    switches = []
    for before, after in zip(programs, programs[1:]):
        delta = diff_program(before, after)
        switches.append(
            {"switch": delta.app_name, "changed_registers": delta.cost_instructions}
        )
    return rows, switches


def test_fig1_reconfiguration(benchmark):
    rows, switches = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Fig 1: per-app tailored topologies"))
    print(render_table(switches, title="Reconfiguration between apps"))
    save_rows("fig1_reconfig", rows)
    for row in rows:
        # Every app gets a meaningful single-cycle fabric...
        assert row["one_cycle_links"] > 0
        assert row["single_cycle_flows"] > 0
        # ...programmed with exactly 16 stores (§V).
        assert row["reconfig_stores"] == 16
    # The topologies genuinely differ between applications.
    for switch in switches:
        assert switch["changed_registers"] > 0
