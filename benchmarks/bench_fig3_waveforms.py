"""Fig 3: simulated waveforms at 6.8 Gb/s, full-swing vs low-swing VLR."""

import numpy as np

from conftest import save_rows

from repro.circuits.vlr import VlrParams, simulate_full_swing_stage, simulate_vlr_stage
from repro.circuits.wire import MIN_DRC, extract_wire
from repro.eval.report import render_table

BITS = [0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0]
RATE_GBPS = 6.8


def _generate():
    wire = extract_wire(MIN_DRC)
    full = simulate_full_swing_stage(wire, BITS, RATE_GBPS)
    low = simulate_vlr_stage(VlrParams(), wire, BITS, RATE_GBPS)
    settled_high = float(np.percentile(low.volts, 80))
    return {
        "full": full,
        "low": low,
        "rows": [
            {
                "waveform": "(a) full-swing",
                "swing_pp_v": round(full.swing_pp, 3),
                "v_max": round(float(full.volts.max()), 3),
                "v_min": round(float(full.volts.min()), 3),
                "overshoot_v": 0.0,
            },
            {
                "waveform": "(b) low-swing VLR",
                "swing_pp_v": round(low.swing_pp, 3),
                "v_max": round(float(low.volts.max()), 3),
                "v_min": round(float(low.volts.min()), 3),
                "overshoot_v": round(float(low.volts.max()) - settled_high, 3),
            },
        ],
    }


def test_fig3_waveforms(benchmark):
    out = benchmark.pedantic(_generate, rounds=3, iterations=1)
    print()
    print(render_table(out["rows"], title="Fig 3: waveforms at 6.8 Gb/s"))
    save_rows("fig3_waveforms", out["rows"])
    full, low = out["full"], out["low"]
    # Full-swing reaches the rails; the VLR locks to a small swing with a
    # visible transient overshoot (Fig 2's delay-cell effect).
    assert full.swing_pp > 0.7
    assert low.swing_pp < full.swing_pp * 0.7
    assert out["rows"][1]["overshoot_v"] > 0.01
    assert 0.1 < low.volts.min() and low.volts.max() < 0.85
