"""Fig 10b: post-layout dynamic power breakdown per app and design.

Shape targets: SMART ~2.2x below Mesh (buffer + clock energy collapses,
link energy is common); Dedicated shows only link power (as plotted in
the paper); totals land in the 0.005-0.08 W band of the figure.
"""

from conftest import fig10_suite, save_rows

from repro.eval.experiments import fig10b_rows, headline_metrics
from repro.eval.report import render_table

PAPER_POWER_RATIO = 2.2


def test_fig10b_power(benchmark):
    suite = benchmark.pedantic(fig10_suite, rounds=1, iterations=1)
    rows = fig10b_rows(suite)
    metrics = headline_metrics(suite)
    print()
    print(
        render_table(
            rows,
            float_format="%.4f",
            title="Fig 10b: dynamic power breakdown (W)",
        )
    )
    print(
        "Mesh/SMART power ratio: %.2fx (paper %.1fx)"
        % (metrics.power_ratio_mesh_over_smart, PAPER_POWER_RATIO)
    )
    save_rows("fig10b_power", rows)

    by_key = {(r["app"], r["design"]): r for r in rows}
    apps = sorted({r["app"] for r in rows})
    # Headline: ~2.2x saving.
    assert 1.6 <= metrics.power_ratio_mesh_over_smart <= 3.0
    for app in apps:
        mesh = by_key[(app, "mesh")]
        smart = by_key[(app, "smart")]
        dedicated = by_key[(app, "dedicated")]
        # Magnitudes in the figure's band.
        assert mesh["total_w"] < 0.09
        # SMART saves buffer power, keeps similar link power.
        assert smart["buffer_w"] < mesh["buffer_w"]
        assert abs(smart["link_w"] - mesh["link_w"]) <= 0.2 * mesh["link_w"]
        # Dedicated is link-only as plotted in the paper.
        assert dedicated["buffer_w"] == 0.0
        assert dedicated["allocator_w"] == 0.0
        assert dedicated["total_w"] < smart["total_w"]
