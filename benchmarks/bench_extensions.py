"""Benches for the paper's §VI extensions (DESIGN.md A6-A8):

* non-minimal routes ("higher path diversity without any delay penalty"),
* pinned tasks (heterogeneous SoCs magnify SMART's benefit),
* load sweep (mesh link bandwidth is SMART's only ceiling).
"""

from conftest import save_rows

from repro.eval.ablations import load_sweep, nonminimal_routing, pinned_mapping
from repro.eval.report import render_table

KW = dict(warmup_cycles=500, measure_cycles=10000, drain_limit=100000)


def test_extension_nonminimal_routes(benchmark):
    rows = benchmark.pedantic(
        lambda: nonminimal_routing("MMS_DEC", **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A6: non-minimal routing (MMS_DEC, SMART)"))
    save_rows("extension_nonminimal", rows)
    assert rows[1]["mean_stops_per_flow"] <= rows[0]["mean_stops_per_flow"] + 1e-9
    assert rows[1]["mean_latency"] <= rows[0]["mean_latency"] + 0.25


def test_extension_pinned_mapping(benchmark):
    rows = benchmark.pedantic(
        lambda: pinned_mapping("VOPD", (0, 2, 4), **KW), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, title="A7: pinned tasks (VOPD)"))
    save_rows("extension_pinned", rows)
    # §VI: longer paths => bigger SMART saving.
    assert rows[-1]["mean_hops"] > rows[0]["mean_hops"]
    assert rows[-1]["smart_saving"] >= rows[0]["smart_saving"] - 0.02


def test_extension_load_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: load_sweep("VOPD", (1.0, 4.0, 8.0, 16.0), **KW),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="A8: offered-load sweep (VOPD)"))
    save_rows("extension_load", rows)
    meshes = [r["mesh"] for r in rows]
    assert meshes == sorted(meshes)
    for row in rows:
        assert row["smart"] < row["mesh"]
