"""§III fabricated-chip measurements: data rates, power, energy, delay."""

from conftest import save_rows

from repro.circuits.signaling import BER_TARGET, chip_measurements
from repro.eval.report import render_table

PAPER = {
    "vlr_max_rate_gbps": 6.8,
    "vlr_power_mw": 4.14,
    "vlr_energy_fj_b": 608.0,
    "vlr_power_mw_at_5p5": 3.78,
    "vlr_energy_fj_b_at_5p5": 687.0,
    "vlr_delay_ps_mm": 60.0,
    "fs_max_rate_gbps": 5.5,
    "fs_power_mw": 4.21,
    "fs_energy_fj_b": 765.0,
    "fs_delay_ps_mm": 100.0,
}


def _generate():
    vlr, full = chip_measurements()
    rows = [
        {"metric": "VLR max rate (Gb/s, BER<1e-9)", "model": vlr["max_rate_gbps"], "paper": PAPER["vlr_max_rate_gbps"]},
        {"metric": "VLR power @max over 10mm (mW)", "model": round(vlr["power_mw"], 2), "paper": PAPER["vlr_power_mw"]},
        {"metric": "VLR energy @max (fJ/b)", "model": round(vlr["energy_fj_per_bit"], 0), "paper": PAPER["vlr_energy_fj_b"]},
        {"metric": "VLR power @5.5Gb/s (mW)", "model": round(vlr["power_mw_at_5p5"], 2), "paper": PAPER["vlr_power_mw_at_5p5"]},
        {"metric": "VLR energy @5.5Gb/s (fJ/b)", "model": round(vlr["energy_fj_per_bit_at_5p5"], 0), "paper": PAPER["vlr_energy_fj_b_at_5p5"]},
        {"metric": "VLR delay (ps/mm)", "model": vlr["delay_ps_per_mm"], "paper": PAPER["vlr_delay_ps_mm"]},
        {"metric": "Full-swing max rate (Gb/s)", "model": full["max_rate_gbps"], "paper": PAPER["fs_max_rate_gbps"]},
        {"metric": "Full-swing power @max (mW)", "model": round(full["power_mw"], 2), "paper": PAPER["fs_power_mw"]},
        {"metric": "Full-swing energy @max (fJ/b)", "model": round(full["energy_fj_per_bit"], 0), "paper": PAPER["fs_energy_fj_b"]},
        {"metric": "Full-swing delay (ps/mm)", "model": full["delay_ps_per_mm"], "paper": PAPER["fs_delay_ps_mm"]},
    ]
    return rows, vlr, full


def test_chip_measurements(benchmark):
    rows, vlr, full = benchmark.pedantic(_generate, rounds=3, iterations=1)
    print()
    print(render_table(rows, title="§III test-chip measurements (model vs paper)"))
    save_rows("chip_measurements", rows)
    for row in rows:
        assert abs(row["model"] - row["paper"]) <= 0.02 * row["paper"] + 1e-9, row
    assert vlr["ber_at_max"] < BER_TARGET
    assert full["ber_at_max"] < BER_TARGET
