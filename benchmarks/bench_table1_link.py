"""Table I: max hops per cycle and energy per bit, all four link variants.

Paper values are matched *exactly* (hops integer-exact, energies exact
after rounding to the paper's integer fJ/b/mm).
"""

from conftest import save_rows

from repro.circuits.link_design import PAPER_TABLE1, table1
from repro.eval.report import render_table


def _generate():
    entries = table1()
    rows = []
    for entry in entries:
        paper_hops, paper_energy = PAPER_TABLE1[
            (entry.variant, entry.data_rate_gbps)
        ]
        rows.append(
            {
                "variant": entry.variant,
                "rate_gbps": entry.data_rate_gbps,
                "max_hops": entry.max_hops,
                "paper_hops": paper_hops,
                "energy_fj_b_mm": round(entry.energy_fj_per_bit_mm, 1),
                "paper_energy": paper_energy,
            }
        )
    return rows


def test_table1(benchmark):
    rows = benchmark.pedantic(_generate, rounds=3, iterations=1)
    print()
    print(render_table(rows, title="Table I: max hops/cycle (model vs paper)"))
    save_rows("table1_link", rows)
    for row in rows:
        assert row["max_hops"] == row["paper_hops"], row
        assert round(row["energy_fj_b_mm"]) == row["paper_energy"], row
