"""Kernel speed: active-set vs legacy cycles/sec on a ~50%-idle 8x8 mesh.

The active-set kernel must deliver >= 3x the seed kernel's cycles/sec on a
moderately loaded large mesh while producing identical results.  The
workload is transpose traffic on an 8x8 mesh at an injection rate that
leaves routers idle roughly half of all cycles — representative of the
load sweeps the evaluation harness fans out.  The measured rates land in
``results/BENCH_kernel.json`` as a trajectory entry.
"""

import json
import os
import time

from conftest import RESULTS_DIR, save_rows

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc
from repro.sim.patterns import synthetic_flows
from repro.sim.traffic import BernoulliTraffic

#: ~50% router-idle on the 8x8 transpose workload (measured: the legacy
#: kernel reports ~0.5 clocked/total router-cycles at this rate).
INJECTION_RATE = 0.0075
CYCLES = 12000


def _cycles_per_sec(kernel: str, mode: str):
    cfg = NocConfig(width=8, height=8)
    flows = synthetic_flows("transpose", cfg, injection_rate=INJECTION_RATE,
                            seed=3)
    traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
    noc = build_mesh_noc(cfg, flows, traffic=traffic, kernel=kernel)
    start = time.perf_counter()
    noc.network.run_cycles(CYCLES)
    elapsed = time.perf_counter() - start
    counters = noc.network.counters
    return {
        "kernel": kernel,
        "cycles_per_sec": CYCLES / elapsed,
        "router_idle_frac": 1.0
        - counters.clock_router_cycles / counters.total_router_cycles,
        "delivered": noc.network.stats.delivered_total,
        "counters": counters,
    }


def test_kernel_speedup(benchmark):
    legacy, active = benchmark.pedantic(
        lambda: (_cycles_per_sec("legacy", "legacy"),
                 _cycles_per_sec("active", "predraw")),
        rounds=1, iterations=1,
    )
    speedup = active["cycles_per_sec"] / legacy["cycles_per_sec"]
    rows = [
        {
            "kernel": point["kernel"],
            "cycles_per_sec": round(point["cycles_per_sec"], 1),
            "router_idle_frac": round(point["router_idle_frac"], 3),
            "delivered": point["delivered"],
        }
        for point in (legacy, active)
    ]
    print()
    for point in (legacy, active):
        print("%-8s %10.0f cycles/sec (%.0f%% router-idle)"
              % (point["kernel"], point["cycles_per_sec"],
                 100 * point["router_idle_frac"]))
    print("speedup: %.2fx" % speedup)
    save_rows("kernel_speed", rows)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_kernel.json"), "w") as fh:
        json.dump(
            {
                "bench": "kernel_speed",
                "workload": "transpose 8x8 @ %g packets/cycle/node"
                % INJECTION_RATE,
                "cycles": CYCLES,
                "legacy_cycles_per_sec": round(legacy["cycles_per_sec"], 1),
                "active_cycles_per_sec": round(active["cycles_per_sec"], 1),
                "speedup": round(speedup, 2),
                "router_idle_frac": round(legacy["router_idle_frac"], 3),
            },
            fh,
            indent=2,
        )

    # Both kernels simulate the identical network: same deliveries, same
    # power-relevant event counts.
    assert active["delivered"] == legacy["delivered"]
    assert active["counters"] == legacy["counters"]
    # The workload is the contract: routers idle roughly half the time.
    assert 0.35 <= legacy["router_idle_frac"] <= 0.65
    assert speedup >= 3.0
