"""Kernel speed: legacy vs active vs event cycles/sec on half-idle 8x8.

Three configurations anchor the kernel-speed contract, all at a load
leaving routers idle roughly half of all cycles — the regime load
sweeps live in:

* **transpose 8x8 mesh** — the active-set kernel must deliver >= 3x the
  seed (legacy) kernel's cycles/sec (the PR-1 contract);
* **uniform 8x8 SMART** (demands routed through the workload
  route-selection pipeline, so streams cross real multi-stop bypass
  chains) — the event kernel must deliver >= 1.8x the active kernel's
  cycles/sec (raised from PR 4's 1.5x by non-final chain coverage),
  with identical deliveries and event counters all around;
* **uniform 8x8 SMART cascades** (the same demands at ``HPC_max=2``,
  chopping every route into 2-hop segments — chain depth 10 where the
  plain anchor tops out around 6) — the long-chain anchor for
  feeder-ordered settlement: whole producer -> consumer cascades
  settle as dependency-ordered replays, so the event kernel must
  clear a *higher* floor, >= 1.85x active.
* **uniform 8x8 SMART batched** — the multi-seed lockstep engine
  (``BatchedEventNetworks``) running ``BATCH`` = 8 seed replications of
  the uniform anchor through one event loop must deliver >= 1.6x the
  aggregate lane-cycles/sec of 8 serial event runs, with every lane's
  counters bit-identical to its serial counterpart; the same engine at
  batch=1 on the cascade anchor must beat the serial event kernel by
  >= 1.15x on the next-wake cache alone.  (The design target for
  batch=8 was 3x; pure-CPython measurements on the reference container
  land at 2.0-2.8x run-to-run, so the enforced floor is set below the
  observed band and the committed baseline records the measured ratio.)

The measured rates land in ``results/BENCH_kernel.json`` (stamped with
machine/python metadata) as the regression baseline checked by
``benchmarks/check_regression.py``.  CI runs a short mode via
``SMART_BENCH_CYCLES`` and relaxes the speedup floors via
``SMART_BENCH_MIN_ACTIVE_SPEEDUP`` / ``SMART_BENCH_MIN_EVENT_SPEEDUP``
/ ``SMART_BENCH_MIN_CASCADE_SPEEDUP`` / ``SMART_BENCH_MIN_BATCH_SPEEDUP``
/ ``SMART_BENCH_MIN_BATCH1_SPEEDUP`` (shared-runner timings are
noisy; the committed numbers come from a quiet container).
"""

import os
import time

from conftest import save_bench_json, save_rows

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.sim.batch import BatchedEventNetworks
from repro.sim.patterns import synthetic_flows
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic
from repro.workloads import build_workload

#: ~50% router-idle on the 8x8 transpose workload (measured: the legacy
#: kernel reports ~0.5 clocked/total router-cycles at this rate).
TRANSPOSE_RATE = 0.0075
#: ~50% router-idle on the route-selected 8x8 uniform SMART workload.
UNIFORM_RATE = 0.02
#: ~60% router-idle on the HPC_max=2 cascade workload (stops at every
#: second router triple the clocked routers per packet, so the
#: half-idle band sits at a lower injection rate).
CASCADE_RATE = 0.012
#: HPC_max for the cascade anchor: 2-hop bypass segments force the
#: deepest hand-off cascades expressible on an 8x8 mesh.
CASCADE_HPC_MAX = 2
#: Seed replications in the batched anchor.
BATCH = 8
#: First traffic seed of the batch (lane i runs seed BATCH_SEED0 + i;
#: lane 0 therefore reruns the serial anchors' seed).
BATCH_SEED0 = 3
CYCLES = int(os.environ.get("SMART_BENCH_CYCLES", "12000"))
MIN_ACTIVE_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_ACTIVE_SPEEDUP", "3.0")
)
MIN_EVENT_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_EVENT_SPEEDUP", "1.8")
)
MIN_CASCADE_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_CASCADE_SPEEDUP", "1.85")
)
MIN_BATCH_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_BATCH_SPEEDUP", "1.6")
)
MIN_BATCH1_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_BATCH1_SPEEDUP", "1.15")
)


def _measure(noc, kernel):
    start = time.perf_counter()
    noc.network.run_cycles(CYCLES)
    elapsed = time.perf_counter() - start
    counters = noc.network.counters
    return {
        "kernel": kernel,
        "cycles_per_sec": CYCLES / elapsed,
        "router_idle_frac": 1.0
        - counters.clock_router_cycles / counters.total_router_cycles,
        "delivered": noc.network.stats.delivered_total,
        "counters": counters,
    }


def _mesh_transpose(kernel, mode):
    cfg = NocConfig(width=8, height=8)
    flows = synthetic_flows("transpose", cfg, injection_rate=TRANSPOSE_RATE,
                            seed=3)
    traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
    return _measure(
        build_mesh_noc(cfg, flows, traffic=traffic, kernel=kernel), kernel
    )


def _smart_uniform(kernel, mode):
    cfg = NocConfig(width=8, height=8)
    built = build_workload("uniform", cfg, seed=3)
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=UNIFORM_RATE, seed=3, mode=mode
    )
    return _measure(
        build_smart_noc(cfg, built.flows, traffic=traffic, kernel=kernel),
        kernel,
    )


def _smart_cascade(kernel, mode):
    cfg = NocConfig(width=8, height=8, hpc_max=CASCADE_HPC_MAX)
    built = build_workload("uniform", cfg, seed=3)
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=CASCADE_RATE, seed=3, mode=mode
    )
    return _measure(
        build_smart_noc(cfg, built.flows, traffic=traffic, kernel=kernel),
        kernel,
    )


def _uniform_event_lane(seed):
    """One fresh event-kernel lane of the uniform anchor workload."""
    cfg = NocConfig(width=8, height=8)
    built = build_workload("uniform", cfg, seed=3)
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=UNIFORM_RATE, seed=seed, mode="predraw"
    )
    return build_smart_noc(
        cfg, built.flows, traffic=traffic, kernel="event"
    ).network


def _cascade_event_lane(seed):
    """One fresh event-kernel lane of the cascade anchor workload."""
    cfg = NocConfig(width=8, height=8, hpc_max=CASCADE_HPC_MAX)
    built = build_workload("uniform", cfg, seed=3)
    traffic = RateScaledTraffic(
        cfg, built.flows, scale=CASCADE_RATE, seed=seed, mode="predraw"
    )
    return build_smart_noc(
        cfg, built.flows, traffic=traffic, kernel="event"
    ).network


def _smart_batched():
    """BATCH seed replications: 8 serial event runs vs one lockstep
    engine, with per-lane counter bit-identity enforced."""
    seeds = range(BATCH_SEED0, BATCH_SEED0 + BATCH)
    serial = [_uniform_event_lane(s) for s in seeds]
    start = time.perf_counter()
    for net in serial:
        net.run_cycles(CYCLES)
    serial_elapsed = time.perf_counter() - start

    engine = BatchedEventNetworks([_uniform_event_lane(s) for s in seeds])
    start = time.perf_counter()
    engine.run_cycles(CYCLES)
    batched_elapsed = time.perf_counter() - start

    for lane, net in enumerate(serial):
        assert engine.lane_counters[lane] == net.counters, lane
        assert (engine.lane_stats[lane].delivered_total
                == net.stats.delivered_total), lane
    lane_cycles = BATCH * CYCLES
    return {
        "batch": BATCH,
        "serial_cycles_per_sec": lane_cycles / serial_elapsed,
        "batched_cycles_per_sec": lane_cycles / batched_elapsed,
        "batch_speedup": serial_elapsed / batched_elapsed,
        "delivered": engine.lane_stats[0].delivered_total,
    }


def _cascade_batch1():
    """The engine at batch=1 on the cascade anchor: the next-wake
    cache and SoA layout alone, no cross-seed amortization."""
    engine = BatchedEventNetworks([_cascade_event_lane(3)])
    start = time.perf_counter()
    engine.run_cycles(CYCLES)
    elapsed = time.perf_counter() - start
    return {
        "cycles_per_sec": CYCLES / elapsed,
        "counters": engine.lane_counters[0],
        "delivered": engine.lane_stats[0].delivered_total,
    }


def _print_config(title, points):
    print()
    print(title)
    for point in points:
        print("  %-8s %10.0f cycles/sec (%.0f%% router-idle)"
              % (point["kernel"], point["cycles_per_sec"],
                 100 * point["router_idle_frac"]))


def test_kernel_speedup(benchmark):
    transpose, uniform, cascade, batched, batch1 = benchmark.pedantic(
        lambda: (
            [_mesh_transpose("legacy", "legacy"),
             _mesh_transpose("active", "predraw")],
            [_smart_uniform("legacy", "legacy"),
             _smart_uniform("active", "predraw"),
             _smart_uniform("event", "predraw")],
            [_smart_cascade("legacy", "legacy"),
             _smart_cascade("active", "predraw"),
             _smart_cascade("event", "predraw")],
            _smart_batched(),
            _cascade_batch1(),
        ),
        rounds=1, iterations=1,
    )
    t_legacy, t_active = transpose
    u_legacy, u_active, u_event = uniform
    c_legacy, c_active, c_event = cascade
    active_speedup = t_active["cycles_per_sec"] / t_legacy["cycles_per_sec"]
    event_speedup = u_event["cycles_per_sec"] / u_active["cycles_per_sec"]
    cascade_speedup = c_event["cycles_per_sec"] / c_active["cycles_per_sec"]
    batch1_speedup = batch1["cycles_per_sec"] / c_event["cycles_per_sec"]
    _print_config("transpose 8x8 mesh @ %g pkt/cycle/node" % TRANSPOSE_RATE,
                  transpose)
    print("  active speedup vs legacy: %.2fx" % active_speedup)
    _print_config("uniform 8x8 smart @ %g pkt/cycle/node" % UNIFORM_RATE,
                  uniform)
    print("  event speedup vs active: %.2fx" % event_speedup)
    _print_config(
        "uniform 8x8 smart cascades (HPC_max=%d) @ %g pkt/cycle/node"
        % (CASCADE_HPC_MAX, CASCADE_RATE),
        cascade,
    )
    print("  event speedup vs active: %.2fx" % cascade_speedup)
    print()
    print("uniform 8x8 smart batched (batch=%d, seeds %d..%d)"
          % (BATCH, BATCH_SEED0, BATCH_SEED0 + BATCH - 1))
    print("  serial   %10.0f lane-cycles/sec"
          % batched["serial_cycles_per_sec"])
    print("  batched  %10.0f lane-cycles/sec"
          % batched["batched_cycles_per_sec"])
    print("  batch speedup vs serial: %.2fx" % batched["batch_speedup"])
    print("  cascade batch=1 speedup vs serial event: %.2fx"
          % batch1_speedup)
    save_rows("kernel_speed", [
        {
            "config": config,
            "kernel": point["kernel"],
            "cycles_per_sec": round(point["cycles_per_sec"], 1),
            "router_idle_frac": round(point["router_idle_frac"], 3),
            "delivered": point["delivered"],
        }
        for config, points in (
            ("mesh_transpose", transpose),
            ("smart_uniform", uniform),
            ("smart_cascade", cascade),
        )
        for point in points
    ] + [
        {
            "config": "smart_batched",
            "kernel": kernel,
            "cycles_per_sec": round(rate, 1),
            "router_idle_frac": "",
            "delivered": delivered,
        }
        for kernel, rate, delivered in (
            ("event-serial8", batched["serial_cycles_per_sec"],
             batched["delivered"]),
            ("event-batch8", batched["batched_cycles_per_sec"],
             batched["delivered"]),
            ("event-batch1", batch1["cycles_per_sec"],
             batch1["delivered"]),
        )
    ])
    save_bench_json("BENCH_kernel.json", {
        "bench": "kernel_speed",
        "cycles": CYCLES,
        "mesh_transpose": {
            "workload": "transpose 8x8 mesh @ %g packets/cycle/node"
            % TRANSPOSE_RATE,
            "legacy_cycles_per_sec": round(t_legacy["cycles_per_sec"], 1),
            "active_cycles_per_sec": round(t_active["cycles_per_sec"], 1),
            "active_speedup": round(active_speedup, 2),
            "router_idle_frac": round(t_legacy["router_idle_frac"], 3),
        },
        "smart_uniform": {
            "workload": "uniform 8x8 smart @ %g packets/cycle/node"
            % UNIFORM_RATE,
            "legacy_cycles_per_sec": round(u_legacy["cycles_per_sec"], 1),
            "active_cycles_per_sec": round(u_active["cycles_per_sec"], 1),
            "event_cycles_per_sec": round(u_event["cycles_per_sec"], 1),
            "event_speedup_vs_active": round(event_speedup, 2),
            "router_idle_frac": round(u_legacy["router_idle_frac"], 3),
        },
        "smart_cascade": {
            "workload": (
                "uniform 8x8 smart, HPC_max=%d cascades @ %g "
                "packets/cycle/node"
                % (CASCADE_HPC_MAX, CASCADE_RATE)
            ),
            "legacy_cycles_per_sec": round(c_legacy["cycles_per_sec"], 1),
            "active_cycles_per_sec": round(c_active["cycles_per_sec"], 1),
            "event_cycles_per_sec": round(c_event["cycles_per_sec"], 1),
            "event_speedup_vs_active": round(cascade_speedup, 2),
            "router_idle_frac": round(c_legacy["router_idle_frac"], 3),
        },
        "smart_batched": {
            "workload": (
                "uniform 8x8 smart @ %g packets/cycle/node, %d seed "
                "replications in one lockstep event loop"
                % (UNIFORM_RATE, BATCH)
            ),
            "batch": BATCH,
            "serial_lane_cycles_per_sec": round(
                batched["serial_cycles_per_sec"], 1
            ),
            "batched_lane_cycles_per_sec": round(
                batched["batched_cycles_per_sec"], 1
            ),
            "batch_speedup": round(batched["batch_speedup"], 2),
            "batch1_cascade_cycles_per_sec": round(
                batch1["cycles_per_sec"], 1
            ),
            "batch1_speedup_vs_event": round(batch1_speedup, 2),
        },
    })

    # All kernels simulate the identical network: same deliveries, same
    # power-relevant event counts.
    assert t_active["delivered"] == t_legacy["delivered"]
    assert t_active["counters"] == t_legacy["counters"]
    assert u_active["delivered"] == u_legacy["delivered"]
    assert u_active["counters"] == u_legacy["counters"]
    assert u_event["delivered"] == u_legacy["delivered"]
    assert u_event["counters"] == u_legacy["counters"]
    assert c_active["delivered"] == c_legacy["delivered"]
    assert c_active["counters"] == c_legacy["counters"]
    assert c_event["delivered"] == c_legacy["delivered"]
    assert c_event["counters"] == c_legacy["counters"]
    # The workloads are the contract: routers idle roughly half the time.
    assert 0.35 <= t_legacy["router_idle_frac"] <= 0.65
    assert 0.35 <= u_legacy["router_idle_frac"] <= 0.65
    assert 0.35 <= c_legacy["router_idle_frac"] <= 0.65
    # Batch=1 simulates the identical cascade network serially does.
    assert batch1["delivered"] == c_event["delivered"]
    assert batch1["counters"] == c_event["counters"]
    assert active_speedup >= MIN_ACTIVE_SPEEDUP
    assert event_speedup >= MIN_EVENT_SPEEDUP
    assert cascade_speedup >= MIN_CASCADE_SPEEDUP
    assert batched["batch_speedup"] >= MIN_BATCH_SPEEDUP
    assert batch1_speedup >= MIN_BATCH1_SPEEDUP
