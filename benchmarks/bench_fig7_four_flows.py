"""Fig 7: four concurrent flows on the SMART NoC.

Green and purple never overlap another flow and traverse source NIC to
destination NIC in one cycle; red and blue share the link between routers
9 and 10, stop before and after it, and complete with the figure's
cumulative times 1, 4, 7.
"""

from conftest import save_rows

from repro.config import NocConfig
from repro.core.noc_builder import build_smart_noc
from repro.eval.report import render_table
from repro.eval.scenarios import FIG7_STOP_TIMES, fig7_flows
from repro.sim.traffic import ScriptedTraffic


def _generate():
    flows = fig7_flows()
    schedule = [(1, flow.flow_id) for flow in flows]
    noc = build_smart_noc(NocConfig(), flows, traffic=ScriptedTraffic(schedule))
    noc.network.stats.measuring = True
    noc.network.run_cycles(200)
    got = {p.flow_id: p for p in noc.network.stats.measured_delivered}
    rows = []
    for flow in flows:
        packet = got[flow.flow_id]
        rows.append(
            {
                "flow": flow.name,
                "src": flow.src,
                "dst": flow.dst,
                "stops": str(noc.network.stops_for_flow(flow)),
                "head_latency": packet.head_latency,
            }
        )
    return noc, rows


def test_fig7_four_flows(benchmark):
    noc, rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Fig 7: four flows (times 1 / 1,4,7)"))
    save_rows("fig7_four_flows", rows)
    by_name = {r["flow"]: r for r in rows}
    assert by_name["green"]["head_latency"] == 1
    assert by_name["purple"]["head_latency"] == 1
    assert by_name["green"]["stops"] == "[]"
    # Red and blue stop at routers 9 and 10; the SA loser of the shared
    # port finishes one packet-time later (footnote 7).
    assert by_name["blue"]["stops"] == "[9, 10]"
    assert by_name["red"]["stops"] == "[9, 10]"
    latencies = sorted(
        (by_name["blue"]["head_latency"], by_name["red"]["head_latency"])
    )
    assert latencies[0] == FIG7_STOP_TIMES[-1]
    assert latencies[1] == FIG7_STOP_TIMES[-1] + 8
