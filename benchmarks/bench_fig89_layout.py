"""Fig 8/9: generated Tx-block layout and the 4x4 NoC layout + RTL flow.

Times the complete §V tool flow: RTL generation for the full NoC, lint,
Tx/Rx block placement, grid layout, .lib/.lef emission.
"""

from conftest import save_rows

from repro.config import NocConfig
from repro.eval.report import render_table
from repro.rtl.layout import generate_layout, tx_block_layout
from repro.rtl.lint import lint_verilog
from repro.rtl.liberty import emit_lef, emit_liberty
from repro.rtl.noc_gen import build_noc_netlist
from repro.rtl.verilog import emit_netlist


def _generate():
    cfg = NocConfig()
    verilog = emit_netlist(build_noc_netlist(cfg), "SMART NoC (Table II)")
    report = lint_verilog(verilog)
    layout = generate_layout(cfg)
    tx_block = tx_block_layout(cfg.flit_bits, "tx")
    lib = emit_liberty(cfg.flit_bits + cfg.credit_bits)
    lef = emit_lef(cfg.flit_bits + cfg.credit_bits)
    rows = [
        {"artifact": "NoC Verilog (lines)", "value": len(verilog.splitlines())},
        {"artifact": "lint errors", "value": len(report.errors)},
        {"artifact": "Fig 8 Tx block (um, WxH)",
         "value": "%.1f x %.1f" % (tx_block.width_um, tx_block.height_um)},
        {"artifact": "die (mm)", "value": "%.0f x %.0f" % (layout.die_w_mm, layout.die_h_mm)},
        {"artifact": "network area fraction", "value": "%.2f%%" % (100 * layout.network_area_fraction())},
        {"artifact": "mesh wirelength (mm)", "value": "%.0f" % layout.total_link_wirelength_mm()},
        {"artifact": ".lib lines", "value": len(lib.splitlines())},
        {"artifact": ".lef lines", "value": len(lef.splitlines())},
    ]
    return rows, report, layout


def test_fig89_layout_and_rtl(benchmark):
    rows, report, layout = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="Fig 8/9: generated implementation views"))
    print(layout.ascii_floorplan())
    save_rows("fig89_layout", rows)
    assert report.ok, report.errors
    layout.check_no_overlaps()
    # Fig 9: 4x4 tiles at 1 mm pitch; black core regions dominate.
    assert layout.die_w_mm == 4.0 and layout.die_h_mm == 4.0
    assert layout.network_area_fraction() < 0.10
