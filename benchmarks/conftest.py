"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, prints
the rows (run pytest with ``-s`` to see them) and asserts the *shape*
the paper reports.  The heavy Fig 10 suite is computed once per process
and shared between the latency and power benches.
"""

from __future__ import annotations

import functools
import os

from repro.eval.experiments import run_suite
from repro.eval.report import write_csv

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Simulation window used by the Fig 10 benches.
SUITE_KWARGS = dict(warmup_cycles=1000, measure_cycles=20000, drain_limit=200000)


@functools.lru_cache(maxsize=1)
def fig10_suite():
    """The full 8-app x 3-design Fig 10 matrix (cached per process)."""
    return run_suite(**SUITE_KWARGS)


def save_rows(name: str, rows) -> None:
    """Persist a bench's rows under results/ for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if rows:
        write_csv(os.path.join(RESULTS_DIR, name + ".csv"), rows)
