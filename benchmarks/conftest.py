"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, prints
the rows (run pytest with ``-s`` to see them) and asserts the *shape*
the paper reports.  The heavy Fig 10 suite is computed once per process
and shared between the latency and power benches.
"""

from __future__ import annotations

import functools
import json
import os
import platform

from repro.eval.experiments import run_suite
from repro.eval.report import write_csv

#: Where bench outputs land.  CI points this at a scratch directory via
#: ``SMART_BENCH_RESULTS_DIR`` so the committed ``results/BENCH_*.json``
#: stay pristine as regression baselines (``benchmarks/check_regression.py``
#: compares the two).
RESULTS_DIR = os.environ.get(
    "SMART_BENCH_RESULTS_DIR",
    os.path.join(os.path.dirname(__file__), "..", "results"),
)


def bench_environment() -> dict:
    """Machine/python metadata stamped into every ``BENCH_*.json``.

    Cycles/sec numbers are only comparable on like hardware;
    ``check_regression.py`` warns instead of hard-failing when these
    fields differ between the baseline and the fresh run.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def save_bench_json(name: str, payload: dict) -> str:
    """Write a bench summary JSON (stamped with the environment)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    payload = dict(payload)
    payload["environment"] = bench_environment()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path

#: Simulation window used by the Fig 10 benches.
SUITE_KWARGS = dict(warmup_cycles=1000, measure_cycles=20000, drain_limit=200000)


@functools.lru_cache(maxsize=1)
def fig10_suite():
    """The full 8-app x 3-design Fig 10 matrix (cached per process)."""
    return run_suite(**SUITE_KWARGS)


def save_rows(name: str, rows) -> None:
    """Persist a bench's rows under results/ for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if rows:
        write_csv(os.path.join(RESULTS_DIR, name + ".csv"), rows)
