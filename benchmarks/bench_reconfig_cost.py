"""§V reconfiguration cost: 16 memory-mapped stores retarget the NoC."""

from conftest import save_rows

from repro.apps.registry import PAPER_APP_ORDER, evaluation_task_graph
from repro.config import NocConfig
from repro.core.presets import compute_presets
from repro.core.reconfiguration import compile_program, diff_program
from repro.eval.report import render_table
from repro.mapping.nmap import map_application
from repro.sim.topology import Mesh


def _generate():
    cfg = NocConfig()
    mesh = Mesh(cfg.width, cfg.height)
    programs = {}
    for app in PAPER_APP_ORDER:
        graph = evaluation_task_graph(app)
        _mapping, flows = map_application(graph, mesh)
        programs[app] = compile_program(
            compute_presets(cfg, mesh, flows), app
        )
    rows = []
    apps = list(PAPER_APP_ORDER)
    for before, after in zip(apps, apps[1:] + apps[:1]):
        delta = diff_program(programs[before], programs[after])
        rows.append(
            {
                "switch": "%s -> %s" % (before, after),
                "full_stores": programs[after].cost_instructions,
                "incremental_stores": delta.cost_instructions,
            }
        )
    return rows


def test_reconfiguration_cost(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="§V reconfiguration cost (stores)"))
    save_rows("reconfig_cost", rows)
    for row in rows:
        # §V: 16 registers = 16 instructions for a 16-node NoC.
        assert row["full_stores"] == 16
        assert 0 < row["incremental_stores"] <= 16
