"""Table II: the 4x4 NoC configuration."""

from conftest import save_rows

from repro.config import TABLE_II_CONFIG
from repro.core.smart_crossbar import build_router_spec
from repro.eval.report import render_table


def _generate():
    cfg = TABLE_II_CONFIG
    spec = build_router_spec(cfg)
    rows = [
        {"parameter": "Technology", "value": "%d nm" % cfg.technology_nm},
        {"parameter": "Vdd, Freq", "value": "%.1f V, %.0f GHz" % (cfg.vdd, cfg.freq_hz / 1e9)},
        {"parameter": "Topology", "value": "%dx%d mesh" % (cfg.width, cfg.height)},
        {"parameter": "Channel width", "value": "%d bits" % cfg.flit_bits},
        {"parameter": "Credit width", "value": "%d bits" % cfg.credit_bits},
        {"parameter": "Router ports", "value": "%d" % spec.num_ports},
        {"parameter": "VCs per port", "value": "%d, %d-flit deep" % (cfg.vcs_per_port, cfg.vc_depth_flits)},
        {"parameter": "Packet size", "value": "%d bits" % cfg.packet_bits},
        {"parameter": "Header width", "value": "%d bits (Head), %d bits (Body, Tail)" % (cfg.head_header_bits, cfg.body_header_bits)},
    ]
    return rows


def test_table2(benchmark):
    rows = benchmark.pedantic(_generate, rounds=3, iterations=1)
    print()
    print(render_table(rows, title="Table II: 4x4 NoC configuration"))
    save_rows("table2_config", rows)
    values = {r["parameter"]: r["value"] for r in rows}
    assert values["Technology"] == "45 nm"
    assert values["Vdd, Freq"] == "0.9 V, 2 GHz"
    assert values["Topology"] == "4x4 mesh"
    assert values["Channel width"] == "32 bits"
    assert values["Credit width"] == "2 bits"
    assert values["Router ports"] == "5"
    assert values["VCs per port"] == "2, 10-flit deep"
    assert values["Packet size"] == "256 bits"
    assert values["Header width"].startswith("20 bits")
