"""Dedicated kernel speed: active-set vs legacy cycles/sec on 8x8 uniform.

The Dedicated baseline was the slow leg of every latency-vs-load sweep:
its legacy kernel scans every flow, channel and sink each cycle.  The
active-set and event kernels must each deliver >= 2x the legacy
kernel's cycles/sec on a moderately loaded 8x8 uniform-random workload
whose shared sinks sit idle roughly half to two-thirds of all cycles —
the regime load sweeps live in — while producing identical results.
The measured rates land in ``results/BENCH_dedicated.json`` (stamped
with machine/python metadata) together with a short latency-vs-load
trajectory of the baseline, mirroring ``BENCH_kernel.json``.  CI runs a
short mode via ``SMART_BENCH_CYCLES`` / ``SMART_BENCH_MIN_ACTIVE_SPEEDUP``.

Like every ``bench_*.py`` module this file is outside pytest's default
``test_*.py`` collection pattern, so tier-1 ``pytest -x -q`` never runs
it; invoke it explicitly with ``pytest benchmarks/bench_dedicated_speed.py -s``.
"""

import os
import time

from conftest import save_bench_json, save_rows

from repro.config import NocConfig
from repro.eval.dedicated import DedicatedNetwork
from repro.sim.patterns import synthetic_flows
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic

#: ~35-50% of shared-sink-cycles clocked on the 8x8 uniform workload
#: (measured: the legacy kernel reports ~0.66 gated/total sink-cycles at
#: this rate), i.e. the half-idle sweep regime.
INJECTION_RATE = 0.015
CYCLES = int(os.environ.get("SMART_BENCH_CYCLES", "12000"))
MIN_ACTIVE_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_ACTIVE_SPEEDUP", "2.0")
)
#: Floor for the event kernel, also measured against legacy here.
MIN_EVENT_SPEEDUP = float(
    os.environ.get("SMART_BENCH_MIN_EVENT_SPEEDUP", "2.0")
)
#: Loads for the committed latency-vs-load trajectory (packets/cycle/node).
TRAJECTORY_RATES = (0.005, 0.01, 0.015)


def _build(kernel: str, mode: str, rate: float):
    cfg = NocConfig(width=8, height=8)
    flows = synthetic_flows("uniform", cfg, injection_rate=rate, seed=3)
    traffic = BernoulliTraffic(cfg, flows, seed=3, mode=mode)
    return DedicatedNetwork(
        cfg, Mesh(cfg.width, cfg.height), flows, traffic, kernel=kernel
    )


def _cycles_per_sec(kernel: str, mode: str):
    net = _build(kernel, mode, INJECTION_RATE)
    start = time.perf_counter()
    net.run_cycles(CYCLES)
    elapsed = time.perf_counter() - start
    counters = net.counters
    return {
        "kernel": kernel,
        "cycles_per_sec": CYCLES / elapsed,
        "sink_idle_frac": 1.0
        - counters.clock_router_cycles / counters.total_router_cycles,
        "delivered": net.stats.delivered_total,
        "counters": counters,
    }


def _latency_trajectory():
    """Mean latency vs injection rate for the (fast) active baseline."""
    points = []
    for rate in TRAJECTORY_RATES:
        net = _build("active", "predraw", rate)
        result = net.run(
            warmup_cycles=300, measure_cycles=3000, drain_limit=30000
        )
        points.append(
            {
                "load": rate,
                "mean_head_latency": round(result.summary.mean_head_latency, 3),
                "p95_head_latency": round(result.summary.p95_head_latency, 3),
                "saturated": not result.drained,
            }
        )
    return points


def test_dedicated_kernel_speedup(benchmark):
    legacy, active, event = benchmark.pedantic(
        lambda: (_cycles_per_sec("legacy", "legacy"),
                 _cycles_per_sec("active", "predraw"),
                 _cycles_per_sec("event", "predraw")),
        rounds=1, iterations=1,
    )
    speedup = active["cycles_per_sec"] / legacy["cycles_per_sec"]
    event_speedup = event["cycles_per_sec"] / legacy["cycles_per_sec"]
    rows = [
        {
            "kernel": point["kernel"],
            "cycles_per_sec": round(point["cycles_per_sec"], 1),
            "sink_idle_frac": round(point["sink_idle_frac"], 3),
            "delivered": point["delivered"],
        }
        for point in (legacy, active, event)
    ]
    print()
    for point in (legacy, active, event):
        print("%-8s %10.0f cycles/sec (%.0f%% sink-idle)"
              % (point["kernel"], point["cycles_per_sec"],
                 100 * point["sink_idle_frac"]))
    print("active speedup: %.2fx, event speedup: %.2fx"
          % (speedup, event_speedup))
    save_rows("dedicated_speed", rows)
    trajectory = _latency_trajectory()
    save_bench_json("BENCH_dedicated.json", {
        "bench": "dedicated_speed",
        "workload": "uniform 8x8 @ %g packets/cycle/node" % INJECTION_RATE,
        "cycles": CYCLES,
        "legacy_cycles_per_sec": round(legacy["cycles_per_sec"], 1),
        "active_cycles_per_sec": round(active["cycles_per_sec"], 1),
        "event_cycles_per_sec": round(event["cycles_per_sec"], 1),
        "speedup": round(speedup, 2),
        "event_speedup": round(event_speedup, 2),
        "sink_idle_frac": round(legacy["sink_idle_frac"], 3),
        "latency_vs_load": trajectory,
    })

    # All kernels simulate the identical network: same deliveries, same
    # power-relevant event counts.
    assert active["delivered"] == legacy["delivered"]
    assert active["counters"] == legacy["counters"]
    assert event["delivered"] == legacy["delivered"]
    assert event["counters"] == legacy["counters"]
    # The workload is the contract: shared sinks gated roughly half to
    # three-quarters of the time.
    assert 0.5 <= legacy["sink_idle_frac"] <= 0.8
    assert speedup >= MIN_ACTIVE_SPEEDUP
    assert event_speedup >= MIN_EVENT_SPEEDUP
    # The trajectory must rise monotonically toward the knee.
    latencies = [p["mean_head_latency"] for p in trajectory]
    assert latencies == sorted(latencies)
