"""Benchmark regression gate: compare fresh bench JSON against baselines.

Usage::

    python benchmarks/check_regression.py BASELINE FRESH [BASELINE FRESH ...]
        [--threshold 0.30] [--summary PATH]

Each (baseline, fresh) pair is a committed ``results/BENCH_*.json`` and
the JSON a CI bench run just produced.  Two metric families are
compared (found recursively, reported with their dotted paths):

* ``*speedup*`` ratios (event vs active, active vs legacy, ...) are
  **machine-independent** and always enforced: a fresh ratio below
  ``(1 - threshold) x baseline`` fails the check.  This is what gives
  the CI gate teeth even though runners differ from the machine that
  produced the committed baselines.
* ``*cycles_per_sec`` absolute rates are enforced only when the two
  files are *comparable*: same platform, architecture, CPU count and
  Python version (per the ``environment`` stamp the benches write) and
  the same simulated ``cycles`` count (short-mode rates measure warm-up
  overhead a long run amortises).  Otherwise slowdowns only **warn** —
  cycles/sec does not transfer across hardware or run lengths.
* a metric present in the baseline but missing from the fresh run fails
  the check regardless (the bench contract shrank).

A Markdown trajectory table is printed and, when ``--summary`` (or the
``GITHUB_STEP_SUMMARY`` environment variable) points at a file,
appended there so the table lands in the CI job summary.

Exits 0 when clean or cross-machine, 1 on regressions/missing metrics,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment fields that must match for cycles/sec to be comparable.
MACHINE_KEYS = ("platform", "machine", "cpu_count", "python")


def _iter_metrics(
    doc: object, suffixes: Tuple[str, ...], prefix: str = ""
) -> Iterator[Tuple[str, float]]:
    if not isinstance(doc, dict):
        return
    for key, value in doc.items():
        if isinstance(value, dict):
            yield from _iter_metrics(value, suffixes, prefix + key + ".")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaf = key.rsplit(".", 1)[-1]
            if any(suffix in leaf for suffix in suffixes):
                yield prefix + key, float(value)


def iter_rates(doc: object) -> Iterator[Tuple[str, float]]:
    """Every (dotted key path, value) pair ending in cycles_per_sec."""
    for key, value in _iter_metrics(doc, ("cycles_per_sec",)):
        if key.endswith("cycles_per_sec"):
            yield key, value


def iter_speedups(doc: object) -> Iterator[Tuple[str, float]]:
    """Every (dotted key path, value) whose leaf mentions 'speedup'."""
    yield from _iter_metrics(doc, ("speedup",))


def comparable_machines(baseline: dict, fresh: dict) -> bool:
    """True when both environment stamps exist and match on MACHINE_KEYS.

    Every key must be *present* in both stamps: two files that both
    omit ``cpu_count`` (older baselines) would otherwise compare equal
    on ``None == None`` and gate absolute rates across an unknown
    core-count difference — cross-core-count deltas must warn, not
    fail.
    """
    env_a = baseline.get("environment")
    env_b = fresh.get("environment")
    if not isinstance(env_a, dict) or not isinstance(env_b, dict):
        return False
    return all(
        key in env_a and key in env_b and env_a[key] == env_b[key]
        for key in MACHINE_KEYS
    )


def comparable_runs(baseline: dict, fresh: dict) -> bool:
    """Absolute rates compare only on like machines AND run lengths."""
    return (
        comparable_machines(baseline, fresh)
        and baseline.get("cycles") == fresh.get("cycles")
    )


def compare(
    baseline: dict, fresh: dict, threshold: float
) -> List[Dict[str, object]]:
    """One row per baseline metric: values, ratio, status.

    ``kind`` is ``"speedup"`` (always enforced) or ``"rate"``
    (enforced only for comparable runs — the caller decides).
    """
    rows: List[Dict[str, object]] = []
    for kind, pairs in (
        ("speedup", (dict(iter_speedups(baseline)), dict(iter_speedups(fresh)))),
        ("rate", (dict(iter_rates(baseline)), dict(iter_rates(fresh)))),
    ):
        base_metrics, fresh_metrics = pairs
        for key, base_value in sorted(base_metrics.items()):
            fresh_value = fresh_metrics.get(key)
            if fresh_value is None:
                rows.append({"metric": key, "kind": kind,
                             "baseline": base_value, "fresh": None,
                             "ratio": None, "status": "missing"})
                continue
            ratio = fresh_value / base_value if base_value else float("inf")
            status = "ok" if ratio >= 1.0 - threshold else "regressed"
            rows.append({"metric": key, "kind": kind,
                         "baseline": base_value, "fresh": fresh_value,
                         "ratio": ratio, "status": status})
    return rows


def render_table(
    title: str, rows: List[Dict[str, object]], comparable: bool
) -> str:
    """The trajectory table as Markdown (also readable in a terminal)."""
    lines = [
        "### %s%s" % (
            title,
            "" if comparable
            else " (rates are cross-machine/short-mode: warn-only; "
            "speedups still enforced)",
        ),
        "",
        "| metric | baseline | fresh | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        ratio = row["ratio"]
        fresh = row["fresh"]
        fmt = "%.2f" if row["kind"] == "speedup" else "%.0f"
        lines.append("| %s | %s | %s | %s | %s |" % (
            row["metric"],
            fmt % row["baseline"],
            fmt % fresh if fresh is not None else "—",
            "%.2fx" % ratio if ratio is not None else "—",
            row["status"],
        ))
    lines.append("")
    return "\n".join(lines)


def check_pair(
    baseline_path: str, fresh_path: str, threshold: float
) -> Tuple[str, List[Dict[str, object]], bool, List[str]]:
    """Compare one file pair; returns (table, rows, comparable, failures)."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    comparable = comparable_runs(baseline, fresh)
    rows = compare(baseline, fresh, threshold)
    failures = []
    for row in rows:
        if row["status"] == "missing":
            failures.append("%s: metric missing from %s"
                            % (row["metric"], fresh_path))
        elif row["status"] == "regressed" and (
            comparable or row["kind"] == "speedup"
        ):
            failures.append(
                "%s: %.2f -> %.2f (%.2fx < %.2fx floor)"
                % (row["metric"], row["baseline"], row["fresh"],
                   row["ratio"], 1.0 - threshold)
            )
    title = "%s vs %s" % (os.path.basename(baseline_path), fresh_path)
    return render_table(title, rows, comparable), rows, comparable, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when benchmark cycles/sec regress beyond a "
        "threshold against the committed baselines.",
    )
    parser.add_argument(
        "files", nargs="+", metavar="BASELINE FRESH",
        help="pairs of baseline and fresh BENCH_*.json paths",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="maximum tolerated slowdown fraction (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
        help="file to append the Markdown tables to "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)
    if len(args.files) % 2 != 0:
        parser.error("expected BASELINE FRESH pairs, got an odd file count")
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")

    tables: List[str] = []
    all_failures: List[str] = []
    any_cross_machine = False
    for index in range(0, len(args.files), 2):
        table, _rows, comparable, failures = check_pair(
            args.files[index], args.files[index + 1], args.threshold
        )
        tables.append(table)
        all_failures.extend(failures)
        any_cross_machine |= not comparable

    output = "\n".join(tables)
    print(output)
    if any_cross_machine:
        print("warning: baseline and fresh runs come from different "
              "machines or run lengths; absolute cycles/sec slowdowns "
              "are reported but not enforced (speedup ratios still are).")
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(output + "\n")

    if all_failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in all_failures:
            print("  - " + failure, file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed "
          "(threshold: %.0f%% slowdown)." % (100 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
