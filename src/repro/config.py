"""Network configuration for the SMART NoC reproduction.

The defaults reproduce Table II of the paper: a 4x4 mesh in 45 nm at
0.9 V / 2 GHz, 32-bit flits, 256-bit packets, 5-port routers with 2 VCs of
10 flits per port, 2-bit credit channels, and a 20-bit head header.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class NocConfig:
    """Static parameters of a SMART NoC instance (paper Table II).

    Attributes:
        width: Mesh columns.
        height: Mesh rows.
        flit_bits: Channel (and flit) width in bits.
        packet_bits: Packet size in bits; packets are split into flits.
        vcs_per_port: Virtual channels per input port.
        vc_depth_flits: Buffer depth of each VC, in flits.
        credit_bits: Width of the reverse credit channel
            (log2(vcs) + 1 valid bit).
        head_header_bits: Header bits carried by a head flit.
        body_header_bits: Header bits carried by body/tail flits.
        freq_hz: Router/network clock frequency.
        vdd: Supply voltage.
        technology_nm: Process node (informational; drives energy/area
            constants).
        hpc_max: Maximum hops a flit may traverse in one cycle on a SMART
            bypass path (Table I: 8 hops at 2 GHz with the low-swing VLR).
        mesh_link_cycles: Extra link-traversal cycles per hop in the
            baseline mesh (the paper's mesh spends 3 cycles in the router
            plus 1 cycle in the link).
        credit_latency: Cycles for a credit to return to the segment start
            on the reverse credit mesh (single-cycle multi-hop, like data).
        mm_per_hop: Physical tile pitch; the paper assumes 1 hop = 1 mm from
            place-and-route of a Freescale e200z7 core in 45 nm.
    """

    width: int = 4
    height: int = 4
    flit_bits: int = 32
    packet_bits: int = 256
    vcs_per_port: int = 2
    vc_depth_flits: int = 10
    credit_bits: int = 2
    head_header_bits: int = 20
    body_header_bits: int = 4
    freq_hz: float = 2.0e9
    vdd: float = 0.9
    technology_nm: int = 45
    hpc_max: int = 8
    mesh_link_cycles: int = 1
    credit_latency: int = 1
    mm_per_hop: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.flit_bits <= 0 or self.packet_bits <= 0:
            raise ValueError("flit and packet sizes must be positive")
        if self.packet_bits % self.flit_bits != 0:
            raise ValueError(
                "packet_bits (%d) must be a multiple of flit_bits (%d)"
                % (self.packet_bits, self.flit_bits)
            )
        if self.vcs_per_port < 1:
            raise ValueError("need at least one virtual channel per port")
        if self.vc_depth_flits < self.flits_per_packet:
            raise ValueError(
                "virtual cut-through requires VC depth >= packet size "
                "(%d < %d flits)" % (self.vc_depth_flits, self.flits_per_packet)
            )
        if self.credit_bits < self.min_credit_bits:
            raise ValueError(
                "credit channel needs log2(vcs)+1 = %d bits, got %d"
                % (self.min_credit_bits, self.credit_bits)
            )
        if self.hpc_max < 1:
            raise ValueError("hpc_max must allow at least one hop per cycle")

    @property
    def num_nodes(self) -> int:
        """Number of mesh tiles (routers / NICs)."""
        return self.width * self.height

    @property
    def flits_per_packet(self) -> int:
        """Flits per packet (paper: 256/32 = 8)."""
        return self.packet_bits // self.flit_bits

    @property
    def min_credit_bits(self) -> int:
        """Reverse-credit width: log2(#VCs) rounded up, plus a valid bit."""
        return max(1, math.ceil(math.log2(self.vcs_per_port))) + 1

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.freq_hz

    def flow_rate_flits_per_cycle(self, bandwidth_bytes_per_s: float) -> float:
        """Convert a task-graph edge bandwidth to flits per cycle.

        The paper injects uniform-random traffic "to meet the specified
        bandwidth for each flow"; with 32-bit flits at 2 GHz one flit per
        cycle is 8 GB/s of channel bandwidth.
        """
        if bandwidth_bytes_per_s < 0:
            raise ValueError("bandwidth must be non-negative")
        bits_per_cycle = bandwidth_bytes_per_s * 8.0 / self.freq_hz
        return bits_per_cycle / self.flit_bits

    def flow_rate_packets_per_cycle(self, bandwidth_bytes_per_s: float) -> float:
        """Convert a flow bandwidth to packet injections per cycle."""
        return (
            self.flow_rate_flits_per_cycle(bandwidth_bytes_per_s)
            / self.flits_per_packet
        )


#: Configuration from Table II of the paper.
TABLE_II_CONFIG = NocConfig()
