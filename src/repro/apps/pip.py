"""Picture-in-Picture (PIP) task graph.

The 8-task PIP benchmark: an input memory feeding a scaling pipeline and a
juggler path that both land in display memory.  Small and pipeline-shaped —
the paper reports SMART matching the Dedicated topology on it.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

_EDGES_MB = [
    ("inp_mem", "hs", 128),
    ("hs", "vs", 64),
    ("vs", "jug1", 64),
    ("jug1", "mem", 64),
    ("inp_mem", "jug2", 64),
    ("jug2", "mem2", 64),
    ("mem", "op_disp", 64),
    ("mem2", "op_disp", 64),
]


def pip() -> TaskGraph:
    """The PIP task graph (8 tasks, 8 edges)."""
    return task_graph_from_tuples("PIP", _EDGES_MB)
