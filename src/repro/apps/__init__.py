"""The paper's SoC application suite (§VI)."""

from repro.apps.h264 import h264
from repro.apps.mms import MMS_SCALE, mms_dec, mms_enc, mms_mp3
from repro.apps.mwd import mwd
from repro.apps.pip import pip
from repro.apps.registry import (
    PAPER_APP_ORDER,
    all_evaluation_task_graphs,
    app_names,
    evaluation_task_graph,
    native_task_graph,
)
from repro.apps.vopd import vopd
from repro.apps.wlan import wlan

__all__ = [
    "MMS_SCALE",
    "PAPER_APP_ORDER",
    "all_evaluation_task_graphs",
    "app_names",
    "evaluation_task_graph",
    "h264",
    "mms_dec",
    "mms_enc",
    "mms_mp3",
    "mwd",
    "native_task_graph",
    "pip",
    "vopd",
    "wlan",
]
