"""Multi-Window Display (MWD) task graph.

A 12-task reconstruction of the Hu-Marculescu MWD benchmark: two image
processing branches (noise reduction and horizontal/vertical scaling) that
merge at the blender, with the 64/96/128 MB/s rates the literature quotes.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

_EDGES_MB = [
    ("in", "nr", 64),
    ("in", "hs", 128),
    ("nr", "mem1", 64),
    ("mem1", "hvs", 96),
    ("hs", "vs", 96),
    ("vs", "mem2", 96),
    ("mem2", "hvs", 96),
    ("hvs", "jug1", 96),
    ("jug1", "mem3", 64),
    ("mem3", "jug2", 64),
    ("jug2", "se", 96),
    ("se", "blend", 96),
]


def mwd() -> TaskGraph:
    """The MWD task graph (12 tasks, 12 edges)."""
    return task_graph_from_tuples("MWD", _EDGES_MB)
