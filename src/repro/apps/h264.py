"""H.264 decoder task graph.

The paper used an H264 task graph provided by Michel Kinsy (MIT), which is
not public; this is a documented reconstruction of an H.264 decoder SoC
with the structural property the paper's analysis hinges on (§VI): the
reference-frame memory ``mem_ref`` is the *source* of most heavy flows and
the reconstructed-frame memory ``mem_rec`` is the *sink* of most flows.
That hub structure forces source-side serialization over the single
injection link under SMART, giving the Dedicated topology its 2-4 cycle
advantage on this app.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

_EDGES_MB = [
    ("nal", "cavlc", 64),
    ("cavlc", "iq", 48),
    ("iq", "itrans", 48),
    ("itrans", "sum", 48),
    ("mem_ref", "mc", 512),
    ("mem_ref", "intra", 128),
    ("mem_ref", "dblk", 256),
    ("mem_ref", "disp", 384),
    ("mc", "sum", 256),
    ("intra", "sum", 128),
    ("sum", "dblk", 256),
    ("dblk", "mem_rec", 512),
    ("mc", "mem_rec", 96),
    ("intra", "mem_rec", 64),
    ("sum", "mem_rec", 64),
]


def h264() -> TaskGraph:
    """The H264 task graph (11 tasks, 15 edges, hub source + hub sink)."""
    return task_graph_from_tuples("H264", _EDGES_MB)
