"""Video Object Plane Decoder (VOPD) task graph.

The classic 12-task MPEG-4 VOPD communication graph (van der Tol &
Jaspers), with the bandwidths (MB/s) used throughout the NoC mapping
literature.  Pipeline-shaped: under SMART it maps almost entirely onto
bypass paths, which is why the paper reports near-identical latency to the
Dedicated topology for VOPD.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

_EDGES_MB = [
    ("vld", "run_le_dec", 70),
    ("run_le_dec", "inv_scan", 362),
    ("inv_scan", "acdc_pred", 362),
    ("acdc_pred", "stripe_mem", 49),
    ("stripe_mem", "iquant", 27),
    ("acdc_pred", "iquant", 357),
    ("iquant", "idct", 353),
    ("idct", "upsamp", 300),
    ("upsamp", "vop_rec", 313),
    ("vop_rec", "pad", 94),
    ("pad", "vop_mem", 500),
    ("vop_mem", "pad", 16),
    ("arm", "idct", 16),
]


def vopd() -> TaskGraph:
    """The VOPD task graph (12 tasks, 13 edges)."""
    return task_graph_from_tuples("VOPD", _EDGES_MB)
