"""Registry of the paper's SoC application suite (§VI, Fig 10).

``evaluation_task_graph`` returns graphs exactly as the paper evaluates
them — in particular the three MMS benchmarks are bandwidth-scaled 100x
per footnote 9.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.h264 import h264
from repro.apps.mms import MMS_SCALE, mms_dec, mms_enc, mms_mp3
from repro.apps.mwd import mwd
from repro.apps.pip import pip
from repro.apps.vopd import vopd
from repro.apps.wlan import wlan
from repro.mapping.task_graph import TaskGraph

#: The Fig 10 application order.
PAPER_APP_ORDER = [
    "H264",
    "MMS_DEC",
    "MMS_ENC",
    "MMS_MP3",
    "MWD",
    "VOPD",
    "WLAN",
    "PIP",
]

_BUILDERS: Dict[str, Callable[[], TaskGraph]] = {
    "H264": h264,
    "MMS_DEC": mms_dec,
    "MMS_ENC": mms_enc,
    "MMS_MP3": mms_mp3,
    "MWD": mwd,
    "VOPD": vopd,
    "WLAN": wlan,
    "PIP": pip,
}

_SCALED = {"MMS_DEC", "MMS_ENC", "MMS_MP3"}


def app_names() -> List[str]:
    """All application names, in the paper's Fig 10 order."""
    return list(PAPER_APP_ORDER)


def native_task_graph(name: str) -> TaskGraph:
    """The task graph with its native (unscaled) bandwidths."""
    key = name.upper()
    try:
        return _BUILDERS[key]()
    except KeyError:
        raise ValueError(
            "unknown application %r (have %s)"
            % (name, ", ".join(PAPER_APP_ORDER))
        ) from None


def evaluation_task_graph(name: str) -> TaskGraph:
    """The task graph as the paper evaluates it (MMS scaled 100x)."""
    graph = native_task_graph(name)
    if graph.name in _SCALED:
        return graph.scaled(MMS_SCALE, name=graph.name)
    return graph


def all_evaluation_task_graphs() -> List[TaskGraph]:
    return [evaluation_task_graph(name) for name in PAPER_APP_ORDER]
