"""Multi-Media System (MMS) task graphs: decoder, encoder and MP3 subsets.

Reconstructions of the Hu-Marculescu MMS benchmark family, split the way
the paper evaluates them: MMS_DEC (video + audio decode), MMS_ENC (video +
audio encode) and MMS_MP3 (MP3 codec around a shared DSP and memory).

Native bandwidths are small (the original MMS rates are kB/s-scale); the
paper scales all three MMS benchmarks by 100x "to allow reasonable on-chip
traffic in our 2 GHz design" (footnote 9) — apply :data:`MMS_SCALE` (the
registry does this for evaluation graphs).

MMS_MP3 deliberately carries the hub structure §VI describes: the DSP is
the source of most flows and the sample memory the sink of most flows,
which is what lets the Dedicated topology beat SMART by a few cycles.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

#: Paper footnote 9: MMS bandwidths are scaled 100x for evaluation.
MMS_SCALE = 100.0

_DEC_EDGES_MB = [
    ("demux", "vld", 0.8),
    ("vld", "iq", 1.5),
    ("iq", "idct", 1.5),
    ("idct", "recon", 1.9),
    ("mc", "recon", 1.3),
    ("mem_v", "mc", 3.8),
    ("recon", "mem_v", 3.2),
    ("mem_v", "disp", 5.0),
    ("demux", "aud_huff", 0.3),
    ("aud_huff", "dequant", 0.4),
    ("dequant", "imdct", 0.5),
    ("imdct", "pcm", 0.6),
    ("pcm", "dac", 0.7),
]

_ENC_EDGES_MB = [
    ("cam", "pre", 4.2),
    ("pre", "sub", 2.8),
    ("me", "sub", 1.5),
    ("mem_e", "me", 6.0),
    ("sub", "dct", 2.5),
    ("dct", "quant", 2.0),
    ("quant", "vlc", 1.2),
    ("quant", "iq_e", 1.5),
    ("iq_e", "idct_e", 1.5),
    ("idct_e", "rec_e", 1.8),
    ("rec_e", "mem_e", 3.0),
    ("vlc", "strm", 0.8),
    ("aud_in", "aenc", 0.4),
    ("aenc", "strm", 0.2),
]

_MP3_EDGES_MB = [
    ("mic", "adc", 0.6),
    ("adc", "fb", 1.2),
    ("dsp", "fb", 2.4),
    ("dsp", "mdct", 2.0),
    ("dsp", "quant", 1.6),
    ("dsp", "synth", 2.2),
    ("fb", "mdct", 1.4),
    ("mdct", "quant", 1.0),
    ("quant", "huff", 0.6),
    ("huff", "mem", 1.8),
    ("fb", "mem", 0.8),
    ("synth", "mem", 2.0),
    ("quant", "mem", 0.5),
    ("synth", "dac", 1.2),
]


def mms_dec() -> TaskGraph:
    """MMS decoder subset (13 tasks), native (unscaled) bandwidths."""
    return task_graph_from_tuples("MMS_DEC", _DEC_EDGES_MB)


def mms_enc() -> TaskGraph:
    """MMS encoder subset (14 tasks), native (unscaled) bandwidths."""
    return task_graph_from_tuples("MMS_ENC", _ENC_EDGES_MB)


def mms_mp3() -> TaskGraph:
    """MMS MP3 codec subset (10 tasks, DSP source hub + memory sink hub),
    native (unscaled) bandwidths."""
    return task_graph_from_tuples("MMS_MP3", _MP3_EDGES_MB)
