"""WLAN (802.11a) baseband receiver task graph.

A documented reconstruction of an OFDM receiver chain: synchronisation,
FFT, channel estimation/equalisation, demapping, de-interleaving, Viterbi
decoding and MAC hand-off, with a small channel-memory side path.  Almost
purely pipeline-shaped, so SMART achieves single-cycle paths nearly
everywhere — the paper reports WLAN latency identical to Dedicated.
"""

from repro.mapping.task_graph import TaskGraph, task_graph_from_tuples

_EDGES_MB = [
    ("adc", "sync", 320),
    ("sync", "cfo", 320),
    ("cfo", "fft", 320),
    ("fft", "chest", 160),
    ("chest", "eq", 160),
    ("eq", "demap", 160),
    ("demap", "deint", 80),
    ("deint", "vit", 80),
    ("vit", "desc", 40),
    ("desc", "crc", 40),
    ("crc", "mac", 40),
    ("fft", "mem_w", 60),
    ("mem_w", "eq", 60),
]


def wlan() -> TaskGraph:
    """The WLAN task graph (13 tasks, 13 edges)."""
    return task_graph_from_tuples("WLAN", _EDGES_MB)
