"""Deadlock-free turn models and channel-dependency analysis.

The paper "avoid[s] network deadlocks by enforcing a deadlock-free turn
model across the routes for all flows" (§IV).  We implement the classic
Glass-Ni turn models plus dimension-ordered XY, a path-legality predicate,
minimal-path enumeration, and a channel-dependency-graph acyclicity check
(the formal deadlock-freedom criterion) built on networkx.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.sim.flow import Flow
from repro.sim.topology import Mesh, Port


class TurnModel(enum.Enum):
    """Supported deadlock-free routing restrictions."""

    XY = "xy"
    WEST_FIRST = "west_first"
    NORTH_LAST = "north_last"
    NEGATIVE_FIRST = "negative_first"


#: Turns (from-direction, to-direction) prohibited by each model.
#: U-turns are prohibited everywhere.
_PROHIBITED: Dict[TurnModel, frozenset] = {
    # XY: no turn out of a Y direction back into an X direction.
    TurnModel.XY: frozenset(
        [
            (Port.NORTH, Port.EAST),
            (Port.NORTH, Port.WEST),
            (Port.SOUTH, Port.EAST),
            (Port.SOUTH, Port.WEST),
        ]
    ),
    # West-first: west only as a first direction; no turn into west.
    TurnModel.WEST_FIRST: frozenset(
        [
            (Port.NORTH, Port.WEST),
            (Port.SOUTH, Port.WEST),
        ]
    ),
    # North-last: no turn out of north.
    TurnModel.NORTH_LAST: frozenset(
        [
            (Port.NORTH, Port.EAST),
            (Port.NORTH, Port.WEST),
        ]
    ),
    # Negative-first: no turn from a positive (E/N) into a negative (W/S)
    # direction.
    TurnModel.NEGATIVE_FIRST: frozenset(
        [
            (Port.NORTH, Port.WEST),
            (Port.EAST, Port.SOUTH),
        ]
    ),
}


def turn_allowed(model: TurnModel, frm: Port, to: Port) -> bool:
    """Whether a flit travelling ``frm`` may next travel ``to``."""
    if not (frm.is_cardinal and to.is_cardinal):
        raise ValueError("turns are defined between cardinal directions")
    if to is frm.opposite:
        return False  # U-turns never allowed
    if frm is to:
        return True
    return (frm, to) not in _PROHIBITED[model]


def path_legal(model: TurnModel, ports: Sequence[Port]) -> bool:
    """Whether a route's cardinal-direction sequence obeys the model."""
    directions = [p for p in ports if p.is_cardinal]
    return all(
        turn_allowed(model, a, b) for a, b in zip(directions, directions[1:])
    )


#: Cap on minimal-path enumeration: C(30, 15) on a 16x16 mesh is ~155M
#: interleavings, far past useful route diversity.  Enumeration stops
#: (deterministically, in sorted order) after this many paths.
MAX_MINIMAL_PATHS = 4096


def enumerate_minimal_paths(
    mesh: Mesh, src: int, dst: int, limit: int = MAX_MINIMAL_PATHS
) -> List[Tuple[Port, ...]]:
    """Minimal direction sequences from ``src`` to ``dst``, sorted.

    A minimal path interleaves a fixed multiset of X steps and Y steps,
    so the distinct paths are the C(hops, x_hops) choices of X-step
    positions — enumerated directly (never via permutations of the step
    list, which explodes factorially on long paths) and capped at
    ``limit`` for very long/diverse pairs.  Returns direction tuples
    without the trailing CORE ejection.
    """
    if src == dst:
        raise ValueError("no path needed from a node to itself")
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    x_step = Port.EAST if dx > sx else Port.WEST
    y_step = Port.NORTH if dy > sy else Port.SOUTH
    nx, ny = abs(dx - sx), abs(dy - sy)
    hops = nx + ny
    # Paths sort by per-step Port.value; place the smaller-valued step in
    # the combination slots so generation order matches sorted order.
    first, second, k = (
        (x_step, y_step, nx) if x_step.value <= y_step.value else (y_step, x_step, ny)
    )
    paths: List[Tuple[Port, ...]] = []
    for positions in itertools.combinations(range(hops), k):
        path = [second] * hops
        for pos in positions:
            path[pos] = first
        paths.append(tuple(path))
        if len(paths) >= limit:
            break
    return paths


def _canonical_orders(mesh: Mesh, src: int, dst: int) -> List[Tuple[Port, ...]]:
    """The two dimension-ordered minimal paths (x-then-y, y-then-x).

    Every implemented turn model admits at least one of them: x-then-y
    for XY, WEST_FIRST and NORTH_LAST; y-then-x covers NEGATIVE_FIRST's
    prohibited east-into-south turn.
    """
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    x_steps = (Port.EAST if dx > sx else Port.WEST,) * abs(dx - sx)
    y_steps = (Port.NORTH if dy > sy else Port.SOUTH,) * abs(dy - sy)
    return [x_steps + y_steps, y_steps + x_steps]


def legal_minimal_routes(
    mesh: Mesh, src: int, dst: int, model: TurnModel
) -> List[Tuple[Port, ...]]:
    """Minimal routes (with CORE ejection appended) legal under ``model``."""
    routes = [
        path + (Port.CORE,)
        for path in enumerate_minimal_paths(mesh, src, dst)
        if path_legal(model, path)
    ]
    if not routes:
        # On long paths the MAX_MINIMAL_PATHS cap can cut off every
        # legal interleaving (e.g. west-first's single legal W..WS..S
        # ordering sorts last); the dimension-ordered canonical paths
        # are always available as a fallback.
        routes = [
            path + (Port.CORE,)
            for path in _canonical_orders(mesh, src, dst)
            if path_legal(model, path)
        ]
    if not routes:
        raise RuntimeError(
            "turn model %s admits no minimal route %d->%d (cannot happen "
            "for the implemented models)" % (model.value, src, dst)
        )
    return routes


def channel_dependency_graph(mesh: Mesh, flows: Iterable[Flow]) -> "nx.DiGraph":
    """Build the CDG: nodes are directed links, edges are in-router turns
    taken by some flow."""
    graph = nx.DiGraph()
    for flow in flows:
        links = flow.links(mesh)
        for link in links:
            graph.add_node(link)
        for a, b in zip(links, links[1:]):
            graph.add_edge(a, b)
    return graph


def is_deadlock_free(mesh: Mesh, flows: Iterable[Flow]) -> bool:
    """Deadlock freedom: the channel dependency graph is acyclic."""
    return nx.is_directed_acyclic_graph(channel_dependency_graph(mesh, flows))


def assert_deadlock_free(mesh: Mesh, flows: Iterable[Flow]) -> None:
    graph = channel_dependency_graph(mesh, flows)
    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        raise AssertionError("routes form a channel-dependency cycle: %r" % (cycle,))
