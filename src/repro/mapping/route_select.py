"""Route selection: minimal turn-model-legal routes minimising conflicts.

After NMAP places tasks, "the flows between tasks are also mapped to routes
with minimum number of hops between cores" (§VI).  Among the minimal routes
a turn model allows, we pick for each flow (heaviest first) the one that
minimises conflicts with already-routed flows, because every conflict is a
forced stop in the SMART preset computation:

* sharing an output port of some router with another flow (both stop to
  arbitrate — the red/blue case of Fig 7), and
* entering a router by the same input port as another flow but leaving by
  a different output (a static crossbar select cannot serve both).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.flow import Flow
from repro.sim.topology import Mesh, Port
from repro.mapping.turn_model import TurnModel, legal_minimal_routes


@dataclasses.dataclass(frozen=True)
class PlacedFlow:
    """A flow with endpoints placed on the mesh but not yet routed."""

    flow_id: int
    src: int
    dst: int
    bandwidth_bps: float
    name: str = ""
    #: Tenant label carried through routing into the simulated flow
    #: (empty = untagged; see ``repro.sim.stats``).
    tenant: str = ""


class _ConflictState:
    """Port usage of already-routed flows."""

    def __init__(self) -> None:
        #: (node, out_port) -> set of (flow_id, in_port)
        self.out_users: Dict[Tuple[int, Port], Set[Tuple[int, Port]]] = {}
        #: (node, in_port) -> set of (flow_id, out_port)
        self.in_users: Dict[Tuple[int, Port], Set[Tuple[int, Port]]] = {}
        #: directed link -> accumulated bandwidth
        self.link_bw: Dict[Tuple[int, int], float] = {}

    def cost(self, mesh: Mesh, flow: PlacedFlow, route: Tuple[Port, ...]) -> float:
        candidate = Flow(
            flow.flow_id, flow.src, flow.dst, flow.bandwidth_bps, route
        )
        stops = 0
        shared_bw = 0.0
        for node, in_port, out_port in candidate.port_traversals(mesh):
            for _fid, other_in in self.out_users.get((node, out_port), ()):
                if other_in != in_port:
                    stops += 1
            for _fid, other_out in self.in_users.get((node, in_port), ()):
                if other_out != out_port:
                    stops += 1
        for link in candidate.links(mesh):
            shared_bw += self.link_bw.get(link, 0.0)
        # A forced stop costs 3 cycles for every packet; link sharing only
        # costs queueing. Weight stops to dominate, bandwidth to tie-break.
        return stops * 1e12 + shared_bw

    def commit(self, mesh: Mesh, flow: Flow) -> None:
        for node, in_port, out_port in flow.port_traversals(mesh):
            self.out_users.setdefault((node, out_port), set()).add(
                (flow.flow_id, in_port)
            )
            self.in_users.setdefault((node, in_port), set()).add(
                (flow.flow_id, out_port)
            )
        for link in flow.links(mesh):
            self.link_bw[link] = (
                self.link_bw.get(link, 0.0) + flow.bandwidth_bps
            )


def select_routes(
    mesh: Mesh,
    placed: Sequence[PlacedFlow],
    model: TurnModel = TurnModel.WEST_FIRST,
) -> List[Flow]:
    """Assign a minimal legal route to each placed flow.

    Flows are routed heaviest-first; each picks the conflict-minimising
    minimal route the turn model allows.  With ``TurnModel.XY`` there is a
    single minimal route per flow and this reduces to XY routing.
    """
    state = _ConflictState()
    order = sorted(
        placed, key=lambda f: (-f.bandwidth_bps, f.flow_id)
    )
    routed: Dict[int, Flow] = {}
    for flow in order:
        candidates = legal_minimal_routes(mesh, flow.src, flow.dst, model)
        best_route: Optional[Tuple[Port, ...]] = None
        best_cost = float("inf")
        for route in candidates:
            cost = state.cost(mesh, flow, route)
            if cost < best_cost:
                best_cost = cost
                best_route = route
        chosen = Flow(
            flow.flow_id,
            flow.src,
            flow.dst,
            flow.bandwidth_bps,
            best_route,
            name=flow.name,
            tenant=flow.tenant,
        )
        state.commit(mesh, chosen)
        routed[flow.flow_id] = chosen
    return [routed[f.flow_id] for f in placed]
