"""Application mapping flow: task graphs, NMAP placement, routing."""

from repro.mapping.nmap import (
    MAPPERS,
    Mapping,
    flows_from_mapping,
    map_application,
    nmap_modified,
    nmap_original,
    random_map,
    row_major,
)
from repro.mapping.nonminimal import (
    enumerate_paths_with_detours,
    legal_routes_with_detours,
    select_routes_nonminimal,
)
from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.task_graph import MB, TaskEdge, TaskGraph, task_graph_from_tuples
from repro.mapping.turn_model import (
    TurnModel,
    assert_deadlock_free,
    channel_dependency_graph,
    enumerate_minimal_paths,
    is_deadlock_free,
    legal_minimal_routes,
    path_legal,
    turn_allowed,
)

__all__ = [
    "MAPPERS",
    "MB",
    "Mapping",
    "PlacedFlow",
    "TaskEdge",
    "TaskGraph",
    "TurnModel",
    "assert_deadlock_free",
    "channel_dependency_graph",
    "enumerate_minimal_paths",
    "enumerate_paths_with_detours",
    "flows_from_mapping",
    "legal_routes_with_detours",
    "select_routes_nonminimal",
    "is_deadlock_free",
    "legal_minimal_routes",
    "map_application",
    "nmap_modified",
    "nmap_original",
    "path_legal",
    "random_map",
    "row_major",
    "select_routes",
    "task_graph_from_tuples",
    "turn_allowed",
]
