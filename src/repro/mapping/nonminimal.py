"""Non-minimal route selection — the paper's §VI extension.

"SMART can also enable non-minimal routes for higher path diversity
without any delay penalty.  We leave these as future work."

The insight: on a bypass path, extra hops are free (the whole segment is
one cycle, up to HPC_max), so detouring around a contended link trades
*zero* latency for the 3-cycle stop the contention would have cost.  This
module extends the minimal route selection with bounded detours: for each
flow we consider every turn-model-legal path up to ``max_detour_hops``
longer than minimal, and keep the conflict-minimising one, falling back
to the minimal-route choice when detours don't pay.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from typing import Optional

from repro.mapping.route_select import PlacedFlow, _ConflictState
from repro.mapping.turn_model import TurnModel, turn_allowed
from repro.sim.flow import Flow
from repro.sim.topology import CARDINALS, Mesh, Port


def enumerate_paths_with_detours(
    mesh: Mesh,
    src: int,
    dst: int,
    max_detour_hops: int = 2,
    max_paths: int = 200,
    model: Optional[TurnModel] = None,
) -> List[Tuple[Port, ...]]:
    """All simple direction sequences src->dst up to minimal+detour hops.

    Paths never revisit a node (a SMART bypass chain must not loop).
    Enumeration is depth-first with a budget bound, capped at
    ``max_paths`` to keep route selection cheap.  When ``model`` is
    given, forbidden turns prune the walk immediately — turn-model
    legality is prefix-closed, so this yields exactly the legal paths
    and the cap cannot be exhausted by illegal ones (which used to make
    long pairs on big meshes falsely unroutable).
    """
    if src == dst:
        raise ValueError("no path needed from a node to itself")
    if max_detour_hops < 0:
        raise ValueError("detour budget must be non-negative")
    budget = mesh.hop_distance(src, dst) + max_detour_hops
    results: List[Tuple[Port, ...]] = []

    def walk(node: int, visited: frozenset, path: Tuple[Port, ...]) -> None:
        if len(results) >= max_paths:
            return
        if node == dst:
            results.append(path)
            return
        remaining = budget - len(path)
        if mesh.hop_distance(node, dst) > remaining:
            return
        previous = path[-1] if path else None
        for direction in CARDINALS:
            if (
                model is not None
                and previous is not None
                and not turn_allowed(model, previous, direction)
            ):
                continue
            neighbor = mesh.neighbor(node, direction)
            if neighbor is None or neighbor in visited:
                continue
            walk(neighbor, visited | {neighbor}, path + (direction,))

    walk(src, frozenset([src]), ())
    results.sort(key=lambda p: (len(p), tuple(d.value for d in p)))
    return results


def legal_routes_with_detours(
    mesh: Mesh,
    src: int,
    dst: int,
    model: TurnModel,
    max_detour_hops: int = 2,
) -> List[Tuple[Port, ...]]:
    """Turn-model-legal routes (CORE-terminated) up to the detour budget."""
    routes = [
        path + (Port.CORE,)
        for path in enumerate_paths_with_detours(
            mesh, src, dst, max_detour_hops, model=model
        )
    ]
    if not routes:
        raise RuntimeError(
            "turn model %s admits no route %d->%d" % (model.value, src, dst)
        )
    return routes


def select_routes_nonminimal(
    mesh: Mesh,
    placed: Sequence[PlacedFlow],
    model: TurnModel = TurnModel.WEST_FIRST,
    max_detour_hops: int = 2,
    hpc_max: int = 8,
) -> List[Flow]:
    """Assign routes allowing zero-cost detours around contention.

    Heaviest flows first.  A longer candidate is preferred only when it
    strictly reduces the structural-conflict count (each conflict is a
    3-cycle stop for every packet); among equals, shorter wins — extra
    hops still cost link energy and HPC_max headroom.  Paths whose length
    exceeds ``hpc_max`` can never complete in one cycle and are skipped
    when a shorter alternative exists.
    """
    state = _ConflictState()
    order = sorted(placed, key=lambda f: (-f.bandwidth_bps, f.flow_id))
    routed: Dict[int, Flow] = {}
    for flow in order:
        candidates = legal_routes_with_detours(
            mesh, flow.src, flow.dst, model, max_detour_hops
        )
        best_route = None
        best_key = None
        for route in candidates:
            hops = len(route) - 1
            cost = state.cost(mesh, flow, route)
            conflicts = cost // 1e12  # stop count (see _ConflictState.cost)
            over_reach = 1 if hops > hpc_max else 0
            key = (conflicts, over_reach, hops, cost % 1e12)
            if best_key is None or key < best_key:
                best_key = key
                best_route = route
        chosen = Flow(
            flow.flow_id,
            flow.src,
            flow.dst,
            flow.bandwidth_bps,
            best_route,
            name=flow.name,
            tenant=flow.tenant,
        )
        state.commit(mesh, chosen)
        routed[flow.flow_id] = chosen
    return [routed[f.flow_id] for f in placed]
