"""Task-to-core mapping: the paper's modified NMAP plus baselines.

§VI: "We first map the task with highest communication demand to the core
with the most number of neighbors (i.e. middle of the mesh). Then, we pick
a task that communicates the most with the mapped tasks and find an
unmapped core that minimizes the chance of getting buffered at intermediate
cores. This process is iterated to map all tasks to physical cores."

``nmap_modified`` implements that; ``nmap_original`` is the classic
bandwidth-times-hops NMAP objective (Murali & De Micheli, DATE 2004) used here as
a mapping-quality baseline; ``row_major`` and ``random_map`` are sanity
baselines for the mapping ablation.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.task_graph import TaskGraph
from repro.mapping.turn_model import TurnModel
from repro.sim.flow import Flow
from repro.sim.topology import Mesh


Mapping = Dict[str, int]


def _pick_first_task(graph: TaskGraph) -> str:
    return max(graph.tasks, key=lambda t: (graph.comm_demand(t), t))


def _next_task(graph: TaskGraph, mapped: Mapping) -> str:
    """Unmapped task with the most communication to already-mapped tasks."""
    unmapped = [t for t in graph.tasks if t not in mapped]
    if not unmapped:
        raise ValueError("all tasks already mapped")

    def key(task: str) -> Tuple[float, float, str]:
        to_mapped = sum(
            graph.bandwidth_between(task, m) for m in mapped
        )
        return (to_mapped, graph.comm_demand(task), task)

    return max(unmapped, key=key)


def _free_nodes(mesh: Mesh, mapped: Mapping) -> List[int]:
    used = set(mapped.values())
    return [n for n in mesh.nodes() if n not in used]


def _hop_cost(
    graph: TaskGraph, mesh: Mesh, mapped: Mapping, task: str, node: int
) -> float:
    """Classic NMAP objective: sum of bandwidth x hops to mapped partners."""
    total = 0.0
    for partner, bandwidth in graph.adjacency()[task].items():
        if partner in mapped:
            total += bandwidth * mesh.hop_distance(node, mapped[partner])
    return total


def _buffering_cost(
    graph: TaskGraph, mesh: Mesh, mapped: Mapping, task: str, node: int
) -> float:
    """Estimate of how likely flows of ``task`` are to get buffered.

    SMART stops happen where paths overlap, so we count, for a candidate
    placement, the bounding-box overlap between the new task's flows and
    every already-mapped flow, weighted by bandwidth.  This is the
    "minimizes the chance of getting buffered at intermediate cores"
    criterion of §VI in a placement-time form (routes don't exist yet).
    """
    new_boxes = []
    for partner, bandwidth in graph.adjacency()[task].items():
        if partner in mapped:
            new_boxes.append((node, mapped[partner], bandwidth))
    existing = []
    for edge in graph.edges:
        if edge.src in mapped and edge.dst in mapped:
            existing.append(
                (mapped[edge.src], mapped[edge.dst], edge.bandwidth_bps)
            )
    cost = 0.0
    for a_src, a_dst, a_bw in new_boxes:
        ax0, ay0 = mesh.coords(a_src)
        ax1, ay1 = mesh.coords(a_dst)
        for b_src, b_dst, b_bw in existing:
            bx0, by0 = mesh.coords(b_src)
            bx1, by1 = mesh.coords(b_dst)
            overlap_x = min(max(ax0, ax1), max(bx0, bx1)) - max(
                min(ax0, ax1), min(bx0, bx1)
            )
            overlap_y = min(max(ay0, ay1), max(by0, by1)) - max(
                min(ay0, ay1), min(by0, by1)
            )
            if overlap_x >= 0 and overlap_y >= 0:
                area = (overlap_x + 1) * (overlap_y + 1)
                cost += area * min(a_bw, b_bw)
    return cost


def nmap_modified(
    graph: TaskGraph,
    mesh: Mesh,
    pinned: Optional[Mapping] = None,
) -> Mapping:
    """The paper's modified NMAP (hop cost + buffering-avoidance term).

    ``pinned`` fixes tasks to specific cores before placement begins —
    the heterogeneous-SoC scenario of §VI where "certain tasks are tied
    to specific cores", which lengthens paths and magnifies SMART's
    benefit (see :func:`repro.eval.ablations.pinned_mapping`).
    """
    _check_fits(graph, mesh)
    mapped: Mapping = _apply_pins(graph, mesh, pinned)
    if not mapped:
        first = _pick_first_task(graph)
        mapped[first] = mesh.center_nodes()[0]
    total_bw = max(graph.total_bandwidth_bps(), 1.0)
    while len(mapped) < graph.num_tasks:
        task = _next_task(graph, mapped)
        best_node = None
        best_cost = float("inf")
        for node in _free_nodes(mesh, mapped):
            cost = _hop_cost(graph, mesh, mapped, task, node)
            cost += 0.1 * _buffering_cost(graph, mesh, mapped, task, node)
            cost /= total_bw
            if cost < best_cost:
                best_cost = cost
                best_node = node
        mapped[task] = best_node
    return mapped


def _apply_pins(
    graph: TaskGraph, mesh: Mesh, pinned: Optional[Mapping]
) -> Mapping:
    """Validate and install fixed task-to-core assignments."""
    if not pinned:
        return {}
    mapped: Mapping = {}
    for task, node in pinned.items():
        if task not in graph.tasks:
            raise ValueError("pinned task %r not in graph" % task)
        if not 0 <= node < mesh.num_nodes:
            raise ValueError("pinned core %d outside the mesh" % node)
        if node in mapped.values():
            raise ValueError("two tasks pinned to core %d" % node)
        mapped[task] = node
    return mapped


def nmap_original(graph: TaskGraph, mesh: Mesh) -> Mapping:
    """Classic NMAP: greedy bandwidth x hop-distance minimisation."""
    _check_fits(graph, mesh)
    mapped: Mapping = {}
    first = _pick_first_task(graph)
    mapped[first] = mesh.center_nodes()[0]
    while len(mapped) < graph.num_tasks:
        task = _next_task(graph, mapped)
        best_node = min(
            _free_nodes(mesh, mapped),
            key=lambda n: (_hop_cost(graph, mesh, mapped, task, n), n),
        )
        mapped[task] = best_node
    return mapped


def row_major(graph: TaskGraph, mesh: Mesh) -> Mapping:
    """Tasks placed in declaration order, row by row."""
    _check_fits(graph, mesh)
    return {task: node for node, task in enumerate(graph.tasks)}


def random_map(graph: TaskGraph, mesh: Mesh, seed: int = 0) -> Mapping:
    """Uniform random placement (ablation baseline)."""
    _check_fits(graph, mesh)
    nodes = list(mesh.nodes())
    random.Random(seed).shuffle(nodes)
    return {task: nodes[i] for i, task in enumerate(graph.tasks)}


MAPPERS: Dict[str, Callable[..., Mapping]] = {
    "nmap_modified": nmap_modified,
    "nmap_original": nmap_original,
    "row_major": row_major,
    "random": random_map,
}


def _check_fits(graph: TaskGraph, mesh: Mesh) -> None:
    if graph.num_tasks > mesh.num_nodes:
        raise ValueError(
            "%d tasks do not fit on a %dx%d mesh"
            % (graph.num_tasks, mesh.width, mesh.height)
        )


def placed_from_mapping(graph: TaskGraph, mapping: Mapping) -> List[PlacedFlow]:
    """Mapped task-graph edges as placed (but not yet routed) demands."""
    return [
        PlacedFlow(
            flow_id=flow_id,
            src=mapping[edge.src],
            dst=mapping[edge.dst],
            bandwidth_bps=edge.bandwidth_bps,
            name="%s->%s" % (edge.src, edge.dst),
        )
        for flow_id, edge in enumerate(graph.edges)
    ]


def flows_from_mapping(
    graph: TaskGraph,
    mesh: Mesh,
    mapping: Mapping,
    turn_model: TurnModel = TurnModel.WEST_FIRST,
) -> List[Flow]:
    """Turn mapped task-graph edges into routed flows."""
    placed = placed_from_mapping(graph, mapping)
    return select_routes(mesh, placed, model=turn_model)


def place_application(
    graph: TaskGraph,
    mesh: Mesh,
    algorithm: str = "nmap_modified",
    seed: int = 0,
) -> Mapping:
    """Placement stage of the mapping flow: tasks -> nodes.

    The routing stage is separate so callers can pair any placement
    algorithm with any route selection (see
    :func:`repro.workloads.route_demands`).
    """
    try:
        mapper = MAPPERS[algorithm]
    except KeyError:
        raise ValueError(
            "unknown mapping algorithm %r (have %s)"
            % (algorithm, ", ".join(sorted(MAPPERS)))
        ) from None
    if algorithm == "random":
        return mapper(graph, mesh, seed=seed)
    return mapper(graph, mesh)


def map_application(
    graph: TaskGraph,
    mesh: Mesh,
    algorithm: str = "nmap_modified",
    turn_model: TurnModel = TurnModel.WEST_FIRST,
    seed: int = 0,
) -> Tuple[Mapping, List[Flow]]:
    """Full mapping flow: place tasks, then route flows.

    Returns the task->node mapping and the routed flows.
    """
    mapping = place_application(graph, mesh, algorithm=algorithm, seed=seed)
    flows = flows_from_mapping(graph, mesh, mapping, turn_model=turn_model)
    return mapping, flows
