"""Application task graphs.

A task graph is the input to the SMART tool flow (§VI): tasks are mapped to
physical cores with a modified NMAP, and each communication edge becomes a
network flow with a bandwidth requirement (bytes/s).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Set, Tuple

MB = 1e6  # task-graph bandwidths are conventionally quoted in MB/s


@dataclasses.dataclass(frozen=True)
class TaskEdge:
    """A directed communication demand between two tasks."""

    src: str
    dst: str
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self edge on task %r" % self.src)
        if self.bandwidth_bps <= 0:
            raise ValueError(
                "edge %s->%s must have positive bandwidth" % (self.src, self.dst)
            )


class TaskGraph:
    """A named application communication graph."""

    def __init__(self, name: str, tasks: Sequence[str], edges: Iterable[TaskEdge]):
        self.name = name
        self.tasks: Tuple[str, ...] = tuple(tasks)
        if len(set(self.tasks)) != len(self.tasks):
            raise ValueError("duplicate task names in %r" % name)
        self.edges: Tuple[TaskEdge, ...] = tuple(edges)
        known = set(self.tasks)
        for edge in self.edges:
            if edge.src not in known or edge.dst not in known:
                raise ValueError(
                    "edge %s->%s references unknown task" % (edge.src, edge.dst)
                )
        seen: Set[Tuple[str, str]] = set()
        for edge in self.edges:
            key = (edge.src, edge.dst)
            if key in seen:
                raise ValueError("duplicate edge %s->%s" % key)
            seen.add(key)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def total_bandwidth_bps(self) -> float:
        return sum(edge.bandwidth_bps for edge in self.edges)

    def comm_demand(self, task: str) -> float:
        """Total bandwidth into plus out of a task (NMAP's ordering key)."""
        return sum(
            edge.bandwidth_bps
            for edge in self.edges
            if edge.src == task or edge.dst == task
        )

    def neighbors(self, task: str) -> List[str]:
        """Tasks communicating with ``task`` in either direction."""
        result = []
        for edge in self.edges:
            if edge.src == task and edge.dst not in result:
                result.append(edge.dst)
            elif edge.dst == task and edge.src not in result:
                result.append(edge.src)
        return result

    def bandwidth_between(self, a: str, b: str) -> float:
        """Total bandwidth between two tasks, both directions."""
        return sum(
            edge.bandwidth_bps
            for edge in self.edges
            if (edge.src, edge.dst) in ((a, b), (b, a))
        )

    def in_degree(self, task: str) -> int:
        return sum(1 for e in self.edges if e.dst == task)

    def out_degree(self, task: str) -> int:
        return sum(1 for e in self.edges if e.src == task)

    def max_fan_in_task(self) -> Tuple[str, int]:
        """The hub sink (drives the H264/MMS_MP3 behaviour of §VI)."""
        best = max(self.tasks, key=self.in_degree)
        return best, self.in_degree(best)

    def max_fan_out_task(self) -> Tuple[str, int]:
        best = max(self.tasks, key=self.out_degree)
        return best, self.out_degree(best)

    def scaled(self, factor: float, name: str = "") -> "TaskGraph":
        """Bandwidth-scaled copy (paper footnote 9 scales MMS by 100x)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return TaskGraph(
            name or ("%s_x%g" % (self.name, factor)),
            self.tasks,
            [
                TaskEdge(e.src, e.dst, e.bandwidth_bps * factor)
                for e in self.edges
            ],
        )

    def adjacency(self) -> Dict[str, Dict[str, float]]:
        """Undirected bandwidth adjacency (for mapping heuristics)."""
        adj: Dict[str, Dict[str, float]] = {t: {} for t in self.tasks}
        for edge in self.edges:
            adj[edge.src][edge.dst] = adj[edge.src].get(edge.dst, 0.0) + edge.bandwidth_bps
            adj[edge.dst][edge.src] = adj[edge.dst].get(edge.src, 0.0) + edge.bandwidth_bps
        return adj

    def __repr__(self) -> str:
        return "TaskGraph(%r, %d tasks, %d edges)" % (
            self.name,
            self.num_tasks,
            self.num_edges,
        )


def task_graph_from_tuples(
    name: str, edges_mb: Sequence[Tuple[str, str, float]]
) -> TaskGraph:
    """Build a graph from (src, dst, MB/s) tuples, inferring the task set."""
    tasks: List[str] = []
    for src, dst, _bw in edges_mb:
        if src not in tasks:
            tasks.append(src)
        if dst not in tasks:
            tasks.append(dst)
    return TaskGraph(
        name,
        tasks,
        [TaskEdge(src, dst, bw * MB) for src, dst, bw in edges_mb],
    )
