"""RNG discipline and wall-clock/entropy bans (RNG001, DET001).

Bit-identity of the three kernels requires every random draw to be
(a) seeded and (b) consumed in an order the simulation alone controls.
Module-level ``random.*`` calls share one hidden global stream — any
unrelated import or library call that touches it perturbs every later
draw — and wall-clock/OS-entropy sources differ run to run by
definition.  Both therefore break replayability silently: the fuzz
harness would catch the divergence eventually, but only after burning
CI seeds on a bug a grep-level check can name directly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    in_any_dir,
    rule,
)

#: Where randomness must flow through a seeded ``random.Random``.
RNG_SCOPES = (
    "repro/sim", "repro/eval", "repro/mapping", "repro/workloads.py",
)

#: Where wall-clock and OS-entropy sources are banned outright.
DET_SCOPES = ("repro/sim", "repro/eval", "repro/core", "repro/mapping")

#: ``random``-module attributes that are fine to reference: seeded
#: generator classes, not draws from the hidden global stream.
ALLOWED_RANDOM_ATTRS = frozenset({"Random"})

#: Banned wall-clock / entropy calls, by canonical dotted name.
BANNED_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Whole modules whose every call site is an entropy source.
BANNED_MODULES = frozenset({"secrets"})


def _import_aliases(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Map local names to the canonical modules/objects they import.

    Returns ``(module_aliases, object_aliases)``: ``import numpy as np``
    yields ``{"np": "numpy"}``; ``from random import randint as ri``
    yields ``{"ri": "random.randint"}``.
    """
    modules: Dict[str, str] = {}
    objects: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``.
                    modules[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                objects[alias.asname or alias.name] = (
                    "%s.%s" % (node.module, alias.name)
                )
    return modules, objects


def _canonical(
    node: ast.AST,
    modules: Dict[str, str],
    objects: Dict[str, str],
) -> Optional[str]:
    """Canonical dotted name of an attribute/name reference, resolving
    import aliases (``np.random.rand`` -> ``numpy.random.rand``)."""
    dotted = dotted_name(node)
    if dotted is None:
        if isinstance(node, ast.Name):
            dotted = node.id
        else:
            return None
    head, _, rest = dotted.partition(".")
    if head in modules:
        base = modules[head]
        return "%s.%s" % (base, rest) if rest else base
    if head in objects:
        base = objects[head]
        return "%s.%s" % (base, rest) if rest else base
    return dotted


@rule
class RngDisciplineRule(Rule):
    """RNG001: no module-level ``random.*`` / ``numpy.random.*`` draws.

    All randomness must come from a seeded ``random.Random`` (or a
    seeded ``numpy.random.default_rng``/``Generator``) threaded down
    from a spec/seed parameter, so streams are per-flow/per-component
    and replayable regardless of import order or library internals.
    """

    rule_id = "RNG001"
    summary = (
        "module-level random.*/numpy.random.* draw; use a seeded "
        "random.Random threaded from the spec/seed"
    )
    rationale = (
        "the hidden global RNG stream is perturbed by any other caller, "
        "so per-counter bit-identity across kernels and re-runs is lost"
    )

    def applies_to(self, relpath: str) -> bool:
        """Simulation, evaluation, mapping and workload modules."""
        return in_any_dir(relpath, RNG_SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag references to global-stream RNG functions."""
        modules, objects = _import_aliases(ctx.tree)
        imports_rng = (
            "random" in modules
            or "numpy" in set(modules.values())
            or any(
                target.split(".")[0] in ("random", "numpy")
                for target in objects.values()
            )
        )
        if not imports_rng:
            return
        # default_rng(seed) calls with an explicit argument are fine;
        # remember their func nodes so the attribute pass skips them.
        seeded_calls: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and (node.args or node.keywords):
                if _canonical(node.func, modules, objects) == (
                    "numpy.random.default_rng"
                ):
                    seeded_calls.add(id(node.func))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # ``rng.random`` on a Random instance must not match: the
            # chain root has to resolve to the random/numpy module.
            canonical = _canonical(node, modules, objects)
            if canonical is None or id(node) in seeded_calls:
                continue
            finding = self._classify(canonical, node, ctx)
            if finding is not None:
                yield finding

    def _classify(
        self, canonical: str, node: ast.AST, ctx: ModuleContext
    ) -> Optional[Finding]:
        parts = canonical.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in ALLOWED_RANDOM_ATTRS:
                return None
            return ctx.finding(
                self.rule_id, node,
                "global-stream RNG 'random.%s'; draw from a seeded "
                "random.Random instance instead" % parts[1],
            )
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] == "Generator":
                return None
            if parts[2] == "default_rng":
                return ctx.finding(
                    self.rule_id, node,
                    "numpy.random.default_rng() without an explicit "
                    "seed; pass the spec/seed",
                )
            return ctx.finding(
                self.rule_id, node,
                "global-stream RNG 'numpy.random.%s'; use a seeded "
                "numpy.random.default_rng(seed)" % parts[2],
            )
        return None


@rule
class EntropyBanRule(Rule):
    """DET001: wall-clock, OS entropy and identity-hash hazards.

    ``time.time()``-style clocks, ``os.urandom``/``uuid4`` and friends
    differ between runs by definition.  ``id()`` used as a mapping key
    and raw ``hash()`` depend on allocation addresses / the per-process
    hash seed; both are fine for pure lookup but poison anything whose
    *order* they influence, so every use must be justified in place.
    """

    rule_id = "DET001"
    summary = (
        "wall-clock/OS-entropy source (time.time, os.urandom, uuid4, "
        "hash(), id()-as-key) in simulation code"
    )
    rationale = (
        "run-to-run varying inputs can never produce bit-identical "
        "counters; id()/hash() ordering varies with allocation and "
        "PYTHONHASHSEED"
    )

    def applies_to(self, relpath: str) -> bool:
        """Simulation/eval/core modules (the deterministic core)."""
        return in_any_dir(relpath, DET_SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag banned calls, ``id()`` keys and raw ``hash()`` use."""
        modules, objects = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                canonical = _canonical(node.func, modules, objects)
                if canonical in BANNED_CLOCK_CALLS or (
                    canonical is not None
                    and canonical.split(".")[0] in BANNED_MODULES
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "non-deterministic source '%s' in simulation "
                        "code" % canonical,
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "hash"
                    and node.func.id not in objects
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "raw hash() depends on PYTHONHASHSEED; use a "
                        "content hash (hashlib) or a stable key",
                    )
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in ("id", "hash")
                    ):
                        yield ctx.finding(
                            self.rule_id, node,
                            "sort key '%s' varies across runs"
                            % keyword.value.id,
                        )
            elif isinstance(node, ast.Subscript):
                for finding in self._id_keys(node.slice, ctx):
                    yield finding
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None:
                        for finding in self._id_keys(key, ctx):
                            yield finding

    def _id_keys(self, expr: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        for child in ast.walk(expr):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "id"
            ):
                yield ctx.finding(
                    self.rule_id, child,
                    "id() used as a mapping key: fine for pure lookup, "
                    "but any iteration/ordering over it varies across "
                    "runs — justify with a suppression or key on a "
                    "stable identifier",
                )
