"""Command-line front end for the static checker (``repro lint``)."""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.core import RULES, check_paths, _load_builtin_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="restrict to the given rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(
    paths: List[str],
    rules: Optional[List[str]] = None,
    list_rules: bool = False,
) -> int:
    """Execute the lint pass; returns the process exit code."""
    if list_rules:
        _load_builtin_rules()
        for rule_id in sorted(RULES):
            print("%s  %s" % (rule_id, RULES[rule_id].summary))
        return 0
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(
            "repro lint: no such path: %s" % ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    try:
        findings = check_paths(paths, rules=rules, relative_to=os.getcwd())
    except ValueError as exc:
        print("repro lint: %s" % exc, file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            "repro lint: %d finding(s); see docs/analysis.md for the "
            "rule catalogue and suppression policy" % len(findings),
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & bit-identity static checker",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args.paths, rules=args.rules, list_rules=args.list_rules)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
