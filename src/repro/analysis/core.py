"""Core of the determinism static checker: findings, rules, suppression.

The repo's central contract is *per-counter bit-identity* of the three
simulation kernels (legacy / active / event), enforced dynamically by
the cross-kernel fuzz harness.  That contract rests on source-level
invariants nothing used to check mechanically: all randomness flows
through seeded ``random.Random`` instances, counters stay integral,
kernel hot paths never iterate hash-ordered collections, and chain
classes settle counters only through their batched-settlement method.
The rules in :mod:`repro.analysis` lint exactly those invariants so a
violation is caught at review time, before 100 fuzz seeds burn CI
minutes bisecting it.

Architecture
------------

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding`\\ s.  Rules register themselves in :data:`RULES`
via the :func:`rule` decorator and declare which files they apply to
through ``applies_to`` (matched on the *repo-relative* module path, so
fixture tests can exercise scope routing with synthetic paths).

Suppression
-----------

A finding is suppressed by a justified marker comment::

    foo = time.time()  # repro-lint: ok DET001 -- wall clock feeds the
                       # progress log only, never simulation state

The marker names the rule id (several may be comma-separated) and must
sit on the finding's line or on a comment-only line directly above it.
Suppression policy (``docs/analysis.md``): every ``ok`` needs an
in-line justification after ``--`` explaining why the invariant is not
actually at risk; bare markers are themselves reported via
:data:`BARE_SUPPRESSION_RULE`.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
import tokenize
from io import StringIO
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Pseudo-rule id reported for a suppression marker with no justification.
BARE_SUPPRESSION_RULE = "SUP001"

#: ``# repro-lint: ok RULE1[,RULE2] [-- justification]``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ok\s+(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?P<just>\s*--\s*\S.*)?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One checker diagnostic, pointing at a source line."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (the CLI output format)."""
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message
        )


@dataclasses.dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: ok`` marker."""

    line: int
    rules: Tuple[str, ...]
    justified: bool
    #: True for a comment-only line (applies to the next code line too).
    standalone: bool


class ModuleContext:
    """One parsed module handed to every applicable rule."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        #: Forward-slash repo-relative path used for scope matching.
        self.relpath = path.replace(os.sep, "/")
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(source)

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class: one invariant checked over a module's AST.

    Subclasses set ``rule_id``/``summary``/``rationale`` and implement
    :meth:`applies_to` (scope routing on the repo-relative path) and
    :meth:`check` (yield findings).
    """

    rule_id = ""
    #: One-line description, shown by ``repro lint --list-rules``.
    summary = ""
    #: Which bit-identity invariant the rule protects (docs).
    rationale = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath``."""
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError


#: Registry of every known rule, keyed by rule id.
RULES: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a :class:`Rule`."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError("rule %r has no rule_id" % cls.__name__)
    if instance.rule_id in RULES:
        raise ValueError("duplicate rule id %r" % instance.rule_id)
    RULES[instance.rule_id] = instance
    return cls


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract ``# repro-lint: ok`` markers with real tokenization.

    Tokenizing (rather than regexing raw lines) keeps markers inside
    string literals from suppressing anything.  Falls back to a
    line-based scan when the module does not tokenize (the AST parse
    will have failed first anyway).
    """
    suppressions: List[Suppression] = []
    comment_lines: Dict[int, str] = {}
    code_lines: Set[int] = set()
    try:
        for tok in tokenize.generate_tokens(StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comment_lines[tok.start[0]] = tok.string
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                code_lines.add(tok.start[0])
    except tokenize.TokenError:
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                comment_lines[lineno] = text[text.index("#"):]
                if text[: text.index("#")].strip():
                    code_lines.add(lineno)
            elif text.strip():
                code_lines.add(lineno)
    for lineno, comment in comment_lines.items():
        match = _SUPPRESS_RE.search(comment)
        if not match:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
        )
        suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                justified=match.group("just") is not None,
                standalone=lineno not in code_lines,
            )
        )
    return suppressions


def apply_suppressions(
    findings: Iterable[Finding], ctx: ModuleContext
) -> List[Finding]:
    """Filter suppressed findings; report unjustified markers.

    A marker suppresses findings of its named rules on its own line; a
    comment-only marker also covers the next code line below it (so a
    long statement can carry the justification above itself).
    """
    by_line: Dict[int, Set[str]] = {}
    result: List[Finding] = []
    for sup in ctx.suppressions:
        lines = [sup.line]
        if sup.standalone:
            lines.append(_next_code_line(ctx, sup.line))
        for line in lines:
            by_line.setdefault(line, set()).update(sup.rules)
        if not sup.justified:
            result.append(
                Finding(
                    rule=BARE_SUPPRESSION_RULE,
                    path=ctx.path,
                    line=sup.line,
                    col=0,
                    message=(
                        "suppression without justification: append "
                        "'-- <why this is safe>' to the marker"
                    ),
                )
            )
    for finding in findings:
        if finding.rule in by_line.get(finding.line, ()):
            continue
        result.append(finding)
    return result


def _next_code_line(ctx: ModuleContext, after: int) -> int:
    """First non-blank, non-comment line after ``after`` (or ``after``)."""
    for lineno in range(after + 1, len(ctx.lines) + 1):
        text = ctx.lines[lineno - 1].strip()
        if text and not text.startswith("#"):
            return lineno
    return after


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Check one module's source text (the unit-test entry point).

    ``path`` drives scope routing exactly as for on-disk files, so
    fixtures can impersonate e.g. ``src/repro/sim/network.py``.
    ``rules`` restricts the run to the named rule ids.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message="module does not parse: %s" % exc.msg,
            )
        ]
    ctx = ModuleContext(path, source, tree)
    selected = _select_rules(rules)
    raw: List[Finding] = []
    for checker in selected:
        if checker.applies_to(ctx.relpath):
            raw.extend(checker.check(ctx))
    findings = apply_suppressions(raw, ctx)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def check_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    relative_to: Optional[str] = None,
) -> List[Finding]:
    """Check files and directory trees; the library/CLI entry point.

    Directories are walked for ``*.py`` files (sorted, so output order
    is deterministic).  ``relative_to`` rebases reported paths (the CLI
    passes the working directory).  Returns findings sorted by
    (path, line, rule).
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    findings: List[Finding] = []
    for file_path in files:
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        shown = file_path
        if relative_to:
            try:
                shown = os.path.relpath(file_path, relative_to)
            except ValueError:
                shown = file_path
        findings.extend(check_source(source, path=shown, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _select_rules(rules: Optional[Sequence[str]]) -> List[Rule]:
    _load_builtin_rules()
    if rules is None:
        return [RULES[key] for key in sorted(RULES)]
    unknown = [name for name in rules if name not in RULES]
    if unknown:
        raise ValueError(
            "unknown rule id(s) %s (have %s)"
            % (", ".join(unknown), ", ".join(sorted(RULES)))
        )
    return [RULES[name] for name in rules]


def _load_builtin_rules() -> None:
    """Import the rule modules (idempotent; they register on import)."""
    from repro.analysis import (  # noqa: F401  (imported for registration)
        rules_api,
        rules_chains,
        rules_counters,
        rules_order,
        rules_rng,
    )


# ----------------------------------------------------------------------
# Shared AST helpers used by several rule modules
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Attribute/Name chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield (enclosing class or None, function node) pairs."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, item


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Yield every :class:`ast.Call` nested under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def in_any_dir(relpath: str, directories: Sequence[str]) -> bool:
    """True if ``relpath`` sits under one of ``directories`` (or is one
    of them as a bare module path suffix, e.g. ``repro/workloads.py``)."""
    for directory in directories:
        if directory.endswith(".py"):
            if relpath.endswith(directory):
                return True
        elif ("/%s/" % directory) in ("/%s/" % relpath.strip("/")):
            return True
    return False


ModuleChecker = Callable[[ModuleContext], Iterator[Finding]]
