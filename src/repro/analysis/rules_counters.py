"""Counter integrality (CNT001).

Per-counter bit-identity is only meaningful while counters are exact:
the cross-kernel fuzz harness compares them with ``==``, and the three
kernels accumulate in different orders, so the moment a float enters a
counter path, rounding makes "identical" depend on settlement order.
The rule keys off a *naming registry* — the suffix/name conventions the
``EventCounters`` dataclass and the router/NIC state already follow —
and flags true division, ``float()`` casts and float literals flowing
into matching attributes.  Millimetre counters (``*_mm``) are float
typed but must still be built from integral products (hops stay
integers; ``mm_per_hop`` is validated integral), so they allow float
literals but still ban ``/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    in_any_dir,
    rule,
)

#: Where counters live: simulation kernels and evaluation harnesses.
COUNTER_SCOPES = ("repro/sim", "repro/eval")

#: Suffixes naming integral counters (EventCounters fields, router/NIC
#: bookkeeping).  Keep in sync with docs/analysis.md.
INTEGRAL_SUFFIXES = (
    "_count", "_counts", "_reads", "_writes", "_requests", "_grants",
    "_traversals", "_latches", "_events", "_cycles", "_left",
    "_received", "_total",
)

#: Exact attribute/variable names that are integral counters.
INTEGRAL_NAMES = frozenset({
    "counts", "count", "occupancy", "queued", "cycles", "sa_pending",
})

#: Float-typed distance counters: float literals fine, ``/`` still not.
MM_SUFFIXES = ("_mm",)
MM_NAMES = frozenset({"mm"})


def classify_counter(name: str) -> Optional[str]:
    """Return ``"integral"``/``"mm"`` for registry names, else None."""
    if name in INTEGRAL_NAMES or name.endswith(INTEGRAL_SUFFIXES):
        return "integral"
    if name in MM_NAMES or name.endswith(MM_SUFFIXES):
        return "mm"
    return None


def _target_name(target: ast.AST) -> Optional[str]:
    """Terminal name of an assignment target (``a.b.c`` -> ``c``)."""
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


@rule
class CounterIntegralityRule(Rule):
    """CNT001: no floats flowing into registry-named counters.

    Checks every ``=``, ``+=`` and annotated assignment whose target's
    terminal name matches the counter registry.  For integral counters
    the assigned expression may not contain ``/`` (use ``//``), a
    ``float(...)`` cast, or a float literal; ``*_mm`` counters may use
    float literals but still no ``/`` or ``float()``.
    """

    rule_id = "CNT001"
    summary = (
        "float()/true-division/float-literal flowing into a "
        "registry-named counter; counters must stay integral"
    )
    rationale = (
        "the fuzz harness compares counters with ==; float rounding "
        "makes equality depend on the kernel's settlement order"
    )

    def applies_to(self, relpath: str) -> bool:
        """Simulation and evaluation modules."""
        return in_any_dir(relpath, COUNTER_SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag float-producing expressions assigned to counters."""
        for node in ast.walk(ctx.tree):
            targets: Tuple[ast.AST, ...]
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = (node.target,), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            else:
                continue
            kinds = {
                classify_counter(name)
                for name in map(_target_name, targets)
                if name is not None
            }
            kinds.discard(None)
            if not kinds:
                continue
            # The stricter classification wins when (oddly) both match.
            kind = "integral" if "integral" in kinds else "mm"
            for finding in self._scan_value(value, kind, node, ctx):
                yield finding

    def _scan_value(
        self, value: ast.AST, kind: str, stmt: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        for child in ast.walk(value):
            if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
                yield ctx.finding(
                    self.rule_id, child,
                    "true division '/' feeding a counter; use '//' "
                    "(or hoist the ratio out of the counter path)",
                )
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "float"
            ):
                yield ctx.finding(
                    self.rule_id, child,
                    "float() cast feeding a counter; counters must "
                    "stay integral for bit-identity",
                )
            elif (
                kind == "integral"
                and isinstance(child, ast.Constant)
                and isinstance(child.value, float)
            ):
                yield ctx.finding(
                    self.rule_id, child,
                    "float literal %r feeding an integral counter"
                    % child.value,
                )
