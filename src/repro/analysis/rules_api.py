"""Public-API docstring/annotation presence (API001).

``repro.workloads`` and ``repro.eval.sweeps`` are the surfaces sweep
scripts and notebooks program against, and :mod:`repro.analysis` is
itself a public tool — their contracts (what a seed means, which
options a workload accepts, what a sweep returns) live in docstrings
and type annotations, not in the fuzz harness.  This rule keeps every
public function, method and class on those surfaces documented and
annotated so `mypy`'s ``check_untyped_defs`` pass has real types to
check and callers never have to reverse-engineer a signature.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    in_any_dir,
    rule,
)

#: The documented public surfaces.
API_SCOPES = (
    "repro/workloads.py", "repro/eval/sweeps.py", "repro/eval/farm.py",
    "repro/analysis",
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


@rule
class PublicApiRule(Rule):
    """API001: public surfaces carry docstrings and annotations.

    Public top-level functions, public classes, and public methods of
    public classes in the API scope must have a docstring, a return
    annotation, and annotations on every parameter (``self``/``cls``
    excepted).
    """

    rule_id = "API001"
    summary = (
        "public function/class on an API surface missing a docstring "
        "or type annotations"
    )
    rationale = (
        "workloads/sweeps/analysis are the programmable surfaces; "
        "their contracts live in docstrings and annotations, and mypy "
        "needs the types to check callers"
    )

    def applies_to(self, relpath: str) -> bool:
        """Workloads, sweeps and the analysis package."""
        return in_any_dir(relpath, API_SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Check module-level functions and public class bodies."""
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name):
                    yield from self._check_function(node, None, ctx)
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                if ast.get_docstring(node) is None:
                    yield ctx.finding(
                        self.rule_id, node,
                        "public class '%s' has no docstring" % node.name,
                    )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        yield from self._check_function(item, node, ctx)

    def _check_function(
        self,
        node: _FunctionNode,
        cls: Optional[ast.ClassDef],
        ctx: ModuleContext,
    ) -> Iterator[Finding]:
        label = "%s.%s" % (cls.name, node.name) if cls else node.name
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                self.rule_id, node,
                "public %s '%s' has no docstring"
                % ("method" if cls else "function", label),
            )
        if node.returns is None:
            yield ctx.finding(
                self.rule_id, node,
                "'%s' has no return annotation" % label,
            )
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        is_static = any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in node.decorator_list
        )
        if cls is not None and not is_static and positional:
            positional = positional[1:]  # self / cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                yield ctx.finding(
                    self.rule_id, arg,
                    "parameter '%s' of '%s' is unannotated"
                    % (arg.arg, label),
                )
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                yield ctx.finding(
                    self.rule_id, vararg,
                    "parameter '%s' of '%s' is unannotated"
                    % (vararg.arg, label),
                )
