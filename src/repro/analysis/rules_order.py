"""Hash-order hazards in kernel hot modules (ORD001).

The three kernels must visit routers, NICs and channels in the *same*
order, or arbitration ties break differently and the per-counter
fuzz comparison diverges.  Python sets (and ``dict.keys()`` views used
as pseudo-sets) iterate in hash order, which varies with insertion
history and — for strings under ``PYTHONHASHSEED`` — across processes.
This rule tracks set-typed attributes (``Set[int]`` annotations like
``_active_routers``) and set-producing expressions inside the kernel
hot modules and flags any iteration over them that is not wrapped in
``sorted()`` or consumed by an order-insensitive reducer (``sum``,
``min``, ``max``, ``len``, ``any``, ``all``, ``set``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    rule,
)

#: Kernel hot modules: the files whose loops feed arbitration order.
HOT_BASENAMES = ("network.py", "dedicated.py", "arbiter.py", "buffers.py")

#: Annotations that mark an attribute as set-typed.
_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet",
    "typing.Set", "typing.FrozenSet", "typing.MutableSet",
})

#: Builtins whose result does not depend on iteration order, so
#: feeding them a set directly is safe.
ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "len",
    "any", "all",
})

#: Set methods returning sets (used to spot derived set expressions).
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    if name is None and isinstance(annotation, ast.Name):
        name = annotation.id
    return name in _SET_ANNOTATIONS


class _SetTracker:
    """Names/attributes known (or inferred) to hold sets in a module."""

    def __init__(self, tree: ast.Module):
        self.attrs: Set[str] = set()
        self.names: Set[str] = set()
        # Two passes so locals assigned from set attributes resolve
        # regardless of statement order.
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                node.annotation
            ):
                terminal = self._terminal(node.target)
                if terminal is not None:
                    self.attrs.add(terminal)
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if self.is_set_expr(node.value):
                        if isinstance(target, ast.Name):
                            self.names.add(target.id)
                        elif isinstance(target, ast.Attribute):
                            self.attrs.add(target.attr)

    @staticmethod
    def _terminal(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Attribute):
            return target.attr
        if isinstance(target, ast.Name):
            return target.id
        return None

    def is_set_expr(self, node: ast.AST) -> bool:
        """Conservatively decide whether ``node`` evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            if node.attr in self.attrs:
                return True
            return False
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return True
                return False
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_METHODS:
                    return self.is_set_expr(node.func.value) or any(
                        self.is_set_expr(arg) for arg in node.args
                    )
                return False
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(
                node.right
            )
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(
                node.orelse
            )
        return False


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


@rule
class HashOrderRule(Rule):
    """ORD001: no hash-ordered iteration in kernel hot modules.

    Flags ``for x in <set>``, comprehensions over sets, ``list(<set>)``
    / ``tuple(<set>)`` materialization, ``enumerate(<set>)`` and
    iteration over ``dict.keys()`` views in ``network.py``,
    ``dedicated.py``, ``arbiter.py`` and ``buffers.py`` — unless the
    iteration feeds ``sorted()`` or another order-insensitive reducer.
    """

    rule_id = "ORD001"
    summary = (
        "iteration over a set/dict.keys() in a kernel hot module; "
        "wrap in sorted() or keep an explicitly ordered container"
    )
    rationale = (
        "set iteration order follows hash order, which depends on "
        "insertion history; kernels visiting components in different "
        "orders break arbitration ties differently and lose "
        "per-counter bit-identity"
    )

    def applies_to(self, relpath: str) -> bool:
        """Kernel hot modules only."""
        return "repro/" in relpath and relpath.endswith(HOT_BASENAMES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag unordered iteration sites."""
        tracker = _SetTracker(ctx.tree)
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                if self._hazard(node.iter, tracker) and not self._exempt(
                    node.iter
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "for-loop over %s; wrap the iterable in "
                        "sorted()" % self._describe(node.iter, tracker),
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                consumer = parents.get(id(node))
                if self._consumed_order_insensitively(consumer, node):
                    continue
                for gen in node.generators:
                    if self._hazard(gen.iter, tracker) and not self._exempt(
                        gen.iter
                    ):
                        yield ctx.finding(
                            self.rule_id, gen.iter,
                            "comprehension over %s; wrap in sorted() "
                            "or feed an order-insensitive reducer"
                            % self._describe(gen.iter, tracker),
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                if node.func.id in ("list", "tuple", "enumerate", "iter"):
                    if node.args and self._hazard(node.args[0], tracker):
                        yield ctx.finding(
                            self.rule_id, node,
                            "%s() over %s materializes hash order; use "
                            "sorted() instead" % (
                                node.func.id,
                                self._describe(node.args[0], tracker),
                            ),
                        )

    def _hazard(self, expr: ast.AST, tracker: _SetTracker) -> bool:
        if tracker.is_set_expr(expr):
            return True
        # ``for k in d.keys()``: iterate the dict itself (insertion
        # ordered and explicit) rather than a view pretending to be a
        # set.
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "keys"
            and not expr.args
        )

    @staticmethod
    def _exempt(expr: ast.AST) -> bool:
        # sorted(...) directly as the iterable.
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted"
        )

    @staticmethod
    def _consumed_order_insensitively(
        consumer: Optional[ast.AST], node: ast.AST
    ) -> bool:
        return (
            isinstance(consumer, ast.Call)
            and isinstance(consumer.func, ast.Name)
            and consumer.func.id in ORDER_INSENSITIVE
            and node in consumer.args
        )

    @staticmethod
    def _describe(expr: ast.AST, tracker: _SetTracker) -> str:
        name = dotted_name(expr)
        if name is None and isinstance(expr, ast.Call):
            inner = dotted_name(expr.func)
            name = "%s(...)" % inner if inner else None
        if name is None:
            name = "a set-typed expression"
        else:
            name = "set '%s'" % name
        return name
