"""Determinism & bit-identity static checker for the repro codebase.

Run it as ``python -m repro lint src/repro`` or programmatically::

    from repro.analysis import check_paths
    findings = check_paths(["src/repro"])

See ``docs/analysis.md`` for the rule catalogue, the sanitizer mode it
complements, and the suppression policy.
"""

from repro.analysis.core import (
    BARE_SUPPRESSION_RULE,
    RULES,
    Finding,
    ModuleContext,
    Rule,
    Suppression,
    check_paths,
    check_source,
    parse_suppressions,
    rule,
)

__all__ = [
    "BARE_SUPPRESSION_RULE",
    "RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "Suppression",
    "check_paths",
    "check_source",
    "parse_suppressions",
    "rule",
]
