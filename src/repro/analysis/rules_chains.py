"""Chain-state mutation discipline (CHN001).

The event kernel's chain classes (``_NicChain``, ``_ResChain``,
``_MidChain``, ``_DedChannelChain``, ...) settle whole idle stretches
at once: ``advance(through)`` computes how many cycles of buffered
activity elapsed and applies the *aggregate* counter delta in one
batched update.  That settlement is the only place a chain may touch
``EventCounters`` — a counter write anywhere else (``__init__``, a
helper, a property) double-counts relative to the cycle-stepped
kernels, and because settlement is deferred, the divergence surfaces
many cycles later where it is miserable to bisect.  The rule also
requires settlement writes to be *augmented* (``+=``): a plain ``=``
overwrites deltas other chains already settled into the same counter.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    in_any_dir,
    rule,
)

#: Chain classes live in the simulation kernels.
CHAIN_SCOPES = ("repro/sim", "repro/eval")

#: Event-kernel chain class naming convention.
_CHAIN_CLASS_RE = re.compile(r"^_\w*Chain$")

#: The approved batched-settlement entry points.  ``advance`` performs
#: the settlement; ``_settle`` is the conventional name for a private
#: helper ``advance`` delegates to.
SETTLEMENT_METHODS = frozenset({"advance", "_settle"})


def _touches_counters(target: ast.AST) -> bool:
    """True when an assignment target is a counters/stats attribute."""
    name = dotted_name(target)
    if name is None:
        return False
    parts = name.split(".")
    # ``counters.buffer_reads``, ``net.counters.x``, ``self.net.stats.y``
    return any(part in ("counters", "stats") for part in parts[:-1])


@rule
class ChainDisciplineRule(Rule):
    """CHN001: chains mutate counters only inside batched settlement.

    Within any class matching ``_*Chain``, assignments to
    ``counters.*`` / ``stats.*`` attributes are allowed only inside
    ``advance``/``_settle`` and must be augmented (``+=``-style), so
    every chain contribution is an additive batched delta.
    """

    rule_id = "CHN001"
    summary = (
        "chain class mutates network counters outside advance()/"
        "_settle(), or overwrites instead of accumulating"
    )
    rationale = (
        "chain settlement is deferred; a counter write outside the "
        "batched-settlement helper double-counts against the "
        "cycle-stepped kernels and surfaces many cycles later"
    )

    def applies_to(self, relpath: str) -> bool:
        """Simulation/eval modules (where chain classes live)."""
        return in_any_dir(relpath, CHAIN_SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Scan every ``_*Chain`` class for stray counter writes."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _CHAIN_CLASS_RE.match(node.name):
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    in_settlement = item.name in SETTLEMENT_METHODS
                    for finding in self._scan_method(
                        node, item, in_settlement, ctx
                    ):
                        yield finding

    def _scan_method(
        self,
        cls: ast.ClassDef,
        method: ast.AST,
        in_settlement: bool,
        ctx: ModuleContext,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.AugAssign):
                if _touches_counters(node.target) and not in_settlement:
                    yield ctx.finding(
                        self.rule_id, node,
                        "%s.%s mutates counters outside the batched-"
                        "settlement methods (%s)" % (
                            cls.name,
                            getattr(method, "name", "?"),
                            "/".join(sorted(SETTLEMENT_METHODS)),
                        ),
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if _touches_counters(target):
                        if in_settlement:
                            yield ctx.finding(
                                self.rule_id, node,
                                "%s settlement overwrites a counter "
                                "with '='; batched deltas must "
                                "accumulate with '+='" % cls.name,
                            )
                        else:
                            yield ctx.finding(
                                self.rule_id, node,
                                "%s.%s writes counters outside the "
                                "batched-settlement methods (%s)" % (
                                    cls.name,
                                    getattr(method, "name", "?"),
                                    "/".join(sorted(SETTLEMENT_METHODS)),
                                ),
                            )
