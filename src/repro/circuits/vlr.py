"""Voltage-locked repeater (VLR): behavioural model and waveforms.

The VLR (Fig 2) is a clockless low-swing repeater: a single-ended driver
(TxP/TxN) charges the wire node X while a feedback path with a delay cell
locks X near the threshold of the receiving inverter.  The feedback delay
produces a transient *overshoot* at X, which buys propagation speed and
noise margin; the locked low swing keeps the energy down.

``simulate_link`` integrates a simple piecewise-linear ODE per repeater
stage (driver current charging the distributed wire capacitance, opposed
by the delayed feedback clamp) and reproduces the qualitative Fig 3
waveforms: rail-to-rail slow edges for the full-swing repeater vs. a small
locked swing with overshoot for the VLR.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.circuits.wire import WireModel


@dataclasses.dataclass(frozen=True)
class VlrParams:
    """Behavioural parameters of one VLR stage.

    The swing is set resistively ("the low-swing voltage level is
    determined by transistor sizes and link wire impedance"): the Tx
    conductance pulls node X toward a rail while the delayed feedback
    clamps it toward ``v_lock +/- v_swing/2``.
    """

    vdd: float = 0.9
    #: Voltage the feedback locks node X around (near INV1x threshold).
    v_lock: float = 0.45
    #: Nominal swing target around v_lock (total ~0.2 V).
    v_swing: float = 0.20
    #: Tx driver conductance toward the rail (siemens): TxP on-resistance
    #: in series with the wire.
    g_drive: float = 0.7e-3
    #: Feedback clamp transconductance toward the lock level (siemens).
    g_feedback: float = 7.0e-3
    #: Delay of the feedback delay cell (seconds) — creates the transient
    #: overshoot the paper credits for speed and noise margin.
    t_feedback: float = 15e-12
    #: Receiver inverter threshold offset from v_lock where it flips.
    rx_threshold_offset: float = 0.02


@dataclasses.dataclass
class Waveform:
    """A simulated node voltage over time."""

    time_ps: np.ndarray
    volts: np.ndarray
    label: str = ""

    @property
    def swing_pp(self) -> float:
        """Steady-state peak-to-peak swing (ignoring the leading edge)."""
        settled = self.volts[len(self.volts) // 4 :]
        return float(settled.max() - settled.min())

    def overshoot(self, v_high: float) -> float:
        """How far the waveform exceeds its settled high level."""
        return float(self.volts.max() - v_high)


def _bit_edges(bits: Sequence[int], bit_time_s: float, dt: float) -> np.ndarray:
    """Target drive polarity (+1/-1) per simulation step."""
    steps_per_bit = max(1, int(round(bit_time_s / dt)))
    polarity = np.repeat([1.0 if b else -1.0 for b in bits], steps_per_bit)
    return polarity


def simulate_vlr_stage(
    params: VlrParams,
    wire: WireModel,
    bits: Sequence[int],
    data_rate_gbps: float,
    segment_mm: float = 1.0,
    dt_s: float = 1e-12,
) -> Waveform:
    """Simulate node X of one VLR stage driving one wire segment.

    The driver sources ``+/- i_drive`` toward the rails; after the feedback
    delay the clamp pulls X back toward ``v_lock +/- v_swing/2``.  The
    overshoot between driver flip and clamp engagement is the transient the
    paper credits for "lower repeater propagation delay and larger noise
    margin".
    """
    if data_rate_gbps <= 0:
        raise ValueError("data rate must be positive")
    c_node = wire.c_f_per_mm * segment_mm
    bit_time = 1e-9 / data_rate_gbps
    polarity = _bit_edges(bits, bit_time, dt_s)
    n = len(polarity)
    delay_steps = max(1, int(round(params.t_feedback / dt_s)))

    volts = np.empty(n)
    v = params.v_lock
    half_swing = params.v_swing / 2.0
    for i in range(n):
        pol = polarity[i]
        rail = params.vdd if pol > 0 else 0.0
        target = params.v_lock + pol * half_swing
        # The driver pulls hard toward the rail...
        i_in = params.g_drive * (rail - v)
        # ...while the feedback, seeing the node t_feedback ago, clamps it
        # toward the lock level.  The stale reading keeps pushing past the
        # crossing, producing the overshoot of Fig 2/3.
        v_delayed = volts[i - delay_steps] if i >= delay_steps else params.v_lock
        i_fb = params.g_feedback * (target - v_delayed)
        v = v + (i_in + i_fb) / c_node * dt_s
        v = min(max(v, 0.0), params.vdd)
        volts[i] = v
    time_ps = np.arange(n) * dt_s * 1e12
    return Waveform(time_ps=time_ps, volts=volts, label="low-swing VLR")


def simulate_full_swing_stage(
    wire: WireModel,
    bits: Sequence[int],
    data_rate_gbps: float,
    vdd: float = 0.9,
    drive_ohm: float = 180.0,
    segment_mm: float = 1.0,
    dt_s: float = 1e-12,
) -> Waveform:
    """RC response of a full-swing repeater stage (rail-to-rail edges)."""
    c_node = wire.c_f_per_mm * segment_mm
    bit_time = 1e-9 / data_rate_gbps
    polarity = _bit_edges(bits, bit_time, dt_s)
    n = len(polarity)
    tau = drive_ohm * c_node + 0.5 * wire.r_ohm_per_mm * segment_mm * c_node
    volts = np.empty(n)
    v = 0.0
    for i in range(n):
        target = vdd if polarity[i] > 0 else 0.0
        v = v + (target - v) * (1.0 - np.exp(-dt_s / tau))
        volts[i] = v
    time_ps = np.arange(n) * dt_s * 1e12
    return Waveform(time_ps=time_ps, volts=volts, label="full-swing")


def crossing_delay_ps(wave: Waveform, threshold: float, bit_time_ps: float) -> float:
    """Delay from the start of the first bit to the first threshold
    crossing — a per-stage propagation proxy."""
    above = wave.volts >= threshold
    crossings = np.flatnonzero(above[1:] != above[:-1]) + 1
    if len(crossings) == 0:
        return float("inf")
    first = crossings[0]
    return float(wave.time_ps[first] % bit_time_ps)
