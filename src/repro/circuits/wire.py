"""Distributed-RC wire model for on-chip global interconnect (45 nm).

Provides per-mm resistance and capacitance from wire geometry, used by the
repeater and link-design models.  The SMART link of §III re-optimises the
fabricated design with "2x wider wire spacing than fabricated" for the
2 GHz system-level target (Table I footnote), which this model expresses as
geometry variants.
"""

from __future__ import annotations

import dataclasses

#: Effective copper resistivity at 45 nm including barriers/scattering
#: (ohm-metre).
RHO_CU_EFF = 3.0e-8
#: Dielectric permittivity (low-k) in F/m.
EPS_LOWK = 2.9 * 8.854e-12
#: Fringe + ground capacitance floor per mm (F), empirically ~40 fF/mm.
C_FRINGE_PER_MM = 40e-15


@dataclasses.dataclass(frozen=True)
class WireGeometry:
    """Geometry of one routed signal wire on an intermediate metal layer."""

    width_um: float
    spacing_um: float
    thickness_um: float = 0.25
    height_um: float = 0.20  # dielectric height to the layer below

    def __post_init__(self) -> None:
        if min(self.width_um, self.spacing_um, self.thickness_um, self.height_um) <= 0:
            raise ValueError("wire geometry dimensions must be positive")

    @property
    def pitch_um(self) -> float:
        return self.width_um + self.spacing_um


#: Minimum-DRC pitch used on the fabricated test chip (§III footnote 3).
MIN_DRC = WireGeometry(width_um=0.14, spacing_um=0.14)
#: 2x wider spacing used for both Table I variants (footnote 5).
WIDE_SPACING = WireGeometry(width_um=0.14, spacing_um=0.28)


@dataclasses.dataclass(frozen=True)
class WireModel:
    """Lumped per-mm electrical parameters."""

    r_ohm_per_mm: float
    c_f_per_mm: float

    @property
    def rc_s_per_mm2(self) -> float:
        """Distributed RC product (s/mm^2); delay grows with this."""
        return self.r_ohm_per_mm * self.c_f_per_mm

    def elmore_delay_ps(self, length_mm: float) -> float:
        """Unrepeated distributed-wire Elmore delay (0.38 R C L^2)."""
        return 0.38 * self.rc_s_per_mm2 * length_mm ** 2 * 1e12


def extract_wire(geometry: WireGeometry) -> WireModel:
    """Per-mm R and C from geometry.

    R from the conductor cross-section; C as parallel-plate to the layer
    below plus sidewall coupling to both neighbours plus a fringe floor.
    """
    area_m2 = geometry.width_um * 1e-6 * geometry.thickness_um * 1e-6
    r_per_m = RHO_CU_EFF / area_m2
    c_ground_per_m = EPS_LOWK * geometry.width_um / geometry.height_um
    c_couple_per_m = 2.0 * EPS_LOWK * geometry.thickness_um / geometry.spacing_um
    c_per_mm = (c_ground_per_m + c_couple_per_m) * 1e-3 + C_FRINGE_PER_MM
    return WireModel(r_ohm_per_mm=r_per_m * 1e-3, c_f_per_mm=c_per_mm)
