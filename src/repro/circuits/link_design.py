"""SMART link design: max hops per cycle and energy per bit (Table I).

The paper evaluates four link variants:

* ``*``  — circuits re-sized and optimised for a 2 GHz system clock, with
  2x wider wire spacing than fabricated (Table I rows 1-2, 1-3 Gb/s), and
* ``**`` — the fabricated chip's sizing, also with wider spacing (rows
  3-4, 4-5.5 Gb/s),

each in full-swing and low-swing (VLR) flavours, plus the fabricated
min-DRC-pitch chip itself (§III measurements, see
:mod:`repro.circuits.signaling`).

The multi-hop path delay is modelled as

    t(n) = t_txrx + t_mm * n + t_jitter * n^2

— a per-link Tx/Rx conversion overhead, a per-mm repeated-wire delay (the
physical layer of :mod:`repro.circuits.repeater` / :mod:`.wire`), and a
small super-linear term capturing inter-repeater bandwidth limits and
jitter accumulation visible in the fabricated numbers.  Energy per bit per
mm is

    E(r) = e_dyn + p_static / r - k_slew * r - m * r^2

whose signs follow the physics: the VLR has static current paths whose
cost is amortised over faster bits (``p_static``), and short-circuit /
partial-swing losses shrink as edges occupy a larger fraction of the bit
time (``k_slew``).  Both laws are calibrated so that the paper's Table I
is regenerated exactly.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple


class Swing(enum.Enum):
    FULL = "full-swing"
    LOW = "low-swing"


@dataclasses.dataclass(frozen=True)
class LinkVariant:
    """One calibrated link circuit variant."""

    name: str
    swing: Swing
    #: Tx + Rx conversion overhead per traversal (ps).
    t_txrx_ps: float
    #: Repeated-wire delay per mm (ps).
    t_mm_ps: float
    #: Super-linear delay per hop^2 (ps).
    t_jitter_ps: float
    #: Energy law coefficients (fJ/b/mm; rate in Gb/s).
    e_dyn_fj: float
    p_static_fj_g: float
    k_slew_fj_per_g: float
    m_fj_per_g2: float

    def path_delay_ps(self, hops: int) -> float:
        """Delay for an ``hops``-mm traversal through ``hops`` repeaters."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        return self.t_txrx_ps + self.t_mm_ps * hops + self.t_jitter_ps * hops ** 2

    def max_hops_per_cycle(self, data_rate_gbps: float) -> int:
        """Largest hop count whose path delay fits in one bit period."""
        if data_rate_gbps <= 0:
            raise ValueError("data rate must be positive")
        period_ps = 1000.0 / data_rate_gbps
        hops = 0
        while self.path_delay_ps(hops + 1) <= period_ps:
            hops += 1
            if hops > 1000:
                raise RuntimeError("unbounded hop count; check parameters")
        return hops

    def energy_fj_per_bit_mm(self, data_rate_gbps: float) -> float:
        """Energy per bit per mm at a data rate (Gb/s)."""
        if data_rate_gbps <= 0:
            raise ValueError("data rate must be positive")
        r = data_rate_gbps
        return (
            self.e_dyn_fj
            + self.p_static_fj_g / r
            - self.k_slew_fj_per_g * r
            - self.m_fj_per_g2 * r * r
        )


#: Re-optimised for 2 GHz, 2x wire spacing (Table I, rows marked *).
FULL_SWING_OPT = LinkVariant(
    name="full-swing*",
    swing=Swing.FULL,
    t_txrx_ps=50.0,
    t_mm_ps=65.0,
    t_jitter_ps=0.45,
    e_dyn_fj=108.0,
    p_static_fj_g=0.0,
    k_slew_fj_per_g=3.5,
    m_fj_per_g2=1.5,
)

LOW_SWING_OPT = LinkVariant(
    name="low-swing*",
    swing=Swing.LOW,
    t_txrx_ps=40.0,
    t_mm_ps=42.0,
    t_jitter_ps=1.1,
    e_dyn_fj=120.5,
    p_static_fj_g=21.0,
    k_slew_fj_per_g=13.5,
    m_fj_per_g2=0.0,
)

#: Fabricated sizing, 2x wire spacing (Table I, rows marked **).
FULL_SWING_FAB = LinkVariant(
    name="full-swing**",
    swing=Swing.FULL,
    t_txrx_ps=30.0,
    t_mm_ps=41.0,
    t_jitter_ps=2.0,
    e_dyn_fj=101.0,
    p_static_fj_g=220.0 / 3.0,
    k_slew_fj_per_g=16.0 / 3.0,
    m_fj_per_g2=0.0,
)

LOW_SWING_FAB = LinkVariant(
    name="low-swing**",
    swing=Swing.LOW,
    t_txrx_ps=45.0,
    t_mm_ps=18.0,
    t_jitter_ps=1.3,
    e_dyn_fj=133.0,
    p_static_fj_g=220.0,
    k_slew_fj_per_g=14.0,
    m_fj_per_g2=0.0,
)

OPT_VARIANTS: Tuple[LinkVariant, LinkVariant] = (FULL_SWING_OPT, LOW_SWING_OPT)
FAB_VARIANTS: Tuple[LinkVariant, LinkVariant] = (FULL_SWING_FAB, LOW_SWING_FAB)

#: Data rates of the two Table I halves (Gb/s).
TABLE1_RATES_OPT = (1.0, 2.0, 3.0)
TABLE1_RATES_FAB = (4.0, 5.0, 5.5)


@dataclasses.dataclass(frozen=True)
class Table1Entry:
    variant: str
    data_rate_gbps: float
    max_hops: int
    energy_fj_per_bit_mm: float


def table1() -> List[Table1Entry]:
    """Regenerate the paper's Table I."""
    entries = []
    for variants, rates in ((OPT_VARIANTS, TABLE1_RATES_OPT), (FAB_VARIANTS, TABLE1_RATES_FAB)):
        for variant in variants:
            for rate in rates:
                entries.append(
                    Table1Entry(
                        variant=variant.name,
                        data_rate_gbps=rate,
                        max_hops=variant.max_hops_per_cycle(rate),
                        energy_fj_per_bit_mm=variant.energy_fj_per_bit_mm(rate),
                    )
                )
    return entries


#: Paper Table I ground truth: (variant, rate) -> (hops, fJ/b/mm).
PAPER_TABLE1: Dict[Tuple[str, float], Tuple[int, int]] = {
    ("full-swing*", 1.0): (13, 103),
    ("full-swing*", 2.0): (6, 95),
    ("full-swing*", 3.0): (4, 84),
    ("low-swing*", 1.0): (16, 128),
    ("low-swing*", 2.0): (8, 104),
    ("low-swing*", 3.0): (6, 87),
    ("full-swing**", 4.0): (4, 98),
    ("full-swing**", 5.0): (3, 89),
    ("full-swing**", 5.5): (3, 85),
    ("low-swing**", 4.0): (7, 132),
    ("low-swing**", 5.0): (6, 107),
    ("low-swing**", 5.5): (5, 96),
}


def smart_hpc_max(freq_hz: float = 2.0e9) -> int:
    """HPC_max for the SMART NoC: the low-swing 2 GHz-optimised variant.

    At 2 GHz this is the paper's headline "8 mm within a single cycle".
    """
    return LOW_SWING_OPT.max_hops_per_cycle(freq_hz / 1e9)
