"""Full-swing repeater model (the baseline §III compares against).

A repeater is inserted every millimetre (as on the test chip, where "a VLR
was embedded at every mm along a 10 mm interconnect").  Stage delay uses
the standard lumped form

    t_stage = ln(2) * ( Rd*(Cd + Cw + Cg) + Rw*(Cw/2 + Cg) )

with drive resistance Rd = R0/size and parasitic/input capacitance
proportional to size.  ``optimal_size`` minimises the stage delay; the
measured chip gives ~100 ps/mm for full-swing repeaters at min-DRC pitch,
which this model reproduces.
"""

from __future__ import annotations

import dataclasses
import math

from repro.circuits.wire import WireModel

#: Minimum-inverter drive resistance at 45 nm / 0.9 V (ohms).
R0_MIN_INV = 14000.0
#: Minimum-inverter input capacitance (farads).
C0_MIN_INV = 0.16e-15
#: Self-loading (diffusion) capacitance ratio.
GAMMA_SELF = 1.0
LN2 = math.log(2.0)


@dataclasses.dataclass(frozen=True)
class RepeaterDesign:
    """A repeater of ``size`` x the minimum inverter."""

    size: float

    def __post_init__(self) -> None:
        if self.size < 1.0:
            raise ValueError("repeater size must be >= 1x minimum")

    @property
    def drive_ohm(self) -> float:
        return R0_MIN_INV / self.size

    @property
    def input_c_f(self) -> float:
        return C0_MIN_INV * self.size

    @property
    def self_c_f(self) -> float:
        return GAMMA_SELF * self.input_c_f


def stage_delay_ps(
    repeater: RepeaterDesign, wire: WireModel, segment_mm: float = 1.0
) -> float:
    """Delay of one repeated segment: driver + distributed wire."""
    if segment_mm <= 0:
        raise ValueError("segment length must be positive")
    c_wire = wire.c_f_per_mm * segment_mm
    r_wire = wire.r_ohm_per_mm * segment_mm
    c_next = repeater.input_c_f
    delay_s = LN2 * (
        repeater.drive_ohm * (repeater.self_c_f + c_wire + c_next)
        + r_wire * (c_wire / 2.0 + c_next)
    )
    return delay_s * 1e12


def optimal_size(wire: WireModel, segment_mm: float = 1.0) -> float:
    """Size minimising stage delay.

    The self-load term (R0/s)(gamma*C0*s) is size-independent, so the
    optimum balances the driver-into-wire term R0*Cw/s against the
    wire-into-next-gate term Rw*C0*s: s* = sqrt(R0*Cw / (Rw*C0)).
    """
    c_wire = wire.c_f_per_mm * segment_mm
    r_wire = wire.r_ohm_per_mm * segment_mm
    size = math.sqrt((R0_MIN_INV * c_wire) / (r_wire * C0_MIN_INV))
    return max(1.0, size)


def full_swing_delay_ps_per_mm(wire: WireModel, size: float = None) -> float:
    """Per-mm delay of an optimally (or explicitly) sized repeated wire."""
    if size is None:
        size = optimal_size(wire)
    return stage_delay_ps(RepeaterDesign(size), wire, segment_mm=1.0)


def dynamic_energy_fj_per_bit_mm(
    wire: WireModel, vdd: float, size: float = None, activity: float = 1.0
) -> float:
    """Switching energy of one repeated mm: (Cw + Crep) * Vdd^2 * activity.

    Full-rail switching; the low-swing VLR variant scales the wire term by
    Vswing/Vdd (charge transferred at reduced swing).
    """
    if size is None:
        size = optimal_size(wire)
    repeater = RepeaterDesign(size)
    c_total = wire.c_f_per_mm + repeater.input_c_f + repeater.self_c_f
    return c_total * vdd * vdd * activity * 1e15
