"""Signal integrity: BER model and the fabricated-chip measurements (§III).

The test chip (45 nm SOI, min-DRC wire pitch, a repeater every mm of a
10 mm link) measured:

* VLR: 6.8 Gb/s max at BER < 1e-9, 4.14 mW (608 fJ/b) over 10 mm,
  ~60 ps/mm; 3.78 mW (687 fJ/b) at 5.5 Gb/s.
* Full-swing: 5.5 Gb/s max at BER < 1e-9, 4.21 mW (765 fJ/b), ~100 ps/mm.

The BER model treats the eye as the half-swing minus an ISI closure that
grows as the data rate approaches the stage's intrinsic bandwidth, with
Gaussian noise:  BER = Q(margin / sigma).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from scipy.stats import norm

BER_TARGET = 1e-9


@dataclasses.dataclass(frozen=True)
class SignalingModel:
    """Eye/BER model of one repeater flavour at min-DRC pitch."""

    name: str
    #: Steady-state voltage swing (V).
    swing_v: float
    #: Intrinsic stage bandwidth expressed as a data rate (Gb/s); the eye
    #: closes quadratically as the rate approaches it.
    intrinsic_rate_gbps: float
    #: RMS noise at the receiver threshold (V).
    noise_sigma_v: float
    #: Measured per-mm propagation delay (ps).
    delay_ps_per_mm: float
    #: Energy law E(r) = e_dyn + p_static/r, fJ/b/mm.
    e_dyn_fj: float
    p_static_fj_g: float

    def eye_margin_v(self, data_rate_gbps: float) -> float:
        """Half-eye opening after ISI closure."""
        if data_rate_gbps <= 0:
            raise ValueError("data rate must be positive")
        if data_rate_gbps >= self.intrinsic_rate_gbps:
            return 0.0
        closure = (data_rate_gbps / self.intrinsic_rate_gbps) ** 2
        return (self.swing_v / 2.0) * (1.0 - closure)

    def ber(self, data_rate_gbps: float) -> float:
        """Bit error rate at a data rate: Q(margin/sigma)."""
        margin = self.eye_margin_v(data_rate_gbps)
        if margin <= 0.0:
            return 0.5
        return float(norm.sf(margin / self.noise_sigma_v))

    def max_data_rate_gbps(
        self, ber_target: float = BER_TARGET, resolution: float = 0.1
    ) -> float:
        """Highest rate (to ``resolution`` Gb/s) meeting the BER target."""
        rate = resolution
        best = 0.0
        while rate < self.intrinsic_rate_gbps:
            if self.ber(rate) < ber_target:
                best = rate
            rate = round(rate + resolution, 10)
        return round(best, 10)

    def energy_fj_per_bit_mm(self, data_rate_gbps: float) -> float:
        if data_rate_gbps <= 0:
            raise ValueError("data rate must be positive")
        return self.e_dyn_fj + self.p_static_fj_g / data_rate_gbps

    def power_mw(self, data_rate_gbps: float, length_mm: float) -> float:
        """Link power at a data rate over a total length."""
        energy_fj_per_bit = self.energy_fj_per_bit_mm(data_rate_gbps) * length_mm
        return energy_fj_per_bit * 1e-15 * data_rate_gbps * 1e9 * 1e3

    def delay_ps(self, length_mm: float) -> float:
        return self.delay_ps_per_mm * length_mm


#: Fabricated VLR at min-DRC pitch.  Energy law fitted to the two chip
#: points (608 fJ/b @ 6.8 Gb/s, 687 fJ/b @ 5.5 Gb/s over 10 mm); the large
#: static term is the VLR's TxP-wire-RxN / TxN-wire-RxP current paths.
CHIP_VLR = SignalingModel(
    name="chip VLR (min DRC)",
    swing_v=0.20,
    intrinsic_rate_gbps=8.0,
    noise_sigma_v=0.00462,
    delay_ps_per_mm=60.0,
    e_dyn_fj=27.4,
    p_static_fj_g=227.3,
)

#: Fabricated full-swing repeater at min-DRC pitch (765 fJ/b @ 5.5 Gb/s;
#: no static paths).
CHIP_FULL_SWING = SignalingModel(
    name="chip full-swing (min DRC)",
    swing_v=0.90,
    intrinsic_rate_gbps=5.8,
    noise_sigma_v=0.0075,
    delay_ps_per_mm=100.0,
    e_dyn_fj=76.5,
    p_static_fj_g=0.0,
)

#: The measured test-chip link length (mm).
CHIP_LINK_MM = 10.0


def chip_measurements() -> Tuple[dict, dict]:
    """Reproduce the §III chip numbers from the models.

    Returns (vlr, full_swing) dicts with max rate, power, energy/bit and
    per-mm delay over the 10 mm test link.
    """
    vlr_rate = CHIP_VLR.max_data_rate_gbps()
    fs_rate = CHIP_FULL_SWING.max_data_rate_gbps()
    vlr = {
        "max_rate_gbps": vlr_rate,
        "power_mw": CHIP_VLR.power_mw(vlr_rate, CHIP_LINK_MM),
        "energy_fj_per_bit": CHIP_VLR.energy_fj_per_bit_mm(vlr_rate) * CHIP_LINK_MM,
        "power_mw_at_5p5": CHIP_VLR.power_mw(5.5, CHIP_LINK_MM),
        "energy_fj_per_bit_at_5p5": CHIP_VLR.energy_fj_per_bit_mm(5.5) * CHIP_LINK_MM,
        "delay_ps_per_mm": CHIP_VLR.delay_ps_per_mm,
        "ber_at_max": CHIP_VLR.ber(vlr_rate),
    }
    full = {
        "max_rate_gbps": fs_rate,
        "power_mw": CHIP_FULL_SWING.power_mw(fs_rate, CHIP_LINK_MM),
        "energy_fj_per_bit": CHIP_FULL_SWING.energy_fj_per_bit_mm(fs_rate)
        * CHIP_LINK_MM,
        "delay_ps_per_mm": CHIP_FULL_SWING.delay_ps_per_mm,
        "ber_at_max": CHIP_FULL_SWING.ber(fs_rate),
    }
    return vlr, full
