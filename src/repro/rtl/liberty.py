"""Timing-view (.lib) and abstract-view (.lef) emission for VLR blocks.

§V: "the script also generates the timing liberty format (.lib) and the
library exchange format (.lef) files to allow the generated layout to be
place-and-routed with the router."  Timing numbers come from the circuit
models (:mod:`repro.circuits`); geometry from :mod:`repro.rtl.layout`.
"""

from __future__ import annotations

from repro.circuits.signaling import CHIP_FULL_SWING, CHIP_VLR
from repro.rtl.layout import TxBlockLayout, tx_block_layout


def emit_liberty(
    bits: int,
    vdd: float = 0.9,
    process_name: str = "smart_45nm",
) -> str:
    """A .lib with the multi-bit VLR Tx and Rx block cells."""
    delay_ns = CHIP_VLR.delay_ps_per_mm / 2.0 / 1000.0  # half per Tx/Rx pair
    fs_delay_ns = CHIP_FULL_SWING.delay_ps_per_mm / 2.0 / 1000.0
    lines = [
        'library (%s) {' % process_name,
        '  delay_model : table_lookup;',
        '  time_unit : "1ns";',
        '  voltage_unit : "1V";',
        '  capacitive_load_unit (1, pf);',
        '  nom_voltage : %.2f;' % vdd,
        '  nom_temperature : 25;',
    ]
    for kind, delay in (("tx", delay_ns), ("rx", delay_ns)):
        block = tx_block_layout(bits, kind)
        lines.extend(_cell_block(kind, bits, block, delay))
    # Reference full-swing repeater cell for comparison flows.
    lines.extend(
        [
            '  cell (fs_repeater) {',
            '    area : 6.5;',
            '    pin (a) { direction : input; capacitance : 0.004; }',
            '    pin (y) {',
            '      direction : output;',
            '      timing () {',
            '        related_pin : "a";',
            '        cell_rise (scalar) { values ("%.4f"); }' % fs_delay_ns,
            '        cell_fall (scalar) { values ("%.4f"); }' % fs_delay_ns,
            '      }',
            '    }',
            '  }',
            '}',
        ]
    )
    return "\n".join(lines) + "\n"


def _cell_block(kind: str, bits: int, block: TxBlockLayout, delay_ns: float):
    cell = "vlr_%s_block_%db" % (kind, bits)
    yield '  cell (%s) {' % cell
    yield '    area : %.2f;' % (block.area_um2)
    yield '    pin (en) { direction : input; capacitance : 0.002; }'
    for bit in range(bits):
        yield '    pin (lines_in_%d) { direction : input; capacitance : 0.003; }' % bit
    for bit in range(bits):
        yield '    pin (lines_out_%d) {' % bit
        yield '      direction : output;'
        yield '      timing () {'
        yield '        related_pin : "lines_in_%d";' % bit
        yield '        cell_rise (scalar) { values ("%.4f"); }' % delay_ns
        yield '        cell_fall (scalar) { values ("%.4f"); }' % delay_ns
        yield '      }'
        yield '    }'
    yield '  }'


def emit_lef(bits: int) -> str:
    """A .lef with the Tx and Rx block macros (sizes from Fig 8 cells)."""
    lines = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
    ]
    for kind in ("tx", "rx"):
        block = tx_block_layout(bits, kind)
        name = "VLR_%s_BLOCK_%dB" % (kind.upper(), bits)
        lines.extend(
            [
                "MACRO %s" % name,
                "  CLASS BLOCK ;",
                "  ORIGIN 0 0 ;",
                "  SIZE %.3f BY %.3f ;" % (block.width_um, block.height_um),
                "  SYMMETRY X Y ;",
            ]
        )
        for bit, (x_um, y_um) in enumerate(block.cells):
            lines.extend(
                [
                    "  PIN LINE_%d" % bit,
                    "    DIRECTION %s ;" % ("OUTPUT" if kind == "tx" else "INPUT"),
                    "    PORT",
                    "      LAYER M5 ;",
                    "      RECT %.3f %.3f %.3f %.3f ;"
                    % (x_um, y_um, x_um + 0.2, y_um + 0.2),
                    "    END",
                    "  END LINE_%d" % bit,
                ]
            )
        lines.append("END %s" % name)
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"
