"""Verilog-2001 emission from the netlist IR."""

from __future__ import annotations

from typing import List

from repro.rtl.netlist import Module, Netlist


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1'b1" if value else "1'b0"
    return str(value)


def emit_module(module: Module) -> str:
    """Emit one module as Verilog text."""
    lines: List[str] = []
    if module.comment:
        for comment_line in module.comment.splitlines():
            lines.append("// %s" % comment_line)
    header = "module %s" % module.name
    if module.parameters:
        params = ",\n".join(
            "    parameter %s = %s" % (p.name, _format_value(p.default))
            for p in module.parameters
        )
        header += " #(\n%s\n)" % params
    if module.ports:
        ports = ",\n".join(
            "    %s %s%s" % (p.direction, p.range_str, p.name)
            for p in module.ports
        )
        header += " (\n%s\n);" % ports
    else:
        header += " ();"
    lines.append(header)

    if module.is_blackbox:
        lines.append("    // black box: analog/custom layout (see .lib/.lef)")
    for wire in module.wires:
        lines.append("    %s %s%s;" % (wire.kind, wire.range_str, wire.name))
    for assign in module.assigns:
        lines.append("    assign %s = %s;" % (assign.lhs, assign.rhs))
    for block in module.raw_blocks:
        lines.append("")
        for raw_line in block.strip("\n").splitlines():
            lines.append("    %s" % raw_line if raw_line.strip() else "")
    for inst in module.instances:
        lines.append("")
        text = "    %s" % inst.module
        if inst.parameters:
            overrides = ", ".join(
                ".%s(%s)" % (k, _format_value(v))
                for k, v in sorted(inst.parameters.items())
            )
            text += " #(%s)" % overrides
        text += " %s (" % inst.name
        lines.append(text)
        connections = [
            "        .%s(%s)" % (port, net)
            for port, net in inst.connections.items()
        ]
        lines.append(",\n".join(connections))
        lines.append("    );")
    lines.append("endmodule")
    return "\n".join(lines)


def emit_netlist(netlist: Netlist, header_comment: str = "") -> str:
    """Emit every module of a netlist into one source file."""
    netlist.validate()
    parts: List[str] = []
    if header_comment:
        parts.append(
            "\n".join("// %s" % line for line in header_comment.splitlines())
        )
    # Emit leaf modules first so the file reads bottom-up.
    emitted = set()
    ordered: List[Module] = []

    def visit(name: str) -> None:
        if name in emitted:
            return
        emitted.add(name)
        module = netlist.modules[name]
        for inst in module.instances:
            visit(inst.module)
        ordered.append(module)

    for name in sorted(netlist.modules):
        visit(name)
    parts.extend(emit_module(module) for module in ordered)
    return "\n\n".join(parts) + "\n"
