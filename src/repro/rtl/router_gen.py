"""Parameterised SMART router RTL generation (§V).

"Given router parameters, the tool generates the RTL description of the
router in Verilog using an in-house parameterized library of various router
components."  This module builds that library — VC FIFOs, round-robin
arbiters, the SMART crossbar with preset/bypass muxes, the credit crossbar,
the memory-mapped configuration register, and black-box VLR Tx/Rx cells —
and assembles them into a ``smart_router`` top.

The datapath modules are complete behavioural Verilog; control sequencing
beyond switch allocation (which is cycle-modelled by :mod:`repro.sim`) is
carried by the valid/grant wiring the top module establishes.
"""

from __future__ import annotations

from repro.config import NocConfig
from repro.core.credit_network import credit_crossbar_width_bits
from repro.rtl.netlist import Instance, Module, Netlist, ParamDecl, PortDecl, WireDecl

NUM_PORTS = 5
PORT_NAMES = ("east", "south", "west", "north", "core")
MESH_PORTS = PORT_NAMES[:4]


def _vlr_blackbox(name: str, comment: str) -> Module:
    module = Module(
        name,
        ports=[
            PortDecl("line_in", "input", 1),
            PortDecl("line_out", "output", 1),
            PortDecl("en", "input", 1),
        ],
        comment=comment,
    )
    module.is_blackbox = True
    return module


def build_vlr_rx() -> Module:
    return _vlr_blackbox(
        "vlr_rx",
        "Low-swing to full-swing receiver half of the voltage-locked "
        "repeater (custom cell; timing/area in the generated .lib/.lef).",
    )


def build_vlr_tx() -> Module:
    return _vlr_blackbox(
        "vlr_tx",
        "Full-swing to low-swing transmitter half of the voltage-locked "
        "repeater, with EN gating to cut static current on idle links.",
    )


def build_vlr_block(direction: str, bits: int) -> Module:
    """Multi-bit Rx or Tx block: the regular column of Fig 8."""
    kind, cell = ("rx", "vlr_rx") if direction == "rx" else ("tx", "vlr_tx")
    module = Module(
        "vlr_%s_block" % kind,
        ports=[
            PortDecl("lines_in", "input", bits),
            PortDecl("lines_out", "output", bits),
            PortDecl("en", "input", 1),
        ],
        comment="%d-bit %s block, placed-and-routed as a regular column "
        "by the SKILL-equivalent layout generator." % (bits, cell),
    )
    for bit in range(bits):
        module.instantiate(
            cell,
            "u_%s_%d" % (kind, bit),
            {
                "line_in": "lines_in[%d]" % bit,
                "line_out": "lines_out[%d]" % bit,
                "en": "en",
            },
        )
    return module


def build_vc_fifo(width: int = 32, depth: int = 10) -> Module:
    ptrw = max(1, (depth - 1).bit_length())
    module = Module(
        "vc_fifo",
        ports=[
            PortDecl("clk", "input"),
            PortDecl("rst", "input"),
            PortDecl("wr_en", "input"),
            PortDecl("wr_data", "input", width),
            PortDecl("rd_en", "input"),
            PortDecl("rd_data", "output", width),
            PortDecl("empty", "output"),
            PortDecl("full", "output"),
        ],
        parameters=[
            ParamDecl("WIDTH", width),
            ParamDecl("DEPTH", depth),
            ParamDecl("PTRW", ptrw),
        ],
        comment="One virtual-channel buffer: a DEPTH-flit FIFO "
        "(virtual cut-through: DEPTH covers a whole packet).",
    )
    module.add_raw(
        """
reg [WIDTH-1:0] mem [0:DEPTH-1];
reg [PTRW:0] wr_ptr;
reg [PTRW:0] rd_ptr;
reg [PTRW:0] count;

assign empty = (count == 0);
assign full = (count == DEPTH);
assign rd_data = mem[rd_ptr[PTRW-1:0]];

always @(posedge clk) begin
    if (rst) begin
        wr_ptr <= 0;
        rd_ptr <= 0;
        count <= 0;
    end else begin
        if (wr_en && !full) begin
            mem[wr_ptr[PTRW-1:0]] <= wr_data;
            wr_ptr <= (wr_ptr == DEPTH - 1) ? 0 : wr_ptr + 1;
        end
        if (rd_en && !empty) begin
            rd_ptr <= (rd_ptr == DEPTH - 1) ? 0 : rd_ptr + 1;
        end
        case ({wr_en && !full, rd_en && !empty})
            2'b10: count <= count + 1;
            2'b01: count <= count - 1;
            default: count <= count;
        endcase
    end
end
"""
    )
    return module


def build_rr_arbiter(num_requesters: int = 10) -> Module:
    module = Module(
        "rr_arbiter",
        ports=[
            PortDecl("clk", "input"),
            PortDecl("rst", "input"),
            PortDecl("req", "input", num_requesters),
            PortDecl("enable", "input"),
            PortDecl("grant", "output", num_requesters),
        ],
        parameters=[ParamDecl("N", num_requesters)],
        comment="Round-robin switch-allocation arbiter over (input port, "
        "VC) requesters for one crossbar output.",
    )
    module.add_raw(
        """
reg [31:0] last;
reg [N-1:0] grant_r;
reg found;
integer i;
integer idx;

assign grant = grant_r;

always @(*) begin
    grant_r = {N{1'b0}};
    found = 1'b0;
    idx = 0;
    for (i = 1; i <= N; i = i + 1) begin
        idx = (last + i) % N;
        if (!found && req[idx]) begin
            grant_r[idx] = 1'b1;
            found = 1'b1;
        end
    end
end

always @(posedge clk) begin
    if (rst) begin
        last <= N - 1;
    end else if (enable && found) begin
        for (i = 0; i < N; i = i + 1) begin
            if (grant_r[i]) last <= i;
        end
    end
end
"""
    )
    return module


def build_smart_crossbar(name: str, width: int, ports: int = NUM_PORTS) -> Module:
    module = Module(
        name,
        ports=[
            PortDecl("in_bus", "input", ports * width),
            PortDecl("sel_bus", "input", ports * 3),
            PortDecl("out_bus", "output", ports * width),
        ],
        parameters=[
            ParamDecl("WIDTH", width),
            ParamDecl("PORTS", ports),
            ParamDecl("SELW", 3),
        ],
        comment="Full-swing crossbar between the Rx and Tx halves of the "
        "VLRs (Fig 5): each output selects one (possibly preset) input.",
    )
    module.add_raw(
        """
genvar g;
generate
    for (g = 0; g < PORTS; g = g + 1) begin : outmux
        wire [SELW-1:0] sel_g = sel_bus[g*SELW +: SELW];
        assign out_bus[g*WIDTH +: WIDTH] =
            (sel_g < PORTS) ? in_bus[sel_g*WIDTH +: WIDTH]
                            : {WIDTH{1'b0}};
    end
endgenerate
"""
    )
    return module


def build_bypass_mux(width: int = 32) -> Module:
    module = Module(
        "bypass_input_mux",
        ports=[
            PortDecl("sel_bypass", "input"),
            PortDecl("link_data", "input", width),
            PortDecl("buf_data", "input", width),
            PortDecl("xbar_in", "output", width),
        ],
        parameters=[ParamDecl("WIDTH", width)],
        comment="Per-input 2:1 mux (Fig 6): preset to feed the crossbar "
        "either from the incoming link (bypass) or the input buffer.",
    )
    module.add_raw(
        "assign xbar_in = sel_bypass ? link_data : buf_data;"
    )
    return module


def build_config_reg() -> Module:
    module = Module(
        "config_reg",
        ports=[
            PortDecl("clk", "input"),
            PortDecl("rst", "input"),
            PortDecl("cfg_we", "input"),
            PortDecl("cfg_addr", "input", 32),
            PortDecl("cfg_wdata", "input", 64),
            PortDecl("bypass_en", "output", 5),
            PortDecl("bypass_out_sel", "output", 15),
            PortDecl("xbar_sel", "output", 15),
            PortDecl("clk_gate", "output", 5),
            PortDecl("credit_sel", "output", 15),
            PortDecl("cfg_valid", "output"),
        ],
        parameters=[ParamDecl("MY_ADDR", 0)],
        comment="Memory-mapped double-word preset register (§V): one store "
        "per router reconfigures the NoC for the next application.",
    )
    module.add_raw(
        """
reg [63:0] value;

assign bypass_en = value[4:0];
assign bypass_out_sel = value[19:5];
assign xbar_sel = value[34:20];
assign clk_gate = value[39:35];
assign credit_sel = value[54:40];
assign cfg_valid = value[63];

always @(posedge clk) begin
    if (rst) begin
        value <= 64'd0;
    end else if (cfg_we && (cfg_addr == MY_ADDR)) begin
        value <= cfg_wdata;
    end
end
"""
    )
    return module


def _router_ports(cfg: NocConfig) -> list:
    ports = [
        PortDecl("clk", "input"),
        PortDecl("rst", "input"),
        PortDecl("cfg_we", "input"),
        PortDecl("cfg_addr", "input", 32),
        PortDecl("cfg_wdata", "input", 64),
    ]
    credit_bits = credit_crossbar_width_bits(cfg.vcs_per_port)
    for name in PORT_NAMES:
        ports.extend(
            [
                PortDecl("%s_in_data" % name, "input", cfg.flit_bits),
                PortDecl("%s_in_valid" % name, "input"),
                PortDecl("%s_out_data" % name, "output", cfg.flit_bits),
                PortDecl("%s_out_valid" % name, "output"),
                PortDecl("%s_credit_in" % name, "input", credit_bits),
                PortDecl("%s_credit_out" % name, "output", credit_bits),
            ]
        )
    return ports


def build_smart_router(cfg: NocConfig) -> Module:
    """The smart_router top: Fig 6 assembled from the component library."""
    width = cfg.flit_bits
    credit_bits = credit_crossbar_width_bits(cfg.vcs_per_port)
    module = Module(
        "smart_router",
        ports=_router_ports(cfg),
        parameters=[ParamDecl("NODE_ID", 0)],
        comment="SMART router (Fig 6): input buffers, bypass muxes, SA "
        "arbiters, data + credit SMART crossbars, preset register.",
    )
    module.wire("data_xbar_in", NUM_PORTS * width)
    module.wire("data_xbar_out", NUM_PORTS * width)
    module.wire("credit_xbar_in", NUM_PORTS * credit_bits)
    module.wire("credit_xbar_out", NUM_PORTS * credit_bits)
    module.wire("bypass_en", NUM_PORTS)
    module.wire("bypass_out_sel", NUM_PORTS * 3)
    module.wire("xbar_sel", NUM_PORTS * 3)
    module.wire("clk_gate", NUM_PORTS)
    module.wire("credit_sel", NUM_PORTS * 3)
    module.wire("cfg_valid_w")

    module.instantiate(
        "config_reg",
        "u_config",
        {
            "clk": "clk",
            "rst": "rst",
            "cfg_we": "cfg_we",
            "cfg_addr": "cfg_addr",
            "cfg_wdata": "cfg_wdata",
            "bypass_en": "bypass_en",
            "bypass_out_sel": "bypass_out_sel",
            "xbar_sel": "xbar_sel",
            "clk_gate": "clk_gate",
            "credit_sel": "credit_sel",
            "cfg_valid": "cfg_valid_w",
        },
        {"MY_ADDR": "NODE_ID"},
    )

    for index, name in enumerate(PORT_NAMES):
        rx_wire = module.wire("%s_rx_data" % name, width)
        if name in MESH_PORTS:
            module.instantiate(
                "vlr_rx_block",
                "u_rx_%s" % name,
                {
                    "lines_in": "%s_in_data" % name,
                    "lines_out": rx_wire,
                    "en": "~clk_gate[%d]" % index,
                },
            )
        else:
            module.assign(rx_wire, "%s_in_data" % name)

        buf_wire = module.wire("%s_buf_data" % name, width)
        for vc in range(cfg.vcs_per_port):
            rd_wire = module.wire("%s_vc%d_rd" % (name, vc), width)
            module.instantiate(
                "vc_fifo",
                "u_fifo_%s_vc%d" % (name, vc),
                {
                    "clk": "clk",
                    "rst": "rst",
                    "wr_en": "%s_in_valid" % name,
                    "wr_data": rx_wire,
                    "rd_en": "1'b1",
                    "rd_data": rd_wire,
                    "empty": "/* unused */",
                    "full": "/* unused */",
                },
            )
        module.assign(buf_wire, "%s_vc0_rd" % name)

        module.instantiate(
            "bypass_input_mux",
            "u_bypass_%s" % name,
            {
                "sel_bypass": "bypass_en[%d]" % index,
                "link_data": rx_wire,
                "buf_data": buf_wire,
                "xbar_in": "data_xbar_in[%d:%d]"
                % ((index + 1) * width - 1, index * width),
            },
        )

        grant_wire = module.wire("%s_grant" % name, NUM_PORTS * cfg.vcs_per_port)
        module.instantiate(
            "rr_arbiter",
            "u_sa_%s" % name,
            {
                "clk": "clk",
                "rst": "rst",
                "req": "{%d{1'b0}} /* SA requests from VC state */"
                % (NUM_PORTS * cfg.vcs_per_port),
                "enable": "~clk_gate[%d]" % index,
                "grant": grant_wire,
            },
        )

        if name in MESH_PORTS:
            module.instantiate(
                "vlr_tx_block",
                "u_tx_%s" % name,
                {
                    "lines_in": "data_xbar_out[%d:%d]"
                    % ((index + 1) * width - 1, index * width),
                    "lines_out": "%s_out_data" % name,
                    "en": "~clk_gate[%d]" % index,
                },
            )
        else:
            module.assign(
                "%s_out_data" % name,
                "data_xbar_out[%d:%d]" % ((index + 1) * width - 1, index * width),
            )
        module.assign("%s_out_valid" % name, "cfg_valid_w")
        module.assign(
            "credit_xbar_in[%d:%d]"
            % ((index + 1) * credit_bits - 1, index * credit_bits),
            "%s_credit_in" % name,
        )
        module.assign(
            "%s_credit_out" % name,
            "credit_xbar_out[%d:%d]"
            % ((index + 1) * credit_bits - 1, index * credit_bits),
        )

    module.instantiate(
        "data_crossbar",
        "u_data_xbar",
        {
            "in_bus": "data_xbar_in",
            "sel_bus": "xbar_sel",
            "out_bus": "data_xbar_out",
        },
    )
    module.instantiate(
        "credit_crossbar",
        "u_credit_xbar",
        {
            "in_bus": "credit_xbar_in",
            "sel_bus": "credit_sel",
            "out_bus": "credit_xbar_out",
        },
    )
    return module


def build_router_library(cfg: NocConfig) -> Netlist:
    """The full component library plus the router top."""
    credit_bits = credit_crossbar_width_bits(cfg.vcs_per_port)
    netlist = Netlist()
    netlist.add(build_vlr_rx())
    netlist.add(build_vlr_tx())
    netlist.add(build_vlr_block("rx", cfg.flit_bits))
    netlist.add(build_vlr_block("tx", cfg.flit_bits))
    netlist.add(build_vc_fifo(cfg.flit_bits, cfg.vc_depth_flits))
    netlist.add(build_rr_arbiter(NUM_PORTS * cfg.vcs_per_port))
    netlist.add(build_smart_crossbar("data_crossbar", cfg.flit_bits))
    netlist.add(build_smart_crossbar("credit_crossbar", credit_bits))
    netlist.add(build_bypass_mux(cfg.flit_bits))
    netlist.add(build_config_reg())
    netlist.add(build_smart_router(cfg))
    return netlist
