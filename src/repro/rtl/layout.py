"""Layout generation: Tx/Rx blocks (Fig 8) and the tiled NoC (Fig 9).

The paper's SKILL script places 1-bit Tx/Rx cells "regularly to multi-bit
Tx/Rx blocks", and custom TCL tiles routers at a 1 mm pitch with the black
regions reserved for cores.  This module reproduces that deterministically:
a grid placer emitting block placements, an ASCII floorplan, a DEF-like
text dump, and wirelength/area reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.config import NocConfig
from repro.power.area import router_area
from repro.sim.topology import Mesh, Port

#: 1-bit VLR cell footprint (um): width x height, Fig 8's repeated unit.
TX_CELL_W_UM = 2.8
TX_CELL_H_UM = 5.0
RX_CELL_W_UM = 2.4
RX_CELL_H_UM = 4.6


@dataclasses.dataclass(frozen=True)
class Rect:
    """An axis-aligned placement rectangle in mm."""

    x_mm: float
    y_mm: float
    w_mm: float
    h_mm: float

    @property
    def area_mm2(self) -> float:
        return self.w_mm * self.h_mm

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x_mm + self.w_mm / 2.0, self.y_mm + self.h_mm / 2.0)

    def overlaps(self, other: "Rect") -> bool:
        return not (
            self.x_mm + self.w_mm <= other.x_mm
            or other.x_mm + other.w_mm <= self.x_mm
            or self.y_mm + self.h_mm <= other.y_mm
            or other.y_mm + other.h_mm <= self.y_mm
        )


@dataclasses.dataclass(frozen=True)
class Placement:
    name: str
    kind: str  # "router" | "tx" | "rx" | "core"
    rect: Rect


@dataclasses.dataclass(frozen=True)
class TxBlockLayout:
    """A multi-bit Tx/Rx block: 1-bit cells stacked in a regular column."""

    kind: str
    bits: int
    cell_w_um: float
    cell_h_um: float
    cells: Tuple[Tuple[float, float], ...]  # (x_um, y_um) origin of each cell

    @property
    def width_um(self) -> float:
        return self.cell_w_um

    @property
    def height_um(self) -> float:
        return self.cell_h_um * self.bits

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um


def tx_block_layout(bits: int, kind: str = "tx") -> TxBlockLayout:
    """Place ``bits`` 1-bit cells into a regular column (Fig 8)."""
    if bits < 1:
        raise ValueError("a Tx/Rx block needs at least one bit")
    if kind == "tx":
        cell_w, cell_h = TX_CELL_W_UM, TX_CELL_H_UM
    elif kind == "rx":
        cell_w, cell_h = RX_CELL_W_UM, RX_CELL_H_UM
    else:
        raise ValueError("kind must be 'tx' or 'rx'")
    cells = tuple((0.0, i * cell_h) for i in range(bits))
    return TxBlockLayout(kind=kind, bits=bits, cell_w_um=cell_w, cell_h_um=cell_h, cells=cells)


@dataclasses.dataclass
class NocLayout:
    """A generated chip floorplan."""

    cfg: NocConfig
    placements: List[Placement]
    tile_pitch_mm: float

    @property
    def die_w_mm(self) -> float:
        return self.cfg.width * self.tile_pitch_mm

    @property
    def die_h_mm(self) -> float:
        return self.cfg.height * self.tile_pitch_mm

    def by_kind(self, kind: str) -> List[Placement]:
        return [p for p in self.placements if p.kind == kind]

    def network_area_mm2(self) -> float:
        return sum(
            p.rect.area_mm2 for p in self.placements if p.kind != "core"
        )

    def network_area_fraction(self) -> float:
        return self.network_area_mm2() / (self.die_w_mm * self.die_h_mm)

    def check_no_overlaps(self) -> None:
        blocks = [p for p in self.placements if p.kind != "core"]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                if a.rect.overlaps(b.rect):
                    raise AssertionError(
                        "placements overlap: %s and %s" % (a.name, b.name)
                    )

    def total_link_wirelength_mm(self) -> float:
        """Manhattan wirelength between adjacent routers' centres."""
        mesh = Mesh(self.cfg.width, self.cfg.height)
        routers = {p.name: p for p in self.by_kind("router")}
        total = 0.0
        for u, v in mesh.links():
            cu = routers["router_%d" % u].rect.center
            cv = routers["router_%d" % v].rect.center
            total += abs(cu[0] - cv[0]) + abs(cu[1] - cv[1])
        return total

    def ascii_floorplan(self) -> str:
        """Fig 9 as text: R = router + Tx/Rx, '.' = core region."""
        rows = []
        for y in range(self.cfg.height - 1, -1, -1):
            cells = []
            for x in range(self.cfg.width):
                node = y * self.cfg.width + x
                cells.append("[R%-2d|core]" % node)
            rows.append(" ".join(cells))
        header = "%dx%d SMART NoC, %.0f mm x %.0f mm (router+VLR area %.2f%%)" % (
            self.cfg.width,
            self.cfg.height,
            self.die_w_mm,
            self.die_h_mm,
            100.0 * self.network_area_fraction(),
        )
        return header + "\n" + "\n".join(rows)

    def def_text(self) -> str:
        """A minimal DEF-like dump of all placements (microns)."""
        lines = [
            "VERSION 5.8 ;",
            "DESIGN smart_noc ;",
            "UNITS DISTANCE MICRONS 1000 ;",
            "DIEAREA ( 0 0 ) ( %d %d ) ;" % (
                int(self.die_w_mm * 1000),
                int(self.die_h_mm * 1000),
            ),
            "COMPONENTS %d ;" % len(self.placements),
        ]
        for p in self.placements:
            lines.append(
                "- %s %s + PLACED ( %d %d ) N ;"
                % (p.name, p.kind, int(p.rect.x_mm * 1000), int(p.rect.y_mm * 1000))
            )
        lines.append("END COMPONENTS")
        lines.append("END DESIGN")
        return "\n".join(lines)


def generate_layout(cfg: NocConfig) -> NocLayout:
    """Place routers, Tx/Rx blocks and core regions on the 1 mm grid."""
    mesh = Mesh(cfg.width, cfg.height)
    pitch = cfg.mm_per_hop
    placements: List[Placement] = []
    r_area = router_area(cfg)
    router_side_mm = (r_area.total_um2 * 1e-6) ** 0.5
    data_bits = cfg.flit_bits + cfg.credit_bits
    tx = tx_block_layout(data_bits, "tx")
    rx = tx_block_layout(data_bits, "rx")
    tx_w = tx.width_um * 1e-3
    tx_h = tx.height_um * 1e-3
    rx_w = rx.width_um * 1e-3
    rx_h = rx.height_um * 1e-3

    for node in mesh.nodes():
        x, y = mesh.coords(node)
        ox = x * pitch
        oy = y * pitch
        router_rect = Rect(ox, oy, router_side_mm, router_side_mm)
        placements.append(Placement("router_%d" % node, "router", router_rect))
        # Tx/Rx block pairs on each mesh-facing side, beside the router.
        offset = router_side_mm + 0.01
        for direction in (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH):
            if mesh.neighbor(node, direction) is None:
                continue
            slot = int(direction)
            base_y = oy + offset + slot * (max(tx_h, rx_h) + 0.005)
            placements.append(
                Placement(
                    "tx_%d_%s" % (node, direction.name.lower()),
                    "tx",
                    Rect(ox, base_y, tx_w, tx_h),
                )
            )
            placements.append(
                Placement(
                    "rx_%d_%s" % (node, direction.name.lower()),
                    "rx",
                    Rect(ox + tx_w + 0.004, base_y, rx_w, rx_h),
                )
            )
        # The rest of the tile is reserved for the core (black in Fig 9).
        placements.append(
            Placement(
                "core_%d" % node,
                "core",
                Rect(ox + offset, oy, pitch - offset, pitch),
            )
        )
    layout = NocLayout(cfg=cfg, placements=placements, tile_pitch_mm=pitch)
    layout.check_no_overlaps()
    return layout
