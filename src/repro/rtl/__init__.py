"""Implementation tool flow (§V): RTL, layout, timing views."""

from repro.rtl.layout import (
    NocLayout,
    Placement,
    Rect,
    TxBlockLayout,
    generate_layout,
    tx_block_layout,
)
from repro.rtl.liberty import emit_lef, emit_liberty
from repro.rtl.lint import LintReport, lint_verilog, strip_comments
from repro.rtl.netlist import (
    Assign,
    Instance,
    Module,
    Netlist,
    ParamDecl,
    PortDecl,
    WireDecl,
    check_identifier,
)
from repro.rtl.noc_gen import build_noc_netlist, build_noc_top
from repro.rtl.router_gen import (
    build_bypass_mux,
    build_config_reg,
    build_rr_arbiter,
    build_router_library,
    build_smart_crossbar,
    build_smart_router,
    build_vc_fifo,
    build_vlr_block,
    build_vlr_rx,
    build_vlr_tx,
)
from repro.rtl.verilog import emit_module, emit_netlist

__all__ = [
    "Assign",
    "Instance",
    "LintReport",
    "Module",
    "Netlist",
    "NocLayout",
    "ParamDecl",
    "Placement",
    "PortDecl",
    "Rect",
    "TxBlockLayout",
    "WireDecl",
    "build_bypass_mux",
    "build_config_reg",
    "build_noc_netlist",
    "build_noc_top",
    "build_rr_arbiter",
    "build_router_library",
    "build_smart_crossbar",
    "build_smart_router",
    "build_vc_fifo",
    "build_vlr_block",
    "build_vlr_rx",
    "build_vlr_tx",
    "check_identifier",
    "emit_lef",
    "emit_liberty",
    "emit_module",
    "emit_netlist",
    "generate_layout",
    "lint_verilog",
    "strip_comments",
    "tx_block_layout",
]
