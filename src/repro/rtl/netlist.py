"""Structural netlist IR for the RTL generator (§V).

The paper's tool "takes network configurations as input ... and generates
the RTL description as well as the layout of the SMART NoC".  We model RTL
as a small structural IR — modules with ports, parameters, wires, continuous
assignments, raw behavioural blocks and module instances — and emit
Verilog-2001 from it (:mod:`repro.rtl.verilog`).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Sequence

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def check_identifier(name: str) -> str:
    """Validate a Verilog identifier; returns it for chaining."""
    if not _IDENT_RE.match(name):
        raise ValueError("invalid Verilog identifier: %r" % name)
    return name


@dataclasses.dataclass(frozen=True)
class PortDecl:
    """A module port."""

    name: str
    direction: str  # "input" | "output" | "inout"
    width: int = 1

    def __post_init__(self) -> None:
        check_identifier(self.name)
        if self.direction not in ("input", "output", "inout"):
            raise ValueError("bad port direction %r" % self.direction)
        if self.width < 1:
            raise ValueError("port %s must be at least 1 bit" % self.name)

    @property
    def range_str(self) -> str:
        return "" if self.width == 1 else "[%d:0] " % (self.width - 1)


@dataclasses.dataclass(frozen=True)
class WireDecl:
    """An internal wire or reg."""

    name: str
    width: int = 1
    kind: str = "wire"  # "wire" | "reg"

    def __post_init__(self) -> None:
        check_identifier(self.name)
        if self.kind not in ("wire", "reg"):
            raise ValueError("bad net kind %r" % self.kind)
        if self.width < 1:
            raise ValueError("wire %s must be at least 1 bit" % self.name)

    @property
    def range_str(self) -> str:
        return "" if self.width == 1 else "[%d:0] " % (self.width - 1)


@dataclasses.dataclass(frozen=True)
class ParamDecl:
    name: str
    default: object

    def __post_init__(self) -> None:
        check_identifier(self.name)


@dataclasses.dataclass(frozen=True)
class Assign:
    """Continuous assignment ``assign lhs = rhs;``."""

    lhs: str
    rhs: str


@dataclasses.dataclass(frozen=True)
class Instance:
    """A module instantiation with named port connections."""

    module: str
    name: str
    connections: Dict[str, str]
    parameters: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        check_identifier(self.module)
        check_identifier(self.name)
        for port in self.connections:
            check_identifier(port)


class Module:
    """One RTL module."""

    def __init__(
        self,
        name: str,
        ports: Sequence[PortDecl] = (),
        parameters: Sequence[ParamDecl] = (),
        comment: str = "",
    ):
        self.name = check_identifier(name)
        self.ports: List[PortDecl] = list(ports)
        self.parameters: List[ParamDecl] = list(parameters)
        self.wires: List[WireDecl] = []
        self.assigns: List[Assign] = []
        self.instances: List[Instance] = []
        #: Raw behavioural bodies (always blocks, functions), emitted as-is.
        self.raw_blocks: List[str] = []
        self.comment = comment
        self.is_blackbox = False
        self._names = {p.name for p in self.ports}
        if len(self._names) != len(self.ports):
            raise ValueError("duplicate port names in module %s" % name)

    def add_port(self, port: PortDecl) -> PortDecl:
        if port.name in self._names:
            raise ValueError("duplicate name %s in module %s" % (port.name, self.name))
        self.ports.append(port)
        self._names.add(port.name)
        return port

    def add_wire(self, wire: WireDecl) -> WireDecl:
        if wire.name in self._names:
            raise ValueError("duplicate name %s in module %s" % (wire.name, self.name))
        self.wires.append(wire)
        self._names.add(wire.name)
        return wire

    def wire(self, name: str, width: int = 1, kind: str = "wire") -> str:
        """Declare a wire and return its name (builder convenience)."""
        self.add_wire(WireDecl(name, width, kind))
        return name

    def assign(self, lhs: str, rhs: str) -> None:
        self.assigns.append(Assign(lhs, rhs))

    def instantiate(
        self,
        module: str,
        name: str,
        connections: Dict[str, str],
        parameters: Optional[Dict[str, object]] = None,
    ) -> Instance:
        inst = Instance(module, name, dict(connections), dict(parameters or {}))
        self.instances.append(inst)
        return inst

    def add_raw(self, text: str) -> None:
        self.raw_blocks.append(text)

    def port_names(self) -> List[str]:
        return [p.name for p in self.ports]


class Netlist:
    """A set of modules with instance-boundary validation."""

    def __init__(self) -> None:
        self.modules: Dict[str, Module] = {}

    def add(self, module: Module) -> Module:
        if module.name in self.modules:
            raise ValueError("duplicate module %s" % module.name)
        self.modules[module.name] = module
        return module

    def get(self, name: str) -> Module:
        return self.modules[name]

    def validate(self) -> None:
        """Check every instance connects to real ports of real modules."""
        for module in self.modules.values():
            seen_instances = set()
            for inst in module.instances:
                if inst.name in seen_instances:
                    raise ValueError(
                        "duplicate instance %s in %s" % (inst.name, module.name)
                    )
                seen_instances.add(inst.name)
                target = self.modules.get(inst.module)
                if target is None:
                    raise ValueError(
                        "module %s instantiates unknown module %s"
                        % (module.name, inst.module)
                    )
                target_ports = set(target.port_names())
                for port in inst.connections:
                    if port not in target_ports:
                        raise ValueError(
                            "instance %s.%s connects missing port %s of %s"
                            % (module.name, inst.name, port, inst.module)
                        )
                target_params = {p.name for p in target.parameters}
                for param in inst.parameters:
                    if param not in target_params:
                        raise ValueError(
                            "instance %s.%s sets missing parameter %s of %s"
                            % (module.name, inst.name, param, inst.module)
                        )

    def top_candidates(self) -> List[str]:
        """Modules never instantiated by others."""
        instantiated = {
            inst.module
            for module in self.modules.values()
            for inst in module.instances
        }
        return sorted(set(self.modules) - instantiated)
