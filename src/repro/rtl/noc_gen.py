"""Tile SMART routers into the full NoC RTL (§V).

"Next, we tile the routers and connect them as a mesh."  The generated top
module broadcasts the memory-mapped config bus to every router (each
config register address-matches its own double word) and exposes each
tile's core-side (NIC) interface.
"""

from __future__ import annotations

from typing import Dict

from repro.config import NocConfig
from repro.core.credit_network import credit_crossbar_width_bits
from repro.core.reconfiguration import DEFAULT_BASE_ADDR, REGISTER_STRIDE_BYTES
from repro.rtl.netlist import Module, Netlist, ParamDecl, PortDecl
from repro.rtl.router_gen import build_router_library
from repro.sim.topology import Mesh, Port

_DIR_NAME = {
    Port.EAST: "east",
    Port.SOUTH: "south",
    Port.WEST: "west",
    Port.NORTH: "north",
    Port.CORE: "core",
}


def build_noc_top(cfg: NocConfig, base_addr: int = DEFAULT_BASE_ADDR) -> Module:
    """The smart_noc top module: W x H routers wired as a mesh."""
    mesh = Mesh(cfg.width, cfg.height)
    width = cfg.flit_bits
    credit_bits = credit_crossbar_width_bits(cfg.vcs_per_port)
    top = Module(
        "smart_noc",
        ports=[
            PortDecl("clk", "input"),
            PortDecl("rst", "input"),
            PortDecl("cfg_we", "input"),
            PortDecl("cfg_addr", "input", 32),
            PortDecl("cfg_wdata", "input", 64),
        ],
        parameters=[ParamDecl("WIDTH", cfg.width), ParamDecl("HEIGHT", cfg.height)],
        comment="Generated %dx%d SMART NoC (Table II configuration). The "
        "config bus reaches all %d routers; one store each reconfigures "
        "the network." % (cfg.width, cfg.height, mesh.num_nodes),
    )
    for node in mesh.nodes():
        top.add_port(PortDecl("nic%d_in_data" % node, "input", width))
        top.add_port(PortDecl("nic%d_in_valid" % node, "input"))
        top.add_port(PortDecl("nic%d_out_data" % node, "output", width))
        top.add_port(PortDecl("nic%d_out_valid" % node, "output"))
        top.add_port(PortDecl("nic%d_credit_in" % node, "input", credit_bits))
        top.add_port(PortDecl("nic%d_credit_out" % node, "output", credit_bits))

    # One wire bundle per directed router-to-router link.
    def link_wires(u: int, v: int) -> Dict[str, str]:
        base = "l_%d_to_%d" % (u, v)
        return {
            "data": top.wire(base + "_data", width),
            "valid": top.wire(base + "_valid"),
            "credit": top.wire(base + "_credit", credit_bits),
        }

    links: Dict[tuple, Dict[str, str]] = {}
    for u, v in mesh.links():
        links[(u, v)] = link_wires(u, v)

    zero_data = "{%d{1'b0}}" % width
    zero_credit = "{%d{1'b0}}" % credit_bits

    for node in mesh.nodes():
        connections = {
            "clk": "clk",
            "rst": "rst",
            "cfg_we": "cfg_we",
            "cfg_addr": "cfg_addr",
            "cfg_wdata": "cfg_wdata",
            "core_in_data": "nic%d_in_data" % node,
            "core_in_valid": "nic%d_in_valid" % node,
            "core_out_data": "nic%d_out_data" % node,
            "core_out_valid": "nic%d_out_valid" % node,
            "core_credit_in": "nic%d_credit_in" % node,
            "core_credit_out": "nic%d_credit_out" % node,
        }
        for direction in (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH):
            name = _DIR_NAME[direction]
            neighbor = mesh.neighbor(node, direction)
            if neighbor is None:
                # Mesh edge: tie inputs off, leave outputs dangling.
                edge = "edge_%d_%s" % (node, name)
                connections["%s_in_data" % name] = zero_data
                connections["%s_in_valid" % name] = "1'b0"
                connections["%s_credit_in" % name] = zero_credit
                connections["%s_out_data" % name] = top.wire(edge + "_data", width)
                connections["%s_out_valid" % name] = top.wire(edge + "_valid")
                connections["%s_credit_out" % name] = top.wire(
                    edge + "_credit", credit_bits
                )
                continue
            outgoing = links[(node, neighbor)]
            incoming = links[(neighbor, node)]
            connections["%s_out_data" % name] = outgoing["data"]
            connections["%s_out_valid" % name] = outgoing["valid"]
            connections["%s_in_data" % name] = incoming["data"]
            connections["%s_in_valid" % name] = incoming["valid"]
            # Credits flow opposite to data on each port pair.
            connections["%s_credit_out" % name] = incoming["credit"]
            connections["%s_credit_in" % name] = outgoing["credit"]
        top.instantiate(
            "smart_router",
            "u_router_%d" % node,
            connections,
            {"NODE_ID": base_addr + node * REGISTER_STRIDE_BYTES},
        )
    return top


def build_noc_netlist(cfg: NocConfig, base_addr: int = DEFAULT_BASE_ADDR) -> Netlist:
    """Router library plus the tiled NoC top; validated."""
    netlist = build_router_library(cfg)
    netlist.add(build_noc_top(cfg, base_addr=base_addr))
    netlist.validate()
    return netlist
