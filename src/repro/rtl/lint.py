"""A pragmatic structural lint for the generated Verilog.

Not a full parser — enough to catch real generator bugs: unbalanced
block keywords, duplicate or missing module definitions, references to
undeclared identifiers, and malformed instance connections.  Used by the
test suite to validate every emitted RTL file.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Set

_KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "parameter", "localparam", "assign", "always", "posedge", "negedge",
    "begin", "end", "if", "else", "case", "endcase", "default", "for",
    "integer", "genvar", "generate", "endgenerate", "or", "and", "not",
    "function", "endfunction", "initial", "defparam", "signed",
}

_IDENT = re.compile(r"\b[A-Za-z_][A-Za-z0-9_$]*\b")
_DECL = re.compile(
    r"\b(?:input|output|inout|wire|reg|integer|genvar|parameter|localparam)\b"
    r"[^;=]*?([A-Za-z_][A-Za-z0-9_$]*)\s*(?:[;,=\[]|$)"
)
_LABEL = re.compile(r"\bbegin\s*:\s*([A-Za-z_][A-Za-z0-9_$]*)")
_MODULE = re.compile(r"\bmodule\s+([A-Za-z_][A-Za-z0-9_$]*)")
_INSTANCE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_$]*)\s*(?:#\s*\(.*?\)\s*)?"
    r"([A-Za-z_][A-Za-z0-9_$]*)\s*\($",
    re.DOTALL,
)


@dataclasses.dataclass
class LintReport:
    errors: List[str]
    modules: List[str]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise AssertionError(
                "Verilog lint failed:\n" + "\n".join(self.errors)
            )


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _strip_literals(text: str) -> str:
    """Remove sized/based literals (64'd0, 2'b10) and strings."""
    text = re.sub(r"\d*\s*'\s*[bdohBDOH]\s*[0-9a-fA-FxzXZ_?]+", " 0 ", text)
    text = re.sub(r'"[^"]*"', " ", text)
    return text


def _check_balance(text: str, errors: List[str]) -> None:
    pairs = [
        ("module", "endmodule"),
        ("case", "endcase"),
        ("function", "endfunction"),
        ("generate", "endgenerate"),
    ]
    for opener, closer in pairs:
        opens = len(re.findall(r"\b%s\b" % opener, text))
        closes = len(re.findall(r"\b%s\b" % closer, text))
        if opens != closes:
            errors.append(
                "unbalanced %s/%s: %d vs %d" % (opener, closer, opens, closes)
            )
    begins = len(re.findall(r"\bbegin\b", text))
    ends = len(re.findall(r"\bend\b", text))
    if begins != ends:
        errors.append("unbalanced begin/end: %d vs %d" % (begins, ends))


def _split_modules(text: str) -> Dict[str, str]:
    modules: Dict[str, str] = {}
    for match in re.finditer(
        r"\bmodule\b(.*?)\bendmodule\b", text, flags=re.DOTALL
    ):
        body = match.group(1)
        name_match = _MODULE.match("module" + body)
        name = name_match.group(1) if name_match else "?"
        modules[name] = body
    return modules


def _declared_names(body: str) -> Set[str]:
    names: Set[str] = set()
    # Per-name declarations, including ANSI header ports ("input [31:0] x"
    # terminated by ',' or ')'), "output reg [63:0] v", wires, regs,
    # parameters, genvars.
    for match in re.finditer(
        r"\b(?:input|output|inout|wire|reg|integer|genvar|parameter|"
        r"localparam)\b(?:\s+(?:reg|wire|signed))*\s*(?:\[[^\]]*\]\s*)?"
        r"([A-Za-z_][A-Za-z0-9_$]*)",
        body,
    ):
        names.add(match.group(1))
    # Multi-name declarations: "wire a, b, c;"
    for decl in re.finditer(
        r"\b(?:input|output|inout|wire|reg|integer|genvar)\b([^;)]*)[;)]", body
    ):
        chunk = re.sub(r"\[[^\]]*\]", " ", decl.group(1))
        for token in chunk.split(","):
            token = token.split("=")[0].strip()
            if token and _IDENT.fullmatch(token):
                names.add(token)
    for match in _LABEL.finditer(body):
        names.add(match.group(1))
    return names


def lint_verilog(text: str) -> LintReport:
    """Lint one Verilog source file."""
    errors: List[str] = []
    clean = _strip_literals(strip_comments(text))
    _check_balance(clean, errors)
    modules = _split_modules(clean)
    if not modules:
        errors.append("no modules found")

    defined = set(modules)
    for name, body in modules.items():
        declared = _declared_names(body) | {name}
        # Instance module + instance names are identifiers too.
        instantiated: Set[str] = set()
        for line_match in re.finditer(
            r"([A-Za-z_][A-Za-z0-9_$]*)\s+(?:#\s*\([^;]*?\)\s*)?"
            r"([A-Za-z_][A-Za-z0-9_$]*)\s*\(\s*\.",
            body,
            flags=re.DOTALL,
        ):
            target, inst_name = line_match.group(1), line_match.group(2)
            if target in _KEYWORDS or inst_name in _KEYWORDS:
                continue
            instantiated.add(target)
            declared.add(inst_name)
            if target not in defined:
                errors.append(
                    "module %s instantiates undefined module %s" % (name, target)
                )
        # Port-connection names (.port(...)) belong to the target module.
        port_refs = set(re.findall(r"\.\s*([A-Za-z_][A-Za-z0-9_$]*)\s*\(", body))
        known = declared | instantiated | port_refs | _KEYWORDS
        for ident in set(_IDENT.findall(body)):
            if ident in known:
                continue
            if re.fullmatch(r"\d+", ident):
                continue
            errors.append("module %s references undeclared %r" % (name, ident))
    return LintReport(errors=sorted(set(errors)), modules=sorted(modules))
