"""File-defined workloads: YAML/TSV spec files into the registry.

The paper's evaluation flow starts from an application's communication
demands; until now the only way to add one was to write Python.  This
module loads workload definitions from plain files and registers them
through :func:`repro.workloads.register_workload`, so a spec file rides
the identical pipeline — placement/demand generation, conflict-minimising
turn-model route selection, SMART preset computation — as the built-in
apps and patterns.

Three definition kinds are supported (``kind:`` in the file):

* ``demands`` — explicit placed ``(src, dst, bandwidth)`` triples on
  concrete mesh nodes.  ``load`` scales the bandwidths (the apps' axis).
* ``task_graph`` — named tasks and ``(src, dst, MB/s)`` edges, placed by
  the same modified NMAP the paper's eight apps use.
* ``sdf`` — a synchronous dataflow graph (actors, token production /
  consumption rates per firing, token size): the repetition vector is
  solved from the balance equations and each channel becomes a task-graph
  edge with bandwidth ``produce x repetitions x token_bytes x
  throughput`` bytes/s — the SDF image-pipeline app family (Li et al.,
  arXiv:1310.3356) expressed as SMART demands.

Bandwidths follow the repo convention: ``mbps`` quotes MB/s and ``gbps``
GB/s (the paper's task-graph units); ``bandwidth_bps`` is bytes/s.

File formats
------------

YAML (a small built-in subset parser — block mappings, block lists and
plain scalars; PyYAML is **not** required)::

    workloads:
      - name: cam_pipeline
        kind: task_graph
        edges:
          - src: cam
            dst: denoise
            mbps: 128
          - src: denoise
            dst: encode
            mbps: 64

TSV (one ``demands`` workload per file; ``#`` lines are comments and
``# name: X`` names the workload)::

    # name: dma_streams
    # src	dst	mbps
    0	5	120
    3	12	64

The reserved ``specfile`` param of a
:class:`~repro.workloads.WorkloadSpec` makes file workloads self-loading
across process boundaries: :func:`ensure_file_workloads` is idempotent
per (process, path), so sweep pool workers and farm workers re-register
the file's workloads on first use.
"""

from __future__ import annotations

import math
import os
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import NocConfig
from repro.mapping.nmap import place_application, placed_from_mapping
from repro.mapping.route_select import PlacedFlow
from repro.mapping.task_graph import TaskEdge, TaskGraph
from repro.mapping.turn_model import TurnModel
from repro.sim.topology import Mesh
from repro.workloads import (
    BuiltWorkload,
    Workload,
    register_workload,
    route_demands,
)

#: Definition kinds a spec file may declare.
FILE_KINDS = ("demands", "task_graph", "sdf")

#: Default whole-graph iteration rate for SDF workloads (iterations/s —
#: frames/s for the image pipelines this family models).
DEFAULT_SDF_THROUGHPUT_HZ = 30.0


# ----------------------------------------------------------------------
# Minimal YAML-subset parser (PyYAML is not a repo dependency)
# ----------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (quote-free lines only, which is
    all the documented schema produces)."""
    if "#" not in line:
        return line
    if '"' in line or "'" in line:
        return line
    return line.split("#", 1)[0]


def _scalar(text: str) -> Any:
    """Parse one plain YAML scalar (int, float, bool, null, string)."""
    raw = text.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "\"'":
        return raw[1:-1]
    lowered = raw.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~", ""):
        return None
    try:
        return int(raw, 0)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """(indent, content) pairs for every non-blank, non-comment line."""
    out: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ValueError("tabs are not allowed in YAML indentation")
        line = _strip_comment(raw).rstrip()
        stripped = line.lstrip(" ")
        if not stripped:
            continue
        out.append((len(line) - len(stripped), stripped))
    return out


def _parse_block(
    lines: List[Tuple[int, str]], index: int, indent: int
) -> Tuple[Any, int]:
    """Parse one block (mapping or list) at ``indent``; returns
    (value, next line index)."""
    if lines[index][1].startswith("- "):
        return _parse_list(lines, index, indent)
    return _parse_mapping(lines, index, indent)


def _parse_list(
    lines: List[Tuple[int, str]], index: int, indent: int
) -> Tuple[List[Any], int]:
    items: List[Any] = []
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent or not content.startswith("- "):
            break
        if line_indent != indent:
            raise ValueError("inconsistent list indentation: %r" % content)
        body = content[2:].strip()
        item_indent = indent + 2
        if not body:
            # "-" alone: the item is the nested block on the next lines.
            value, index = _parse_block(lines, index + 1, lines[index + 1][0])
            items.append(value)
            continue
        if ":" in body and not body.split(":", 1)[1].strip().startswith(
            ("#",)
        ) and _looks_like_mapping(body):
            # "- key: value": a mapping item whose first entry shares
            # the dash line; the rest continues two spaces deeper.
            entry_lines = [(item_indent, body)]
            index += 1
            while index < len(lines) and lines[index][0] >= item_indent and not (
                lines[index][0] == indent and lines[index][1].startswith("- ")
            ):
                entry_lines.append(lines[index])
                index += 1
            value, _ = _parse_mapping(entry_lines, 0, item_indent)
            items.append(value)
            continue
        items.append(_scalar(body))
        index += 1
    return items, index


def _looks_like_mapping(body: str) -> bool:
    """Whether a list-item body is a ``key: value`` mapping entry."""
    key, _sep, _rest = body.partition(":")
    key = key.strip()
    return bool(key) and " " not in key and not key.startswith(("[", "{"))


def _parse_mapping(
    lines: List[Tuple[int, str]], index: int, indent: int
) -> Tuple[Dict[str, Any], int]:
    mapping: Dict[str, Any] = {}
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent or content.startswith("- "):
            break
        if line_indent != indent:
            raise ValueError("inconsistent mapping indentation: %r" % content)
        key, sep, rest = content.partition(":")
        if not sep:
            raise ValueError("expected 'key: value', got %r" % content)
        key = key.strip()
        if key in mapping:
            raise ValueError("duplicate key %r" % key)
        rest = rest.strip()
        index += 1
        if rest:
            mapping[key] = _scalar(rest)
        elif index < len(lines) and lines[index][0] > indent:
            mapping[key], index = _parse_block(lines, index, lines[index][0])
        elif index < len(lines) and lines[index][0] == indent and lines[
            index
        ][1].startswith("- "):
            mapping[key], index = _parse_list(lines, index, indent)
        else:
            mapping[key] = None
    return mapping, index


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset the workload-file schema uses.

    Supports block mappings, block lists (including ``- key: value``
    mapping items), plain/quoted scalars and ``#`` comments — no
    anchors, flow collections or multi-document streams.  This keeps
    spec files dependency-free; files written for this parser are valid
    YAML and load identically under PyYAML.
    """
    lines = _logical_lines(text)
    if not lines:
        return {}
    value, index = _parse_block(lines, 0, lines[0][0])
    if index != len(lines):
        raise ValueError(
            "trailing content at %r (outdented past the document root?)"
            % lines[index][1]
        )
    return value


# ----------------------------------------------------------------------
# Bandwidth helpers
# ----------------------------------------------------------------------

def _bandwidth_bps(entry: Dict[str, Any], where: str) -> float:
    """One edge/demand bandwidth from its spec entry.

    Follows the repo convention (``PlacedFlow.bandwidth_bps``,
    ``TaskEdge.bandwidth_bps``): the value is **bytes/s**; the ``mbps``
    and ``gbps`` keys quote MB/s and GB/s — the units the paper's task
    graphs use.
    """
    if "bandwidth_bps" in entry:
        value = float(entry["bandwidth_bps"])
    elif "mbps" in entry:
        value = float(entry["mbps"]) * 1e6
    elif "gbps" in entry:
        value = float(entry["gbps"]) * 1e9
    else:
        raise ValueError(
            "%s needs a bandwidth (one of bandwidth_bps, mbps, gbps)" % where
        )
    if not math.isfinite(value) or value <= 0:
        raise ValueError("%s bandwidth must be positive, got %r" % (where, value))
    return value


# ----------------------------------------------------------------------
# Workload classes backing file definitions
# ----------------------------------------------------------------------

class FileDemandWorkload(Workload):
    """Explicit placed demands from a spec file.

    Demands name concrete mesh nodes, so the workload requires a mesh
    large enough to hold every named node; ``load`` scales the recorded
    bandwidths (the same axis as the mapped apps).
    """

    kind = "file"
    load_axis = "bandwidth_scale"
    default_loads = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    default_load = 1.0

    def __init__(
        self,
        name: str,
        demands: Sequence[Tuple[int, int, float, Optional[str]]],
        source: str = "",
    ):
        super().__init__(name)
        if not demands:
            raise ValueError("workload %r defines no demands" % name)
        seen: Dict[Tuple[int, int], bool] = {}
        for src, dst, _bw, _tenant in demands:
            if src == dst:
                raise ValueError(
                    "workload %r: demand %d->%d is a self-loop" % (name, src, dst)
                )
            if (src, dst) in seen:
                raise ValueError(
                    "workload %r: duplicate demand %d->%d" % (name, src, dst)
                )
            seen[(src, dst)] = True
        self.demands = tuple(demands)
        self.source = source
        self.description = "file-defined demands (%d flows%s)" % (
            len(self.demands),
            "; %s" % source if source else "",
        )

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        nodes = cfg.width * cfg.height
        for src, dst, _bw, _tenant in self.demands:
            if not (0 <= src < nodes and 0 <= dst < nodes):
                raise ValueError(
                    "workload %r: demand %d->%d is outside the %dx%d mesh"
                    % (self.name, src, dst, cfg.width, cfg.height)
                )
        return [
            PlacedFlow(
                flow_id=i,
                src=src,
                dst=dst,
                bandwidth_bps=bw,
                name="%s:%d->%d" % (self.name, src, dst),
                tenant=tenant or "",
            )
            for i, (src, dst, bw, tenant) in enumerate(self.demands)
        ]


class FileTaskGraphWorkload(Workload):
    """A task graph from a spec file, placed like the paper's apps."""

    kind = "file"
    load_axis = "bandwidth_scale"
    default_loads = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    default_load = 1.0

    def __init__(self, name: str, graph: TaskGraph, source: str = ""):
        super().__init__(name)
        self.graph = graph
        self.source = source
        self.description = (
            "file-defined task graph (%d tasks, %d flows%s)"
            % (graph.num_tasks, graph.num_edges,
               "; %s" % source if source else "")
        )

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        mesh = Mesh(cfg.width, cfg.height)
        mapping = place_application(self.graph, mesh, seed=seed)
        return placed_from_mapping(self.graph, mapping)

    def build(
        self,
        cfg: NocConfig,
        seed: int = 0,
        turn_model: TurnModel = TurnModel.WEST_FIRST,
        algorithm: str = "nmap_modified",
        routing: str = "minimal",
        **params: Any,
    ) -> BuiltWorkload:
        """Place with ``algorithm``, then route via the shared pipeline
        (mirrors :class:`repro.workloads.AppWorkload`)."""
        mesh = Mesh(cfg.width, cfg.height)
        mapping = place_application(
            self.graph, mesh, algorithm=algorithm, seed=seed
        )
        flows = route_demands(
            mesh, placed_from_mapping(self.graph, mapping),
            model=turn_model, routing=routing, hpc_max=cfg.hpc_max,
        )
        return BuiltWorkload(
            self.name, self.load_axis, tuple(flows), mapping=mapping
        )


# ----------------------------------------------------------------------
# SDF: balance equations -> repetition vector -> task-graph bandwidths
# ----------------------------------------------------------------------

def solve_repetition_vector(
    edges: Sequence[Tuple[str, str, int, int]]
) -> Dict[str, int]:
    """The minimal integer repetition vector of a connected SDF graph.

    ``edges`` are ``(src, dst, produce, consume)`` channels; the balance
    equation ``r[src] * produce == r[dst] * consume`` must hold on every
    channel for a periodic schedule to exist.  Raises ``ValueError`` on
    inconsistent rates (no repetition vector) or a disconnected actor
    set (ambiguous relative rates).
    """
    if not edges:
        raise ValueError("SDF graph has no channels")
    rates: Dict[str, Fraction] = {}
    adjacency: Dict[str, List[Tuple[str, Fraction]]] = {}
    for src, dst, produce, consume in edges:
        if produce <= 0 or consume <= 0:
            raise ValueError(
                "channel %s->%s: produce/consume rates must be positive"
                % (src, dst)
            )
        ratio = Fraction(produce, consume)  # r[dst] = r[src] * ratio
        adjacency.setdefault(src, []).append((dst, ratio))
        adjacency.setdefault(dst, []).append((src, 1 / ratio))
    start = sorted(adjacency)[0]
    rates[start] = Fraction(1)
    frontier = [start]
    while frontier:
        actor = frontier.pop()
        for neighbor, ratio in adjacency[actor]:
            implied = rates[actor] * ratio
            if neighbor not in rates:
                rates[neighbor] = implied
                frontier.append(neighbor)
            elif rates[neighbor] != implied:
                raise ValueError(
                    "inconsistent SDF rates at %r: %s vs %s (no repetition "
                    "vector exists)" % (neighbor, rates[neighbor], implied)
                )
    missing = sorted(set(adjacency) - set(rates))
    if missing:
        raise ValueError(
            "SDF graph is disconnected; actors %s have no rate relative "
            "to %r" % (", ".join(missing), start)
        )
    scale = 1
    for value in rates.values():
        scale = scale * value.denominator // math.gcd(scale, value.denominator)
    integers = {actor: int(value * scale) for actor, value in rates.items()}
    divisor = 0
    for value in integers.values():
        divisor = math.gcd(divisor, value)
    return {actor: value // divisor for actor, value in sorted(integers.items())}


def sdf_task_graph(
    name: str,
    edges: Sequence[Tuple[str, str, int, int]],
    token_bytes: float = 512.0,
    throughput_hz: float = DEFAULT_SDF_THROUGHPUT_HZ,
) -> TaskGraph:
    """An SDF graph as a bandwidth-annotated task graph.

    Each channel moves ``produce x r[src]`` tokens per graph iteration
    (equal to ``consume x r[dst]`` by the balance equations), so its
    bandwidth demand at ``throughput_hz`` iterations per second is::

        produce * r[src] * token_bytes * throughput_hz   [bytes/s]

    Per-channel ``token_bytes`` overrides come from the caller expanding
    them into separate edges before this call.
    """
    if token_bytes <= 0 or throughput_hz <= 0:
        raise ValueError("token_bytes and throughput_hz must be positive")
    repetitions = solve_repetition_vector(edges)
    tasks = sorted(repetitions)
    out_edges = []
    for src, dst, produce, consume in edges:
        tokens_per_iteration = produce * repetitions[src]
        out_edges.append(
            TaskEdge(
                src, dst, tokens_per_iteration * token_bytes * throughput_hz
            )
        )
    return TaskGraph(name, tasks, out_edges)


# ----------------------------------------------------------------------
# Definition -> Workload
# ----------------------------------------------------------------------

def _demand_tuples(
    entries: Sequence[Any], name: str
) -> List[Tuple[int, int, float, Optional[str]]]:
    demands: List[Tuple[int, int, float, Optional[str]]] = []
    for i, entry in enumerate(entries):
        where = "workload %r demand #%d" % (name, i)
        if not isinstance(entry, dict):
            raise ValueError("%s must be a mapping, got %r" % (where, entry))
        if "src" not in entry or "dst" not in entry:
            raise ValueError("%s needs src and dst node ids" % where)
        tenant = entry.get("tenant")
        demands.append(
            (
                int(entry["src"]),
                int(entry["dst"]),
                _bandwidth_bps(entry, where),
                str(tenant) if tenant is not None else None,
            )
        )
    return demands


def _task_edges(entries: Sequence[Any], name: str) -> List[TaskEdge]:
    edges: List[TaskEdge] = []
    for i, entry in enumerate(entries):
        where = "workload %r edge #%d" % (name, i)
        if not isinstance(entry, dict):
            raise ValueError("%s must be a mapping, got %r" % (where, entry))
        if "src" not in entry or "dst" not in entry:
            raise ValueError("%s needs src and dst task names" % where)
        edges.append(
            TaskEdge(str(entry["src"]), str(entry["dst"]),
                     _bandwidth_bps(entry, where))
        )
    return edges


def _sdf_channels(
    entries: Sequence[Any], name: str
) -> List[Tuple[str, str, int, int]]:
    channels: List[Tuple[str, str, int, int]] = []
    for i, entry in enumerate(entries):
        where = "workload %r channel #%d" % (name, i)
        if not isinstance(entry, dict):
            raise ValueError("%s must be a mapping, got %r" % (where, entry))
        if "src" not in entry or "dst" not in entry:
            raise ValueError("%s needs src and dst actor names" % where)
        channels.append(
            (
                str(entry["src"]),
                str(entry["dst"]),
                int(entry.get("produce", 1)),
                int(entry.get("consume", 1)),
            )
        )
    return channels


def workload_from_definition(
    definition: Dict[str, Any], source: str = ""
) -> Workload:
    """One parsed spec-file definition as a registrable workload."""
    if not isinstance(definition, dict):
        raise ValueError("workload definition must be a mapping, got %r"
                         % (definition,))
    name = definition.get("name")
    if not name or not isinstance(name, str):
        raise ValueError("workload definition needs a 'name' string")
    kind = definition.get("kind", "demands")
    if kind == "demands":
        entries = definition.get("demands")
        if not entries:
            raise ValueError("workload %r (kind=demands) needs 'demands'" % name)
        return FileDemandWorkload(
            name, _demand_tuples(entries, name), source=source
        )
    if kind == "task_graph":
        entries = definition.get("edges")
        if not entries:
            raise ValueError("workload %r (kind=task_graph) needs 'edges'" % name)
        edges = _task_edges(entries, name)
        graph = TaskGraph(name, _graph_tasks(definition, edges), edges)
        return FileTaskGraphWorkload(name, graph, source=source)
    if kind == "sdf":
        entries = definition.get("edges") or definition.get("channels")
        if not entries:
            raise ValueError(
                "workload %r (kind=sdf) needs 'edges' (alias: 'channels')"
                % name
            )
        graph = sdf_task_graph(
            name,
            _sdf_channels(entries, name),
            token_bytes=float(definition.get("token_bytes", 512)),
            throughput_hz=float(
                definition.get("throughput_hz", DEFAULT_SDF_THROUGHPUT_HZ)
            ),
        )
        workload = FileTaskGraphWorkload(name, graph, source=source)
        workload.description = (
            "file-defined SDF graph (%d actors, %d channels%s)"
            % (graph.num_tasks, graph.num_edges,
               "; %s" % source if source else "")
        )
        return workload
    raise ValueError(
        "workload %r: unknown kind %r (have %s)"
        % (name, kind, ", ".join(FILE_KINDS))
    )


def _graph_tasks(
    definition: Dict[str, Any], edges: Sequence[TaskEdge]
) -> List[str]:
    """The task set: explicit ``tasks:`` if given, else inferred."""
    explicit = definition.get("tasks")
    if explicit:
        return [str(task) for task in explicit]
    tasks: List[str] = []
    for edge in edges:
        if edge.src not in tasks:
            tasks.append(edge.src)
        if edge.dst not in tasks:
            tasks.append(edge.dst)
    return tasks


# ----------------------------------------------------------------------
# File parsing + registration
# ----------------------------------------------------------------------

def _parse_tsv(text: str, default_name: str) -> List[Dict[str, Any]]:
    """One ``demands`` definition from a TSV/whitespace table."""
    name = default_name
    demands: List[Dict[str, Any]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            directive = line.lstrip("#").strip()
            if directive.lower().startswith("name:"):
                name = directive.split(":", 1)[1].strip()
            continue
        fields = line.split("\t") if "\t" in line else line.split()
        if len(fields) < 3:
            raise ValueError(
                "line %d: expected 'src dst mbps', got %r" % (lineno, raw)
            )
        demands.append(
            {
                "src": int(fields[0]),
                "dst": int(fields[1]),
                "mbps": float(fields[2]),
            }
        )
    return [{"name": name, "kind": "demands", "demands": demands}]


def parse_workload_text(
    text: str, default_name: str, fmt: str = "yaml"
) -> List[Dict[str, Any]]:
    """Raw workload definitions from spec-file text.

    ``fmt="yaml"`` accepts either a top-level ``workloads:`` list or a
    single definition mapping; ``fmt="tsv"`` yields one ``demands``
    definition (see the module docstring for both schemas).
    """
    if fmt == "tsv":
        return _parse_tsv(text, default_name)
    data = parse_simple_yaml(text)
    if isinstance(data, dict) and "workloads" in data:
        definitions = data["workloads"]
        if not isinstance(definitions, list):
            raise ValueError("'workloads' must be a list of definitions")
    elif isinstance(data, dict):
        definitions = [data]
    elif isinstance(data, list):
        definitions = data
    else:
        raise ValueError("spec file must define a workload mapping or list")
    out: List[Dict[str, Any]] = []
    for definition in definitions:
        if isinstance(definition, dict) and "name" not in definition:
            definition = dict(definition, name=default_name)
        out.append(definition)
    return out


def _file_format(path: str) -> str:
    return "tsv" if path.lower().endswith((".tsv", ".txt")) else "yaml"


def load_workload_file(
    path: str, register: bool = True, replace: bool = False
) -> List[Workload]:
    """Load every workload defined in ``path``; optionally register them.

    Registration collisions with already-registered names raise (the
    same contract as :func:`repro.workloads.register_workload`) unless
    ``replace=True`` — a spec file cannot silently shadow a built-in app
    or pattern.
    """
    with open(path) as fh:
        text = fh.read()
    default_name = os.path.splitext(os.path.basename(path))[0]
    definitions = parse_workload_text(text, default_name, _file_format(path))
    if not definitions:
        raise ValueError("%s defines no workloads" % path)
    loaded = [
        workload_from_definition(definition, source=path)
        for definition in definitions
    ]
    names = [workload.name for workload in loaded]
    if len(set(names)) != len(names):
        raise ValueError("%s defines duplicate workload names" % path)
    if register:
        for workload in loaded:
            register_workload(workload, replace=replace)
    return loaded


#: path -> names registered from it, for idempotent per-process loads.
_LOADED: Dict[str, Tuple[str, ...]] = {}


def ensure_file_workloads(path: str) -> Tuple[str, ...]:
    """Idempotently load + register ``path``; returns its workload names.

    The first call in a process registers the file's workloads (raising
    on collisions, like :func:`load_workload_file`); later calls — and
    calls in forked pool workers that inherited the registry — return
    the recorded names without touching the registry.  This is the hook
    behind the reserved ``specfile`` spec param: sweep and farm workers
    self-load the file before resolving the workload name.
    """
    key = os.path.normpath(path)
    if key in _LOADED:
        return _LOADED[key]
    loaded = load_workload_file(path, register=True)
    _LOADED[key] = tuple(workload.name for workload in loaded)
    return _LOADED[key]
