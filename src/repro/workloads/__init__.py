"""Unified workload layer: SoC apps and synthetic patterns, one pipeline.

The paper's SMART presets exist to turn *known* traffic into bypass
chains, and its evaluation flow for the SoC applications is

    task graph -> NMAP placement -> turn-model route selection
               -> SMART preset computation -> cycle-accurate simulation.

This module makes that flow available to *every* traffic source.  A
:class:`Workload` yields placed ``(src, dst, bandwidth)`` demands
(:class:`~repro.mapping.route_select.PlacedFlow`); the shared pipeline
then routes them with the same conflict-minimising turn-model route
selection (:func:`repro.mapping.route_select.select_routes`) the apps
use, so synthetic patterns acquire real bypass chains instead of being
hard-wired to XY — the prerequisite for the ArSMART/SDM-style
pattern-to-saturation comparisons.

Three workload kinds live in one registry (:data:`WORKLOADS`):

* :class:`AppWorkload` — the eight §VI task graphs.  ``load`` is a
  bandwidth scale factor on the mapped flows (the paper's saturation
  axis).
* :class:`PatternWorkload` — synthetic patterns from
  :mod:`repro.sim.patterns` on any mesh size.  Demands carry the
  bandwidth of **1 packet/cycle/node**, so ``load`` *is* the per-node
  injection rate in packets/cycle.
* :class:`CompositeWorkload` — sums the demand sets of sub-workloads,
  each scaled by a fraction of the per-node rate (the registered
  ``background_hotspot`` mix is uniform background + hotspot overlay).

:class:`WorkloadSpec` is the small picklable handle sweep jobs carry
across process boundaries; workers rebuild (and memoise) the routed flow
set locally via :func:`build_workload`.

File-defined workloads (:mod:`repro.workloads.specfile`) join the same
registry: a YAML/TSV spec file of (src, dst, bandwidth) demands, a task
graph, or an SDF actor/rate graph registers through
:func:`register_workload` and flows through the identical pipeline.  A
:class:`WorkloadSpec` carrying the reserved ``specfile`` param is
self-loading — worker processes (re)load and register the file before
resolving the name, so file workloads survive process boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.registry import PAPER_APP_ORDER, evaluation_task_graph
from repro.config import NocConfig
from repro.mapping.nmap import (
    nmap_modified,
    place_application,
    placed_from_mapping,
)
from repro.mapping.nonminimal import select_routes_nonminimal
from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.turn_model import TurnModel
from repro.sim.flow import Flow
from repro.sim.patterns import (
    BACKGROUND_FRACTION,
    PATTERNS,
    bandwidth_for_injection_rate,
    pattern_pairs,
)
from repro.sim.topology import Mesh
from repro.sim.traffic import RateScaledTraffic

#: How a workload's ``load`` axis is interpreted.
LOAD_AXES = ("bandwidth_scale", "injection_rate")

#: Route-selection strategies a :class:`WorkloadSpec` may request.
#: ``"minimal"`` is the paper's conflict-minimising minimal-route
#: selection; ``"nonminimal"`` additionally considers bounded detours
#: (`repro.mapping.nonminimal`) — on a SMART bypass chain extra hops are
#: free, so a detour around a contended link trades zero latency for the
#: 3-cycle stop the contention would have cost (§VI future work).
ROUTINGS = ("minimal", "nonminimal")


def route_demands(
    mesh: Mesh,
    placed: Sequence[PlacedFlow],
    model: TurnModel = TurnModel.WEST_FIRST,
    routing: str = "minimal",
    hpc_max: int = 8,
) -> List[Flow]:
    """Run the shared route-selection stage for a demand set.

    Dispatches on ``routing`` (see :data:`ROUTINGS`); every workload
    build funnels through here, which is what lets sweeps request
    non-minimal route selection with ``WorkloadSpec`` params alone.
    """
    if routing == "minimal":
        return select_routes(mesh, placed, model=model)
    if routing == "nonminimal":
        return select_routes_nonminimal(
            mesh, placed, model=model, hpc_max=hpc_max
        )
    raise ValueError(
        "unknown routing %r (have %s)"
        % (routing, ", ".join(ROUTINGS))
    )


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Picklable, hashable handle for a registered workload.

    ``params`` is a sorted tuple of (name, value) pairs forwarded to the
    workload's demand generator (e.g. ``hotspot_node``, ``turn_model``);
    keeping it a tuple makes the spec usable as an ``lru_cache`` key and
    cheap to ship to pool workers.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(
        cls, workload: Union[str, "WorkloadSpec"], **params: Any
    ) -> "WorkloadSpec":
        """Coerce a name or spec (plus overrides) into a spec."""
        if isinstance(workload, WorkloadSpec):
            if not params:
                return workload
            merged = dict(workload.params)
            merged.update(params)
            return cls(workload.name, tuple(sorted(merged.items())))
        return cls(str(workload), tuple(sorted(params.items())))

    @property
    def options(self) -> Dict[str, object]:
        """The spec's parameter overrides as a plain dict."""
        return dict(self.params)

    def describe(self) -> str:
        """Human-readable ``name(param=value, ...)`` label."""
        if not self.params:
            return self.name
        return "%s(%s)" % (
            self.name,
            ", ".join("%s=%r" % item for item in self.params),
        )


@dataclasses.dataclass(frozen=True)
class BuiltWorkload:
    """A workload realised on a concrete mesh: routed flows + metadata.

    ``flows`` carry the workload's *base* bandwidths; the load axis is
    applied by the traffic model (:meth:`traffic`), never baked into the
    flow set — which is what lets one build serve a whole load sweep.
    """

    name: str
    load_axis: str
    flows: Tuple[Flow, ...]
    #: task -> node placement, for app workloads (None otherwise).
    mapping: Optional[Dict[str, int]] = None
    #: Flow ids whose bandwidth stays *fixed* while the load axis scales
    #: the rest (tenant mixes pin the foreground app at its mapped
    #: bandwidth; empty for ordinary workloads).
    fixed_flow_ids: Tuple[int, ...] = ()

    def chain_depths(self, cfg: NocConfig) -> Dict[int, int]:
        """Per-flow SMART segment-chain depth (1 = fully bypassed).

        Builds this workload's SMART presets on ``cfg`` and counts the
        maximal bypass segments each flow's packets traverse NIC-to-NIC:
        depth 1 is a single-cycle NIC-to-NIC traversal, depth >= 3 means
        at least one *intermediate* hand-off between two further
        segments — the cascade regime the event kernel's feeder-ordered
        settlement collapses into dependency-ordered replays.  Tests and
        benches use this to select cascade-heavy configurations (e.g. by
        shrinking ``cfg.hpc_max``).
        """
        # Imported here: repro.core builds on the sim layer and this
        # module is imported by eval code that predates the diagnostic.
        from repro.core.noc_builder import build_smart_noc
        from repro.sim.traffic import ScriptedTraffic

        noc = build_smart_noc(cfg, list(self.flows), traffic=ScriptedTraffic([]))
        network = noc.network
        return {
            flow.flow_id: len(network.flow_segments(flow))
            for flow in self.flows
        }

    def chain_depth(self, cfg: NocConfig) -> int:
        """Deepest segment chain any flow traverses (see
        :meth:`chain_depths`)."""
        return max(self.chain_depths(cfg).values(), default=0)

    def traffic(
        self,
        cfg: NocConfig,
        load: float = 1.0,
        seed: int = 1,
        mode: str = "predraw",
        arrival: str = "bernoulli",
        arrival_params: Optional[Dict[str, float]] = None,
    ) -> RateScaledTraffic:
        """Injection process driving this workload at ``load``.

        ``load`` multiplies the base bandwidths: a bandwidth scale factor
        for apps, the per-node packets/cycle rate for patterns (whose
        base flows carry exactly 1 packet/cycle/node).  Rates past one
        packet/cycle clamp at the injection port.  ``arrival`` selects
        the injection process (:data:`repro.sim.traffic.ARRIVALS` —
        Bernoulli, or the bursty ON-OFF/MMPP modulator with knobs in
        ``arrival_params``); flows in :attr:`fixed_flow_ids` keep their
        base bandwidth regardless of ``load``.
        """
        return RateScaledTraffic(
            cfg, self.flows, scale=load, seed=seed, mode=mode,
            arrival=arrival, arrival_params=arrival_params,
            fixed_flow_ids=self.fixed_flow_ids,
        )


class Workload:
    """Base class: placed demands plus the shared routing pipeline."""

    kind = "workload"
    load_axis = "injection_rate"
    default_loads: Tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2)
    #: Drive level for single-point runs (CLI `run`, ablations): a light
    #: rate well below saturation on the paper's meshes.
    default_load = 0.05
    #: Whether the demand set itself depends on the seed (e.g. the
    #: uniform pattern's destination draw).  Seed-insensitive workloads
    #: are built once per worker and shared across every sweep seed.
    seed_sensitive = False
    description = ""

    def __init__(self, name: str):
        self.name = name

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        """Placed (src, dst, bandwidth) demands on ``cfg``'s mesh."""
        raise NotImplementedError

    def build(
        self,
        cfg: NocConfig,
        seed: int = 0,
        turn_model: TurnModel = TurnModel.WEST_FIRST,
        routing: str = "minimal",
        **params: Any,
    ) -> BuiltWorkload:
        """Demands -> conflict-minimising turn-model routes.

        ``routing="nonminimal"`` selects among bounded-detour candidates
        too (:data:`ROUTINGS`), letting pattern sweeps exploit SMART's
        free detours.
        """
        mesh = Mesh(cfg.width, cfg.height)
        placed = self.placed(cfg, seed=seed, **params)
        flows = route_demands(
            mesh, placed, model=turn_model, routing=routing,
            hpc_max=cfg.hpc_max,
        )
        return BuiltWorkload(self.name, self.load_axis, tuple(flows))


class AppWorkload(Workload):
    """One of the paper's SoC task graphs, placed by (modified) NMAP."""

    kind = "app"
    load_axis = "bandwidth_scale"
    default_loads = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    default_load = 1.0  # the mapped bandwidths as specified
    description = "SoC task graph (NMAP placement; load = x mapped bandwidth)"

    def placed(
        self,
        cfg: NocConfig,
        seed: int = 0,
        **params: Any,
    ) -> List[PlacedFlow]:
        """NMAP-placed task-graph demands on ``cfg``'s mesh."""
        graph = evaluation_task_graph(self.name)
        mesh = Mesh(cfg.width, cfg.height)
        return placed_from_mapping(graph, nmap_modified(graph, mesh))

    def build(
        self,
        cfg: NocConfig,
        seed: int = 0,
        turn_model: TurnModel = TurnModel.WEST_FIRST,
        algorithm: str = "nmap_modified",
        routing: str = "minimal",
        **params: Any,
    ) -> BuiltWorkload:
        """Place with ``algorithm``, then route via the shared pipeline."""
        # The same place -> demands -> route-selection pipeline as
        # map_application, with the routing stage going through the
        # shared dispatcher so any placement pairs with any routing.
        graph = evaluation_task_graph(self.name)
        mesh = Mesh(cfg.width, cfg.height)
        mapping = place_application(
            graph, mesh, algorithm=algorithm, seed=seed
        )
        placed = placed_from_mapping(graph, mapping)
        flows = route_demands(
            mesh, placed, model=turn_model, routing=routing,
            hpc_max=cfg.hpc_max,
        )
        return BuiltWorkload(
            self.name, self.load_axis, tuple(flows), mapping=mapping
        )


class PatternWorkload(Workload):
    """A synthetic pattern whose demands carry 1 packet/cycle/node."""

    kind = "pattern"
    load_axis = "injection_rate"
    description = "synthetic pattern (load = packets/cycle/node)"

    def __init__(self, name: str):
        super().__init__(name)
        self.seed_sensitive = name == "uniform"

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        """Pattern pairs as demands of 1 packet/cycle/node each."""
        mesh = Mesh(cfg.width, cfg.height)
        unit = bandwidth_for_injection_rate(cfg, 1.0)
        return [
            PlacedFlow(
                flow_id=i,
                src=src,
                dst=dst,
                bandwidth_bps=weight * unit,
                name="%s:%d->%d" % (self.name, src, dst),
            )
            for i, (src, dst, weight) in enumerate(
                pattern_pairs(self.name, mesh, seed=seed, **params)
            )
        ]


class CompositeWorkload(Workload):
    """Sum of sub-workload demand sets, each scaled by a rate fraction.

    Components are ``(workload_name, fraction)`` pairs whose fractions
    split the per-node rate: a node sourcing in every component injects
    the full per-node rate, divided across the components.
    """

    kind = "composite"
    load_axis = "injection_rate"

    def __init__(
        self,
        name: str,
        components: Sequence[Tuple[str, float]],
        description: str = "",
    ):
        super().__init__(name)
        if not components:
            raise ValueError("composite workload needs at least one component")
        total = sum(fraction for _name, fraction in components)
        if any(f <= 0 for _n, f in components) or abs(total - 1.0) > 1e-9:
            raise ValueError(
                "component fractions must be positive and sum to 1, got %r"
                % (list(components),)
            )
        self.components = tuple(components)
        self.description = description or "composite of %s" % " + ".join(
            "%s@%g" % item for item in self.components
        )
        # Computed eagerly -- components must already be registered --
        # keeping ``seed_sensitive`` a plain attribute like the base class.
        self.seed_sensitive = any(
            WORKLOADS[name].seed_sensitive for name, _f in self.components
        )

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        """Union of component demands, bandwidths scaled by fraction.

        Each demand is tenant-tagged with its component's workload name,
        so composite sweeps get per-tenant latency summaries and SLO
        verdicts for free (see ``repro.sim.stats``).
        """
        demands: List[PlacedFlow] = []
        for name, fraction in self.components:
            for pf in get_workload(name).placed(cfg, seed=seed, **params):
                demands.append(
                    PlacedFlow(
                        flow_id=len(demands),
                        src=pf.src,
                        dst=pf.dst,
                        bandwidth_bps=pf.bandwidth_bps * fraction,
                        name=pf.name,
                        tenant=name,
                    )
                )
        return demands


class TenantMixWorkload(Workload):
    """A fixed foreground tenant sharing the fabric with a swept
    background tenant — the multi-application service scenario.

    The foreground component (an app, typically) keeps its demands at a
    *fixed* drive level (``foreground_load`` x its base bandwidths —
    the mapped bandwidths themselves for an app at the default 1.0)
    while the background component scales with the sweep's load axis.
    A sweep over a tenant mix therefore answers the service question:
    how much background load can the fabric absorb before the
    foreground tenant's tail latency breaks its SLO?

    Both components' flows are tenant-tagged with the component
    workload's name, so per-tenant histograms and SLO verdicts appear
    in every :class:`~repro.sim.stats.SimResult` and sweep row.
    """

    kind = "composite"
    load_axis = "injection_rate"
    default_loads = (0.01, 0.02, 0.05, 0.1, 0.2)

    def __init__(
        self,
        name: str,
        foreground: str,
        background: str,
        foreground_load: Optional[float] = None,
        description: str = "",
    ):
        super().__init__(name)
        if foreground == background:
            raise ValueError(
                "tenant mix needs distinct workloads, got %r twice"
                % foreground
            )
        self.foreground = foreground
        self.background = background
        # Components must already be registered (same contract as
        # CompositeWorkload); resolves the default drive level and the
        # seed sensitivity eagerly.
        fg = WORKLOADS[foreground]
        bg = WORKLOADS[background]
        self.foreground_load = (
            fg.default_load if foreground_load is None else foreground_load
        )
        self.seed_sensitive = fg.seed_sensitive or bg.seed_sensitive
        self.description = description or (
            "fixed %s foreground + swept %s background (load = background "
            "packets/cycle/node)" % (foreground, background)
        )

    def placed(
        self, cfg: NocConfig, seed: int = 0, **params: Any
    ) -> List[PlacedFlow]:
        """Foreground demands at their fixed drive level, then
        background demands at 1 packet/cycle/node (scaled by the load
        axis through :class:`~repro.sim.traffic.RateScaledTraffic`)."""
        demands: List[PlacedFlow] = []
        fg_scale = self.foreground_load
        for pf in get_workload(self.foreground).placed(
            cfg, seed=seed, **params
        ):
            demands.append(
                PlacedFlow(
                    flow_id=len(demands),
                    src=pf.src,
                    dst=pf.dst,
                    bandwidth_bps=pf.bandwidth_bps * fg_scale,
                    name=pf.name,
                    tenant=self.foreground,
                )
            )
        for pf in get_workload(self.background).placed(
            cfg, seed=seed, **params
        ):
            demands.append(
                PlacedFlow(
                    flow_id=len(demands),
                    src=pf.src,
                    dst=pf.dst,
                    bandwidth_bps=pf.bandwidth_bps,
                    name=pf.name,
                    tenant=self.background,
                )
            )
        return demands

    def build(
        self,
        cfg: NocConfig,
        seed: int = 0,
        turn_model: TurnModel = TurnModel.WEST_FIRST,
        routing: str = "minimal",
        **params: Any,
    ) -> BuiltWorkload:
        """Route the mixed demand set, pinning foreground flow ids so
        the load axis only scales the background tenant."""
        built = super().build(
            cfg, seed=seed, turn_model=turn_model, routing=routing, **params
        )
        fixed = tuple(
            flow.flow_id
            for flow in built.flows
            if flow.tenant == self.foreground
        )
        return dataclasses.replace(built, fixed_flow_ids=fixed)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: All registered workloads, keyed by name.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload, replace: bool = False) -> Workload:
    """Add a workload to the registry (names must be unique)."""
    if workload.name in WORKLOADS and not replace:
        raise ValueError("workload %r already registered" % workload.name)
    WORKLOADS[workload.name] = workload
    return workload


for _app in PAPER_APP_ORDER:
    register_workload(AppWorkload(_app))
for _pattern in PATTERNS:
    if _pattern != "background_hotspot":
        register_workload(PatternWorkload(_pattern))
register_workload(
    CompositeWorkload(
        "background_hotspot",
        (("uniform", BACKGROUND_FRACTION), ("hotspot", 1.0 - BACKGROUND_FRACTION)),
        description="uniform background (%.0f%% of rate) + hotspot overlay"
        % (100 * BACKGROUND_FRACTION),
    )
)
register_workload(
    TenantMixWorkload(
        "tenant_mix",
        foreground="PIP",
        background="hotspot",
        description="fixed PIP app foreground + swept hotspot background "
        "(the per-tenant SLO scenario; load = background packets/cycle/node)",
    )
)


def workload_names() -> List[str]:
    """Registered names: apps in paper order, then patterns/composites."""
    apps = [name for name in PAPER_APP_ORDER if name in WORKLOADS]
    rest = sorted(name for name in WORKLOADS if name not in PAPER_APP_ORDER)
    return apps + rest


def get_workload(name: str) -> Workload:
    """Look up a workload by name (app names are case-insensitive)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        pass
    upper = str(name).upper()
    if upper in WORKLOADS:
        return WORKLOADS[upper]
    raise ValueError(
        "unknown workload %r (have %s)" % (name, ", ".join(workload_names()))
    )


def build_seed_for(workload: Union[str, WorkloadSpec], seed: int) -> int:
    """The seed a workload build actually depends on.

    Seed-insensitive workloads (apps, deterministic permutations) always
    build with seed 0, so per-worker memoisation shares one flow set
    across every sweep seed; seed-sensitive ones (uniform draws) build
    per seed — the fix for the uniform pattern being pinned to one
    destination draw across all sweep seeds.
    """
    spec = WorkloadSpec.of(workload)
    specfile = spec.options.get("specfile")
    if specfile is not None:
        from repro.workloads.specfile import ensure_file_workloads

        ensure_file_workloads(str(specfile))
    return seed if get_workload(spec.name).seed_sensitive else 0


def build_workload(
    workload: Union[str, WorkloadSpec], cfg: NocConfig, seed: int = 0
) -> BuiltWorkload:
    """Run the shared pipeline: registry -> demands -> selected routes.

    Spec params are forwarded to the workload; the reserved
    ``turn_model`` param (a :class:`TurnModel` or its string value)
    overrides the route-selection model — e.g. ``turn_model="xy"``
    forces single-path XY routing for comparisons.  The reserved
    ``specfile`` param names a workload spec file
    (:mod:`repro.workloads.specfile`) that is loaded — idempotently —
    before the name is resolved, so file-defined workloads rebuild in
    pool workers that never saw the original registration.
    """
    spec = WorkloadSpec.of(workload)
    params: Dict[str, Any] = spec.options
    specfile = params.pop("specfile", None)
    if specfile is not None:
        from repro.workloads.specfile import ensure_file_workloads

        ensure_file_workloads(str(specfile))
    target = get_workload(spec.name)
    model = params.pop("turn_model", None)
    if model is not None:
        params["turn_model"] = (
            model if isinstance(model, TurnModel) else TurnModel(model)
        )
    return target.build(cfg, seed=seed, **params)
