"""repro — a reproduction of SMART: A Single-Cycle Reconfigurable NoC for
SoC Applications (Chen, Park, Krishna, Subramanian, Chandrakasan, Peh;
DATE 2013).

The package implements the complete SMART system in Python:

* :mod:`repro.sim` — a cycle-accurate NoC simulation substrate (flits,
  virtual cut-through flow control, 3-stage routers, credits).
* :mod:`repro.core` — the SMART contribution: preset bypass paths giving
  single-cycle multi-hop traversal, the reverse credit mesh, source-route
  encoding and memory-mapped runtime reconfiguration.
* :mod:`repro.circuits` — the clockless low-swing voltage-locked repeater
  (VLR) link: wire RC, repeater delay/energy, Table I, waveforms, BER.
* :mod:`repro.mapping` — modified NMAP placement and turn-model routing.
* :mod:`repro.apps` — the eight SoC task graphs of §VI.
* :mod:`repro.power` — activity-based power and area models (Fig 10b).
* :mod:`repro.rtl` — the §V tool flow: Verilog generation, layout,
  .lib/.lef views.
* :mod:`repro.eval` — experiment harness regenerating every table/figure.

Quickstart::

    from repro import NocConfig, run_app
    smart = run_app("VOPD", "smart")
    mesh = run_app("VOPD", "mesh")
    print(smart.mean_latency, mesh.mean_latency)
"""

from repro.config import TABLE_II_CONFIG, NocConfig
from repro.core import build_mesh_noc, build_smart_noc, compute_presets
from repro.eval import (
    build_design,
    build_workload_design,
    headline_metrics,
    run_app,
    run_suite,
    run_workload,
)
from repro.mapping import TaskGraph, TurnModel, map_application
from repro.sim import Flow, Mesh, Port
from repro.workloads import WORKLOADS, WorkloadSpec, build_workload, get_workload

__version__ = "1.1.0"

__all__ = [
    "Flow",
    "Mesh",
    "NocConfig",
    "Port",
    "TABLE_II_CONFIG",
    "TaskGraph",
    "TurnModel",
    "WORKLOADS",
    "WorkloadSpec",
    "build_design",
    "build_mesh_noc",
    "build_smart_noc",
    "build_workload",
    "build_workload_design",
    "compute_presets",
    "get_workload",
    "headline_metrics",
    "map_application",
    "run_app",
    "run_suite",
    "run_workload",
    "__version__",
]
