"""Latency-vs-load curves from streamed sweep grids (matplotlib-gated).

``results/sweep_*.jsonl`` streams hold one JSON line per completed
(design, load, seed) grid point (see ``docs/kernel.md``).  This module
aggregates them into per-design curves (:func:`sweep_curves` for mean
latency, :func:`tail_curves` for histogram-pooled P50/P95/P99 bands —
both pure Python, usable without matplotlib) and renders the classic
latency-vs-load plot (:func:`plot_sweep_stream`) or the tail-latency
band plot (:func:`plot_tail_stream`) next to the markdown tables; the
renderers require matplotlib and use the headless Agg backend.

matplotlib is an *optional* dependency: importing this module never
fails, :func:`matplotlib_available` reports whether rendering can work,
and :func:`plot_sweep_stream` raises a clear ``RuntimeError`` when it
cannot.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

from repro.sim.stats import aggregate_summaries

#: One aggregated curve point: (load, mean head latency, any seed saturated).
CurvePoint = Tuple[float, float, bool]


def matplotlib_available() -> bool:
    """Whether the optional matplotlib dependency is importable."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def sweep_curves(points: List[Dict[str, object]]) -> Dict[str, List[CurvePoint]]:
    """Aggregate streamed grid points into one curve per design.

    Seeds at the same (design, load) pool with count-weighted means
    (matching the sweep runner's row aggregation); each curve is sorted
    by load.  Saturation is sticky across seeds.
    """
    grouped: Dict[Tuple[str, float], List[Dict[str, object]]] = {}
    for point in points:
        grouped.setdefault(
            (str(point["design"]), float(point["load"])), []
        ).append(point)
    curves: Dict[str, List[CurvePoint]] = {}
    for (design, load), group in sorted(grouped.items()):
        summary = aggregate_summaries([p["summary"] for p in group])
        curves.setdefault(design, []).append(
            (load, summary.mean_head_latency, any(p["saturated"] for p in group))
        )
    return curves


#: One tail-curve point: (load, {fraction: latency}, any seed saturated).
TailPoint = Tuple[float, Dict[float, float], bool]

#: Percentile fractions rendered by :func:`plot_tail_stream`.
TAIL_FRACTIONS = (0.50, 0.95, 0.99)


def tail_curves(
    points: List[Dict[str, object]],
    fractions: Tuple[float, ...] = TAIL_FRACTIONS,
) -> Dict[str, List[TailPoint]]:
    """Aggregate streamed grid points into percentile curves per design.

    Seeds at the same (design, load) pool their latency histograms
    (bucket-count addition), so each percentile is exact to one bucket
    over the union of all replications' packets — matching the sweep
    runner's ``_p50``/``_p95``/``_p99`` columns.  Points without
    histograms (legacy streams) fall back to the summary's recorded
    percentile fields where available and NaN otherwise.

    Zero-packet groups (e.g. a fully quiet tenant, or a scenario phase
    that delivered nothing) yield an **empty** band dict rather than
    NaN-filled percentiles, so downstream consumers can distinguish "no
    packets" from "legacy stream without histograms".
    """
    grouped: Dict[Tuple[str, float], List[Dict[str, object]]] = {}
    for point in points:
        grouped.setdefault(
            (str(point["design"]), float(point["load"])), []
        ).append(point)
    fallback = {
        0.50: "p50_head_latency",
        0.95: "p95_head_latency",
        0.99: "p99_head_latency",
        0.999: "p999_head_latency",
    }
    curves: Dict[str, List[TailPoint]] = {}
    for (design, load), group in sorted(grouped.items()):
        summary = aggregate_summaries([p["summary"] for p in group])
        tails: Dict[float, float] = {}
        if summary.count > 0:
            for fraction in fractions:
                if summary.histogram is not None and summary.histogram.total:
                    tails[fraction] = summary.histogram.percentile(fraction)
                else:
                    tails[fraction] = getattr(
                        summary, fallback.get(fraction, ""), math.nan
                    )
        curves.setdefault(design, []).append(
            (load, tails, any(p["saturated"] for p in group))
        )
    return curves


def plot_sweep_stream(
    path: str,
    out_path: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render a sweep stream as a latency-vs-load PNG; returns its path.

    One line per design; saturated points (runs that failed to drain)
    are marked with an 'x'.  ``out_path`` defaults to the stream path
    with a ``.png`` extension.  Raises ``RuntimeError`` if matplotlib is
    not installed.
    """
    if not matplotlib_available():
        raise RuntimeError(
            "matplotlib is not installed; install it to render sweep plots "
            "(the sweep data itself never needs it)"
        )
    from repro.eval.sweeps import read_sweep_header, read_sweep_stream

    points = read_sweep_stream(path)
    if not points:
        raise ValueError("no grid points in %s" % path)
    header = read_sweep_header(path)
    curves = sweep_curves(points)
    if title is None:
        spec = (header or {}).get("sweep_spec", {})
        workload = spec.get("workload")
        cfg = spec.get("cfg", {})
        size = (
            "%sx%s" % (cfg["width"], cfg["height"])
            if "width" in cfg and "height" in cfg
            else None
        )
        title = "Latency vs load" + (
            " — %s%s" % (workload, " on %s" % size if size else "")
            if workload
            else ""
        )

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for design, curve in sorted(curves.items()):
        finite = [(l, lat, sat) for l, lat, sat in curve if not math.isnan(lat)]
        if not finite:
            continue
        loads = [l for l, _lat, _sat in finite]
        lats = [lat for _l, lat, _sat in finite]
        (line,) = ax.plot(loads, lats, marker="o", label=design)
        saturated = [(l, lat) for l, lat, sat in finite if sat]
        if saturated:
            ax.plot(
                [l for l, _ in saturated],
                [lat for _, lat in saturated],
                linestyle="none",
                marker="x",
                markersize=10,
                color=line.get_color(),
            )
    ax.set_xlabel("offered load")
    ax.set_ylabel("mean head latency (cycles)")
    ax.set_title(title)
    # All-empty curves (e.g. a stream of zero-packet runs) plot an empty
    # chart; legend() without handles would only emit a warning.
    if ax.get_legend_handles_labels()[0]:
        ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if out_path is None:
        out_path = os.path.splitext(path)[0] + ".png"
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return out_path


def plot_tail_stream(
    path: str,
    out_path: Optional[str] = None,
    title: Optional[str] = None,
    fractions: Tuple[float, ...] = TAIL_FRACTIONS,
) -> str:
    """Render a sweep stream's tail-latency curves as a PNG.

    One colour per design; within a design the percentile band is drawn
    as P50 (solid), P95 (dashed) and P99 (dotted) lines over a shaded
    P50-P99 fill, pooled across seeds from the per-run latency
    histograms (see :func:`tail_curves`).  Saturated points are marked
    with an 'x' on the highest percentile line.  ``out_path`` defaults
    to the stream path with a ``_tail.png`` suffix.  Raises
    ``RuntimeError`` if matplotlib is not installed.
    """
    if not matplotlib_available():
        raise RuntimeError(
            "matplotlib is not installed; install it to render tail plots "
            "(the sweep data itself never needs it)"
        )
    from repro.eval.sweeps import read_sweep_header, read_sweep_stream

    points = read_sweep_stream(path)
    if not points:
        raise ValueError("no grid points in %s" % path)
    header = read_sweep_header(path)
    curves = tail_curves(points, fractions=fractions)
    if title is None:
        spec = (header or {}).get("sweep_spec", {})
        workload = spec.get("workload")
        cfg = spec.get("cfg", {})
        size = (
            "%sx%s" % (cfg["width"], cfg["height"])
            if "width" in cfg and "height" in cfg
            else None
        )
        title = "Tail latency vs load" + (
            " — %s%s" % (workload, " on %s" % size if size else "")
            if workload
            else ""
        )

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    styles = ["-", "--", ":", "-."]
    ordered = tuple(sorted(fractions))
    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for design, curve in sorted(curves.items()):
        finite = [
            (l, tails, sat)
            for l, tails, sat in curve
            if any(not math.isnan(v) for v in tails.values())
        ]
        if not finite:
            continue
        loads = [l for l, _t, _s in finite]
        color = None
        for index, fraction in enumerate(ordered):
            lats = [t.get(fraction, math.nan) for _l, t, _s in finite]
            (line,) = ax.plot(
                loads, lats,
                linestyle=styles[index % len(styles)],
                marker="o", markersize=3, color=color,
                label="%s p%g" % (design, fraction * 100),
            )
            color = line.get_color()
        if len(ordered) >= 2:
            low = [t.get(ordered[0], math.nan) for _l, t, _s in finite]
            high = [t.get(ordered[-1], math.nan) for _l, t, _s in finite]
            ax.fill_between(loads, low, high, color=color, alpha=0.12)
        saturated = [
            (l, t.get(ordered[-1], math.nan)) for l, t, s in finite if s
        ]
        if saturated:
            ax.plot(
                [l for l, _ in saturated],
                [lat for _, lat in saturated],
                linestyle="none", marker="x", markersize=10, color=color,
            )
    ax.set_xlabel("offered load")
    ax.set_ylabel("head latency percentile (cycles)")
    ax.set_title(title)
    # Zero-packet streams produce empty tail bands (see tail_curves);
    # skip the legend rather than warn on an empty handle list.
    if ax.get_legend_handles_labels()[0]:
        ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if out_path is None:
        out_path = os.path.splitext(path)[0] + "_tail.png"
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return out_path
