"""Latency-vs-load curves from streamed sweep grids (matplotlib-gated).

``results/sweep_*.jsonl`` streams hold one JSON line per completed
(design, load, seed) grid point (see ``docs/kernel.md``).  This module
aggregates them into per-design curves (:func:`sweep_curves`, pure
Python — usable without matplotlib) and renders the classic
latency-vs-load plot next to the markdown tables
(:func:`plot_sweep_stream`, which requires matplotlib and uses the
headless Agg backend).

matplotlib is an *optional* dependency: importing this module never
fails, :func:`matplotlib_available` reports whether rendering can work,
and :func:`plot_sweep_stream` raises a clear ``RuntimeError`` when it
cannot.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

from repro.sim.stats import aggregate_summaries

#: One aggregated curve point: (load, mean head latency, any seed saturated).
CurvePoint = Tuple[float, float, bool]


def matplotlib_available() -> bool:
    """Whether the optional matplotlib dependency is importable."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def sweep_curves(points: List[Dict[str, object]]) -> Dict[str, List[CurvePoint]]:
    """Aggregate streamed grid points into one curve per design.

    Seeds at the same (design, load) pool with count-weighted means
    (matching the sweep runner's row aggregation); each curve is sorted
    by load.  Saturation is sticky across seeds.
    """
    grouped: Dict[Tuple[str, float], List[Dict[str, object]]] = {}
    for point in points:
        grouped.setdefault(
            (str(point["design"]), float(point["load"])), []
        ).append(point)
    curves: Dict[str, List[CurvePoint]] = {}
    for (design, load), group in sorted(grouped.items()):
        summary = aggregate_summaries([p["summary"] for p in group])
        curves.setdefault(design, []).append(
            (load, summary.mean_head_latency, any(p["saturated"] for p in group))
        )
    return curves


def plot_sweep_stream(
    path: str,
    out_path: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render a sweep stream as a latency-vs-load PNG; returns its path.

    One line per design; saturated points (runs that failed to drain)
    are marked with an 'x'.  ``out_path`` defaults to the stream path
    with a ``.png`` extension.  Raises ``RuntimeError`` if matplotlib is
    not installed.
    """
    if not matplotlib_available():
        raise RuntimeError(
            "matplotlib is not installed; install it to render sweep plots "
            "(the sweep data itself never needs it)"
        )
    from repro.eval.sweeps import read_sweep_header, read_sweep_stream

    points = read_sweep_stream(path)
    if not points:
        raise ValueError("no grid points in %s" % path)
    header = read_sweep_header(path)
    curves = sweep_curves(points)
    if title is None:
        spec = (header or {}).get("sweep_spec", {})
        workload = spec.get("workload")
        cfg = spec.get("cfg", {})
        size = (
            "%sx%s" % (cfg["width"], cfg["height"])
            if "width" in cfg and "height" in cfg
            else None
        )
        title = "Latency vs load" + (
            " — %s%s" % (workload, " on %s" % size if size else "")
            if workload
            else ""
        )

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6.4, 4.2))
    for design, curve in sorted(curves.items()):
        finite = [(l, lat, sat) for l, lat, sat in curve if not math.isnan(lat)]
        if not finite:
            continue
        loads = [l for l, _lat, _sat in finite]
        lats = [lat for _l, lat, _sat in finite]
        (line,) = ax.plot(loads, lats, marker="o", label=design)
        saturated = [(l, lat) for l, lat, sat in finite if sat]
        if saturated:
            ax.plot(
                [l for l, _ in saturated],
                [lat for _, lat in saturated],
                linestyle="none",
                marker="x",
                markersize=10,
                color=line.get_color(),
            )
    ax.set_xlabel("offered load")
    ax.set_ylabel("mean head latency (cycles)")
    ax.set_title(title)
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if out_path is None:
        out_path = os.path.splitext(path)[0] + ".png"
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return out_path
