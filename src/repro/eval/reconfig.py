"""Costed multi-app reconfiguration scenarios (§V).

SMART's headline claim is *reconfigurability*: one fabric time-multiplexes
many SoC applications by rewriting each router's memory-mapped preset
register — "the reconfiguration cost at runtime is just the amount of
time to execute these instructions" (§V).  This module makes that cost
real inside a simulation: a :class:`ScenarioSpec` sequences two or more
registered workloads (built-in apps, file-defined workloads, patterns) on
one fabric, and :func:`run_scenario` executes the phases on a cumulative
simulated clock that charges

* the phase's **reconfiguration program** — the full register file for
  the first app, then only the *changed* registers
  (:func:`repro.core.reconfiguration.diff_program`) for each switch —
  at ``cycles_per_store`` cycles per store, and
* the phase's own run: warmup, measurement and the drain that empties
  the network before the next switch (the paper requires the network be
  empty when registers are rewritten; ``Network.run`` drains measured
  packets before returning, and its ``total_cycles`` — warmup + measure
  + drain — is what lands on the clock).

Each phase yields one sweep-compatible row (the phase *index* is the
stream's load axis, so per-phase rows ride the existing stream/farm
machinery unchanged) carrying ``phase``, ``app``, ``phase_load`` (the
real drive level), ``reconfig_stores``, ``reconfig_cycles`` and the
cumulative ``clock_cycles``.  Streams written by
:func:`run_scenario_stream` use the shared header hashing with a
``"scenario"`` spec section, so farm queues enumerated by
:func:`enumerate_scenario_farm` accept them via ``repro farm import``
and merge with the standard per-phase aggregation
(``<design>_reconfig_cycles`` / ``<design>_app`` columns).

Scenario grid points cannot be *recomputed* from a farm queue (a phase's
cost depends on the previous phase's presets, so points are not
independent); scenario queues are therefore **import-only** —
``FarmSpec.job_for`` refuses them with a pointer here.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import NocConfig
from repro.core.reconfiguration import (
    DEFAULT_BASE_ADDR,
    ReconfigurationProgram,
    compile_program,
    diff_program,
)
from repro.eval.scenarios import FIG1_APPS
from repro.eval.sweeps import (
    DEFAULT_RUN_KWARGS,
    SweepJob,
    _aggregate,
    _job_traffic,
    _point_key,
    _point_row,
    _point_to_json,
    make_stream_header,
    read_sweep_header,
    read_sweep_stream,
)
from repro.workloads import (
    WorkloadSpec,
    build_seed_for,
    build_workload,
    get_workload,
)


@dataclasses.dataclass(frozen=True)
class ScenarioPhase:
    """One time slice: a registered workload driven at a fixed load."""

    workload: WorkloadSpec
    #: Drive level on the workload's load axis (None: its default_load).
    load: Optional[float] = None
    #: Per-phase measurement window (None: the spec's measure_cycles).
    measure_cycles: Optional[int] = None

    @classmethod
    def of(
        cls, phase: Union[str, WorkloadSpec, "ScenarioPhase"]
    ) -> "ScenarioPhase":
        """Coerce a workload name/spec into a default-load phase."""
        if isinstance(phase, ScenarioPhase):
            return phase
        return cls(workload=WorkloadSpec.of(phase))

    def resolved_load(self) -> float:
        """The drive level, defaulting to the workload's single-point
        default (apps: the mapped bandwidths as specified)."""
        if self.load is not None:
            return float(self.load)
        return float(get_workload(self.workload.name).default_load)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A reconfiguration scenario: phases time-multiplexed on one fabric.

    The paper's Fig 1 sequence — WLAN, then H264, then VOPD on the same
    chip — is the default subject (:data:`repro.eval.scenarios.FIG1_APPS`;
    see :func:`fig1_scenario`).
    """

    name: str
    phases: Tuple[ScenarioPhase, ...]
    design: str = "smart"
    kernel: str = "active"
    traffic_mode: str = "predraw"
    warmup_cycles: int = DEFAULT_RUN_KWARGS["warmup_cycles"]
    measure_cycles: int = DEFAULT_RUN_KWARGS["measure_cycles"]
    drain_limit: int = DEFAULT_RUN_KWARGS["drain_limit"]
    #: Cycles charged per memory-mapped store (§V: one store instruction
    #: per router register).
    cycles_per_store: int = 1
    base_addr: int = DEFAULT_BASE_ADDR

    def __post_init__(self) -> None:
        if len(self.phases) < 2:
            raise ValueError(
                "a reconfiguration scenario needs at least 2 phases, got %d"
                % len(self.phases)
            )

    @classmethod
    def of(
        cls,
        name: str,
        phases: Sequence[Union[str, WorkloadSpec, ScenarioPhase]],
        **kwargs: Any,
    ) -> "ScenarioSpec":
        """Build a spec from workload names/specs/phases."""
        return cls(
            name=name,
            phases=tuple(ScenarioPhase.of(p) for p in phases),
            **kwargs,
        )

    def describe(self) -> str:
        """``name: app@load -> app@load -> ...`` label."""
        return "%s: %s" % (
            self.name,
            " -> ".join(
                "%s@%g" % (p.workload.describe(), p.resolved_load())
                for p in self.phases
            ),
        )

    def phase_loads(self) -> List[float]:
        """The stream's load axis: one value per phase (its index)."""
        return [float(index) for index in range(len(self.phases))]

    def run_kwargs(self) -> Dict[str, int]:
        return {
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "drain_limit": self.drain_limit,
        }

    def spec_extra(self) -> Dict[str, Any]:
        """The ``"scenario"`` section hashed into the stream header."""
        return {
            "scenario": {
                "name": self.name,
                "design": self.design,
                "phases": [
                    {
                        "workload": phase.workload.name,
                        "params": dict(phase.workload.params),
                        "load": phase.resolved_load(),
                        "measure_cycles": (
                            phase.measure_cycles
                            if phase.measure_cycles is not None
                            else self.measure_cycles
                        ),
                    }
                    for phase in self.phases
                ],
                "cycles_per_store": self.cycles_per_store,
                "base_addr": self.base_addr,
            }
        }

    def stream_header(
        self, cfg: NocConfig, seeds: Sequence[int] = (1,)
    ) -> Dict[str, Any]:
        """The stream/farm header identifying this scenario on ``cfg``.

        The workload slot holds the *first* phase's workload (scenario
        streams span several workloads; the hashed ``scenario`` section
        carries them all), and the run window is the spec's default.
        """
        return make_stream_header(
            self.phases[0].workload,
            cfg,
            self.kernel,
            self.traffic_mode,
            self.run_kwargs(),
            seeds=seeds,
            extra=self.spec_extra(),
        )


def fig1_scenario(
    design: str = "smart", **kwargs: Any
) -> ScenarioSpec:
    """The paper's Fig 1 sequence: WLAN -> H264 -> VOPD on one fabric."""
    return ScenarioSpec.of(
        "fig1", list(FIG1_APPS), design=design, **kwargs
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def run_scenario(
    spec: ScenarioSpec,
    cfg: Optional[NocConfig] = None,
    seed: int = 1,
) -> List[Dict[str, Any]]:
    """Execute every phase on a cumulative clock; one row per phase.

    Phase ``i`` streams as load ``float(i)`` (phases are the load axis)
    and carries the scenario fields described in the module docstring.
    Everything downstream — stream rows, farm import, aggregation —
    treats the rows exactly like sweep grid points.
    """
    from repro.eval.designs import build_design

    base = cfg or NocConfig()
    clock = 0
    previous: Optional[ReconfigurationProgram] = None
    rows: List[Dict[str, Any]] = []
    for index, phase in enumerate(spec.phases):
        load = phase.resolved_load()
        measure = (
            phase.measure_cycles
            if phase.measure_cycles is not None
            else spec.measure_cycles
        )
        job = SweepJob(
            design=spec.design,
            load=float(index),
            seed=seed,
            cfg=base,
            workload=phase.workload,
            kernel=spec.kernel,
            traffic_mode=spec.traffic_mode,
            warmup_cycles=spec.warmup_cycles,
            measure_cycles=measure,
            drain_limit=spec.drain_limit,
        )
        built = build_workload(
            phase.workload, base, seed=build_seed_for(phase.workload, seed)
        )
        # The streamed row keys on the phase index (job.load); the
        # injection process drives the phase's real load level.
        drive_job = dataclasses.replace(job, load=load)
        traffic = _job_traffic(drive_job, built, seed)
        instance = build_design(
            spec.design, base, built.flows, traffic=traffic,
            kernel=spec.kernel,
        )
        stores = 0
        cost = 0
        if instance.presets is not None:
            full = compile_program(
                instance.presets,
                app_name=phase.workload.name,
                base_addr=spec.base_addr,
            )
            program = full if previous is None else diff_program(previous, full)
            stores = program.cost_instructions
            cost = program.cost_cycles(spec.cycles_per_store)
            previous = full
        # The switch happens on an empty network before the phase runs:
        # reconfiguration cycles land on the clock first, then the
        # phase's own warmup + measurement + drain.
        clock += cost
        result = instance.run(
            warmup_cycles=spec.warmup_cycles,
            measure_cycles=measure,
            drain_limit=spec.drain_limit,
        )
        clock += result.total_cycles
        row = _point_row(job, seed, result, traffic)
        row.update(
            phase=index,
            app=phase.workload.name,
            phase_load=load,
            reconfig_stores=stores,
            reconfig_cycles=cost,
            clock_cycles=clock,
        )
        rows.append(row)
    return rows


def run_scenario_stream(
    spec: ScenarioSpec,
    cfg: Optional[NocConfig] = None,
    seeds: Sequence[int] = (1,),
    stream_path: Optional[str] = None,
    resume: bool = False,
    on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> List[Dict[str, Any]]:
    """Run a scenario over seeds, streaming per-phase rows like a sweep.

    The stream opens with the scenario's hashed header
    (:meth:`ScenarioSpec.stream_header`) and holds one row per
    (phase, seed).  ``resume=True`` reloads completed seeds from the
    stream — a seed resumes only if *all* its phase rows landed, since a
    phase's reconfiguration cost depends on its predecessor.  Returns
    the raw per-phase rows (all seeds); aggregate with
    :func:`aggregate_scenario`.
    """
    base = cfg or NocConfig()
    header = spec.stream_header(base, seeds=seeds)
    done: List[Dict[str, Any]] = []
    pending = list(seeds)
    if stream_path and resume and os.path.exists(stream_path):
        existing = read_sweep_header(stream_path)
        if (
            existing is not None
            and existing.get("spec_hash") != header.get("spec_hash")
        ):
            raise ValueError(
                "refusing to resume %s: stream header hash %s does not "
                "match this scenario's spec hash %s — delete the file or "
                "rerun the original scenario"
                % (stream_path, existing.get("spec_hash"),
                   header.get("spec_hash"))
            )
        streamed = read_sweep_stream(stream_path, skip_partial=True)
        keys = {_point_key(p) for p in streamed}
        complete = [
            seed for seed in seeds
            if all(
                (spec.design, load, int(seed)) in keys
                for load in spec.phase_loads()
            )
        ]
        done = [p for p in streamed if int(p["seed"]) in set(complete)]
        pending = [seed for seed in seeds if seed not in set(complete)]

    stream_fh = None
    if stream_path:
        parent = os.path.dirname(stream_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        stream_fh = open(stream_path, "w")
        stream_fh.write(json.dumps(header) + "\n")
        for point in done:
            stream_fh.write(json.dumps(_point_to_json(point)) + "\n")
        stream_fh.flush()

    rows: List[Dict[str, Any]] = []
    try:
        for seed in pending:
            for row in run_scenario(spec, base, seed=seed):
                rows.append(row)
                if stream_fh is not None:
                    stream_fh.write(json.dumps(_point_to_json(row)) + "\n")
                    stream_fh.flush()
                if on_result is not None:
                    on_result(row)
    finally:
        if stream_fh is not None:
            stream_fh.close()
    return done + rows


def aggregate_scenario(
    spec: ScenarioSpec, raw: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Per-phase aggregate rows (seeds pooled) via the sweep aggregator.

    One row per phase with the usual ``<design>_*`` column families plus
    ``<design>_reconfig_cycles`` and ``<design>_app``.
    """
    return _aggregate(
        raw,
        [spec.design],
        spec.phase_loads(),
        measure_cycles=spec.measure_cycles,
    )


def scenario_phase_table(
    spec: ScenarioSpec, raw: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Readable per-phase summary rows for reports.

    Pools seeds per phase and reports the app, drive level, mean/p99
    head latency, the reconfiguration bill and the mean cumulative
    clock at phase end.
    """
    aggregated = aggregate_scenario(spec, raw)
    table: List[Dict[str, Any]] = []
    for index, agg in enumerate(aggregated):
        points = [p for p in raw if int(p.get("phase", -1)) == index]
        if not points:
            continue
        design = spec.design
        clocks = [p["clock_cycles"] for p in points]
        table.append(
            {
                "phase": index,
                "app": agg.get("%s_app" % design, ""),
                "load": points[0].get("phase_load"),
                "mean_latency": agg.get(design, math.nan),
                "p99_latency": agg.get("%s_p99" % design, math.nan),
                "reconfig_stores": max(
                    int(p.get("reconfig_stores") or 0) for p in points
                ),
                "reconfig_cycles": agg.get(
                    "%s_reconfig_cycles" % design, 0
                ),
                "clock_cycles": sum(clocks) / len(clocks),
                "drained": not agg.get("%s_saturated" % design, False),
            }
        )
    return table


# ----------------------------------------------------------------------
# Farm integration (import-only queues)
# ----------------------------------------------------------------------

def enumerate_scenario_farm(
    spec: ScenarioSpec,
    cfg: Optional[NocConfig] = None,
    seeds: Sequence[int] = (1,),
    root: str = "results/farm",
):
    """Create the content-addressed farm queue for a scenario.

    The queue's grid is (design, phase-index loads, seeds) under the
    scenario's hashed header, so streams written by
    :func:`run_scenario_stream` import via ``repro farm import`` and
    merge into per-phase aggregate rows.  Scenario queues are
    **import-only**: phases are sequentially dependent, so
    ``FarmSpec.job_for`` (and therefore ``repro farm work``) refuses
    them.
    """
    from repro.eval.farm import enumerate_farm_from_header

    base = cfg or NocConfig()
    return enumerate_farm_from_header(
        spec.stream_header(base, seeds=seeds),
        designs=[spec.design],
        loads=spec.phase_loads(),
        seeds=seeds,
        root=root,
    )
