"""Parallel load-sweep runner with streamed, resumable results.

The paper's headline figures come from sweeping cycle-accurate runs over
(design, load, seed) grids.  Each grid point is an independent simulation,
so this module fans the points across worker processes with
``multiprocessing.Pool`` and aggregates the per-seed ``SimResult``s into
one row per (load, design).

Every sweep runs one registered **workload**
(:mod:`repro.workloads`: the SoC apps plus the synthetic patterns and
composite mixes) through the full paper pipeline — placement/demand
generation, conflict-minimising turn-model route selection, SMART preset
computation — so patterns get real bypass chains, not hard-wired XY
routes.  The workload's load axis decides what a grid point's ``load``
means:

* apps — a bandwidth scale factor on the mapped flows (the paper's
  saturation axis);
* patterns/composites — the per-node injection rate in packets/cycle.

Scaled rates past 1 packet/cycle are clamped to a saturated injection
port by :class:`~repro.sim.traffic.RateScaledTraffic`, so sweeps can
continue past the knee instead of crashing.

Jobs are described by small picklable specs (:class:`SweepJob` carries a
:class:`~repro.workloads.WorkloadSpec`); each worker rebuilds the routed
flow set and design locally, so nothing heavier than a result row
crosses the process boundary.  The expensive part — demand placement and
route selection — is memoised per worker process
(:func:`_worker_workload`): seed-insensitive workloads (apps,
deterministic permutations) build once per worker and share the flow set
across every grid point, while seed-sensitive ones (the uniform draw)
build once per (spec, seed).

Multi-seed sweeps (``seeds`` with more than one entry) default to
**lockstep batching**: the seed axis folds into one job per (design,
load) whose worker advances every replication together through
:func:`repro.sim.batch.run_batched` — the batched event engine when the
lanes share a workload on the event kernel, the generic lockstep driver
otherwise — and returns the same per-seed rows serial jobs would,
bit-identically.  Aggregated rows then carry a ``<design>_ci95`` column
(Student-t 95% half-width of per-seed mean head latencies) alongside
the pooled means.

Streaming and resume
--------------------

Long sweeps report progress and survive interruption through two hooks
shared by all sweep functions:

* ``on_result`` — a callback invoked with each grid point's result dict
  as soon as the point completes (completion order, not grid order).
* ``stream_path`` — a JSONL file (conventionally under ``results/``)
  whose first line is a header identifying the sweep spec (workload,
  cfg, kernel, run window) by content hash, followed by one line per
  completed grid point; see :func:`read_sweep_stream` for the row
  schema.  With ``resume=True`` previously-streamed points are loaded
  back and their jobs skipped, so an interrupted sweep continues where
  it stopped — and a stream whose header hash does not match the
  requested sweep is **refused** instead of silently mixing
  incompatible grids.  Header-less streams from older versions are
  still accepted.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import math
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import NocConfig
from repro.eval.designs import DESIGNS
from repro.sim.stats import (
    LatencySummary,
    aggregate_summaries,
    ci95_halfwidth,
    slo_verdicts,
)
from repro.workloads import (
    BuiltWorkload,
    WorkloadSpec,
    build_seed_for,
    build_workload,
    get_workload,
)

#: Simulation window used when the caller does not override it.
DEFAULT_RUN_KWARGS = dict(warmup_cycles=500, measure_cycles=8000, drain_limit=80000)

#: Format tag written into stream headers (bump on incompatible changes).
STREAM_FORMAT = "smart-sweep-stream/2"


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One (design, load, seed) grid point, picklable for Pool workers.

    With ``seeds`` set, the job is one (design, load) point carrying
    *all* its seed replications: the worker advances them in lockstep
    through :func:`repro.sim.batch.run_batched` (the batched event
    engine for same-workload event-kernel lanes, the generic lockstep
    driver otherwise) and returns one result row per seed — the same
    rows N single-seed jobs would produce, bit-identically.  ``seed``
    then holds ``seeds[0]`` and is ignored by the worker.
    """

    design: str
    load: float
    seed: int
    cfg: NocConfig
    #: Which workload to run; ``load`` is interpreted on its load axis.
    workload: WorkloadSpec
    kernel: str = "active"
    traffic_mode: str = "predraw"
    warmup_cycles: int = DEFAULT_RUN_KWARGS["warmup_cycles"]
    measure_cycles: int = DEFAULT_RUN_KWARGS["measure_cycles"]
    drain_limit: int = DEFAULT_RUN_KWARGS["drain_limit"]
    #: Seed replications to run lockstep-batched (None: single ``seed``).
    seeds: Optional[Tuple[int, ...]] = None
    #: Arrival process (:data:`repro.sim.traffic.ARRIVALS`) and its
    #: knobs as a sorted (name, value) tuple — picklable/hashable like
    #: ``WorkloadSpec.params``.
    arrival: str = "bernoulli"
    arrival_params: Tuple[Tuple[str, float], ...] = ()


@functools.lru_cache(maxsize=None)
def _worker_workload(
    spec: WorkloadSpec, cfg: NocConfig, build_seed: int
) -> BuiltWorkload:
    """Build ``spec`` on ``cfg``'s mesh, once per worker process.

    Placement and route selection are the most expensive part of a grid
    point and depend only on (spec, cfg) — plus the seed for
    seed-sensitive workloads — never on load, design or kernel.  Every
    worker memoises the built workload and reuses its immutable flow set
    across all grid points it executes.
    """
    return build_workload(spec, cfg, seed=build_seed)


def _point_row(job: SweepJob, seed: int, result, traffic) -> Dict[str, Any]:
    from repro.sim.stats import accepted_flits_per_cycle

    return {
        "design": job.design,
        "load": job.load,
        "seed": seed,
        "summary": result.summary,
        "throughput": accepted_flits_per_cycle(
            result, job.cfg.flits_per_packet
        ),
        "saturated": not result.drained,
        "clamped_flows": len(traffic.clamped_rates),
        # Offered vs achieved mean injection rate (packets/cycle summed
        # over flows).  Bursty arrivals whose ON-state burst clamps at
        # the injection port deliver *less* than the offered load; the
        # achieved column is what saturated bursty points really drove.
        "offered_rate": traffic.total_offered_rate(),
        "achieved_rate": traffic.total_achieved_rate(),
        "tenants": dict(result.per_tenant),
        "node_flits": dict(result.node_delivered_flits),
    }


def _job_traffic(job: SweepJob, built: BuiltWorkload, seed: int):
    """The injection process for one grid point (load-scaled, with the
    job's arrival process and the workload's fixed foreground flows)."""
    from repro.sim.traffic import RateScaledTraffic

    return RateScaledTraffic(
        job.cfg, built.flows, scale=job.load, seed=seed,
        mode=job.traffic_mode, arrival=job.arrival,
        arrival_params=dict(job.arrival_params) or None,
        fixed_flow_ids=built.fixed_flow_ids,
    )


def _run_job(job: SweepJob):
    """Worker entry point: build and run one grid point.

    Returns one row dict for a single-seed job, a list of per-seed rows
    for a batched (``job.seeds``) one.
    """
    from repro.eval.designs import build_design

    cfg = job.cfg
    if job.seeds:
        from repro.sim.batch import run_batched

        lanes = []
        traffics = []
        for seed in job.seeds:
            built = _worker_workload(
                job.workload, cfg, build_seed_for(job.workload, seed)
            )
            traffic = _job_traffic(job, built, seed)
            lanes.append(
                build_design(
                    job.design, cfg, built.flows, traffic=traffic,
                    kernel=job.kernel,
                ).network
            )
            traffics.append(traffic)
        results = run_batched(
            lanes,
            warmup_cycles=job.warmup_cycles,
            measure_cycles=job.measure_cycles,
            drain_limit=job.drain_limit,
        )
        return [
            _point_row(job, seed, result, traffic)
            for seed, result, traffic in zip(job.seeds, results, traffics)
        ]
    built = _worker_workload(
        job.workload, cfg, build_seed_for(job.workload, job.seed)
    )
    traffic = _job_traffic(job, built, job.seed)
    instance = build_design(
        job.design, cfg, built.flows, traffic=traffic, kernel=job.kernel
    )
    result = instance.run(
        warmup_cycles=job.warmup_cycles,
        measure_cycles=job.measure_cycles,
        drain_limit=job.drain_limit,
    )
    return _point_row(job, job.seed, result, traffic)


# ----------------------------------------------------------------------
# Stream header: content-hashed sweep spec
# ----------------------------------------------------------------------

def sweep_spec_hash(spec: Dict[str, Any]) -> str:
    """Short content hash of a sweep-spec dict (canonical-JSON SHA-256)."""
    canon = json.dumps(spec, sort_keys=True, default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def make_stream_header(
    workload: WorkloadSpec,
    cfg: NocConfig,
    kernel: str,
    traffic_mode: str,
    run_kwargs: Dict[str, int],
    seeds: Optional[Sequence[int]] = None,
    arrival: str = "bernoulli",
    arrival_params: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Header line for a sweep stream: the spec plus its content hash.

    The spec covers everything that must match for streamed grid points
    to be comparable — workload (name + params), mesh/router config,
    kernel, traffic mode, and the simulation window — but *not* the
    grid itself (designs/loads), so a resumed sweep may extend the
    grid.  Multi-seed sweeps (``seeds`` with more than one entry, the
    ``repro sweep --seeds N`` path) additionally hash the seed set, so
    resume and farm queues stay content-addressed over the replication
    axis; likewise a non-default ``arrival`` process (and its knobs)
    joins the spec.  ``extra`` merges additional spec keys — e.g. the
    ``"scenario"`` description of a reconfiguration-scenario stream
    (:mod:`repro.eval.reconfig`) — into the hashed spec; only truthy
    extras join, so default Bernoulli single-seed sweep specs keep
    their historical hashes.
    """
    spec = {
        "format": STREAM_FORMAT,
        "workload": workload.name,
        "params": {key: value for key, value in workload.params},
        "cfg": dataclasses.asdict(cfg),
        "kernel": kernel,
        "traffic_mode": traffic_mode,
        "warmup_cycles": run_kwargs["warmup_cycles"],
        "measure_cycles": run_kwargs["measure_cycles"],
        "drain_limit": run_kwargs["drain_limit"],
    }
    if seeds is not None and len(seeds) > 1:
        spec["seeds"] = [int(seed) for seed in seeds]
    if arrival != "bernoulli":
        spec["arrival"] = arrival
        spec["arrival_params"] = dict(arrival_params or {})
    for key, value in sorted((extra or {}).items()):
        if value:
            spec[key] = value
    return {"sweep_spec": spec, "spec_hash": sweep_spec_hash(spec)}


def read_sweep_header(path: str) -> Optional[Dict[str, Any]]:
    """The stream's header line, or None for legacy header-less files."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                return None
            if isinstance(data, dict) and "sweep_spec" in data:
                return data
            return None
    return None


# ----------------------------------------------------------------------
# Grid-point (de)serialisation for the JSONL stream
# ----------------------------------------------------------------------

def _float_or_none(value: Any) -> Optional[float]:
    return None if isinstance(value, float) and math.isnan(value) else value


def _summary_to_json(summary: LatencySummary) -> Dict[str, Any]:
    """A :class:`LatencySummary` as a strict-JSON-safe dict.

    NaN is written as ``null``; the latency histogram (when present) is
    written sparsely under ``"hist"`` as ``{bucket: count}``.
    """
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(summary):
        value = getattr(summary, field.name)
        if field.name == "histogram":
            if value is not None:
                out["hist"] = value.to_sparse()
            continue
        out[field.name] = _float_or_none(value)
    return out


def _summary_from_json(data: Dict[str, Any]) -> LatencySummary:
    """Inverse of :func:`_summary_to_json` (legacy rows lack ``hist``)."""
    from repro.sim.stats import LatencyHistogram

    raw = dict(data)
    hist = raw.pop("hist", None)
    for key, value in raw.items():
        if value is None:
            raw[key] = math.nan
    summary = LatencySummary(**raw)
    if hist is not None:
        summary.histogram = LatencyHistogram.from_sparse(hist)
    return summary


#: Optional per-row keys streamed verbatim when present: the bursty
#: offered/achieved-rate annotation and the per-phase fields of
#: reconfiguration-scenario rows (:mod:`repro.eval.reconfig`).  Absent
#: in legacy streams; decoded rows simply lack them.
_PASSTHROUGH_KEYS = (
    "offered_rate",
    "achieved_rate",
    "phase",
    "app",
    "phase_load",
    "reconfig_stores",
    "reconfig_cycles",
    "clock_cycles",
)


def _point_to_json(point: Dict[str, Any]) -> Dict[str, Any]:
    """One grid-point result as a strict-JSON-safe dict (NaN -> null)."""
    summary: LatencySummary = point["summary"]
    row = {
        "design": point["design"],
        "load": point["load"],
        "seed": point["seed"],
        "summary": _summary_to_json(summary),
        "throughput": point["throughput"],
        "saturated": point["saturated"],
        "clamped_flows": point["clamped_flows"],
    }
    for key in _PASSTHROUGH_KEYS:
        if point.get(key) is not None:
            row[key] = point[key]
    tenants: Dict[str, LatencySummary] = point.get("tenants") or {}
    if tenants:
        row["tenants"] = {
            name: _summary_to_json(tenant_summary)
            for name, tenant_summary in tenants.items()
        }
    node_flits: Dict[int, int] = point.get("node_flits") or {}
    if node_flits:
        row["node_flits"] = {
            str(node): int(flits) for node, flits in node_flits.items()
        }
    return row


def _point_from_json(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`_point_to_json` (null -> NaN, dict -> summary).

    Rows from legacy streams lack ``tenants``/``node_flits``/``hist``;
    those decode to empty dicts / a ``None`` histogram.
    """
    point = dict(data)
    point["summary"] = _summary_from_json(data["summary"])
    point["tenants"] = {
        name: _summary_from_json(tenant_data)
        for name, tenant_data in (data.get("tenants") or {}).items()
    }
    point["node_flits"] = {
        int(node): int(flits)
        for node, flits in (data.get("node_flits") or {}).items()
    }
    return point


def read_sweep_stream(
    path: str, skip_partial: bool = False
) -> List[Dict[str, Any]]:
    """Load the grid points streamed to ``path`` by a previous sweep.

    The stream may open with a sweep-spec header line (see
    :func:`make_stream_header`; absent in legacy streams); header lines
    are skipped here — :func:`read_sweep_header` returns the first one.
    Every other line is one completed (design, load, seed) grid point::

        {"design": "mesh", "load": 2.0, "seed": 1,
         "summary": {"count": ..., "mean_head_latency": ..., ...},
         "throughput": ..., "saturated": false, "clamped_flows": 0}

    ``summary`` carries every :class:`~repro.sim.stats.LatencySummary`
    field (NaN written as ``null``); latencies are in cycles, throughput
    in accepted flits per measured cycle.  Blank lines are skipped, and
    a truncated *final* line — the signature of a sweep killed mid-write
    — is discarded so the interrupted point simply re-runs on resume.

    By default corruption anywhere else still raises (a damaged stream
    should not be silently half-loaded).  ``skip_partial=True`` instead
    skips *any* undecodable line, which is the right semantics for the
    two crash shapes a torn write can leave mid-file: an append-mode
    shard whose owner crashed mid-row and was later appended to again
    (:mod:`repro.eval.farm` shards), and a resumed stream whose header
    or an earlier row was torn — resume then simply re-runs the points
    whose rows were lost.
    """
    with open(path) as fh:
        lines = [line.strip() for line in fh]
    lines = [line for line in lines if line]
    points: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if skip_partial or index == len(lines) - 1:
                continue
            raise
        if isinstance(data, dict) and "sweep_spec" in data:
            continue  # header line (anywhere: merged shards keep one)
        try:
            points.append(_point_from_json(data))
        except (KeyError, TypeError, ValueError):
            if skip_partial:
                continue  # complete JSON but not a point row
            raise
    return points


def _point_key(point: Dict[str, Any]) -> Tuple[str, float, int]:
    return (str(point["design"]), float(point["load"]), int(point["seed"]))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _run_jobs(
    jobs: Sequence[SweepJob],
    processes: Optional[int],
    on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
    stream_path: Optional[str] = None,
    resume: bool = False,
    header: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Run grid points, fanning across a process pool when asked.

    ``processes=None`` uses one worker per CPU; ``processes=0`` runs
    serially in this process (no Pool — handy under debuggers).  Results
    stream back in completion order: each point is appended to
    ``stream_path`` (JSONL, headed by ``header``) and passed to
    ``on_result`` as soon as its worker finishes.  With ``resume=True``,
    points already present in ``stream_path`` are loaded instead of
    re-run — after the stream's header hash is checked against
    ``header`` (legacy header-less streams are trusted as before).
    """
    done: List[Dict[str, Any]] = []
    if stream_path and resume and os.path.exists(stream_path):
        existing = read_sweep_header(stream_path)
        if (
            header is not None
            and existing is not None
            and existing.get("spec_hash") != header.get("spec_hash")
        ):
            raise ValueError(
                "refusing to resume %s: stream header hash %s does not match "
                "this sweep's spec hash %s (different workload, cfg, kernel "
                "or run window) — delete the file or rerun the original spec"
                % (stream_path, existing.get("spec_hash"), header.get("spec_hash"))
            )
        # Tolerant read: a stream left behind by a crash may carry a
        # torn line anywhere (mid-write kill, append-after-crash); the
        # points whose rows were lost simply re-run below.
        done = read_sweep_stream(stream_path, skip_partial=True)
        seen = {_point_key(p) for p in done}
        remaining: List[SweepJob] = []
        for job in jobs:
            if job.seeds:
                # Batched point: drop only the seeds already streamed.
                left = tuple(
                    s for s in job.seeds
                    if (job.design, float(job.load), int(s)) not in seen
                )
                if not left:
                    continue
                if left != tuple(job.seeds):
                    job = dataclasses.replace(
                        job, seeds=left, seed=left[0]
                    )
                remaining.append(job)
            elif (job.design, float(job.load), int(job.seed)) not in seen:
                remaining.append(job)
        jobs = remaining

    stream_fh = None
    if stream_path:
        parent = os.path.dirname(stream_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Rewrite rather than append on resume: re-serialising the loaded
        # points drops any truncated trailing fragment the interrupted
        # run left behind, keeping the stream valid JSONL.
        stream_fh = open(stream_path, "w")
        if header is not None:
            stream_fh.write(json.dumps(header) + "\n")
        for point in done:
            stream_fh.write(json.dumps(_point_to_json(point)) + "\n")
        stream_fh.flush()

    results: List[Dict[str, Any]] = []

    def emit(result: Union[Dict[str, Any], List[Dict[str, Any]]]) -> None:
        # Batched jobs return one row per seed; emit each separately so
        # the stream and callbacks see the same per-seed rows either way.
        for point in result if isinstance(result, list) else (result,):
            results.append(point)
            if stream_fh is not None:
                stream_fh.write(json.dumps(_point_to_json(point)) + "\n")
                stream_fh.flush()
            if on_result is not None:
                on_result(point)

    try:
        if processes == 0 or len(jobs) <= 1:
            for job in jobs:
                emit(_run_job(job))
        else:
            workers = processes or os.cpu_count() or 1
            with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
                for point in pool.imap_unordered(_run_job, list(jobs)):
                    emit(point)
    finally:
        if stream_fh is not None:
            stream_fh.close()
    return done + results


def _aggregate(
    raw: List[Dict[str, Any]],
    designs: Sequence[str],
    loads: Sequence[float],
    measure_cycles: Optional[int] = None,
    slo: Optional[Union[float, Dict[str, float]]] = None,
) -> List[Dict[str, Any]]:
    """One row per load, one latency/saturation column group per design.

    Per-seed replications pool with :func:`repro.sim.stats.\
aggregate_summaries` — exact-to-bucket pooled tail percentiles
    (``_p50``/``_p95``/``_p99``/``_p999``) when every replication
    carries a histogram, count-weighted means otherwise;
    ``<design>_ci95`` carries the Student-t 95% confidence half-width
    of the per-seed mean head latencies (NaN below two seeds);
    throughput averages over seeds; the saturation flag is sticky (any
    seed failing to drain marks the point) and ``clamped`` reports the
    worst seed.

    With ``measure_cycles``, ``<design>_max_node_bw`` reports the
    hottest ejection port: delivered flits per measured cycle at the
    busiest destination node, averaged over seeds.  Points carrying
    per-tenant summaries additionally get ``<design>_<tenant>_p99``
    columns, plus ``<design>_<tenant>_slo_ok`` verdicts when ``slo``
    (a p99 head-latency ceiling in cycles) is given — see
    :func:`repro.sim.stats.slo_verdicts`.
    """
    rows: List[Dict[str, Any]] = []
    for load in loads:
        row: Dict[str, Any] = {"load": load}
        for design in designs:
            points = [
                p for p in raw if p["design"] == design and p["load"] == load
            ]
            if not points:
                continue
            summary: LatencySummary = aggregate_summaries(
                [p["summary"] for p in points]
            )
            row[design] = summary.mean_head_latency
            row["%s_p50" % design] = summary.p50_head_latency
            row["%s_p95" % design] = summary.p95_head_latency
            row["%s_p99" % design] = summary.p99_head_latency
            row["%s_p999" % design] = summary.p999_head_latency
            row["%s_ci95" % design] = ci95_halfwidth(
                [p["summary"].mean_head_latency for p in points]
            )
            row["%s_thrpt" % design] = sum(
                p["throughput"] for p in points
            ) / len(points)
            row["%s_saturated" % design] = any(p["saturated"] for p in points)
            row["%s_clamped" % design] = max(
                p["clamped_flows"] for p in points
            )
            achieved = [p.get("achieved_rate") for p in points]
            if all(a is not None for a in achieved):
                # Mean achieved injection rate (packets/cycle over all
                # flows) — below the offered rate when bursty ON-state
                # bursts clamped (legacy rows lack the field and skip
                # the column).
                row["%s_achieved" % design] = sum(achieved) / len(achieved)
            if any(p.get("reconfig_cycles") is not None for p in points):
                # Scenario rows: the phase's reconfiguration bill (same
                # program every seed) and its app label.
                row["%s_reconfig_cycles" % design] = max(
                    int(p.get("reconfig_cycles") or 0) for p in points
                )
            apps = {p["app"] for p in points if p.get("app")}
            if len(apps) == 1:
                row["%s_app" % design] = apps.pop()
            if measure_cycles:
                node_totals: Dict[int, int] = {}
                for p in points:
                    for node, flits in (p.get("node_flits") or {}).items():
                        node_totals[node] = node_totals.get(node, 0) + flits
                row["%s_max_node_bw" % design] = (
                    max(node_totals.values())
                    / (measure_cycles * len(points))
                    if node_totals else 0.0
                )
            tenant_pools: Dict[str, List[LatencySummary]] = {}
            for p in points:
                for name, tenant_summary in (p.get("tenants") or {}).items():
                    tenant_pools.setdefault(name, []).append(tenant_summary)
            pooled_tenants = {
                name: aggregate_summaries(pool)
                for name, pool in sorted(tenant_pools.items())
            }
            for name, pooled in pooled_tenants.items():
                row["%s_%s_p99" % (design, name)] = pooled.p99_head_latency
            if slo is not None and pooled_tenants:
                thresholds = (
                    dict(slo) if isinstance(slo, dict)
                    else {name: float(slo) for name in pooled_tenants}
                )
                for name, ok in slo_verdicts(
                    pooled_tenants, thresholds
                ).items():
                    row["%s_%s_slo_ok" % (design, name)] = ok
        rows.append(row)
    return rows


def _make_jobs(
    designs: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    cfg: NocConfig,
    run_kwargs: Dict[str, int],
    batch: bool = False,
    **spec,
) -> List[SweepJob]:
    """The grid as picklable jobs.

    ``batch=True`` folds the seed axis into one lockstep-batched job per
    (design, load) instead of one job per (design, load, seed); see
    :class:`SweepJob`.
    """
    if batch:
        return [
            SweepJob(
                design=design, load=load, seed=seeds[0],
                seeds=tuple(seeds), cfg=cfg,
                warmup_cycles=run_kwargs["warmup_cycles"],
                measure_cycles=run_kwargs["measure_cycles"],
                drain_limit=run_kwargs["drain_limit"],
                **spec,
            )
            for load in loads
            for design in designs
        ]
    return [
        SweepJob(
            design=design, load=load, seed=seed, cfg=cfg,
            warmup_cycles=run_kwargs["warmup_cycles"],
            measure_cycles=run_kwargs["measure_cycles"],
            drain_limit=run_kwargs["drain_limit"],
            **spec,
        )
        for load in loads
        for design in designs
        for seed in seeds
    ]


def run_workload_sweep(
    workload: Union[str, WorkloadSpec],
    designs: Sequence[str] = DESIGNS,
    loads: Optional[Sequence[float]] = None,
    seeds: Sequence[int] = (1,),
    cfg: Optional[NocConfig] = None,
    processes: Optional[int] = None,
    kernel: str = "active",
    traffic_mode: str = "predraw",
    on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
    stream_path: Optional[str] = None,
    resume: bool = False,
    batch: Optional[bool] = None,
    arrival: str = "bernoulli",
    arrival_params: Optional[Dict[str, float]] = None,
    slo: Optional[Union[float, Dict[str, float]]] = None,
    **run_kwargs: int,
) -> List[Dict[str, Any]]:
    """Latency vs load for any registered workload, in parallel.

    ``loads`` defaults to the workload's own axis defaults (bandwidth
    scales for apps, injection rates for patterns).  Returns one row per
    load with per-design mean latency and tail percentiles
    (``_p50``/``_p95``/``_p99``/``_p999``, pooled exactly across seeds
    via per-run histograms), a 95% confidence half-width over seeds,
    accepted throughput (flits/cycle), hottest-node delivered bandwidth
    (``_max_node_bw``), a saturation flag (the run failed to drain) and
    how many flows were clamped at the injection-port limit.  See the
    module docstring for the ``on_result``/``stream_path``/``resume``
    streaming hooks.

    ``batch`` chooses lockstep-batched seed replications (one job per
    (design, load) advancing all seeds through
    :func:`repro.sim.batch.run_batched`, bit-identical to serial runs);
    ``None`` auto-enables it whenever more than one seed is requested.

    ``arrival`` selects the packet arrival process
    (:data:`repro.sim.traffic.ARRIVALS`): ``"bernoulli"`` (default,
    memoryless), or the bursty ``"onoff"``/``"mmpp"`` processes with
    knobs in ``arrival_params`` (``on_cycles``, ``off_cycles``,
    ``quiet_scale``) — see :class:`repro.sim.traffic.MmppTraffic`.
    Workloads with tenant-tagged flows (composites, tenant mixes) get
    per-tenant ``<design>_<tenant>_p99`` columns; ``slo`` (a p99
    head-latency ceiling in cycles) adds ``_slo_ok`` verdicts.
    """
    spec = WorkloadSpec.of(workload)
    target = get_workload(spec.name)
    spec = dataclasses.replace(spec, name=target.name)
    base = cfg or NocConfig()
    kwargs = dict(DEFAULT_RUN_KWARGS)
    kwargs.update(run_kwargs)
    points = tuple(loads) if loads is not None else target.default_loads
    do_batch = len(seeds) > 1 if batch is None else batch
    params = tuple(sorted((arrival_params or {}).items()))
    jobs = _make_jobs(
        designs, points, seeds, base, kwargs, batch=do_batch,
        workload=spec, kernel=kernel, traffic_mode=traffic_mode,
        arrival=arrival, arrival_params=params,
    )
    header = make_stream_header(
        spec, base, kernel, traffic_mode, kwargs, seeds=seeds,
        arrival=arrival, arrival_params=dict(params),
    )
    raw = _run_jobs(jobs, processes, on_result, stream_path, resume, header)
    return _aggregate(
        raw, designs, points,
        measure_cycles=kwargs["measure_cycles"], slo=slo,
    )


def run_load_sweep(
    app: str = "VOPD",
    designs: Sequence[str] = DESIGNS,
    scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Latency vs offered load for one mapped application.

    Back-compat wrapper over :func:`run_workload_sweep` with the app's
    bandwidth-scale axis.
    """
    return run_workload_sweep(app, designs=designs, loads=scales, **kwargs)


def run_pattern_sweep(
    pattern: str = "uniform",
    designs: Sequence[str] = ("mesh", "smart"),
    rates: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2),
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Latency vs per-node injection rate for a synthetic pattern.

    Back-compat wrapper over :func:`run_workload_sweep`; the pattern now
    flows through route selection and preset computation like any other
    workload instead of being pinned to XY routes.
    """
    return run_workload_sweep(pattern, designs=designs, loads=rates, **kwargs)


def saturation_load(rows: List[Dict[str, Any]], design: str) -> Optional[float]:
    """Smallest swept load at which ``design`` failed to drain, if any."""
    saturated = [
        float(row["load"])
        for row in rows
        if row.get("%s_saturated" % design)
    ]
    return min(saturated) if saturated else None


def format_sweep_rows(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Compact rows for table rendering: latency (flagged '*' when the
    design saturated) per design, one row per load."""
    out = []
    for row in rows:
        pretty: Dict[str, Any] = {"load": row["load"]}
        for key, value in row.items():
            if key == "load" or key.endswith(
                (
                    "_p50", "_p95", "_p99", "_p999", "_ci95", "_thrpt",
                    "_saturated", "_clamped", "_max_node_bw", "_slo_ok",
                    "_achieved", "_reconfig_cycles", "_app",
                )
            ):
                continue
            flag = "*" if row.get("%s_saturated" % key) else ""
            pretty[key] = (
                "%.2f%s" % (value, flag)
                if isinstance(value, float) and not math.isnan(value)
                else "n/a"
            )
        out.append(pretty)
    return out


def write_sweep_json(
    path: str,
    rows: List[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Persist aggregated sweep rows (plus a ``meta`` header) as JSON.

    The file holds ``{"meta": {...}, "rows": [...]}`` with every NaN
    written as ``null`` so the output is strict JSON; ``rows`` are the
    aggregated per-load rows returned by the sweep functions.  Returns
    ``path`` for convenient chaining/printing.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    safe_rows = [
        {key: _float_or_none(value) for key, value in row.items()}
        for row in rows
    ]
    with open(path, "w") as fh:
        json.dump({"meta": meta or {}, "rows": safe_rows}, fh, indent=2)
        fh.write("\n")
    return path
