"""Parallel load-sweep runner.

The paper's headline figures come from sweeping cycle-accurate runs over
(design, load, seed) grids.  Each grid point is an independent simulation,
so this module fans the points across worker processes with
``multiprocessing.Pool`` and aggregates the per-seed ``SimResult``s into
one row per (load, design).

Two sweep axes are supported:

* :func:`run_load_sweep` — scale a mapped SoC application's flow
  bandwidths by a load factor (the paper's saturation axis).  Scaled
  rates past 1 packet/cycle are clamped to a saturated injection port by
  :class:`~repro.sim.traffic.RateScaledTraffic`, so the sweep can
  continue past the knee instead of crashing.
* :func:`run_pattern_sweep` — sweep the per-node injection rate of a
  synthetic pattern (:mod:`repro.sim.patterns`) on an arbitrary mesh.

Jobs are described by small picklable specs; each worker rebuilds the
flow set, traffic model and design locally, so nothing heavier than a
result row crosses the process boundary.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import NocConfig
from repro.eval.designs import DESIGNS
from repro.sim.stats import LatencySummary, aggregate_summaries

#: Simulation window used when the caller does not override it.
DEFAULT_RUN_KWARGS = dict(warmup_cycles=500, measure_cycles=8000, drain_limit=80000)


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One (design, load, seed) grid point, picklable for Pool workers."""

    design: str
    load: float
    seed: int
    cfg: NocConfig
    #: SoC application name (load is a bandwidth scale factor), or None.
    app: Optional[str] = None
    #: Synthetic pattern name (load is packets/cycle/node), or None.
    pattern: Optional[str] = None
    kernel: str = "active"
    traffic_mode: str = "predraw"
    warmup_cycles: int = DEFAULT_RUN_KWARGS["warmup_cycles"]
    measure_cycles: int = DEFAULT_RUN_KWARGS["measure_cycles"]
    drain_limit: int = DEFAULT_RUN_KWARGS["drain_limit"]


def _run_job(job: SweepJob) -> Dict[str, object]:
    """Worker entry point: build and run one grid point."""
    from repro.eval.designs import build_design
    from repro.sim.stats import accepted_flits_per_cycle
    from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic

    cfg = job.cfg
    if job.app is not None:
        from repro.eval.ablations import mapped_flows

        flows = mapped_flows(job.app, cfg)
        traffic = RateScaledTraffic(
            cfg, flows, scale=job.load, seed=job.seed, mode=job.traffic_mode
        )
        clamped = len(traffic.clamped_rates)
    else:
        from repro.sim.patterns import synthetic_flows

        flows = synthetic_flows(job.pattern, cfg, injection_rate=job.load)
        traffic = BernoulliTraffic(
            cfg, flows, seed=job.seed, mode=job.traffic_mode, clamp=True
        )
        clamped = len(traffic.clamped_rates)
    instance = build_design(
        job.design, cfg, flows, traffic=traffic, kernel=job.kernel
    )
    result = instance.run(
        warmup_cycles=job.warmup_cycles,
        measure_cycles=job.measure_cycles,
        drain_limit=job.drain_limit,
    )
    return {
        "design": job.design,
        "load": job.load,
        "seed": job.seed,
        "summary": result.summary,
        "throughput": accepted_flits_per_cycle(result, cfg.flits_per_packet),
        "saturated": not result.drained,
        "clamped_flows": clamped,
    }


def _run_jobs(jobs: Sequence[SweepJob], processes: Optional[int]) -> List[Dict[str, object]]:
    """Run grid points, fanning across a process pool when asked.

    ``processes=None`` uses one worker per CPU; ``processes=0`` runs
    serially in this process (no Pool — handy under debuggers).
    """
    if processes == 0 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    workers = processes or os.cpu_count() or 1
    with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(_run_job, list(jobs))


def _aggregate(
    raw: List[Dict[str, object]],
    designs: Sequence[str],
    loads: Sequence[float],
) -> List[Dict[str, object]]:
    """One row per load, one latency/saturation column group per design."""
    rows: List[Dict[str, object]] = []
    for load in loads:
        row: Dict[str, object] = {"load": load}
        for design in designs:
            points = [
                p for p in raw if p["design"] == design and p["load"] == load
            ]
            if not points:
                continue
            summary: LatencySummary = aggregate_summaries(
                [p["summary"] for p in points]
            )
            row[design] = summary.mean_head_latency
            row["%s_p95" % design] = summary.p95_head_latency
            row["%s_thrpt" % design] = sum(
                p["throughput"] for p in points
            ) / len(points)
            row["%s_saturated" % design] = any(p["saturated"] for p in points)
            row["%s_clamped" % design] = max(
                p["clamped_flows"] for p in points
            )
        rows.append(row)
    return rows


def _make_jobs(
    designs: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    cfg: NocConfig,
    run_kwargs: Dict[str, int],
    **spec,
) -> List[SweepJob]:
    return [
        SweepJob(
            design=design, load=load, seed=seed, cfg=cfg,
            warmup_cycles=run_kwargs["warmup_cycles"],
            measure_cycles=run_kwargs["measure_cycles"],
            drain_limit=run_kwargs["drain_limit"],
            **spec,
        )
        for load in loads
        for design in designs
        for seed in seeds
    ]


def run_load_sweep(
    app: str = "VOPD",
    designs: Sequence[str] = DESIGNS,
    scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    seeds: Sequence[int] = (1,),
    cfg: Optional[NocConfig] = None,
    processes: Optional[int] = None,
    kernel: str = "active",
    **run_kwargs,
) -> List[Dict[str, object]]:
    """Latency vs offered load for one mapped application, in parallel.

    Returns one row per scale with per-design mean/p95 latency, accepted
    throughput (flits/cycle), a saturation flag (the run failed to drain)
    and how many flows were clamped at the injection-port limit.
    """
    base = cfg or NocConfig()
    kwargs = dict(DEFAULT_RUN_KWARGS)
    kwargs.update(run_kwargs)
    jobs = _make_jobs(
        designs, scales, seeds, base, kwargs, app=app, kernel=kernel
    )
    return _aggregate(_run_jobs(jobs, processes), designs, scales)


def run_pattern_sweep(
    pattern: str = "uniform",
    designs: Sequence[str] = ("mesh", "smart"),
    rates: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2),
    seeds: Sequence[int] = (1,),
    cfg: Optional[NocConfig] = None,
    processes: Optional[int] = None,
    kernel: str = "active",
    **run_kwargs,
) -> List[Dict[str, object]]:
    """Latency vs per-node injection rate for a synthetic pattern."""
    base = cfg or NocConfig()
    kwargs = dict(DEFAULT_RUN_KWARGS)
    kwargs.update(run_kwargs)
    jobs = _make_jobs(
        designs, rates, seeds, base, kwargs, pattern=pattern, kernel=kernel
    )
    return _aggregate(_run_jobs(jobs, processes), designs, rates)


def saturation_load(rows: List[Dict[str, object]], design: str) -> Optional[float]:
    """Smallest swept load at which ``design`` failed to drain, if any."""
    saturated = [
        float(row["load"])
        for row in rows
        if row.get("%s_saturated" % design)
    ]
    return min(saturated) if saturated else None


def format_sweep_rows(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Compact rows for table rendering: latency (flagged '*' when the
    design saturated) per design, one row per load."""
    out = []
    for row in rows:
        pretty: Dict[str, object] = {"load": row["load"]}
        for key, value in row.items():
            if key == "load" or key.endswith(("_p95", "_thrpt", "_saturated", "_clamped")):
                continue
            flag = "*" if row.get("%s_saturated" % key) else ""
            pretty[key] = (
                "%.2f%s" % (value, flag)
                if isinstance(value, float) and not math.isnan(value)
                else "n/a"
            )
        out.append(pretty)
    return out
