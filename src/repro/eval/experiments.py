"""Experiment runner: one workload on one design (Fig 10 and beyond).

``run_app`` performs the complete paper flow for one (application, design)
pair: task graph -> modified NMAP placement -> turn-model routing ->
preset computation (for SMART) -> cycle-accurate simulation -> latency and
power.  ``run_workload`` generalises it to any registered workload
(:mod:`repro.workloads`) — synthetic patterns and composite mixes run the
same pipeline and power accounting, with ``load`` on the workload's own
axis.  ``run_suite`` sweeps the Fig 10 matrix and the ``fig10a_rows`` /
``fig10b_rows`` helpers shape the results like the paper's figures.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.registry import PAPER_APP_ORDER, evaluation_task_graph
from repro.config import NocConfig
from repro.eval.designs import (
    DESIGNS,
    DesignInstance,
    build_design,
    build_workload_design,
)
from repro.mapping.nmap import map_application
from repro.mapping.turn_model import TurnModel
from repro.power.accounting import PowerBreakdown, power_from_counters
from repro.sim.flow import Flow
from repro.sim.stats import SimResult
from repro.sim.topology import Mesh
from repro.workloads import WorkloadSpec


@dataclasses.dataclass
class AppExperiment:
    """Result of running one application on one design (one cell of the
    Fig 10 latency/power matrices)."""

    app: str
    design: str
    result: SimResult
    #: Fig 10b power (Dedicated: link power only, as the paper plots it).
    power: PowerBreakdown
    #: Honest full accounting (Dedicated sink routers included).
    power_full: PowerBreakdown
    mapping: Dict[str, int]
    flows: List[Flow]
    instance: DesignInstance

    @property
    def mean_latency(self) -> float:
        return self.result.mean_latency


def run_app(
    app: str,
    design: str,
    cfg: Optional[NocConfig] = None,
    warmup_cycles: int = 2000,
    measure_cycles: int = 40000,
    drain_limit: int = 200000,
    seed: int = 1,
    mapping_algorithm: str = "nmap_modified",
    turn_model: TurnModel = TurnModel.WEST_FIRST,
) -> AppExperiment:
    """Run the full paper flow for one (application, design) pair."""
    cfg = cfg or NocConfig()
    graph = evaluation_task_graph(app)
    mesh = Mesh(cfg.width, cfg.height)
    mapping, flows = map_application(
        graph, mesh, algorithm=mapping_algorithm, turn_model=turn_model, seed=seed
    )
    instance = build_design(design, cfg, flows, seed=seed)
    result = instance.run(
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        drain_limit=drain_limit,
    )
    link_only = instance.design == "dedicated"
    power = power_from_counters(result.counters, cfg, link_only=link_only)
    power_full = power_from_counters(result.counters, cfg, link_only=False)
    return AppExperiment(
        app=graph.name,
        design=instance.design,
        result=result,
        power=power,
        power_full=power_full,
        mapping=mapping,
        flows=flows,
        instance=instance,
    )


def run_workload(
    workload: Union[str, WorkloadSpec],
    design: str,
    load: float = 1.0,
    cfg: Optional[NocConfig] = None,
    warmup_cycles: int = 2000,
    measure_cycles: int = 40000,
    drain_limit: int = 200000,
    seed: int = 1,
    kernel: str = "active",
) -> AppExperiment:
    """Run the full pipeline for any registered workload on one design.

    Apps and patterns alike go through demand placement, turn-model
    route selection, preset computation and power accounting; ``load``
    is interpreted on the workload's axis (bandwidth scale for apps,
    packets/cycle/node for patterns).  For app workloads at ``load=1.0``
    this reproduces :func:`run_app`'s defaults.
    """
    cfg = cfg or NocConfig()
    instance = build_workload_design(
        workload, design, cfg=cfg, load=load, seed=seed, kernel=kernel
    )
    result = instance.run(
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        drain_limit=drain_limit,
    )
    link_only = instance.design == "dedicated"
    return AppExperiment(
        app=instance.workload.name,
        design=instance.design,
        result=result,
        power=power_from_counters(result.counters, cfg, link_only=link_only),
        power_full=power_from_counters(result.counters, cfg, link_only=False),
        mapping=instance.workload.mapping or {},
        flows=list(instance.flows),
        instance=instance,
    )


#: The full Fig 10 matrix keyed by (app, design) — what :func:`run_suite`
#: returns and every ``fig10*_rows`` / ``headline_metrics`` helper consumes.
SuiteResults = Dict[Tuple[str, str], AppExperiment]


def run_suite(
    apps: Sequence[str] = tuple(PAPER_APP_ORDER),
    designs: Sequence[str] = DESIGNS,
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> SuiteResults:
    """Run the Fig 10 matrix: every app on every design."""
    results: SuiteResults = {}
    for app in apps:
        for design in designs:
            results[(app, design)] = run_app(app, design, cfg=cfg, **kwargs)
    return results


def fig10a_rows(results: SuiteResults) -> List[Dict[str, object]]:
    """Average network latency rows, one per application (Fig 10a)."""
    apps = sorted({app for app, _ in results}, key=_paper_order)
    rows = []
    for app in apps:
        row: Dict[str, object] = {"app": app}
        for design in DESIGNS:
            experiment = results.get((app, design))
            if experiment is not None:
                row[design] = experiment.mean_latency
        rows.append(row)
    return rows


def fig10b_rows(results: SuiteResults) -> List[Dict[str, object]]:
    """Power-breakdown rows, one per (app, design) (Fig 10b)."""
    apps = sorted({app for app, _ in results}, key=_paper_order)
    rows = []
    for app in apps:
        for design in DESIGNS:
            experiment = results.get((app, design))
            if experiment is None:
                continue
            breakdown = experiment.power
            rows.append(
                {
                    "app": app,
                    "design": design,
                    "buffer_w": breakdown.buffer_w,
                    "allocator_w": breakdown.allocator_w,
                    "xbar_w": breakdown.xbar_w,
                    "link_w": breakdown.link_w,
                    "total_w": breakdown.total_w,
                }
            )
    return rows


@dataclasses.dataclass(frozen=True)
class HeadlineMetrics:
    """The paper's headline claims, measured on a suite run."""

    mean_latency_mesh: float
    mean_latency_smart: float
    mean_latency_dedicated: float
    latency_saving_vs_mesh: float
    gap_vs_dedicated_cycles: float
    power_ratio_mesh_over_smart: float


def headline_metrics(results: SuiteResults) -> HeadlineMetrics:
    """Compute the abstract's numbers: ~60% latency saving vs Mesh,
    ~1.5 cycles above Dedicated, ~2.2x power saving."""
    apps = sorted({app for app, _ in results})

    def latencies(design: str) -> List[float]:
        return [results[(app, design)].mean_latency for app in apps]

    def powers(design: str) -> List[float]:
        return [results[(app, design)].power.total_w for app in apps]

    mesh_lat = statistics.fmean(latencies("mesh"))
    smart_lat = statistics.fmean(latencies("smart"))
    dedicated_lat = statistics.fmean(latencies("dedicated"))
    power_ratio = statistics.fmean(
        m / s for m, s in zip(powers("mesh"), powers("smart"))
    )
    return HeadlineMetrics(
        mean_latency_mesh=mesh_lat,
        mean_latency_smart=smart_lat,
        mean_latency_dedicated=dedicated_lat,
        latency_saving_vs_mesh=1.0 - smart_lat / mesh_lat,
        gap_vs_dedicated_cycles=smart_lat - dedicated_lat,
        power_ratio_mesh_over_smart=power_ratio,
    )


def _paper_order(app: str) -> int:
    try:
        return PAPER_APP_ORDER.index(app)
    except ValueError:
        return len(PAPER_APP_ORDER)
