"""Hand-built scenarios from the paper's figures.

* :func:`fig7_flows` — the four-flow example of Fig 7: two non-overlapping
  flows traverse source NIC to destination NIC in a single cycle; two flows
  overlap on the link between routers 9 and 10 and must stop at the routers
  before and after it (cumulative traversal times 1, 4, 7).
* :data:`FIG1_APPS` — the three applications Fig 1 reconfigures between.
"""

from __future__ import annotations

from typing import List

from repro.sim.flow import Flow
from repro.sim.topology import Port

#: Fig 1 reconfigures the mesh for these applications, in order.
FIG1_APPS = ("WLAN", "H264", "VOPD")

#: Expected cumulative arrival cycles for the blue/red flows of Fig 7.
FIG7_STOP_TIMES = (1, 4, 7)


def fig7_flows() -> List[Flow]:
    """The four flows of Fig 7 on the paper's 4x4 mesh.

    * blue (id 0): 8 -> 3 via routers 8, 9, 10, 11, 7, 3
    * red (id 1): 13 -> 2 via routers 13, 9, 10, 6, 2 — shares link 9->10
      with blue, so both stop at routers 9 and 10
    * green (id 2): 12 -> 15 — single-cycle
    * purple (id 3): 0 -> 5 — single-cycle
    """
    blue = Flow(
        0, 8, 3, 1e6,
        route=(Port.EAST, Port.EAST, Port.EAST, Port.SOUTH, Port.SOUTH, Port.CORE),
        name="blue",
    )
    red = Flow(
        1, 13, 2, 1e6,
        route=(Port.SOUTH, Port.EAST, Port.SOUTH, Port.SOUTH, Port.CORE),
        name="red",
    )
    green = Flow(
        2, 12, 15, 1e6,
        route=(Port.EAST, Port.EAST, Port.EAST, Port.CORE),
        name="green",
    )
    purple = Flow(
        3, 0, 5, 1e6,
        route=(Port.EAST, Port.NORTH, Port.CORE),
        name="purple",
    )
    return [blue, red, green, purple]
