"""Sweep farm: content-addressed job queue, sharded workers, idempotent merge.

The streamed sweeps in :mod:`repro.eval.sweeps` scale one process across
one machine's cores.  This module is the multi-worker / multi-host story
on top of the same grid points: drive thousands of (workload x mesh x
kernel x seed) simulations from N cooperating worker processes — on one
host or on many hosts sharing a filesystem — and recover from any of
them crashing at any time.

The design is content-addressed end to end:

* A **farm spec** is the existing sweep stream header
  (:func:`repro.eval.sweeps.make_stream_header`) — workload, mesh/router
  config, kernel, traffic mode, run window — plus a grid (designs x
  loads x seeds).  The header's ``spec_hash`` names the queue directory
  ``<root>/<spec_hash>/``, so two hosts enumerating the same sweep land
  in the same queue, and a sweep ``--resume`` stream of the same spec is
  importable as a shard (:func:`import_stream`).
* Every grid point gets a **point hash** derived from (spec hash,
  design, load, seed): the unit of leasing, completion marking, and
  merge dedupe.
* Workers lease points via atomic ``O_CREAT | O_EXCL`` **lease files**
  and append finished rows to their own JSONL **shard**; a completion
  **marker** (atomic rename) publishes the point as done before the
  lease is released.  A crashed worker leaves its lease behind; once the
  lease is older than its declared TTL any other worker may steal it
  (atomic rename — exactly one stealer wins) and re-run the point.
* **Merge** unions every shard, tolerates torn (partially written)
  lines anywhere, dedupes rows by point hash with a deterministic,
  permutation- and duplication-invariant winner rule, and emits the same
  aggregated JSON/markdown a single-process sweep produces — plus a
  canonical merged stream that ``repro sweep --resume`` accepts.

Correctness model: under normal operation every point runs **exactly
once** (the lease is exclusive and the done marker is re-checked after
acquisition).  Crash recovery and lease stealing give **at least once**;
the merge's content-addressed dedupe makes duplicates harmless, and the
kernels' bit-identity contract (docs/kernel.md) makes duplicate rows for
one point bit-identical anyway.  See docs/farm.md for the queue layout,
the lease protocol, and the multi-host caveats (POSIX rename/link
semantics; NFS mtime skew widens the effective TTL).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import socket
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config import NocConfig
from repro.eval.designs import DESIGNS
from repro.eval.sweeps import (
    DEFAULT_RUN_KWARGS,
    SweepJob,
    _aggregate,
    _point_from_json,
    _point_to_json,
    _run_job,
    format_sweep_rows,
    make_stream_header,
    read_sweep_header,
    read_sweep_stream,
    sweep_spec_hash,
    write_sweep_json,
)
from repro.workloads import WorkloadSpec, get_workload

#: Default queue root; each spec gets ``<root>/<spec_hash>/``.
DEFAULT_ROOT = os.path.join("results", "farm")

#: Seconds after which an unreleased lease counts as crashed.
DEFAULT_LEASE_TTL = 600.0

#: Format tag written into ``spec.json`` (bump on incompatible changes).
FARM_FORMAT = "smart-farm/1"

_SPEC_FILE = "spec.json"
_SHARDS_DIR = "shards"
_LEASES_DIR = "leases"
_DONE_DIR = "done"

#: Monotonic per-process counter: unique names for steal renames and
#: temp files without drawing on wall-clock or OS entropy.
_unique = itertools.count(1)


class FarmWorkerCrash(RuntimeError):
    """Raised by an injected fault to simulate a worker dying mid-shard.

    The worker's lease is intentionally left behind so crash-recovery
    paths (lease expiry, stealing, merge dedupe) are exercised exactly
    as a real ``kill -9`` would exercise them.
    """


@dataclasses.dataclass
class FaultInjector:
    """Test hook: crash the worker after it completed ``after_n_points``.

    With ``torn_write=True`` the crash happens *mid-write*: half of the
    next finished row is flushed to the shard before the worker dies,
    leaving the torn trailing line a real crash leaves.  Without it the
    worker dies after finishing the simulation but before writing the
    row (the work is simply lost).
    """

    after_n_points: int
    torn_write: bool = False

    def fires(self, completed: int) -> bool:
        """Whether the crash triggers once ``completed`` points landed."""
        return completed >= self.after_n_points


@dataclasses.dataclass(frozen=True)
class FarmPoint:
    """One enumerated grid point of a farm queue."""

    point_hash: str
    design: str
    load: float
    seed: int


def point_hash(spec_hash: str, design: str, load: float, seed: int) -> str:
    """Content hash naming one grid point of one spec.

    Canonical-JSON SHA-256 over (spec hash, design, load, seed),
    truncated like :func:`~repro.eval.sweeps.sweep_spec_hash`.  The load
    goes through ``json.dumps`` float repr, which round-trips exactly,
    so every process that parsed the same ``spec.json`` derives the same
    hashes.
    """
    canon = json.dumps(
        {"design": design, "load": load, "seed": seed, "spec": spec_hash},
        sort_keys=True,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class FarmSpec:
    """A loaded farm queue: the hashed sweep spec plus its grid.

    ``header`` is exactly the stream header a sweep of the same spec
    writes (``{"sweep_spec": ..., "spec_hash": ...}``), which is what
    makes sweep streams and farm shards interchangeable.
    """

    root: str
    header: Dict[str, Any]
    designs: Tuple[str, ...]
    loads: Tuple[float, ...]
    seeds: Tuple[int, ...]

    @property
    def spec_hash(self) -> str:
        """The content hash naming this queue."""
        return str(self.header["spec_hash"])

    def points(self) -> List[FarmPoint]:
        """Every grid point, in the sweep runner's enumeration order."""
        return [
            FarmPoint(
                point_hash(self.spec_hash, design, load, seed),
                design,
                load,
                seed,
            )
            for load in self.loads
            for design in self.designs
            for seed in self.seeds
        ]

    def job_for(self, point: FarmPoint) -> SweepJob:
        """The :class:`~repro.eval.sweeps.SweepJob` for one point.

        Reconstructed from the recorded sweep spec, so a farm worker
        runs the *identical* job a single-process sweep would run — the
        basis of the row-for-row equality the fault-injection suite
        asserts.
        """
        spec = self.header["sweep_spec"]
        if spec.get("scenario"):
            raise ValueError(
                "farm queue %s holds a reconfiguration scenario "
                "(phases are sequentially dependent, so points cannot be "
                "recomputed independently) — run `repro scenario` with a "
                "stream and `repro farm import` it instead of farm work"
                % self.spec_hash
            )
        return SweepJob(
            design=point.design,
            load=point.load,
            seed=point.seed,
            cfg=NocConfig(**spec["cfg"]),
            workload=WorkloadSpec(
                spec["workload"], tuple(sorted(spec["params"].items()))
            ),
            kernel=spec["kernel"],
            traffic_mode=spec["traffic_mode"],
            warmup_cycles=spec["warmup_cycles"],
            measure_cycles=spec["measure_cycles"],
            drain_limit=spec["drain_limit"],
            arrival=spec.get("arrival", "bernoulli"),
            arrival_params=tuple(
                sorted(spec.get("arrival_params", {}).items())
            ),
        )


# ----------------------------------------------------------------------
# Queue layout
# ----------------------------------------------------------------------

def _shards_dir(spec: FarmSpec) -> str:
    return os.path.join(spec.root, _SHARDS_DIR)


def _leases_dir(spec: FarmSpec) -> str:
    return os.path.join(spec.root, _LEASES_DIR)


def _done_dir(spec: FarmSpec) -> str:
    return os.path.join(spec.root, _DONE_DIR)


def shard_path(spec: FarmSpec, worker: str) -> str:
    """The JSONL shard ``worker`` appends its finished rows to."""
    return os.path.join(_shards_dir(spec), "%s.jsonl" % worker)


def _lease_path(spec: FarmSpec, ph: str) -> str:
    return os.path.join(_leases_dir(spec), "%s.lease" % ph)


def _done_path(spec: FarmSpec, ph: str) -> str:
    return os.path.join(_done_dir(spec), ph)


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    """Write JSON via a temp file + atomic rename (no torn spec files)."""
    tmp = "%s.tmp-%d-%d" % (path, os.getpid(), next(_unique))
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def default_worker_id() -> str:
    """A worker id unique across cooperating hosts: ``<host>-<pid>``."""
    return "%s-%d" % (socket.gethostname(), os.getpid())


# ----------------------------------------------------------------------
# Enumerate / load
# ----------------------------------------------------------------------

def enumerate_farm(
    workload: Union[str, WorkloadSpec],
    designs: Sequence[str] = DESIGNS,
    loads: Optional[Sequence[float]] = None,
    seeds: Sequence[int] = (1,),
    cfg: Optional[NocConfig] = None,
    kernel: str = "active",
    traffic_mode: str = "predraw",
    root: str = DEFAULT_ROOT,
    arrival: str = "bernoulli",
    arrival_params: Optional[Dict[str, float]] = None,
    **run_kwargs: int,
) -> FarmSpec:
    """Create (or extend) the content-addressed queue for one sweep spec.

    Resolves the workload, run window and arrival process exactly like
    :func:`repro.eval.sweeps.run_workload_sweep`, hashes the spec with
    the shared stream-header hash, and writes
    ``<root>/<spec_hash>/spec.json`` atomically.  Re-enumerating an
    existing queue is idempotent; a *different* grid for the same spec
    unions into the recorded one (first-seen order preserved), so a
    queue can be widened with more loads or seeds without re-running
    finished points.
    """
    spec = WorkloadSpec.of(workload)
    target = get_workload(spec.name)
    spec = dataclasses.replace(spec, name=target.name)
    base = cfg or NocConfig()
    kwargs = dict(DEFAULT_RUN_KWARGS)
    kwargs.update(run_kwargs)
    points = tuple(
        float(x) for x in (loads if loads is not None else target.default_loads)
    )
    header = make_stream_header(
        spec, base, kernel, traffic_mode, kwargs,
        arrival=arrival, arrival_params=arrival_params,
    )
    return enumerate_farm_from_header(
        header, designs=designs, loads=points, seeds=seeds, root=root
    )


def enumerate_farm_from_header(
    header: Dict[str, Any],
    designs: Sequence[str],
    loads: Sequence[float],
    seeds: Sequence[int],
    root: str = DEFAULT_ROOT,
) -> FarmSpec:
    """Create (or extend) a queue from an already-built stream header.

    The shared tail of :func:`enumerate_farm`, exposed so layers with
    their own header construction — reconfiguration scenarios hash a
    ``scenario`` spec section via
    :func:`repro.eval.reconfig.enumerate_scenario_farm` — address the
    same queue layout.  Same idempotence/union semantics.
    """
    spec_dir = os.path.join(root, header["spec_hash"])
    grid = {
        "designs": [str(d) for d in designs],
        "loads": [float(x) for x in loads],
        "seeds": [int(s) for s in seeds],
    }
    existing = _read_spec_file(spec_dir)
    if existing is not None:
        if existing["spec_hash"] != header["spec_hash"]:
            raise ValueError(
                "queue directory %s holds spec hash %s, not %s — the "
                "directory was moved or hand-edited"
                % (spec_dir, existing["spec_hash"], header["spec_hash"])
            )
        grid = _union_grid(existing["grid"], grid)
    for sub in (_SHARDS_DIR, _LEASES_DIR, _DONE_DIR):
        os.makedirs(os.path.join(spec_dir, sub), exist_ok=True)
    _atomic_write_json(
        os.path.join(spec_dir, _SPEC_FILE),
        {
            "format": FARM_FORMAT,
            "sweep_spec": header["sweep_spec"],
            "spec_hash": header["spec_hash"],
            "grid": grid,
        },
    )
    return load_farm(spec_dir)


def _union_grid(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """Union two grids per axis, preserving first-seen order."""
    merged: Dict[str, Any] = {}
    for axis in ("designs", "loads", "seeds"):
        values = list(old[axis])
        values.extend(v for v in new[axis] if v not in values)
        merged[axis] = values
    return merged


def _read_spec_file(spec_dir: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(spec_dir, _SPEC_FILE)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def load_farm(spec_dir: str) -> FarmSpec:
    """Load a queue directory written by :func:`enumerate_farm`.

    The recorded hash is re-derived from the recorded sweep spec and
    must match — a hand-edited ``spec.json`` would otherwise let
    incompatible rows share a queue.
    """
    data = _read_spec_file(spec_dir)
    if data is None:
        raise FileNotFoundError(
            "%s has no %s — run `python -m repro farm enumerate` first"
            % (spec_dir, _SPEC_FILE)
        )
    recomputed = sweep_spec_hash(data["sweep_spec"])
    if recomputed != data["spec_hash"]:
        raise ValueError(
            "spec.json in %s is inconsistent: recorded hash %s, but the "
            "recorded sweep spec hashes to %s"
            % (spec_dir, data["spec_hash"], recomputed)
        )
    grid = data["grid"]
    return FarmSpec(
        root=spec_dir,
        header={"sweep_spec": data["sweep_spec"], "spec_hash": data["spec_hash"]},
        designs=tuple(str(d) for d in grid["designs"]),
        loads=tuple(float(x) for x in grid["loads"]),
        seeds=tuple(int(s) for s in grid["seeds"]),
    )


def resolve_spec_dir(spec: str, root: str = DEFAULT_ROOT) -> str:
    """Resolve a CLI ``--spec`` value: a queue directory or a spec hash.

    A path containing a ``spec.json`` wins; otherwise the value is
    treated as a (unique prefix of a) spec hash under ``root``.
    """
    if os.path.isfile(os.path.join(spec, _SPEC_FILE)):
        return spec
    if os.path.isdir(root):
        matches = sorted(
            name
            for name in os.listdir(root)
            if name.startswith(spec)
            and os.path.isfile(os.path.join(root, name, _SPEC_FILE))
        )
        if len(matches) == 1:
            return os.path.join(root, matches[0])
        if len(matches) > 1:
            raise ValueError(
                "spec %r is ambiguous under %s: %s"
                % (spec, root, ", ".join(matches))
            )
    raise FileNotFoundError(
        "no farm queue %r (looked for a directory with %s, then for a "
        "hash prefix under %s)" % (spec, _SPEC_FILE, root)
    )


# ----------------------------------------------------------------------
# Lease protocol
# ----------------------------------------------------------------------

def acquire_lease(
    spec: FarmSpec, ph: str, worker: str, ttl: float = DEFAULT_LEASE_TTL
) -> bool:
    """Try to claim point ``ph``; True iff this worker now holds it.

    Acquisition is an atomic ``O_CREAT | O_EXCL`` create, so exactly one
    worker wins a free lease.  A held lease older than its declared TTL
    (by file mtime) is presumed crashed and stolen: the stale file is
    atomically renamed aside — exactly one stealer's rename succeeds —
    and acquisition retries once on the then-free path.
    """
    path = _lease_path(spec, ph)
    payload = json.dumps(
        {"worker": worker, "pid": os.getpid(),
         "host": socket.gethostname(), "ttl": ttl},
        sort_keys=True,
    )
    for attempt in (0, 1):
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            if attempt or not _lease_stale(path, ttl):
                return False
            if not _steal_lease(path, worker):
                return False
            continue
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True
    return False


def _lease_stale(path: str, default_ttl: float) -> bool:
    """Whether the lease at ``path`` is older than its declared TTL.

    The TTL its writer declared wins; a torn or unreadable lease body
    falls back to the caller's TTL.  A lease that vanished while we
    looked counts as stale (the next O_EXCL attempt decides the race).
    """
    try:
        # repro-lint: ok DET001 -- lease expiry compares wall-clock file
        # ages across workers/hosts; no simulation state depends on it
        age = time.time() - os.stat(path).st_mtime
    except FileNotFoundError:
        return True
    ttl = default_ttl
    try:
        with open(path) as fh:
            ttl = float(json.load(fh)["ttl"])
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return age > ttl


def _steal_lease(path: str, worker: str) -> bool:
    """Atomically retire a stale lease; True iff *we* retired it.

    ``os.rename`` to a per-stealer name succeeds for exactly one of any
    number of concurrent stealers; the losers see ``FileNotFoundError``
    and go back to the regular acquisition race.
    """
    aside = "%s.stale-%s-%d-%d" % (path, worker, os.getpid(), next(_unique))
    try:
        os.rename(path, aside)
    except FileNotFoundError:
        return False
    try:
        os.unlink(aside)
    except FileNotFoundError:
        pass
    return True


def release_lease(spec: FarmSpec, ph: str) -> None:
    """Drop the lease for ``ph`` (missing files are fine: already stolen)."""
    try:
        os.unlink(_lease_path(spec, ph))
    except FileNotFoundError:
        pass


def _mark_done(spec: FarmSpec, ph: str, worker: str) -> None:
    """Publish ``ph`` as complete (atomic rename; double-claim safe)."""
    path = _done_path(spec, ph)
    tmp = "%s.tmp-%s-%d-%d" % (path, worker, os.getpid(), next(_unique))
    with open(tmp, "w") as fh:
        fh.write(worker + "\n")
    os.replace(tmp, path)


def _is_done(spec: FarmSpec, ph: str) -> bool:
    return os.path.exists(_done_path(spec, ph))


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------

def _open_shard(path: str) -> Any:
    """Open a shard for appending, repairing a torn trailing line first.

    If the previous owner of this worker id crashed mid-write, the file
    ends in half a row with no newline; appending straight after it
    would glue the next (good) row onto the torn fragment and lose both.
    Terminating the fragment turns it into one invalid line that every
    tolerant reader skips.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            torn = fh.read(1) != b"\n"
        if torn:
            with open(path, "ab") as fh:
                fh.write(b"\n")
    return open(path, "a")


def _read_shard(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Rows of one shard plus how many undecodable lines were skipped.

    Tolerates torn lines *anywhere* (a crashed-then-reused worker id
    leaves them mid-file) and lines that decode but are not point rows.
    """
    rows: List[Dict[str, Any]] = []
    skipped = 0
    with open(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(data, dict) or "point" not in data:
                if isinstance(data, dict) and "sweep_spec" in data:
                    continue  # header of an imported/merged stream
                skipped += 1
                continue
            try:
                rows.append(_point_from_json(data))
            except (KeyError, TypeError, ValueError):
                skipped += 1
    return rows, skipped


def _shard_files(spec: FarmSpec) -> List[str]:
    shards = _shards_dir(spec)
    if not os.path.isdir(shards):
        return []
    return [
        os.path.join(shards, name)
        for name in sorted(os.listdir(shards))
        if name.endswith(".jsonl")
    ]


def scan_rows(spec: FarmSpec) -> Tuple[List[Dict[str, Any]], int]:
    """All rows across every shard (merged stream included) + torn-line count."""
    rows: List[Dict[str, Any]] = []
    skipped = 0
    sources = _shard_files(spec)
    merged = merged_stream_path(spec)
    if os.path.exists(merged):
        sources.append(merged)
    for path in sources:
        shard_rows, shard_skipped = _read_shard(path)
        rows.extend(shard_rows)
        skipped += shard_skipped
    return rows, skipped


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------

def work_on(
    spec: Union[str, FarmSpec],
    worker: Optional[str] = None,
    max_points: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    fault: Optional[FaultInjector] = None,
    on_point: Optional[Callable[[FarmPoint, Dict[str, Any]], None]] = None,
) -> int:
    """Run one worker over the queue; returns how many points it landed.

    The worker scans the grid in enumeration order, skipping points that
    are done (completion marker or an already-scanned row) and points
    whose lease another worker holds.  For each point it wins it runs
    the *identical* :class:`~repro.eval.sweeps.SweepJob` a
    single-process sweep would run, appends the row to its own shard,
    publishes the completion marker, and only then releases the lease —
    so a point is never lost between "row written" and "marked done".

    N concurrent invocations (processes or hosts on a shared
    filesystem) cooperate safely; each needs a distinct ``worker`` id
    (the default ``<host>-<pid>`` is distinct by construction).
    ``fault`` injects a simulated crash (see :class:`FaultInjector`);
    the lease of the point being processed is then deliberately left
    behind for recovery paths to find.
    """
    farm = load_farm(spec) if isinstance(spec, str) else spec
    name = worker or default_worker_id()
    done = {row["point"] for row in scan_rows(farm)[0]}
    completed = 0
    shard = _open_shard(shard_path(farm, name))
    try:
        for point in farm.points():
            if max_points is not None and completed >= max_points:
                break
            ph = point.point_hash
            if ph in done or _is_done(farm, ph):
                continue
            if not acquire_lease(farm, ph, name, ttl=lease_ttl):
                continue
            crashed = False
            try:
                if _is_done(farm, ph):
                    continue  # finished between our scan and our claim
                result = _run_job(farm.job_for(point))
                row = dict(_point_to_json(result), point=ph)
                text = json.dumps(row)
                if fault is not None and fault.fires(completed):
                    crashed = True
                    if fault.torn_write:
                        shard.write(text[: max(1, len(text) // 2)])
                        shard.flush()
                    raise FarmWorkerCrash(
                        "injected crash in %s after %d points" % (name, completed)
                    )
                shard.write(text + "\n")
                shard.flush()
                _mark_done(farm, ph, name)
                done.add(ph)
                completed += 1
                if on_point is not None:
                    on_point(point, row)
            finally:
                if not crashed:
                    release_lease(farm, ph)
    finally:
        shard.close()
    return completed


def _work_entry(
    spec_dir: str, worker: str, max_points: Optional[int], lease_ttl: float
) -> None:
    """Module-level process entry point (picklable under spawn)."""
    work_on(spec_dir, worker=worker, max_points=max_points, lease_ttl=lease_ttl)


def work_many(
    spec: Union[str, FarmSpec],
    procs: int,
    worker_prefix: Optional[str] = None,
    max_points: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> None:
    """Drive ``procs`` real worker processes over one queue and join them.

    Convenience wrapper for single-host scale-out (the CLI's ``farm work
    --procs N``); multi-host farms just invoke ``farm work`` once per
    host.  Raises if any worker process exits non-zero.
    """
    farm = load_farm(spec) if isinstance(spec, str) else spec
    prefix = worker_prefix or default_worker_id()
    workers = [
        multiprocessing.Process(
            target=_work_entry,
            args=(farm.root, "%s-w%d" % (prefix, index), max_points, lease_ttl),
        )
        for index in range(procs)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join()
    failed = [proc for proc in workers if proc.exitcode != 0]
    if failed:
        raise RuntimeError(
            "%d of %d farm workers exited non-zero (%s)"
            % (len(failed), len(workers),
               ", ".join(str(proc.exitcode) for proc in failed))
        )


# ----------------------------------------------------------------------
# Merge / compact
# ----------------------------------------------------------------------

def merge_rows(rows: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Dedupe decoded shard rows by point hash, deterministically.

    The winner for a point is the row with the lexicographically
    greatest canonical JSON encoding — a rule that is invariant under
    shard permutation and duplication (the merge-idempotency property
    the test suite pins).  Duplicate rows for one point are bit-identical
    in practice (same :class:`~repro.eval.sweeps.SweepJob`, deterministic
    kernels), so the rule only ever breaks ties between equals except
    under corruption, where it still picks *one* row deterministically.
    """
    best: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for row in rows:
        ph = str(row["point"])
        encoded = json.dumps(
            dict(_point_to_json(row), point=ph), sort_keys=True
        )
        kept = best.get(ph)
        if kept is None or encoded > kept[0]:
            best[ph] = (encoded, row)
    return {ph: row for ph, (_, row) in best.items()}


def merged_stream_path(spec: FarmSpec) -> str:
    """The canonical merged stream (header + rows in grid order)."""
    return os.path.join(spec.root, "merged.jsonl")


@dataclasses.dataclass(frozen=True)
class MergeResult:
    """What a merge produced and how complete the queue is."""

    spec_hash: str
    total_points: int
    done_points: int
    missing: Tuple[FarmPoint, ...]
    duplicates: int
    partial_lines: int
    dropped_outside_grid: int
    stream_path: str
    json_path: str
    markdown_path: str

    @property
    def complete(self) -> bool:
        """True iff every enumerated grid point has a merged row."""
        return not self.missing


def merge_farm(
    spec: Union[str, FarmSpec],
    out_base: Optional[str] = None,
    compact: bool = False,
    slo: Optional[Union[float, Dict[str, float]]] = None,
) -> MergeResult:
    """Union all shards into the single-process sweep's outputs.

    Writes (atomically, so concurrent merges never tear):

    * ``merged.jsonl`` — the spec header plus one row per completed
      point in grid enumeration order; a byte-stable canonical stream
      that ``repro sweep --resume`` accepts and re-merging reproduces.
    * ``merged.json`` — the aggregated per-load rows
      (:func:`repro.eval.sweeps.write_sweep_json` schema, same as
      ``repro sweep``).
    * ``merged.md`` — the markdown latency table the committed
      ``results/sweep_*.md`` studies use.

    Merging is idempotent: the merged stream is itself a row source, so
    ``merge(merge(X)) == merge(X)`` even after ``compact=True`` deletes
    the per-worker shards whose rows it just folded in.  Compaction
    refuses to run while any fresh lease exists (a live worker may be
    appending).

    Rows carrying latency histograms aggregate to exact-to-bucket
    pooled tail percentiles; ``slo`` (a p99 head-latency ceiling in
    cycles) adds per-tenant ``_slo_ok`` verdict columns for workloads
    with tenant-tagged flows — both exactly as in
    :func:`repro.eval.sweeps.run_workload_sweep`.
    """
    farm = load_farm(spec) if isinstance(spec, str) else spec
    rows, partial_lines = scan_rows(farm)
    deduped = merge_rows(rows)
    duplicates = len(rows) - len(deduped)
    points = farm.points()
    grid_hashes = {p.point_hash for p in points}
    dropped = len([ph for ph in deduped if ph not in grid_hashes])
    ordered = [
        deduped[p.point_hash] for p in points if p.point_hash in deduped
    ]
    missing = tuple(p for p in points if p.point_hash not in deduped)

    base = out_base or os.path.join(farm.root, "merged")
    # The canonical stream always lives in the queue directory: it is a
    # row source for future merges (that is what makes merge idempotent
    # and compaction safe), so redirecting it with ``out_base`` would
    # fork the queue's memory.  ``out_base`` redirects the reports only.
    stream_path = merged_stream_path(farm)
    tmp = "%s.tmp-%d-%d" % (stream_path, os.getpid(), next(_unique))
    with open(tmp, "w") as fh:
        fh.write(json.dumps(farm.header) + "\n")
        for row in ordered:
            fh.write(json.dumps(dict(_point_to_json(row), point=row["point"]))
                     + "\n")
    os.replace(tmp, stream_path)

    sweep_spec = farm.header["sweep_spec"]
    aggregated = _aggregate(
        ordered, farm.designs, farm.loads,
        measure_cycles=sweep_spec["measure_cycles"], slo=slo,
    )
    meta = {
        "workload": sweep_spec["workload"],
        "kernel": sweep_spec["kernel"],
        "size": "%dx%d" % (sweep_spec["cfg"]["width"],
                           sweep_spec["cfg"]["height"]),
        "designs": list(farm.designs),
        "loads": list(farm.loads),
        "seeds": list(farm.seeds),
        "measure_cycles": sweep_spec["measure_cycles"],
        "farm": {
            "spec_hash": farm.spec_hash,
            "points": len(points),
            "done": len(ordered),
            "duplicates": duplicates,
            "partial_lines": partial_lines,
        },
    }
    json_path = write_sweep_json(base + ".json", aggregated, meta=meta)
    markdown_path = base + ".md"
    tmp = "%s.tmp-%d-%d" % (markdown_path, os.getpid(), next(_unique))
    with open(tmp, "w") as fh:
        fh.write(_merged_markdown(farm, aggregated, len(ordered), len(points)))
    os.replace(tmp, markdown_path)

    if compact:
        _compact(farm)
    return MergeResult(
        spec_hash=farm.spec_hash,
        total_points=len(points),
        done_points=len(ordered),
        missing=missing,
        duplicates=duplicates,
        partial_lines=partial_lines,
        dropped_outside_grid=dropped,
        stream_path=stream_path,
        json_path=json_path,
        markdown_path=markdown_path,
    )


def _merged_markdown(
    spec: FarmSpec,
    aggregated: List[Dict[str, Any]],
    done: int,
    total: int,
) -> str:
    """GitHub-flavoured markdown for a merged queue."""
    sweep_spec = spec.header["sweep_spec"]
    pretty = format_sweep_rows(aggregated)
    lines = [
        "# %s on %dx%d (%s kernel) — farm %s"
        % (sweep_spec["workload"], sweep_spec["cfg"]["width"],
           sweep_spec["cfg"]["height"], sweep_spec["kernel"],
           spec.spec_hash),
        "",
        "Mean head latency in cycles; `*` marks saturated points. "
        "%d/%d grid points merged from farm shards "
        "(`python -m repro farm merge`)." % (done, total),
        "",
    ]
    if pretty:
        # A partially merged farm has ragged rows (a design can be
        # missing at some loads), so union the columns across all rows.
        headers: List[str] = []
        for row in pretty:
            headers.extend(h for h in row if h not in headers)
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("| " + " | ".join("---:" for _ in headers) + " |")
        for row in pretty:
            lines.append(
                "| " + " | ".join(str(row.get(h, "")) for h in headers) + " |"
            )
    else:
        lines.append("(no completed points)")
    return "\n".join(lines) + "\n"


def _fresh_leases(spec: FarmSpec, ttl: float = DEFAULT_LEASE_TTL) -> List[str]:
    leases = _leases_dir(spec)
    if not os.path.isdir(leases):
        return []
    fresh = []
    for name in sorted(os.listdir(leases)):
        if not name.endswith(".lease"):
            continue
        path = os.path.join(leases, name)
        if not _lease_stale(path, ttl):
            fresh.append(name[: -len(".lease")])
    return fresh


def _compact(spec: FarmSpec) -> None:
    """Delete per-worker shards whose rows the merged stream now holds."""
    fresh = _fresh_leases(spec)
    if fresh:
        raise RuntimeError(
            "refusing to compact %s: %d fresh lease(s) held (workers may "
            "be appending); merge again once the farm is quiescent"
            % (spec.root, len(fresh))
        )
    for path in _shard_files(spec):
        os.unlink(path)


# ----------------------------------------------------------------------
# Status / import
# ----------------------------------------------------------------------

def farm_status(
    spec: Union[str, FarmSpec], lease_ttl: float = DEFAULT_LEASE_TTL
) -> Dict[str, Any]:
    """Queue health: point, lease, shard and torn-line accounting."""
    farm = load_farm(spec) if isinstance(spec, str) else spec
    rows, partial_lines = scan_rows(farm)
    deduped = merge_rows(rows)
    points = farm.points()
    done = [p for p in points if p.point_hash in deduped]
    leases = _leases_dir(farm)
    held = sorted(
        name[: -len(".lease")]
        for name in (os.listdir(leases) if os.path.isdir(leases) else [])
        if name.endswith(".lease")
    )
    fresh = set(_fresh_leases(farm, lease_ttl))
    return {
        "spec_hash": farm.spec_hash,
        "points": len(points),
        "done": len(done),
        "pending": len(points) - len(done),
        "leases_fresh": len([ph for ph in held if ph in fresh]),
        "leases_stale": len([ph for ph in held if ph not in fresh]),
        "shards": len(_shard_files(farm)),
        "rows": len(rows),
        "duplicates": len(rows) - len(deduped),
        "partial_lines": partial_lines,
    }


def import_stream(
    spec: Union[str, FarmSpec], stream_path: str, name: Optional[str] = None
) -> Dict[str, int]:
    """Adopt a ``repro sweep`` stream of the same spec as a farm shard.

    The stream's content-hashed header must match the queue's spec hash
    (header-less legacy streams are refused: there is no way to prove
    they are comparable).  Complete rows whose (design, load, seed) is
    in the grid are rewritten — annotated with their point hash — into
    ``shards/import-<name>.jsonl`` and marked done, so workers stop
    re-running them immediately.  Torn lines and rows outside the grid
    are counted and skipped.
    """
    farm = load_farm(spec) if isinstance(spec, str) else spec
    header = read_sweep_header(stream_path)
    if header is None:
        raise ValueError(
            "refusing to import %s: no sweep-spec header (legacy "
            "header-less streams cannot be proven compatible)" % stream_path
        )
    if header.get("spec_hash") != farm.spec_hash:
        raise ValueError(
            "refusing to import %s: stream spec hash %s does not match "
            "farm spec hash %s"
            % (stream_path, header.get("spec_hash"), farm.spec_hash)
        )
    points = read_sweep_stream(stream_path, skip_partial=True)
    by_key = {
        (p.design, p.load, p.seed): p.point_hash for p in farm.points()
    }
    stem = name or os.path.splitext(os.path.basename(stream_path))[0]
    shard = _open_shard(shard_path(farm, "import-%s" % stem))
    imported = outside = 0
    try:
        for row in points:
            key = (str(row["design"]), float(row["load"]), int(row["seed"]))
            ph = by_key.get(key)
            if ph is None:
                outside += 1
                continue
            shard.write(json.dumps(dict(_point_to_json(row), point=ph)) + "\n")
            _mark_done(farm, ph, "import-%s" % stem)
            imported += 1
        shard.flush()
    finally:
        shard.close()
    return {"imported": imported, "outside_grid": outside}
