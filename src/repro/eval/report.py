"""ASCII table rendering and CSV export for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "%.3f",
    title: str = "",
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format % value
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = " | ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    out.append(header)
    out.append("-+-".join("-" * w for w in widths))
    for line in table:
        out.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def rows_to_csv(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Serialise rows of dicts to CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(
    path: str,
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows of dicts to ``path`` as CSV (see :func:`rows_to_csv`)."""
    with open(path, "w", newline="") as handle:
        handle.write(rows_to_csv(rows, columns))
