"""Evaluation harness: designs, experiments, ablations, sweeps, reporting.

Every export is indexed with a one-line summary and its paper anchor in
``docs/api.md``; the sweep runner and its streamed output schema are
documented in ``docs/kernel.md``, the Dedicated baseline in
``docs/baselines.md``.
"""

from repro.eval.ablations import (
    channel_split,
    hpc_sweep,
    mapping_comparison,
    route_selection_comparison,
    vc_sweep,
)
from repro.eval.dedicated import DedicatedNetwork
from repro.eval.farm import (
    FarmPoint,
    FarmSpec,
    FaultInjector,
    MergeResult,
    enumerate_farm,
    farm_status,
    import_stream,
    load_farm,
    merge_farm,
    merge_rows,
    work_many,
    work_on,
)
from repro.eval.designs import (
    DESIGNS,
    DesignInstance,
    build_design,
    build_workload_design,
)
from repro.eval.scenarios import FIG1_APPS, FIG7_STOP_TIMES, fig7_flows
from repro.eval.experiments import (
    AppExperiment,
    HeadlineMetrics,
    SuiteResults,
    fig10a_rows,
    fig10b_rows,
    headline_metrics,
    run_app,
    run_suite,
    run_workload,
)
from repro.eval.plotting import (
    matplotlib_available,
    plot_sweep_stream,
    plot_tail_stream,
    sweep_curves,
    tail_curves,
)
from repro.eval.report import render_table, rows_to_csv, write_csv
from repro.eval.sweeps import (
    SweepJob,
    format_sweep_rows,
    read_sweep_header,
    read_sweep_stream,
    run_load_sweep,
    run_pattern_sweep,
    run_workload_sweep,
    saturation_load,
    write_sweep_json,
)

__all__ = [
    "AppExperiment",
    "DESIGNS",
    "DedicatedNetwork",
    "DesignInstance",
    "FIG1_APPS",
    "FIG7_STOP_TIMES",
    "FarmPoint",
    "FarmSpec",
    "FaultInjector",
    "HeadlineMetrics",
    "MergeResult",
    "SuiteResults",
    "enumerate_farm",
    "farm_status",
    "import_stream",
    "load_farm",
    "merge_farm",
    "merge_rows",
    "work_many",
    "work_on",
    "build_design",
    "build_workload_design",
    "channel_split",
    "SweepJob",
    "fig10a_rows",
    "fig10b_rows",
    "fig7_flows",
    "format_sweep_rows",
    "headline_metrics",
    "hpc_sweep",
    "mapping_comparison",
    "matplotlib_available",
    "plot_sweep_stream",
    "plot_tail_stream",
    "read_sweep_header",
    "read_sweep_stream",
    "render_table",
    "route_selection_comparison",
    "rows_to_csv",
    "run_app",
    "run_load_sweep",
    "run_pattern_sweep",
    "run_suite",
    "run_workload",
    "run_workload_sweep",
    "saturation_load",
    "sweep_curves",
    "tail_curves",
    "vc_sweep",
    "write_csv",
    "write_sweep_json",
]
