"""Evaluation harness: designs, experiments, ablations, reporting."""

from repro.eval.ablations import (
    channel_split,
    hpc_sweep,
    mapping_comparison,
    route_selection_comparison,
    vc_sweep,
)
from repro.eval.dedicated import DedicatedNetwork
from repro.eval.designs import DESIGNS, DesignInstance, build_design
from repro.eval.scenarios import FIG1_APPS, FIG7_STOP_TIMES, fig7_flows
from repro.eval.experiments import (
    AppExperiment,
    HeadlineMetrics,
    SuiteResults,
    fig10a_rows,
    fig10b_rows,
    headline_metrics,
    run_app,
    run_suite,
)
from repro.eval.report import render_table, rows_to_csv, write_csv
from repro.eval.sweeps import (
    run_load_sweep,
    run_pattern_sweep,
    saturation_load,
)

__all__ = [
    "AppExperiment",
    "DESIGNS",
    "DedicatedNetwork",
    "DesignInstance",
    "FIG1_APPS",
    "FIG7_STOP_TIMES",
    "HeadlineMetrics",
    "SuiteResults",
    "build_design",
    "channel_split",
    "fig10a_rows",
    "fig10b_rows",
    "fig7_flows",
    "headline_metrics",
    "hpc_sweep",
    "mapping_comparison",
    "render_table",
    "route_selection_comparison",
    "rows_to_csv",
    "run_app",
    "run_load_sweep",
    "run_pattern_sweep",
    "run_suite",
    "saturation_load",
    "vc_sweep",
    "write_csv",
]
