"""Ablations over the design choices the paper calls out.

* :func:`hpc_sweep` — how far must a single cycle reach?  Sweeps
  ``hpc_max`` (Table I ties it to frequency and swing: 8 mm at 2 GHz
  low-swing) and measures SMART latency.  Accepts any registered
  workload (:mod:`repro.workloads`) — synthetic patterns sweep HPC on
  any mesh size, not just the mapped SoC apps.
* :func:`mapping_comparison` — the modified NMAP of §VI vs the original
  NMAP objective, row-major and random placement.
* :func:`channel_split` — the §VI future-work idea: split the 32-bit
  channel into two 16-bit subnetworks clocked at twice the rate to
  mitigate hub contention.
* :func:`vc_sweep` — sensitivity to the number of virtual channels.
* :func:`route_selection_comparison` — XY's single path vs west-first
  with conflict-minimising selection (fewer forced stops).
* :func:`nonminimal_routing` — §VI: "SMART can also enable non-minimal
  routes for higher path diversity without any delay penalty"; bounded
  detours dodge contended links at zero cycle cost.
* :func:`pinned_mapping` — §VI: in heterogeneous SoCs "certain tasks are
  tied to specific cores. This will result in longer paths, magnifying
  the benefits of SMART."
* :func:`load_sweep` — scales all bandwidths to expose the saturation
  behaviour behind "SMART is limited by the available link bandwidth in
  a mesh ... while Dedicated has no bandwidth limitation."
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence

from repro.apps.registry import evaluation_task_graph
from repro.config import NocConfig
from repro.eval.designs import build_design
from repro.mapping.nmap import flows_from_mapping, map_application, nmap_modified
from repro.mapping.nonminimal import select_routes_nonminimal
from repro.mapping.route_select import PlacedFlow, select_routes
from repro.mapping.turn_model import TurnModel
from repro.sim.flow import Flow
from repro.sim.topology import Mesh
from repro.sim.traffic import RateScaledTraffic
from repro.workloads import WorkloadSpec, build_workload, get_workload

_FAST = dict(warmup_cycles=500, measure_cycles=8000, drain_limit=80000)


def _run_smart(cfg: NocConfig, flows: Sequence[Flow], seed: int = 1,
               traffic=None, **kwargs):
    run_kwargs = dict(_FAST)
    run_kwargs.update(kwargs)
    instance = build_design("smart", cfg, flows, traffic=traffic, seed=seed)
    return instance, instance.run(**run_kwargs)


def mapped_flows(app: str, cfg: NocConfig, algorithm: str = "nmap_modified",
                 turn_model: TurnModel = TurnModel.WEST_FIRST, seed: int = 0):
    """The paper-flow mapping used by every sweep/ablation in eval:
    task graph -> placement -> turn-model routing -> flow set."""
    graph = evaluation_task_graph(app)
    mesh = Mesh(cfg.width, cfg.height)
    _mapping, flows = map_application(
        graph, mesh, algorithm=algorithm, turn_model=turn_model, seed=seed
    )
    return flows


#: Backwards-compatible alias for the module-internal call sites.
_mapped_flows = mapped_flows


def hpc_sweep(
    workload: str = "VOPD",
    hpc_values: Sequence[int] = (1, 2, 4, 8),
    cfg: Optional[NocConfig] = None,
    load: Optional[float] = None,
    seed: int = 1,
    **kwargs,
) -> List[Dict[str, object]]:
    """SMART latency vs maximum hops per cycle (Table I ties HPC_max
    to frequency and signalling swing: 8 hops at 2 GHz low-swing).

    ``workload`` is any registry name — an app (driven at ``load`` x
    mapped bandwidth, default 1.0) or a pattern (driven at ``load``
    packets/cycle/node, default 0.05) on whatever mesh ``cfg`` defines.
    """
    base = cfg or NocConfig()
    spec = WorkloadSpec.of(workload)
    built = build_workload(spec, base, seed=seed)
    flows = list(built.flows)
    if load is None:
        load = get_workload(spec.name).default_load
    rows = []
    for hpc in hpc_values:
        swept = dataclasses.replace(base, hpc_max=hpc)
        traffic = RateScaledTraffic(swept, flows, scale=load, seed=seed)
        instance, result = _run_smart(
            swept, flows, seed=seed, traffic=traffic, **kwargs
        )
        rows.append(
            {
                "workload": spec.name,
                "hpc_max": hpc,
                "mean_latency": result.mean_latency,
                "max_segment_hops": instance.presets.segment_map.max_hops(),
                "forced_stops": len(instance.presets.forced_stops),
            }
        )
    return rows


def mapping_comparison(
    app: str = "VOPD",
    algorithms: Sequence[str] = ("nmap_modified", "nmap_original", "row_major", "random"),
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """SMART latency under different task-placement algorithms (the
    modified NMAP of §VI vs the original objective and naive layouts)."""
    base = cfg or NocConfig()
    rows = []
    for algorithm in algorithms:
        flows = _mapped_flows(app, base, algorithm=algorithm)
        instance, result = _run_smart(base, flows, **kwargs)
        stops = [
            len(instance.network.stops_for_flow(flow)) for flow in flows
        ]
        rows.append(
            {
                "app": app,
                "algorithm": algorithm,
                "mean_latency": result.mean_latency,
                "mean_stops_per_flow": statistics.fmean(stops),
                "single_cycle_flows": sum(1 for s in stops if s == 0),
            }
        )
    return rows


def route_selection_comparison(
    app: str = "H264",
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """XY routing vs west-first conflict-minimising route selection
    (§VI routes flows to minimise forced stops at shared links)."""
    base = cfg or NocConfig()
    rows = []
    for model in (TurnModel.XY, TurnModel.WEST_FIRST):
        flows = _mapped_flows(app, base, turn_model=model)
        instance, result = _run_smart(base, flows, **kwargs)
        stops = [len(instance.network.stops_for_flow(f)) for f in flows]
        rows.append(
            {
                "app": app,
                "turn_model": model.value,
                "mean_latency": result.mean_latency,
                "mean_stops_per_flow": statistics.fmean(stops),
            }
        )
    return rows


def vc_sweep(
    app: str = "H264",
    vc_values: Sequence[int] = (1, 2, 4),
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """SMART latency vs virtual channels per port (Table II baseline:
    2 VCs of 10 flits)."""
    base = cfg or NocConfig()
    rows = []
    for vcs in vc_values:
        credit_bits = max(1, (vcs - 1).bit_length()) + 1
        swept = dataclasses.replace(
            base, vcs_per_port=vcs, credit_bits=credit_bits
        )
        flows = _mapped_flows(app, swept)
        _instance, result = _run_smart(swept, flows, **kwargs)
        rows.append(
            {
                "app": app,
                "vcs_per_port": vcs,
                "mean_latency": result.mean_latency,
            }
        )
    return rows


def channel_split(
    app: str = "H264",
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """One 32-bit network at 2 GHz vs two 16-bit subnetworks at 4 GHz.

    §VI: hub contention "can be ameliorated by splitting the 32-bit wide
    SMART channels into two 16-bit narrower channels, then clocking them
    at twice the rate, leveraging the high frequency of SMART links to
    mitigate conflicts."  Flows are distributed across the subnetworks
    round-robin; latencies are compared in nanoseconds.
    """
    base = cfg or NocConfig()
    flows = _mapped_flows(app, base)
    _instance, result = _run_smart(base, flows, **kwargs)
    rows = [
        {
            "app": app,
            "design": "1 x %d-bit @ %.0f GHz" % (base.flit_bits, base.freq_hz / 1e9),
            "mean_latency_cycles": result.mean_latency,
            "mean_latency_ns": result.mean_latency * base.cycle_time_s * 1e9,
        }
    ]

    split_cfg = dataclasses.replace(
        base,
        flit_bits=base.flit_bits // 2,
        freq_hz=base.freq_hz * 2,
        vc_depth_flits=2 * base.packet_bits // base.flit_bits,
        hpc_max=base.hpc_max,  # same mm reach per (shorter) cycle is kept
    )
    # Each flow rides one subnetwork in full: a 16-bit channel at twice
    # the clock offers the same bytes/s as the 32-bit original.
    subnet_flows = [[], []]
    for index, flow in enumerate(flows):
        subnet_flows[index % 2].append(flow)
    latencies_ns = []
    weights = []
    for subnet in subnet_flows:
        if not subnet:
            continue
        _inst, sub_result = _run_smart(split_cfg, subnet, **kwargs)
        latencies_ns.append(
            sub_result.mean_latency * split_cfg.cycle_time_s * 1e9
        )
        weights.append(sub_result.summary.count)
    total = sum(weights)
    split_ns = sum(l * w for l, w in zip(latencies_ns, weights)) / total
    rows.append(
        {
            "app": app,
            "design": "2 x %d-bit @ %.0f GHz"
            % (split_cfg.flit_bits, split_cfg.freq_hz / 1e9),
            "mean_latency_cycles": split_ns / (split_cfg.cycle_time_s * 1e9),
            "mean_latency_ns": split_ns,
        }
    )
    return rows


def nonminimal_routing(
    app: str = "MMS_DEC",
    max_detour_hops: int = 2,
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """Minimal routes vs bounded-detour routes on the SMART NoC.

    Detours are free on bypass paths (one cycle regardless of length, up
    to HPC_max), so dodging a contended link removes a 3-cycle stop for
    every packet of the flow.
    """
    base = cfg or NocConfig()
    graph = evaluation_task_graph(app)
    mesh = Mesh(base.width, base.height)
    mapping = nmap_modified(graph, mesh)
    placed = [
        PlacedFlow(
            flow_id=i,
            src=mapping[edge.src],
            dst=mapping[edge.dst],
            bandwidth_bps=edge.bandwidth_bps,
            name="%s->%s" % (edge.src, edge.dst),
        )
        for i, edge in enumerate(graph.edges)
    ]
    rows = []
    for label, flows in (
        ("minimal", select_routes(mesh, placed)),
        (
            "detour<=%d" % max_detour_hops,
            select_routes_nonminimal(
                mesh, placed, max_detour_hops=max_detour_hops,
                hpc_max=base.hpc_max,
            ),
        ),
    ):
        instance, result = _run_smart(base, flows, **kwargs)
        stops = [len(instance.network.stops_for_flow(f)) for f in flows]
        rows.append(
            {
                "app": app,
                "routing": label,
                "mean_latency": result.mean_latency,
                "mean_stops_per_flow": statistics.fmean(stops),
                "total_hops": sum(f.hops(mesh) for f in flows),
            }
        )
    return rows


def pinned_mapping(
    app: str = "VOPD",
    pin_counts: Sequence[int] = (0, 2, 4),
    cfg: Optional[NocConfig] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """SMART's advantage over the mesh as tasks get tied to fixed cores.

    Pins the highest-demand tasks to the mesh corners (the adversarial
    heterogeneous-SoC case), remaps the rest with the modified NMAP, and
    reports the latency saving — which the paper predicts grows with
    path length.
    """
    base = cfg or NocConfig()
    graph = evaluation_task_graph(app)
    mesh = Mesh(base.width, base.height)
    corners = [
        mesh.node_at(0, 0),
        mesh.node_at(mesh.width - 1, mesh.height - 1),
        mesh.node_at(mesh.width - 1, 0),
        mesh.node_at(0, mesh.height - 1),
    ]
    hottest = sorted(
        graph.tasks, key=lambda t: (-graph.comm_demand(t), t)
    )
    rows = []
    for count in pin_counts:
        if count > len(corners):
            raise ValueError("can pin at most %d tasks" % len(corners))
        pins = {task: corners[i] for i, task in enumerate(hottest[:count])}
        mapping = nmap_modified(graph, mesh, pinned=pins)
        flows = flows_from_mapping(graph, mesh, mapping)
        mesh_result = build_design("mesh", base, flows).run(
            **{**_FAST, **kwargs}
        )
        _inst, smart_result = _run_smart(base, flows, **kwargs)
        saving = 1.0 - smart_result.mean_latency / mesh_result.mean_latency
        rows.append(
            {
                "app": app,
                "pinned_tasks": count,
                "mean_hops": statistics.fmean(f.hops(mesh) for f in flows),
                "mesh_latency": mesh_result.mean_latency,
                "smart_latency": smart_result.mean_latency,
                "smart_saving": saving,
            }
        )
    return rows


def load_sweep(
    workload: str = "VOPD",
    loads: Sequence[float] = (1.0, 4.0, 8.0, 16.0),
    designs: Sequence[str] = ("mesh", "smart", "dedicated"),
    cfg: Optional[NocConfig] = None,
    seed: int = 1,
    **kwargs,
) -> List[Dict[str, object]]:
    """Latency vs offered load, per design, for any registered workload.

    All flow bandwidths are scaled together (``loads`` are bandwidth
    scales for apps, packets/cycle/node for patterns); as the mesh links
    saturate, SMART's latency climbs while the Dedicated topology
    (private links per flow) stays flat except for destination
    serialization.  Loads pushing a flow past 1 packet/cycle clamp at
    the injection-port limit (``RateScaledTraffic``), so the sweep
    continues past the knee; the clamped-flow count is reported per row.
    For parallel grids and seed replication use
    :func:`repro.eval.sweeps.run_workload_sweep` instead.
    """
    base = cfg or NocConfig()
    spec = WorkloadSpec.of(workload)
    flows = list(build_workload(spec, base, seed=seed).flows)
    run_kwargs = dict(_FAST)
    run_kwargs.update(kwargs)
    rows = []
    for load in loads:
        row: Dict[str, object] = {"workload": spec.name, "load_x": load}
        for design in designs:
            traffic = RateScaledTraffic(base, flows, scale=load, seed=seed)
            instance = build_design(design, base, flows, traffic=traffic)
            result = instance.run(**run_kwargs)
            row[design] = result.mean_latency
            row["%s_saturated" % design] = not result.drained
            row["%s_clamped_flows" % design] = len(traffic.clamped_rates)
        rows.append(row)
    return rows
