"""The Dedicated baseline: 1-cycle point-to-point links per flow.

§VI: "Dedicated is a NoC with 1-cycle dedicated links between all
communicating cores tailored to each application ... we use this design as
an ideal yardstick for SMART."  Every flow gets its own link (length =
Manhattan distance between the tiles), so there is no source-side or
link-level multiplexing.  The only contention is at shared destinations:
"If there are multiple traffic flows to the same destination, they need to
stop at a router at the destination to go up serially into the NIC, both
in SMART and Dedicated."

Uncontended flows therefore see 1-cycle NIC-to-NIC latency; flows into a
shared sink stop once (buffer write, arbitration, ejection — the same
3-cycle stop cost as a SMART stop).

Like :class:`repro.sim.network.Network`, the simulator ships three
interchangeable execution kernels (``kernel="active"`` is the default):

* ``"active"`` maintains explicit live sets — channels with queued or
  streaming packets, sinks with a reservation or buffered flits — and a
  min-heap of pre-drawn per-flow injection cycles
  (:meth:`~repro.sim.traffic.TrafficModel.next_injection_cycle`), so
  :meth:`DedicatedNetwork.step` touches only components with work to do.
  An idle cycle costs O(1).
* ``"event"`` additionally schedules every deterministic stream as a
  single heap event at its tail cycle: a direct source-to-destination
  ejection (no shared sink) is fully determined when the packet starts,
  a channel feeding a shared sink is fully determined too (only its
  head write is performed per-cycle — it is what arms sink allocation —
  and the remaining writes defer as the registered *writer* of the
  hand-off VC), and a shared-sink ejection is fully determined at
  allocation (its feeder channel streams contiguously, so reads always
  trail arrivals; settlement advances the feeder chain first).  Sink
  allocation runs only on wake events — a head became eligible, a NIC
  credit became usable, an ejection finished — mirroring the event
  kernel of ``repro.sim.network`` (see ``docs/kernel.md``).
* ``"legacy"`` scans every flow, channel and sink every cycle, exactly as
  the original simulator did; it is kept as the behavioural reference.

All kernels produce bit-identical ``SimResult``s and ``EventCounters``
(see ``tests/eval/test_dedicated_kernel.py``,
``tests/eval/test_dedicated_event_kernel.py`` and ``docs/baselines.md``): no
pipeline effect crosses into the cycle that produces it, so skipping
provably-idle components — or replaying a deterministic stream's updates
from a scheduled event at exactly the cycles the per-cycle scans would
have performed them — is unobservable.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
import itertools
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import NocConfig
from repro.sim import sanitizer
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.buffers import FreeVcQueue, InputBuffer
from repro.sim.flow import Flow
from repro.sim.packet import Flit, Packet
from repro.sim.stats import EventCounters, SimResult, StatsCollector
from repro.sim.topology import Mesh
from repro.sim.traffic import TrafficModel

#: Execution kernels accepted by :class:`DedicatedNetwork`.
DEDICATED_KERNELS = ("active", "legacy", "event")


@dataclasses.dataclass
class _SinkReservation:
    flow_id: int
    vc_id: int
    packet: Packet
    assigned_vc: int
    flits_left: int
    next_send_cycle: int
    #: The source VirtualChannel object, cached to skip two lookups on
    #: every flit of the stream (as Network's _Reservation does).
    vc: object = None


class _SharedSink:
    """Destination router for a NIC that sinks several flows."""

    def __init__(self, node: int, flow_ids: Sequence[int], cfg: NocConfig):
        self.node = node
        self.flow_ids = list(flow_ids)
        self.buffers: Dict[int, InputBuffer] = {
            fid: InputBuffer(cfg.vcs_per_port, cfg.vc_depth_flits)
            for fid in flow_ids
        }
        clients = [(fid, vc) for fid in flow_ids for vc in range(cfg.vcs_per_port)]
        self.arbiter = RoundRobinArbiter(clients)
        self.nic_vcs = FreeVcQueue(cfg.vcs_per_port)
        self.reservation: Optional[_SinkReservation] = None
        self.flow_streaming: Dict[int, bool] = {fid: False for fid in flow_ids}
        #: Flits currently buffered across all flows' VCs, maintained by
        #: the network's deliver/eject paths so the active kernel can
        #: clock-gate without an ``any()`` sweep over the buffers.
        self.occupancy = 0
        # Event-kernel bookkeeping: buffered-but-unread head flits keyed
        # by (flow id, VC id) — allocation scans only actual candidates —
        # and the last cycle an allocation scan ran (duplicate wakes
        # within a cycle are no-ops).
        self.head_slots: Dict[Tuple[int, int], object] = {}
        self.sa_cycle = -1


class _Channel:
    """One dedicated source-to-destination link."""

    def __init__(self, flow: Flow, length_mm: float, num_vcs: int):
        self.flow = flow
        self.length_mm = length_mm
        self.queue: Deque[Packet] = collections.deque()
        self.free_vcs = FreeVcQueue(num_vcs)
        self.stream: Optional[Tuple[Packet, List[Flit], int]] = None
        #: The flow's shared sink (or None), resolved at construction so
        #: the per-flit deliver path skips a dict lookup.
        self.sink: Optional[_SharedSink] = None
        #: The flow's input buffer at that sink, same reason.
        self.sink_buffer: Optional[InputBuffer] = None


class _DedChannelChain:
    """A direct (unshared-destination) packet ejection, run as one event.

    The channel streams unconditionally once its packet starts, and a
    direct ejection has no downstream observers, so the whole traversal
    is deterministic from the start cycle.  :meth:`advance` lazily
    performs the flit sends with send-cycle <= ``through`` — the finish
    event passes the tail cycle; counter snapshots settle partial
    progress at window boundaries.
    """

    __slots__ = ("net", "channel", "flits", "vc_id", "idx", "next_send",
                 "end_cycle", "cid")

    def __init__(self, net, channel, flits, vc_id, start_cycle):
        self.net = net
        self.channel = channel
        self.flits = flits
        self.vc_id = vc_id
        self.idx = 0
        self.next_send = start_cycle
        self.end_cycle = start_cycle + len(flits) - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        net = self.net
        counters = net.counters
        channel = self.channel
        length = channel.length_mm
        free_vcs = channel.free_vcs
        flits = self.flits
        vc_id = self.vc_id
        idx = self.idx
        # Batched totals are bit-exact: integral event counts, integral
        # per-hop millimetres.
        counters.link_flit_mm += length * (last - cycle + 1)
        while cycle <= last:
            flit = flits[idx]
            idx += 1
            flit.vc = vc_id
            packet = flit.packet
            if flit.is_head:
                packet.head_arrive_cycle = cycle
            if flit.is_tail:
                packet.tail_arrive_cycle = cycle
                net.stats.on_deliver(packet)
            # The legacy deliver path returns one credit per *flit* on
            # direct channels; replayed verbatim for equivalence.
            net._credit(free_vcs, vc_id, cycle)
            cycle += 1
        self.idx = idx
        self.next_send = cycle


class _DedFeedChain:
    """A channel streaming the rest of its packet into a shared sink.

    The Dedicated analogue of the mesh kernel's mid-chains
    (``repro.sim.network._MidChain``): the head flit is written
    per-cycle — it is what arms sink allocation and keeps the sink's
    occupancy non-zero for clock accounting — and the remaining flits
    defer, because their only observer is the ejection chain's reads,
    which are themselves deferred and trail these writes by the
    two-cycle BW stage plus the allocation cycle (the read-lag
    induction generalized to the hand-off buffer).  The chain registers
    as the writer of its hand-off VC so the consuming
    :class:`_DedEjectChain` links back to it as ``feeder`` and
    settlement replays writes before reads.
    """

    __slots__ = ("net", "channel", "packet", "flits", "vc_id", "sink",
                 "t_vc", "writer_key", "idx", "next_send", "end_cycle",
                 "cid")

    def __init__(self, net, channel, packet, flits, vc_id, start_cycle):
        self.net = net
        self.channel = channel
        self.packet = packet
        self.flits = flits
        self.vc_id = vc_id
        self.sink = channel.sink
        self.t_vc = channel.sink_buffer.vcs[vc_id]
        self.writer_key = (channel.flow.flow_id, vc_id)
        net._chain_writers[self.writer_key] = self
        self.idx = 0
        self.next_send = start_cycle
        self.end_cycle = start_cycle + len(flits) - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        net = self.net
        counters = net.counters
        sink = self.sink
        t_vc = self.t_vc
        t_fifo = t_vc._fifo
        t_elig = t_vc._eligible
        depth = t_vc.depth
        length = self.channel.length_mm
        flits = self.flits
        vc_id = self.vc_id
        idx = self.idx
        count = last - cycle + 1
        counters.link_flit_mm += length * count
        counters.pipeline_latches += count
        counters.buffer_writes += count
        sink.occupancy += count
        if len(t_fifo) + count > depth:
            raise OverflowError(
                "VC %d overflow: virtual cut-through guarantees violated"
                % t_vc.vc_id
            )
        while cycle <= last:
            flit = flits[idx]
            idx += 1
            flit.vc = vc_id
            t_fifo.append(flit)
            t_elig.append(cycle + 2)
            cycle += 1
        net._active_sinks.add(sink.node)
        self.idx = idx
        self.next_send = cycle


class _DedEjectChain:
    """A shared-sink ejection streaming its packet as one event.

    Deterministic from allocation: the feeder channel streams
    contiguously and reads trail arrivals by the two-cycle BW stage plus
    the allocation cycle, so every flit is buffered and eligible by its
    ejection cycle.  The feeder's writes may themselves be deferred (a
    :class:`_DedFeedChain`); settlement advances the feeder first so
    the replayed reads find their flits.
    """

    __slots__ = ("net", "sink", "res", "vc", "feeder", "next_send",
                 "end_cycle", "cid")

    def __init__(self, net, sink, res, start_cycle):
        self.net = net
        self.sink = sink
        self.res = res
        self.vc = res.vc
        self.feeder = net._chain_writers.get((res.flow_id, res.vc_id))
        self.next_send = start_cycle
        self.end_cycle = start_cycle + res.flits_left - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        feeder = self.feeder
        if feeder is not None:
            feeder.advance(through)
        net = self.net
        counters = net.counters
        res = self.res
        sink = self.sink
        vc = self.vc
        vc_fifo = vc._fifo
        vc_elig = vc._eligible
        # Batched totals are bit-exact (integral event counts); the
        # loop inlines VirtualChannel.read() (hot path).
        count = last - cycle + 1
        counters.buffer_reads += count
        counters.crossbar_traversals += count
        sink.occupancy -= count
        res.flits_left -= count
        res.next_send_cycle = last + 1
        while cycle <= last:
            vc_elig.popleft()
            flit = vc_fifo.popleft()
            if flit.is_head:
                flit.packet.head_arrive_cycle = cycle
            if flit.is_tail:
                vc.busy = False
                packet = flit.packet
                packet.tail_arrive_cycle = cycle
                net.stats.on_deliver(packet)
            cycle += 1
        self.next_send = cycle


#: Channel stream states that are scheduled chains.  In the event
#: kernel every multi-flit stream converts to a chain at its head
#: write, so the tuple form of ``channel.stream`` exists only within a
#: single `_ev_send_channel` call (and across cycles in the per-cycle
#: kernels, which never consult this).
_DED_CHAIN_TYPES = (_DedChannelChain, _DedFeedChain)


class DedicatedNetwork:
    """Simulator for the Dedicated topology (paper §VI ideal yardstick).

    ``kernel`` selects the execution strategy: ``"active"`` (default)
    skips provably-idle channels, sinks and cycles; ``"legacy"`` scans
    everything every cycle.  Results are bit-identical.
    """

    def __init__(
        self,
        cfg: NocConfig,
        mesh: Mesh,
        flows: Sequence[Flow],
        traffic: TrafficModel,
        kernel: str = "active",
        sanitize: Optional[bool] = None,
    ):
        if kernel not in DEDICATED_KERNELS:
            raise ValueError(
                "unknown kernel %r (have %s)"
                % (kernel, ", ".join(repr(k) for k in DEDICATED_KERNELS))
            )
        self.kernel = kernel
        #: Sanitize mode: cross-check kernel-internal invariants after
        #: every step (see repro.sim.sanitizer).  Defaults to the
        #: SMART_SANITIZE environment flag.
        self.sanitize = sanitizer.resolve(sanitize)
        self.cfg = cfg
        self.mesh = mesh
        self.flows = list(flows)
        self.flow_by_id = {f.flow_id: f for f in self.flows}
        self.traffic = traffic
        self.counters = EventCounters()
        self.stats = StatsCollector(
            tenants={f.flow_id: f.tenant for f in self.flows if f.tenant}
        )
        self.cycle = 0

        by_dst: Dict[int, List[Flow]] = {}
        for flow in self.flows:
            by_dst.setdefault(flow.dst, []).append(flow)
        self.sinks: Dict[int, _SharedSink] = {}
        for dst, dst_flows in by_dst.items():
            if len(dst_flows) > 1:
                self.sinks[dst] = _SharedSink(
                    dst, [f.flow_id for f in dst_flows], cfg
                )

        self.channels: Dict[int, _Channel] = {}
        for flow in self.flows:
            length = mesh.distance_mm(flow.src, flow.dst, cfg.mm_per_hop)
            channel = _Channel(flow, length, cfg.vcs_per_port)
            sink = self.sinks.get(flow.dst)
            channel.sink = sink
            if sink is not None:
                channel.sink_buffer = sink.buffers[flow.flow_id]
            self.channels[flow.flow_id] = channel

        # Active-set kernel state.  ``_active_channels`` is kept a superset
        # of channels with queued or streaming packets (pruned as they
        # drain), ``_active_sinks`` a superset of sinks with a reservation
        # or buffered flits (pruned lazily at clock accounting), and
        # ``_inject_heap`` holds (next_injection_cycle, flow_id) pairs
        # pre-drawn from the traffic model.
        self._active_channels: Set[int] = set()
        self._active_sinks: Set[int] = set()
        self._inject_heap: List[Tuple[int, int]] = []
        if self.kernel in ("active", "event"):
            for flow in self.flows:
                nxt = traffic.next_injection_cycle(flow, 0)
                if nxt is not None:
                    self._inject_heap.append((nxt, flow.flow_id))
            heapq.heapify(self._inject_heap)

        # Event-kernel state: finish heaps for scheduled chain
        # traversals (one event per chain, popped at the tail cycle),
        # (cycle, node) sink-allocation wakes, and the in-flight chains
        # for partial settlement at counter-snapshot boundaries.
        # ``_chain_writers`` is the chain dependency graph: the feed
        # chain currently deferring writes into a sink VC, keyed by
        # (flow_id, vc_id); ejection chains link back to it as their
        # ``feeder`` so settlement is feeder-ordered.
        self._chain_seq = itertools.count()
        self._chains: Dict[int, object] = {}
        self._chain_writers: Dict[Tuple[int, int], object] = {}
        self._ch_finish_heap: List[tuple] = []
        self._ej_finish_heap: List[tuple] = []
        self._sa_heap: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle (phases: generate, ST, send, SA)."""
        cycle = self.cycle
        if self.kernel == "active":
            self._step_active(cycle)
        elif self.kernel == "event":
            self._step_event(cycle)
        else:
            self._generate(cycle)
            self._sink_ejection(cycle)
            self._source_send(cycle)
            self._sink_allocation(cycle)
            self._clock_accounting()
        self.counters.cycles += 1
        self.counters.total_router_cycles += len(self.sinks)
        self.cycle += 1
        if self.sanitize:
            sanitizer.check_dedicated(self)

    # -- active-set kernel ---------------------------------------------

    def _step_active(self, cycle: int) -> None:
        """One cycle touching only components with work to do.

        Phase order matches the legacy kernel (generate, sink ejection,
        source send, sink allocation, clock accounting).  Live sets are
        iterated in set order rather than the legacy construction order:
        every channel owns its own link, VC queue and destination buffer,
        and every sink owns its own arbiter and NIC port, so no component
        observes another within a phase and iteration order cannot change
        any result (the equivalence suite pins this down).
        """
        heap = self._inject_heap
        if heap and heap[0][0] <= cycle:
            self._generate_active(cycle, heap)
        sinks = self.sinks
        active_sinks = self._active_sinks
        # repro-lint: ok ORD001 -- each sink owns its arbiter and NIC
        # port; visit order is unobservable (see the docstring; pinned
        # by the equivalence suite)
        for node in active_sinks:
            sink = sinks[node]
            if sink.reservation is not None:
                self._eject_sink(sink, cycle)
        channels = self._active_channels
        if channels:
            idle_channels = None
            all_channels = self.channels
            # repro-lint: ok ORD001 -- each channel owns its link, VC
            # queue and destination buffer (see the docstring)
            for flow_id in channels:
                channel = all_channels[flow_id]
                self._send_channel(channel, cycle)
                if channel.stream is None and not channel.queue:
                    if idle_channels is None:
                        idle_channels = [flow_id]
                    else:
                        idle_channels.append(flow_id)
            if idle_channels:
                channels.difference_update(idle_channels)
        if active_sinks:
            # Source sends may have woken new sinks (a buffer write); they
            # must be SA-scanned and clock-accounted this cycle exactly as
            # the legacy full scan would.
            counters = self.counters
            idle_sinks = None
            # repro-lint: ok ORD001 -- per-sink state only; order
            # cannot change any result (see the docstring)
            for node in active_sinks:
                sink = sinks[node]
                if sink.reservation is None and sink.occupancy:
                    self._allocate_sink(sink, cycle)
                if sink.reservation is not None or sink.occupancy:
                    counters.clock_router_cycles += 1
                    counters.clock_port_cycles += len(sink.buffers)
                else:
                    if idle_sinks is None:
                        idle_sinks = [node]
                    else:
                        idle_sinks.append(node)
            if idle_sinks:
                active_sinks.difference_update(idle_sinks)

    def _generate_active(self, cycle: int, heap: List[Tuple[int, int]]) -> None:
        """Create packets for every flow whose pre-drawn cycle is due."""
        traffic = self.traffic
        while heap and heap[0][0] <= cycle:
            _due, flow_id = heapq.heappop(heap)
            flow = self.flow_by_id[flow_id]
            count = traffic.packets_at(flow, cycle)
            if count:
                channel = self.channels[flow_id]
                for _ in range(count):
                    packet = Packet(
                        flow_id=flow_id,
                        src=flow.src,
                        dst=flow.dst,
                        size_flits=self.cfg.flits_per_packet,
                        create_cycle=cycle,
                    )
                    channel.queue.append(packet)
                    self.stats.on_create(packet)
                self._active_channels.add(flow_id)
            nxt = traffic.next_injection_cycle(flow, cycle + 1)
            if nxt is not None:
                heapq.heappush(heap, (nxt, flow_id))

    # -- event kernel (scheduled ejection) -----------------------------

    def _step_event(self, cycle: int) -> None:
        """One cycle of the event kernel.

        Identical phase order to the other kernels — generate, sink
        ejection, source send, sink allocation, clock accounting — but
        every ejection runs as a scheduled chain (so the ejection phase
        is just a heap drain), and sink allocation runs only on wake
        events.  Blocked channels keep retrying from the active set,
        exactly like the active kernel.
        """
        heap = self._inject_heap
        if heap and heap[0][0] <= cycle:
            self._generate_active(cycle, heap)
        # Sink ejection: every ejection is a scheduled chain.
        ej = self._ej_finish_heap
        while ej and ej[0][0] == cycle:
            self._ev_finish_eject(heapq.heappop(ej)[2], cycle)
        # Source send.
        channels = self._active_channels
        if channels:
            idle_channels = None
            all_channels = self.channels
            # repro-lint: ok ORD001 -- each channel owns its link, VC
            # queue and destination buffer (see _step_active)
            for flow_id in channels:
                channel = all_channels[flow_id]
                if type(channel.stream) in _DED_CHAIN_TYPES:
                    if idle_channels is None:
                        idle_channels = [flow_id]
                    else:
                        idle_channels.append(flow_id)
                    continue
                self._ev_send_channel(channel, cycle)
                stream = channel.stream
                if type(stream) in _DED_CHAIN_TYPES or (
                    stream is None and not channel.queue
                ):
                    if idle_channels is None:
                        idle_channels = [flow_id]
                    else:
                        idle_channels.append(flow_id)
            if idle_channels:
                channels.difference_update(idle_channels)
        ch = self._ch_finish_heap
        while ch and ch[0][0] == cycle:
            self._ev_finish_channel(heapq.heappop(ch)[2], cycle)
        # Sink allocation: only woken sinks scan.
        sa = self._sa_heap
        sinks = self.sinks
        while sa and sa[0][0] == cycle:
            node = heapq.heappop(sa)[1]
            sink = sinks[node]
            if (
                sink.sa_cycle != cycle
                and sink.reservation is None
                and sink.head_slots
            ):
                sink.sa_cycle = cycle
                self._ev_allocate_sink(sink, cycle)
        # Clock accounting, exactly as the active kernel.
        active_sinks = self._active_sinks
        if active_sinks:
            counters = self.counters
            idle_sinks = None
            # repro-lint: ok ORD001 -- clock accounting sums per-sink
            # contributions; order-insensitive (see _step_active)
            for node in active_sinks:
                sink = sinks[node]
                if sink.reservation is not None or sink.occupancy:
                    counters.clock_router_cycles += 1
                    counters.clock_port_cycles += len(sink.buffers)
                else:
                    if idle_sinks is None:
                        idle_sinks = [node]
                    else:
                        idle_sinks.append(node)
            if idle_sinks:
                active_sinks.difference_update(idle_sinks)

    def _ev_send_channel(self, channel: _Channel, cycle: int) -> None:
        """Source send for the event kernel.

        Mirrors :meth:`_send_channel`; a packet starting on a direct
        (unshared) channel becomes a scheduled chain, and a head written
        into a shared sink wakes that sink's allocation for its
        eligibility cycle — then the rest of the packet defers as a
        :class:`_DedFeedChain` (the head write is the only per-cycle
        observable of the stream).
        """
        stream = channel.stream
        if stream is None:
            if not channel.queue:
                return
            if not channel.free_vcs.available(cycle):
                return
            packet = channel.queue.popleft()
            vc_id = channel.free_vcs.acquire(cycle)
            packet.inject_cycle = cycle
            flits = packet.flits()
            if channel.sink is None:
                chain = _DedChannelChain(self, channel, flits, vc_id, cycle)
                channel.stream = chain
                self._chains[chain.cid] = chain
                heapq.heappush(
                    self._ch_finish_heap,
                    (chain.end_cycle, channel.flow.flow_id, chain),
                )
                return
            channel.stream = (packet, flits, vc_id)
        packet, flits, vc_id = channel.stream
        flit = flits.pop(0)
        flit.vc = vc_id
        counters = self.counters
        counters.link_flit_mm += channel.length_mm
        counters.pipeline_latches += 1
        sink = channel.sink
        # Inline VirtualChannel.write(); guards preserved.
        t_vc = channel.sink_buffer.vcs[vc_id]
        t_fifo = t_vc._fifo
        if len(t_fifo) >= t_vc.depth:
            raise OverflowError(
                "VC %d overflow: virtual cut-through guarantees violated"
                % t_vc.vc_id
            )
        if flit.is_head:
            if t_vc.busy:
                raise RuntimeError(
                    "head flit written to busy VC %d" % t_vc.vc_id
                )
            t_vc.busy = True
            sink.head_slots[(channel.flow.flow_id, vc_id)] = t_vc
            heapq.heappush(self._sa_heap, (cycle + 2, sink.node))
        t_fifo.append(flit)
        t_vc._eligible.append(cycle + 2)
        sink.occupancy += 1
        counters.buffer_writes += 1
        self._active_sinks.add(sink.node)
        if not flits:
            channel.stream = None
        elif flit.is_head:
            chain = _DedFeedChain(self, channel, packet, flits, vc_id,
                                  cycle + 1)
            channel.stream = chain
            self._chains[chain.cid] = chain
            heapq.heappush(
                self._ch_finish_heap,
                (chain.end_cycle, channel.flow.flow_id, chain),
            )

    def _ev_allocate_sink(self, sink: _SharedSink, cycle: int) -> None:
        """Sink allocation over the candidate heads.

        Behaviourally identical to :meth:`_allocate_sink` — request set,
        arbiter calls and counters all match — but candidates come from
        the incrementally-maintained ``head_slots`` index, and the
        granted ejection immediately becomes a scheduled chain (it is
        deterministic from allocation; see the class note on
        :class:`_DedEjectChain`).
        """
        if not sink.nic_vcs.available(cycle):
            return
        flow_streaming = sink.flow_streaming
        requests = []
        for (fid, vc_id), vc in sink.head_slots.items():
            if flow_streaming[fid]:
                continue
            if vc._eligible[0] > cycle:
                continue
            requests.append((fid, vc_id))
        if not requests:
            return
        counters = self.counters
        counters.sa_requests += len(requests)
        if len(requests) == 1:
            winner = sink.arbiter.grant_sole(requests[0])
        else:
            winner = sink.arbiter.grant(requests)
            if winner is None:
                return
        counters.sa_grants += 1
        fid, vc_id = winner
        # A granted flow is invisible to allocation (``flow_streaming``)
        # until its ejection finishes — drop its candidate entry now so
        # later scans never iterate it.
        del sink.head_slots[winner]
        vc = sink.buffers[fid].vc(vc_id)
        head = vc.front()
        res = _SinkReservation(
            flow_id=fid,
            vc_id=vc_id,
            packet=head.packet,
            assigned_vc=sink.nic_vcs.acquire(cycle),
            flits_left=head.packet.size_flits,
            next_send_cycle=cycle + 1,
            vc=vc,
        )
        sink.reservation = res
        sink.flow_streaming[fid] = True
        chain = _DedEjectChain(self, sink, res, cycle + 1)
        self._chains[chain.cid] = chain
        heapq.heappush(
            self._ej_finish_heap, (chain.end_cycle, sink.node, chain)
        )

    def _ev_finish_eject(self, chain: "_DedEjectChain", cycle: int) -> None:
        """Tail event of a sink ejection: replay the unsettled sends,
        then tear the reservation down exactly as the per-cycle tail
        ejection would (channel and NIC credits, allocation wake)."""
        chain.advance(cycle)
        del self._chains[chain.cid]
        sink = chain.sink
        res = chain.res
        self._credit(self.channels[res.flow_id].free_vcs, res.vc_id, cycle)
        usable = cycle + 1 + self.cfg.credit_latency
        sink.nic_vcs.release(res.assigned_vc, usable)
        self.counters.credit_events += 1
        heapq.heappush(self._sa_heap, (usable, sink.node))
        sink.flow_streaming[res.flow_id] = False
        sink.reservation = None
        if sink.head_slots:
            # Only already-waiting heads can use this release wake; a
            # head written later this cycle wakes allocation itself.
            heapq.heappush(self._sa_heap, (cycle, sink.node))

    def _ev_finish_channel(self, chain, cycle: int) -> None:
        """Tail event of a channel chain (direct ejection or shared-sink
        feed): free the channel for its next packet (which may start
        next cycle)."""
        chain.advance(cycle)
        del self._chains[chain.cid]
        if type(chain) is _DedFeedChain:
            writers = self._chain_writers
            if writers.get(chain.writer_key) is chain:
                del writers[chain.writer_key]
        channel = chain.channel
        channel.stream = None
        if channel.queue:
            self._active_channels.add(channel.flow.flow_id)

    def _sync(self) -> None:
        """Settle in-flight chains up to the last executed cycle (see
        ``repro.sim.network.Network._sync``); a no-op for the other
        kernels."""
        if self.kernel == "event" and self._chains:
            through = self.cycle - 1
            for cid in sorted(self._chains):
                self._chains[cid].advance(through)
        if self.sanitize:
            sanitizer.check_counters(self, self.cfg.mm_per_hop)
            sanitizer.check_chain_graph(self)

    # -- legacy kernel (full scans) ------------------------------------

    def _generate(self, cycle: int) -> None:
        for flow in self.flows:
            for _ in range(self.traffic.packets_at(flow, cycle)):
                packet = Packet(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_flits=self.cfg.flits_per_packet,
                    create_cycle=cycle,
                )
                self.channels[flow.flow_id].queue.append(packet)
                self.stats.on_create(packet)

    def _source_send(self, cycle: int) -> None:
        """Each channel streams independently (no shared injection port)."""
        for channel in self.channels.values():
            self._send_channel(channel, cycle)

    def _sink_ejection(self, cycle: int) -> None:
        """ST at shared sinks: stream the granted packet into the NIC."""
        for sink in self.sinks.values():
            if sink.reservation is not None:
                self._eject_sink(sink, cycle)

    def _sink_allocation(self, cycle: int) -> None:
        """SA at shared sinks: pick the next packet to go up into the NIC."""
        for sink in self.sinks.values():
            if sink.reservation is None:
                self._allocate_sink(sink, cycle)

    def _clock_accounting(self) -> None:
        for sink in self.sinks.values():
            if sink.reservation or any(
                not b.empty for b in sink.buffers.values()
            ):
                self.counters.clock_router_cycles += 1
                self.counters.clock_port_cycles += len(sink.buffers)

    # -- per-component stages (shared by both kernels) -----------------

    def _send_channel(self, channel: _Channel, cycle: int) -> None:
        if channel.stream is None:
            if not channel.queue:
                return
            if not channel.free_vcs.available(cycle):
                return
            packet = channel.queue.popleft()
            vc_id = channel.free_vcs.acquire(cycle)
            packet.inject_cycle = cycle
            channel.stream = (packet, packet.flits(), vc_id)
        packet, flits, vc_id = channel.stream
        flit = flits.pop(0)
        flit.vc = vc_id
        self._deliver(channel, flit, cycle)
        if not flits:
            channel.stream = None

    def _deliver(self, channel: _Channel, flit: Flit, cycle: int) -> None:
        counters = self.counters
        counters.link_flit_mm += channel.length_mm
        sink = channel.sink
        if sink is None:
            self._eject(flit, cycle)
            self._credit(channel.free_vcs, flit.vc, cycle)
        else:
            counters.pipeline_latches += 1
            channel.sink_buffer.vc(flit.vc).write(flit, cycle)
            sink.occupancy += 1
            counters.buffer_writes += 1
            self._active_sinks.add(sink.node)

    def _eject(self, flit: Flit, cycle: int) -> None:
        packet = flit.packet
        if flit.is_head:
            packet.head_arrive_cycle = cycle
        if flit.is_tail:
            packet.tail_arrive_cycle = cycle
            self.stats.on_deliver(packet)

    def _credit(self, queue: FreeVcQueue, vc_id: int, freed_cycle: int) -> None:
        queue.release(vc_id, freed_cycle + 1 + self.cfg.credit_latency)
        self.counters.credit_events += 1

    def _eject_sink(self, sink: _SharedSink, cycle: int) -> None:
        res = sink.reservation
        if res.next_send_cycle > cycle:
            return
        vc = res.vc
        flit = vc.front()
        if (
            flit is None
            or flit.packet is not res.packet
            or not vc.front_eligible(cycle)
        ):
            return
        vc.read()
        sink.occupancy -= 1
        counters = self.counters
        counters.buffer_reads += 1
        counters.crossbar_traversals += 1
        self._eject(flit, cycle)
        res.flits_left -= 1
        res.next_send_cycle = cycle + 1
        if flit.is_tail:
            self._credit(
                self.channels[res.flow_id].free_vcs, res.vc_id, cycle
            )
            self._credit(sink.nic_vcs, res.assigned_vc, cycle)
            sink.flow_streaming[res.flow_id] = False
            sink.reservation = None

    def _allocate_sink(self, sink: _SharedSink, cycle: int) -> None:
        if not sink.nic_vcs.available(cycle):
            return
        requests = []
        for fid, buffer in sink.buffers.items():
            if sink.flow_streaming[fid]:
                continue
            for vc in buffer.vcs:
                flit = vc.front()
                if flit is not None and flit.is_head and vc.front_eligible(cycle):
                    requests.append((fid, vc.vc_id))
        if not requests:
            return
        self.counters.sa_requests += len(requests)
        winner = sink.arbiter.grant(requests)
        if winner is None:
            return
        self.counters.sa_grants += 1
        fid, vc_id = winner
        vc = sink.buffers[fid].vc(vc_id)
        head = vc.front()
        sink.reservation = _SinkReservation(
            flow_id=fid,
            vc_id=vc_id,
            packet=head.packet,
            assigned_vc=sink.nic_vcs.acquire(cycle),
            flits_left=head.packet.size_flits,
            next_send_cycle=cycle + 1,
            vc=vc,
        )
        sink.flow_streaming[fid] = True

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> SimResult:
        """Warm up, measure, then drain measured packets.

        Same protocol as :meth:`repro.sim.network.Network.run`: traffic
        keeps flowing during the drain so contention stays representative;
        statistics and power counters cover only the measurement window.
        """
        for _ in range(warmup_cycles):
            self.step()
        self._sync()
        baseline = self.counters.snapshot()
        self.stats.measuring = True
        for _ in range(measure_cycles):
            self.step()
        self._sync()
        self.stats.measuring = False
        window = self.counters.delta(baseline)
        drained = True
        drain_cycles = 0
        while self.stats.outstanding_measured > 0:
            if drain_cycles >= drain_limit:
                drained = False
                break
            self.step()
            drain_cycles += 1
        self._sync()
        return SimResult(
            summary=self.stats.summary(),
            per_flow=self.stats.per_flow_summary(),
            counters=window,
            measured_cycles=measure_cycles,
            total_cycles=self.cycle,
            drained=drained,
            undelivered_measured=self.stats.outstanding_measured,
            per_tenant=self.stats.per_tenant_summary(),
            node_delivered_flits=dict(self.stats.node_flits),
        )

    def run_cycles(self, cycles: int) -> None:
        """Advance a fixed number of cycles (used by scripted tests)."""
        for _ in range(cycles):
            self.step()
        self._sync()
