"""The Dedicated baseline: 1-cycle point-to-point links per flow.

§VI: "Dedicated is a NoC with 1-cycle dedicated links between all
communicating cores tailored to each application ... we use this design as
an ideal yardstick for SMART."  Every flow gets its own link (length =
Manhattan distance between the tiles), so there is no source-side or
link-level multiplexing.  The only contention is at shared destinations:
"If there are multiple traffic flows to the same destination, they need to
stop at a router at the destination to go up serially into the NIC, both
in SMART and Dedicated."

Uncontended flows therefore see 1-cycle NIC-to-NIC latency; flows into a
shared sink stop once (buffer write, arbitration, ejection — the same
3-cycle stop cost as a SMART stop).

Like :class:`repro.sim.network.Network`, the simulator ships two
interchangeable execution kernels (``kernel="active"`` is the default):

* ``"active"`` maintains explicit live sets — channels with queued or
  streaming packets, sinks with a reservation or buffered flits — and a
  min-heap of pre-drawn per-flow injection cycles
  (:meth:`~repro.sim.traffic.TrafficModel.next_injection_cycle`), so
  :meth:`DedicatedNetwork.step` touches only components with work to do.
  An idle cycle costs O(1).
* ``"legacy"`` scans every flow, channel and sink every cycle, exactly as
  the original simulator did; it is kept as the behavioural reference.

Both kernels produce bit-identical ``SimResult``s and ``EventCounters``
(see ``tests/eval/test_dedicated_kernel.py`` and ``docs/baselines.md``):
no pipeline effect crosses into the cycle that produces it, so skipping
provably-idle components is unobservable.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import NocConfig
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.buffers import FreeVcQueue, InputBuffer
from repro.sim.flow import Flow
from repro.sim.packet import Flit, Packet
from repro.sim.stats import EventCounters, SimResult, StatsCollector
from repro.sim.topology import Mesh
from repro.sim.traffic import TrafficModel

#: Execution kernels accepted by :class:`DedicatedNetwork`.
DEDICATED_KERNELS = ("active", "legacy")


@dataclasses.dataclass
class _SinkReservation:
    flow_id: int
    vc_id: int
    packet: Packet
    assigned_vc: int
    flits_left: int
    next_send_cycle: int
    #: The source VirtualChannel object, cached to skip two lookups on
    #: every flit of the stream (as Network's _Reservation does).
    vc: object = None


class _SharedSink:
    """Destination router for a NIC that sinks several flows."""

    def __init__(self, node: int, flow_ids: Sequence[int], cfg: NocConfig):
        self.node = node
        self.flow_ids = list(flow_ids)
        self.buffers: Dict[int, InputBuffer] = {
            fid: InputBuffer(cfg.vcs_per_port, cfg.vc_depth_flits)
            for fid in flow_ids
        }
        clients = [(fid, vc) for fid in flow_ids for vc in range(cfg.vcs_per_port)]
        self.arbiter = RoundRobinArbiter(clients)
        self.nic_vcs = FreeVcQueue(cfg.vcs_per_port)
        self.reservation: Optional[_SinkReservation] = None
        self.flow_streaming: Dict[int, bool] = {fid: False for fid in flow_ids}
        #: Flits currently buffered across all flows' VCs, maintained by
        #: the network's deliver/eject paths so the active kernel can
        #: clock-gate without an ``any()`` sweep over the buffers.
        self.occupancy = 0


class _Channel:
    """One dedicated source-to-destination link."""

    def __init__(self, flow: Flow, length_mm: float, num_vcs: int):
        self.flow = flow
        self.length_mm = length_mm
        self.queue: Deque[Packet] = collections.deque()
        self.free_vcs = FreeVcQueue(num_vcs)
        self.stream: Optional[Tuple[Packet, List[Flit], int]] = None
        #: The flow's shared sink (or None), resolved at construction so
        #: the per-flit deliver path skips a dict lookup.
        self.sink: Optional[_SharedSink] = None
        #: The flow's input buffer at that sink, same reason.
        self.sink_buffer: Optional[InputBuffer] = None


class DedicatedNetwork:
    """Simulator for the Dedicated topology (paper §VI ideal yardstick).

    ``kernel`` selects the execution strategy: ``"active"`` (default)
    skips provably-idle channels, sinks and cycles; ``"legacy"`` scans
    everything every cycle.  Results are bit-identical.
    """

    def __init__(
        self,
        cfg: NocConfig,
        mesh: Mesh,
        flows: Sequence[Flow],
        traffic: TrafficModel,
        kernel: str = "active",
    ):
        if kernel not in DEDICATED_KERNELS:
            raise ValueError(
                "unknown kernel %r (have %s)"
                % (kernel, ", ".join(repr(k) for k in DEDICATED_KERNELS))
            )
        self.kernel = kernel
        self.cfg = cfg
        self.mesh = mesh
        self.flows = list(flows)
        self.flow_by_id = {f.flow_id: f for f in self.flows}
        self.traffic = traffic
        self.counters = EventCounters()
        self.stats = StatsCollector()
        self.cycle = 0

        by_dst: Dict[int, List[Flow]] = {}
        for flow in self.flows:
            by_dst.setdefault(flow.dst, []).append(flow)
        self.sinks: Dict[int, _SharedSink] = {}
        for dst, dst_flows in by_dst.items():
            if len(dst_flows) > 1:
                self.sinks[dst] = _SharedSink(
                    dst, [f.flow_id for f in dst_flows], cfg
                )

        self.channels: Dict[int, _Channel] = {}
        for flow in self.flows:
            length = mesh.distance_mm(flow.src, flow.dst, cfg.mm_per_hop)
            channel = _Channel(flow, length, cfg.vcs_per_port)
            sink = self.sinks.get(flow.dst)
            channel.sink = sink
            if sink is not None:
                channel.sink_buffer = sink.buffers[flow.flow_id]
            self.channels[flow.flow_id] = channel

        # Active-set kernel state.  ``_active_channels`` is kept a superset
        # of channels with queued or streaming packets (pruned as they
        # drain), ``_active_sinks`` a superset of sinks with a reservation
        # or buffered flits (pruned lazily at clock accounting), and
        # ``_inject_heap`` holds (next_injection_cycle, flow_id) pairs
        # pre-drawn from the traffic model.
        self._active_channels: Set[int] = set()
        self._active_sinks: Set[int] = set()
        self._inject_heap: List[Tuple[int, int]] = []
        if self.kernel == "active":
            for flow in self.flows:
                nxt = traffic.next_injection_cycle(flow, 0)
                if nxt is not None:
                    self._inject_heap.append((nxt, flow.flow_id))
            heapq.heapify(self._inject_heap)

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle (phases: generate, ST, send, SA)."""
        cycle = self.cycle
        if self.kernel == "active":
            self._step_active(cycle)
        else:
            self._generate(cycle)
            self._sink_ejection(cycle)
            self._source_send(cycle)
            self._sink_allocation(cycle)
            self._clock_accounting()
        self.counters.cycles += 1
        self.counters.total_router_cycles += len(self.sinks)
        self.cycle += 1

    # -- active-set kernel ---------------------------------------------

    def _step_active(self, cycle: int) -> None:
        """One cycle touching only components with work to do.

        Phase order matches the legacy kernel (generate, sink ejection,
        source send, sink allocation, clock accounting).  Live sets are
        iterated in set order rather than the legacy construction order:
        every channel owns its own link, VC queue and destination buffer,
        and every sink owns its own arbiter and NIC port, so no component
        observes another within a phase and iteration order cannot change
        any result (the equivalence suite pins this down).
        """
        heap = self._inject_heap
        if heap and heap[0][0] <= cycle:
            self._generate_active(cycle, heap)
        sinks = self.sinks
        active_sinks = self._active_sinks
        for node in active_sinks:
            sink = sinks[node]
            if sink.reservation is not None:
                self._eject_sink(sink, cycle)
        channels = self._active_channels
        if channels:
            idle_channels = None
            all_channels = self.channels
            for flow_id in channels:
                channel = all_channels[flow_id]
                self._send_channel(channel, cycle)
                if channel.stream is None and not channel.queue:
                    if idle_channels is None:
                        idle_channels = [flow_id]
                    else:
                        idle_channels.append(flow_id)
            if idle_channels:
                channels.difference_update(idle_channels)
        if active_sinks:
            # Source sends may have woken new sinks (a buffer write); they
            # must be SA-scanned and clock-accounted this cycle exactly as
            # the legacy full scan would.
            counters = self.counters
            idle_sinks = None
            for node in active_sinks:
                sink = sinks[node]
                if sink.reservation is None and sink.occupancy:
                    self._allocate_sink(sink, cycle)
                if sink.reservation is not None or sink.occupancy:
                    counters.clock_router_cycles += 1
                    counters.clock_port_cycles += len(sink.buffers)
                else:
                    if idle_sinks is None:
                        idle_sinks = [node]
                    else:
                        idle_sinks.append(node)
            if idle_sinks:
                active_sinks.difference_update(idle_sinks)

    def _generate_active(self, cycle: int, heap: List[Tuple[int, int]]) -> None:
        """Create packets for every flow whose pre-drawn cycle is due."""
        traffic = self.traffic
        while heap and heap[0][0] <= cycle:
            _due, flow_id = heapq.heappop(heap)
            flow = self.flow_by_id[flow_id]
            count = traffic.packets_at(flow, cycle)
            if count:
                channel = self.channels[flow_id]
                for _ in range(count):
                    packet = Packet(
                        flow_id=flow_id,
                        src=flow.src,
                        dst=flow.dst,
                        size_flits=self.cfg.flits_per_packet,
                        create_cycle=cycle,
                    )
                    channel.queue.append(packet)
                    self.stats.on_create(packet)
                self._active_channels.add(flow_id)
            nxt = traffic.next_injection_cycle(flow, cycle + 1)
            if nxt is not None:
                heapq.heappush(heap, (nxt, flow_id))

    # -- legacy kernel (full scans) ------------------------------------

    def _generate(self, cycle: int) -> None:
        for flow in self.flows:
            for _ in range(self.traffic.packets_at(flow, cycle)):
                packet = Packet(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_flits=self.cfg.flits_per_packet,
                    create_cycle=cycle,
                )
                self.channels[flow.flow_id].queue.append(packet)
                self.stats.on_create(packet)

    def _source_send(self, cycle: int) -> None:
        """Each channel streams independently (no shared injection port)."""
        for channel in self.channels.values():
            self._send_channel(channel, cycle)

    def _sink_ejection(self, cycle: int) -> None:
        """ST at shared sinks: stream the granted packet into the NIC."""
        for sink in self.sinks.values():
            if sink.reservation is not None:
                self._eject_sink(sink, cycle)

    def _sink_allocation(self, cycle: int) -> None:
        """SA at shared sinks: pick the next packet to go up into the NIC."""
        for sink in self.sinks.values():
            if sink.reservation is None:
                self._allocate_sink(sink, cycle)

    def _clock_accounting(self) -> None:
        for sink in self.sinks.values():
            if sink.reservation or any(
                not b.empty for b in sink.buffers.values()
            ):
                self.counters.clock_router_cycles += 1
                self.counters.clock_port_cycles += len(sink.buffers)

    # -- per-component stages (shared by both kernels) -----------------

    def _send_channel(self, channel: _Channel, cycle: int) -> None:
        if channel.stream is None:
            if not channel.queue:
                return
            if not channel.free_vcs.available(cycle):
                return
            packet = channel.queue.popleft()
            vc_id = channel.free_vcs.acquire(cycle)
            packet.inject_cycle = cycle
            channel.stream = (packet, packet.flits(), vc_id)
        packet, flits, vc_id = channel.stream
        flit = flits.pop(0)
        flit.vc = vc_id
        self._deliver(channel, flit, cycle)
        if not flits:
            channel.stream = None

    def _deliver(self, channel: _Channel, flit: Flit, cycle: int) -> None:
        counters = self.counters
        counters.link_flit_mm += channel.length_mm
        sink = channel.sink
        if sink is None:
            self._eject(flit, cycle)
            self._credit(channel.free_vcs, flit.vc, cycle)
        else:
            counters.pipeline_latches += 1
            channel.sink_buffer.vc(flit.vc).write(flit, cycle)
            sink.occupancy += 1
            counters.buffer_writes += 1
            self._active_sinks.add(sink.node)

    def _eject(self, flit: Flit, cycle: int) -> None:
        packet = flit.packet
        if flit.is_head:
            packet.head_arrive_cycle = cycle
        if flit.is_tail:
            packet.tail_arrive_cycle = cycle
            self.stats.on_deliver(packet)

    def _credit(self, queue: FreeVcQueue, vc_id: int, freed_cycle: int) -> None:
        queue.release(vc_id, freed_cycle + 1 + self.cfg.credit_latency)
        self.counters.credit_events += 1

    def _eject_sink(self, sink: _SharedSink, cycle: int) -> None:
        res = sink.reservation
        if res.next_send_cycle > cycle:
            return
        vc = res.vc
        flit = vc.front()
        if (
            flit is None
            or flit.packet is not res.packet
            or not vc.front_eligible(cycle)
        ):
            return
        vc.read()
        sink.occupancy -= 1
        counters = self.counters
        counters.buffer_reads += 1
        counters.crossbar_traversals += 1
        self._eject(flit, cycle)
        res.flits_left -= 1
        res.next_send_cycle = cycle + 1
        if flit.is_tail:
            self._credit(
                self.channels[res.flow_id].free_vcs, res.vc_id, cycle
            )
            self._credit(sink.nic_vcs, res.assigned_vc, cycle)
            sink.flow_streaming[res.flow_id] = False
            sink.reservation = None

    def _allocate_sink(self, sink: _SharedSink, cycle: int) -> None:
        if not sink.nic_vcs.available(cycle):
            return
        requests = []
        for fid, buffer in sink.buffers.items():
            if sink.flow_streaming[fid]:
                continue
            for vc in buffer.vcs:
                flit = vc.front()
                if flit is not None and flit.is_head and vc.front_eligible(cycle):
                    requests.append((fid, vc.vc_id))
        if not requests:
            return
        self.counters.sa_requests += len(requests)
        winner = sink.arbiter.grant(requests)
        if winner is None:
            return
        self.counters.sa_grants += 1
        fid, vc_id = winner
        vc = sink.buffers[fid].vc(vc_id)
        head = vc.front()
        sink.reservation = _SinkReservation(
            flow_id=fid,
            vc_id=vc_id,
            packet=head.packet,
            assigned_vc=sink.nic_vcs.acquire(cycle),
            flits_left=head.packet.size_flits,
            next_send_cycle=cycle + 1,
            vc=vc,
        )
        sink.flow_streaming[fid] = True

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> SimResult:
        """Warm up, measure, then drain measured packets.

        Same protocol as :meth:`repro.sim.network.Network.run`: traffic
        keeps flowing during the drain so contention stays representative;
        statistics and power counters cover only the measurement window.
        """
        for _ in range(warmup_cycles):
            self.step()
        baseline = self.counters.snapshot()
        self.stats.measuring = True
        for _ in range(measure_cycles):
            self.step()
        self.stats.measuring = False
        window = self.counters.delta(baseline)
        drained = True
        drain_cycles = 0
        while self.stats.outstanding_measured > 0:
            if drain_cycles >= drain_limit:
                drained = False
                break
            self.step()
            drain_cycles += 1
        return SimResult(
            summary=self.stats.summary(),
            per_flow=self.stats.per_flow_summary(),
            counters=window,
            measured_cycles=measure_cycles,
            total_cycles=self.cycle,
            drained=drained,
            undelivered_measured=self.stats.outstanding_measured,
        )

    def run_cycles(self, cycles: int) -> None:
        """Advance a fixed number of cycles (used by scripted tests)."""
        for _ in range(cycles):
            self.step()
