"""The Dedicated baseline: 1-cycle point-to-point links per flow.

§VI: "Dedicated is a NoC with 1-cycle dedicated links between all
communicating cores tailored to each application ... we use this design as
an ideal yardstick for SMART."  Every flow gets its own link (length =
Manhattan distance between the tiles), so there is no source-side or
link-level multiplexing.  The only contention is at shared destinations:
"If there are multiple traffic flows to the same destination, they need to
stop at a router at the destination to go up serially into the NIC, both
in SMART and Dedicated."

Uncontended flows therefore see 1-cycle NIC-to-NIC latency; flows into a
shared sink stop once (buffer write, arbitration, ejection — the same
3-cycle stop cost as a SMART stop).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.config import NocConfig
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.buffers import FreeVcQueue, InputBuffer
from repro.sim.flow import Flow
from repro.sim.packet import Flit, Packet
from repro.sim.stats import EventCounters, SimResult, StatsCollector
from repro.sim.topology import Mesh
from repro.sim.traffic import TrafficModel


@dataclasses.dataclass
class _SinkReservation:
    flow_id: int
    vc_id: int
    packet: Packet
    assigned_vc: int
    flits_left: int
    next_send_cycle: int


class _SharedSink:
    """Destination router for a NIC that sinks several flows."""

    def __init__(self, node: int, flow_ids: Sequence[int], cfg: NocConfig):
        self.node = node
        self.flow_ids = list(flow_ids)
        self.buffers: Dict[int, InputBuffer] = {
            fid: InputBuffer(cfg.vcs_per_port, cfg.vc_depth_flits)
            for fid in flow_ids
        }
        clients = [(fid, vc) for fid in flow_ids for vc in range(cfg.vcs_per_port)]
        self.arbiter = RoundRobinArbiter(clients)
        self.nic_vcs = FreeVcQueue(cfg.vcs_per_port)
        self.reservation: Optional[_SinkReservation] = None
        self.flow_streaming: Dict[int, bool] = {fid: False for fid in flow_ids}


class _Channel:
    """One dedicated source-to-destination link."""

    def __init__(self, flow: Flow, length_mm: float, num_vcs: int):
        self.flow = flow
        self.length_mm = length_mm
        self.queue: Deque[Packet] = collections.deque()
        self.free_vcs = FreeVcQueue(num_vcs)
        self.stream: Optional[Tuple[Packet, List[Flit], int]] = None


class DedicatedNetwork:
    """Simulator for the Dedicated topology."""

    def __init__(
        self,
        cfg: NocConfig,
        mesh: Mesh,
        flows: Sequence[Flow],
        traffic: TrafficModel,
    ):
        self.cfg = cfg
        self.mesh = mesh
        self.flows = list(flows)
        self.traffic = traffic
        self.counters = EventCounters()
        self.stats = StatsCollector()
        self.cycle = 0

        by_dst: Dict[int, List[Flow]] = {}
        for flow in self.flows:
            by_dst.setdefault(flow.dst, []).append(flow)
        self.sinks: Dict[int, _SharedSink] = {}
        for dst, dst_flows in by_dst.items():
            if len(dst_flows) > 1:
                self.sinks[dst] = _SharedSink(
                    dst, [f.flow_id for f in dst_flows], cfg
                )

        self.channels: Dict[int, _Channel] = {}
        for flow in self.flows:
            length = mesh.distance_mm(flow.src, flow.dst, cfg.mm_per_hop)
            self.channels[flow.flow_id] = _Channel(
                flow, length, cfg.vcs_per_port
            )

    # ------------------------------------------------------------------

    def step(self) -> None:
        cycle = self.cycle
        self._generate(cycle)
        self._sink_ejection(cycle)
        self._source_send(cycle)
        self._sink_allocation(cycle)
        self.counters.cycles += 1
        self.counters.total_router_cycles += len(self.sinks)
        for sink in self.sinks.values():
            if sink.reservation or any(
                not b.empty for b in sink.buffers.values()
            ):
                self.counters.clock_router_cycles += 1
                self.counters.clock_port_cycles += len(sink.buffers)
        self.cycle += 1

    def _generate(self, cycle: int) -> None:
        for flow in self.flows:
            for _ in range(self.traffic.packets_at(flow, cycle)):
                packet = Packet(
                    flow_id=flow.flow_id,
                    src=flow.src,
                    dst=flow.dst,
                    size_flits=self.cfg.flits_per_packet,
                    create_cycle=cycle,
                )
                self.channels[flow.flow_id].queue.append(packet)
                self.stats.on_create(packet)

    def _source_send(self, cycle: int) -> None:
        """Each channel streams independently (no shared injection port)."""
        for channel in self.channels.values():
            if channel.stream is None:
                if not channel.queue:
                    continue
                if not channel.free_vcs.available(cycle):
                    continue
                packet = channel.queue.popleft()
                vc_id = channel.free_vcs.acquire(cycle)
                packet.inject_cycle = cycle
                channel.stream = (packet, packet.flits(), vc_id)
            packet, flits, vc_id = channel.stream
            flit = flits.pop(0)
            flit.vc = vc_id
            self._deliver(channel, flit, cycle)
            if not flits:
                channel.stream = None

    def _deliver(self, channel: _Channel, flit: Flit, cycle: int) -> None:
        self.counters.link_flit_mm += channel.length_mm
        flow = channel.flow
        sink = self.sinks.get(flow.dst)
        if sink is None:
            self._eject(flit, cycle)
            self._credit(channel.free_vcs, flit.vc, cycle)
        else:
            self.counters.pipeline_latches += 1
            sink.buffers[flow.flow_id].vc(flit.vc).write(flit, cycle)
            self.counters.buffer_writes += 1

    def _eject(self, flit: Flit, cycle: int) -> None:
        packet = flit.packet
        if flit.is_head:
            packet.head_arrive_cycle = cycle
        if flit.is_tail:
            packet.tail_arrive_cycle = cycle
            self.stats.on_deliver(packet)

    def _credit(self, queue: FreeVcQueue, vc_id: int, freed_cycle: int) -> None:
        queue.release(vc_id, freed_cycle + 1 + self.cfg.credit_latency)
        self.counters.credit_events += 1

    def _sink_ejection(self, cycle: int) -> None:
        """ST at shared sinks: stream the granted packet into the NIC."""
        for sink in self.sinks.values():
            res = sink.reservation
            if res is None or res.next_send_cycle > cycle:
                continue
            vc = sink.buffers[res.flow_id].vc(res.vc_id)
            flit = vc.front()
            if (
                flit is None
                or flit.packet is not res.packet
                or not vc.front_eligible(cycle)
            ):
                continue
            vc.read()
            self.counters.buffer_reads += 1
            self.counters.crossbar_traversals += 1
            self._eject(flit, cycle)
            res.flits_left -= 1
            res.next_send_cycle = cycle + 1
            if flit.is_tail:
                self._credit(
                    self.channels[res.flow_id].free_vcs, res.vc_id, cycle
                )
                self._credit(sink.nic_vcs, res.assigned_vc, cycle)
                sink.flow_streaming[res.flow_id] = False
                sink.reservation = None

    def _sink_allocation(self, cycle: int) -> None:
        """SA at shared sinks: pick the next packet to go up into the NIC."""
        for sink in self.sinks.values():
            if sink.reservation is not None:
                continue
            if not sink.nic_vcs.available(cycle):
                continue
            requests = []
            for fid, buffer in sink.buffers.items():
                if sink.flow_streaming[fid]:
                    continue
                for vc in buffer.vcs:
                    flit = vc.front()
                    if flit is not None and flit.is_head and vc.front_eligible(cycle):
                        requests.append((fid, vc.vc_id))
            if not requests:
                continue
            self.counters.sa_requests += len(requests)
            winner = sink.arbiter.grant(requests)
            if winner is None:
                continue
            self.counters.sa_grants += 1
            fid, vc_id = winner
            head = sink.buffers[fid].vc(vc_id).front()
            sink.reservation = _SinkReservation(
                flow_id=fid,
                vc_id=vc_id,
                packet=head.packet,
                assigned_vc=sink.nic_vcs.acquire(cycle),
                flits_left=head.packet.size_flits,
                next_send_cycle=cycle + 1,
            )
            sink.flow_streaming[fid] = True

    # ------------------------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> SimResult:
        for _ in range(warmup_cycles):
            self.step()
        baseline = self.counters.snapshot()
        self.stats.measuring = True
        for _ in range(measure_cycles):
            self.step()
        self.stats.measuring = False
        window = self.counters.delta(baseline)
        drained = True
        drain_cycles = 0
        while self.stats.outstanding_measured > 0:
            if drain_cycles >= drain_limit:
                drained = False
                break
            self.step()
            drain_cycles += 1
        return SimResult(
            summary=self.stats.summary(),
            per_flow=self.stats.per_flow_summary(),
            counters=window,
            measured_cycles=measure_cycles,
            total_cycles=self.cycle,
            drained=drained,
            undelivered_measured=self.stats.outstanding_measured,
        )

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()
