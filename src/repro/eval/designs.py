"""Builders for the three evaluated designs: Mesh, SMART, Dedicated."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.config import NocConfig
from repro.core.noc_builder import build_mesh_noc, build_smart_noc
from repro.core.presets import NetworkPresets
from repro.eval.dedicated import DedicatedNetwork
from repro.sim.flow import Flow
from repro.sim.stats import SimResult
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, RateScaledTraffic, TrafficModel
from repro.workloads import (
    BuiltWorkload,
    WorkloadSpec,
    build_seed_for,
    build_workload,
)

#: Paper §VI design names.
DESIGNS = ("mesh", "smart", "dedicated")


@dataclasses.dataclass
class DesignInstance:
    """A ready-to-run design: the paper's Mesh, SMART or Dedicated."""

    design: str
    cfg: NocConfig
    mesh: Mesh
    flows: List[Flow]
    network: object  # Network or DedicatedNetwork; both expose .run()
    presets: Optional[NetworkPresets]
    #: Set when built through :func:`build_workload_design` — the routed
    #: workload (flows, load axis, app mapping) behind this instance.
    workload: Optional[BuiltWorkload] = None

    def run(self, **kwargs) -> SimResult:
        return self.network.run(**kwargs)


def build_design(
    design: str,
    cfg: NocConfig,
    flows: Sequence[Flow],
    traffic: Optional[TrafficModel] = None,
    seed: int = 1,
    kernel: str = "active",
) -> DesignInstance:
    """Instantiate one of the paper's three designs over mapped flows.

    ``kernel`` selects the simulation kernel ("active" or "legacy") for
    every design — mesh and SMART run :class:`repro.sim.network.Network`,
    the Dedicated baseline its own :class:`DedicatedNetwork`, but all
    three accept the same kernel names with the same guarantees.
    """
    name = design.lower()
    mesh = Mesh(cfg.width, cfg.height)
    if traffic is None:
        traffic = BernoulliTraffic(cfg, flows, seed=seed)
    if name == "smart":
        noc = build_smart_noc(cfg, flows, traffic=traffic, seed=seed, kernel=kernel)
        return DesignInstance(name, cfg, noc.mesh, list(flows), noc.network, noc.presets)
    if name == "mesh":
        noc = build_mesh_noc(cfg, flows, traffic=traffic, seed=seed, kernel=kernel)
        return DesignInstance(name, cfg, noc.mesh, list(flows), noc.network, noc.presets)
    if name == "dedicated":
        network = DedicatedNetwork(cfg, mesh, flows, traffic, kernel=kernel)
        return DesignInstance(name, cfg, mesh, list(flows), network, None)
    raise ValueError("unknown design %r (have %s)" % (design, ", ".join(DESIGNS)))


def build_workload_design(
    workload: Union[str, WorkloadSpec],
    design: str,
    cfg: Optional[NocConfig] = None,
    load: float = 1.0,
    seed: int = 1,
    kernel: str = "active",
    traffic_mode: str = "predraw",
) -> DesignInstance:
    """The full paper pipeline in one call, for any registered workload.

    Resolves ``workload`` in the registry, generates its placed demands,
    routes them with conflict-minimising turn-model route selection,
    computes presets (for SMART) and attaches a traffic model driving the
    flows at ``load`` on the workload's axis (bandwidth scale for apps,
    packets/cycle/node for patterns).  The returned instance carries the
    built workload in :attr:`DesignInstance.workload`.
    """
    base = cfg or NocConfig()
    spec = WorkloadSpec.of(workload)
    built = build_workload(spec, base, seed=build_seed_for(spec, seed))
    traffic = RateScaledTraffic(
        base, built.flows, scale=load, seed=seed, mode=traffic_mode
    )
    instance = build_design(
        design, base, built.flows, traffic=traffic, seed=seed, kernel=kernel
    )
    instance.workload = built
    return instance
