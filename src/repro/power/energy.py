"""Per-event energy parameters (45 nm, 0.9 V, 32-bit datapath).

The paper measures post-layout dynamic power with Synopsys PrimePower from
simulation VCDs; we substitute activity-based accounting: the simulator
counts micro-architectural events and this module prices them.  Constants
are calibrated to 45 nm router implementations so that the Fig 10b
magnitudes (tens of mW per design at Fig 10's injection bandwidths) and
mechanisms (SMART saves buffer + clock energy; all designs share link
energy) are reproduced.

Link energy comes from the Table I circuit model: all three designs use
SMART links (§VI), i.e. the low-swing VLR at 2 Gb/s per wire: 104 fJ/b/mm.
"""

from __future__ import annotations

import dataclasses

from repro.config import NocConfig

#: Low-swing VLR energy at 2 Gb/s (Table I), per bit per mm.
VLR_LOW_SWING_FJ_PER_BIT_MM = 104.0
#: Full-swing repeater energy at 2 Gb/s (Table I), per bit per mm.
FULL_SWING_FJ_PER_BIT_MM = 95.0

#: Reference datapath the constants below were calibrated for.
_REF_BITS = 32


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Energy per micro-architectural event, in picojoules."""

    buffer_write_pj: float
    buffer_read_pj: float
    arb_request_pj: float
    arb_grant_pj: float
    xbar_flit_pj: float
    pipeline_latch_pj: float
    link_pj_per_flit_mm: float
    credit_xbar_pj: float
    credit_link_pj_per_mm: float
    clock_port_pj: float
    clock_router_pj: float

    @classmethod
    def default_45nm(cls, cfg: NocConfig) -> "EnergyParams":
        """Constants for the paper's Table II configuration.

        Datapath energies scale linearly with flit width relative to the
        32-bit calibration point, so the channel-splitting ablation prices
        narrower flits fairly.
        """
        scale = cfg.flit_bits / _REF_BITS
        link_pj_per_flit_mm = (
            VLR_LOW_SWING_FJ_PER_BIT_MM * cfg.flit_bits / 1000.0
        )
        credit_link = VLR_LOW_SWING_FJ_PER_BIT_MM * cfg.credit_bits / 1000.0
        return cls(
            buffer_write_pj=4.2 * scale,
            buffer_read_pj=3.0 * scale,
            arb_request_pj=0.05,
            arb_grant_pj=0.18,
            xbar_flit_pj=1.9 * scale,
            pipeline_latch_pj=0.6 * scale,
            link_pj_per_flit_mm=link_pj_per_flit_mm,
            credit_xbar_pj=1.9 * cfg.credit_bits / _REF_BITS,
            credit_link_pj_per_mm=credit_link,
            clock_port_pj=0.35 * scale,
            clock_router_pj=0.5,
        )
