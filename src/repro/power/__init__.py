"""Power and area models (Fig 10b substitute for PrimePower)."""

from repro.power.accounting import PowerBreakdown, power_from_counters
from repro.power.area import (
    RouterArea,
    dedicated_overhead_ratio,
    dedicated_wiring_mm,
    mesh_wiring_mm,
    noc_area_mm2,
    router_area,
)
from repro.power.energy import (
    FULL_SWING_FJ_PER_BIT_MM,
    VLR_LOW_SWING_FJ_PER_BIT_MM,
    EnergyParams,
)

__all__ = [
    "EnergyParams",
    "FULL_SWING_FJ_PER_BIT_MM",
    "PowerBreakdown",
    "RouterArea",
    "VLR_LOW_SWING_FJ_PER_BIT_MM",
    "dedicated_overhead_ratio",
    "dedicated_wiring_mm",
    "mesh_wiring_mm",
    "noc_area_mm2",
    "power_from_counters",
    "router_area",
]
