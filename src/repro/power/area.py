"""Area model: routers, VLR link blocks, and wiring demand.

Supports two of the paper's arguments quantitatively:

* the generated 4x4 layout (Fig 9) places 1 mm2 tiles whose router +
  Tx/Rx blocks occupy a small fraction of the tile, and
* the Dedicated topology "has area overheads": its point-to-point links
  demand far more wiring than the mesh's nearest-neighbour channels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable

from repro.config import NocConfig
from repro.sim.flow import Flow
from repro.sim.topology import Mesh

#: 45 nm calibration constants (um^2 per element).
BUFFER_UM2_PER_BIT = 1.9
XBAR_UM2_PER_BIT_PER_PORT2 = 0.65
ARBITER_UM2_PER_PORT2 = 95.0
VLR_TX_UM2_PER_BIT = 14.0
VLR_RX_UM2_PER_BIT = 11.0
CONFIG_REG_UM2_PER_BIT = 4.5
#: Minimum-DRC global wire pitch at 45 nm (um); the re-optimised 2 GHz
#: link uses 2x spacing (Table I footnote).
WIRE_PITCH_UM = 0.28
SMART_WIRE_PITCH_UM = 2 * WIRE_PITCH_UM


@dataclasses.dataclass(frozen=True)
class RouterArea:
    """Area of one SMART router in um^2, by component."""

    buffers_um2: float
    crossbar_um2: float
    allocators_um2: float
    vlr_um2: float
    config_um2: float

    @property
    def total_um2(self) -> float:
        return (
            self.buffers_um2
            + self.crossbar_um2
            + self.allocators_um2
            + self.vlr_um2
            + self.config_um2
        )

    @property
    def total_mm2(self) -> float:
        return self.total_um2 * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return {
            "buffers_um2": self.buffers_um2,
            "crossbar_um2": self.crossbar_um2,
            "allocators_um2": self.allocators_um2,
            "vlr_um2": self.vlr_um2,
            "config_um2": self.config_um2,
        }


def router_area(cfg: NocConfig, ports: int = 5, config_reg_bits: int = 64) -> RouterArea:
    """Area of one router with the Table II configuration."""
    buffer_bits = ports * cfg.vcs_per_port * cfg.vc_depth_flits * cfg.flit_bits
    data_bits = cfg.flit_bits + cfg.credit_bits
    return RouterArea(
        buffers_um2=buffer_bits * BUFFER_UM2_PER_BIT,
        crossbar_um2=data_bits * ports * ports * XBAR_UM2_PER_BIT_PER_PORT2,
        allocators_um2=ports * ports * ARBITER_UM2_PER_PORT2,
        vlr_um2=(ports - 1)
        * data_bits
        * (VLR_TX_UM2_PER_BIT + VLR_RX_UM2_PER_BIT),
        config_um2=config_reg_bits * CONFIG_REG_UM2_PER_BIT,
    )


def noc_area_mm2(cfg: NocConfig) -> float:
    """Total router+link-circuit area of the mesh NoC (excludes cores)."""
    return router_area(cfg).total_mm2 * cfg.num_nodes


def mesh_wiring_mm(mesh: Mesh, cfg: NocConfig) -> float:
    """Total directed mesh channel wire length x width (wire-mm)."""
    num_links = sum(1 for _ in mesh.links())
    return num_links * cfg.mm_per_hop * (cfg.flit_bits + cfg.credit_bits)


def dedicated_wiring_mm(mesh: Mesh, flows: Iterable[Flow], cfg: NocConfig) -> float:
    """Wire-mm demanded by per-flow dedicated links for one application."""
    total = 0.0
    for flow in flows:
        distance = mesh.distance_mm(flow.src, flow.dst, cfg.mm_per_hop)
        total += distance * (cfg.flit_bits + cfg.credit_bits)
    return total


def dedicated_overhead_ratio(
    mesh: Mesh, flows: Iterable[Flow], cfg: NocConfig
) -> float:
    """How much more wiring Dedicated needs than the shared mesh.

    The mesh serves *every* application with its fixed channels; the
    Dedicated design needs this much wiring again for each application's
    private links (>1 means more wiring than the whole mesh).
    """
    return dedicated_wiring_mm(mesh, flows, cfg) / mesh_wiring_mm(mesh, cfg)
