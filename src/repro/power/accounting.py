"""Activity-based power accounting (the Fig 10b breakdown).

Categories follow the paper's Fig 10b legend exactly:

* ``buffer``      — buffer writes + reads + buffer/port clocking
* ``allocator``   — switch-allocation requests and grants
* ``xbar``        — data + credit crossbar traversals + pipeline registers
* ``link``        — data + credit wire energy (per flit, per mm)

The paper plots only link power for the Dedicated design ("only link power
is plotted, which is negligible due to low network activity" — the
destination high-radix routers are acknowledged but ignored);
``link_only=True`` reproduces that choice, while full accounting remains
available for honest comparisons.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.config import NocConfig
from repro.power.energy import EnergyParams
from repro.sim.stats import EventCounters

PJ = 1e-12


@dataclasses.dataclass(frozen=True)
class PowerBreakdown:
    """Average dynamic power (watts) over a measurement window."""

    buffer_w: float
    allocator_w: float
    xbar_w: float
    link_w: float

    @property
    def total_w(self) -> float:
        return self.buffer_w + self.allocator_w + self.xbar_w + self.link_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "Buffer": self.buffer_w,
            "Allocator": self.allocator_w,
            "Xbar (flit + credit) + Pipeline register": self.xbar_w,
            "Link": self.link_w,
        }

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(
            self.buffer_w * factor,
            self.allocator_w * factor,
            self.xbar_w * factor,
            self.link_w * factor,
        )


def power_from_counters(
    counters: EventCounters,
    cfg: NocConfig,
    params: EnergyParams = None,
    link_only: bool = False,
) -> PowerBreakdown:
    """Convert a measurement window's event counts into average power."""
    if params is None:
        params = EnergyParams.default_45nm(cfg)
    if counters.cycles <= 0:
        raise ValueError("counters cover no cycles")
    window_s = counters.cycles * cfg.cycle_time_s

    buffer_pj = (
        counters.buffer_writes * params.buffer_write_pj
        + counters.buffer_reads * params.buffer_read_pj
        + counters.clock_port_cycles * params.clock_port_pj
        + counters.clock_router_cycles * params.clock_router_pj
    )
    allocator_pj = (
        counters.sa_requests * params.arb_request_pj
        + counters.sa_grants * params.arb_grant_pj
    )
    xbar_pj = (
        counters.crossbar_traversals * params.xbar_flit_pj
        + counters.credit_crossbar_traversals * params.credit_xbar_pj
        + counters.pipeline_latches * params.pipeline_latch_pj
    )
    link_pj = (
        counters.link_flit_mm * params.link_pj_per_flit_mm
        + counters.credit_mm * params.credit_link_pj_per_mm
    )

    breakdown = PowerBreakdown(
        buffer_w=buffer_pj * PJ / window_s,
        allocator_w=allocator_pj * PJ / window_s,
        xbar_w=xbar_pj * PJ / window_s,
        link_w=link_pj * PJ / window_s,
    )
    if link_only:
        return PowerBreakdown(0.0, 0.0, 0.0, breakdown.link_w)
    return breakdown
