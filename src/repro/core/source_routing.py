"""Source-route encoding (§IV Routing).

"Since the routes are static, we adopt source routing and encode the route
in 2 bits for each router.  At the source router, the 2-bit corresponds to
East, South, West and North output ports, while at all other routers, the
bits correspond to Left, Right, Straight and Core.  The direction Left,
Right and Straight are relative to the input port of the flit."

The head flit carries 20 header bits (Table II); two per router plus a
small fixed field (VC id + flit type) bounds route length, which a 4x4
mesh's longest minimal path (7 routers) exactly fits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.config import NocConfig
from repro.sim.topology import Port

#: Source-router absolute codes, paper order E, S, W, N.
_ABS_CODE: Dict[Port, int] = {
    Port.EAST: 0,
    Port.SOUTH: 1,
    Port.WEST: 2,
    Port.NORTH: 3,
}
_ABS_PORT = {v: k for k, v in _ABS_CODE.items()}

#: Relative codes at non-source routers, paper order L, R, S, Core.
CODE_LEFT = 0
CODE_RIGHT = 1
CODE_STRAIGHT = 2
CODE_CORE = 3

#: Left of a travel heading (counterclockwise).
_LEFT_OF: Dict[Port, Port] = {
    Port.EAST: Port.NORTH,
    Port.NORTH: Port.WEST,
    Port.WEST: Port.SOUTH,
    Port.SOUTH: Port.EAST,
}
_RIGHT_OF = {heading: left.opposite for heading, left in _LEFT_OF.items()}

#: Header bits reserved for non-route fields (VC id, flit type, valid).
ROUTE_HEADER_OVERHEAD_BITS = 6


def max_route_routers(cfg: NocConfig) -> int:
    """Longest route (in routers) the head header can encode."""
    return (cfg.head_header_bits - ROUTE_HEADER_OVERHEAD_BITS) // 2


def relative_code(heading: Port, out_port: Port) -> int:
    """The 2-bit code for leaving via ``out_port`` when travelling
    ``heading``."""
    if out_port is Port.CORE:
        return CODE_CORE
    if out_port is heading:
        return CODE_STRAIGHT
    if out_port is _LEFT_OF[heading]:
        return CODE_LEFT
    if out_port is _RIGHT_OF[heading]:
        return CODE_RIGHT
    raise ValueError(
        "cannot leave %s while travelling %s (U-turn)"
        % (out_port.name, heading.name)
    )


def resolve_relative(heading: Port, code: int) -> Port:
    """Inverse of :func:`relative_code`."""
    if code == CODE_CORE:
        return Port.CORE
    if code == CODE_STRAIGHT:
        return heading
    if code == CODE_LEFT:
        return _LEFT_OF[heading]
    if code == CODE_RIGHT:
        return _RIGHT_OF[heading]
    raise ValueError("invalid 2-bit route code %d" % code)


def encode_route(route: Tuple[Port, ...]) -> int:
    """Pack a route (out-port per router, CORE-terminated) into an int.

    The source router's field is absolute; later fields are relative to
    the heading established by the previous hop.  Fields are packed two
    bits per router, source router in the least-significant bits.
    """
    if not route or route[-1] is not Port.CORE:
        raise ValueError("route must end with CORE")
    if route[0] is Port.CORE:
        raise ValueError("route must leave the source router")
    value = _ABS_CODE[route[0]]
    heading = route[0]
    for index, out_port in enumerate(route[1:], start=1):
        code = relative_code(heading, out_port)
        value |= code << (2 * index)
        if out_port is not Port.CORE:
            heading = out_port
    return value


def decode_route(value: int, num_routers: int) -> Tuple[Port, ...]:
    """Unpack ``num_routers`` 2-bit fields back into a route."""
    if num_routers < 1:
        raise ValueError("a route visits at least one router")
    first = _ABS_PORT[value & 0b11]
    route: List[Port] = [first]
    heading = first
    for index in range(1, num_routers):
        code = (value >> (2 * index)) & 0b11
        out_port = resolve_relative(heading, code)
        route.append(out_port)
        if out_port is Port.CORE:
            if index != num_routers - 1:
                raise ValueError("route ejects before its last router")
            break
        heading = out_port
    if route[-1] is not Port.CORE:
        raise ValueError("decoded route does not terminate at a core")
    return tuple(route)


@dataclasses.dataclass(frozen=True)
class RouteHeader:
    """The encoded head-flit header for one flow."""

    route_bits: int
    num_routers: int
    vc_id: int

    def bit_length(self) -> int:
        return 2 * self.num_routers + ROUTE_HEADER_OVERHEAD_BITS


def build_header(route: Tuple[Port, ...], cfg: NocConfig, vc_id: int = 0) -> RouteHeader:
    """Encode and capacity-check a route against the header budget."""
    if len(route) > max_route_routers(cfg):
        raise ValueError(
            "route visits %d routers but the %d-bit header encodes at most %d"
            % (len(route), cfg.head_header_bits, max_route_routers(cfg))
        )
    if not 0 <= vc_id < cfg.vcs_per_port:
        raise ValueError("vc id %d out of range" % vc_id)
    return RouteHeader(
        route_bits=encode_route(route), num_routers=len(route), vc_id=vc_id
    )
