"""Preset computation: turning mapped flows into SMART crossbar presets.

Before an application runs, "all the crossbar select lines are preset such
that they either always receive a flit from one of the incoming links, or
from a router buffer" (§IV).  This module decides, for every router input
port, whether it is a preset *bypass* (incoming link wired straight through
the crossbar to one output) or a *stop* (flits are latched, arbitrate, and
move through the SA-controlled crossbar), and derives the single-cycle
traversal segments that result.

Legality rule (derived from §IV and the Fig 7 discussion): input port ``p``
of router ``R`` may bypass to output ``q`` iff

* every flow entering ``R`` via ``p`` leaves via the same output ``q``
  (otherwise a static select would copy flits onto wrong paths), and
* every flow using output ``q`` enters via ``p`` (otherwise ``q`` must be
  arbitrated and the flows must stop).

All flows traversing a bypassed port therefore share one downstream path
until the next stop, which is what makes the free-VC queue at each segment
start well defined.  Chains longer than ``hpc_max`` hops (Table I: 8 mm at
2 GHz) get a forced stop.  With ``force_all_stops=True`` the same machinery
produces the baseline mesh (footnote 10: with all flows contending, SMART
degenerates to the mesh).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import NocConfig
from repro.sim.flow import Flow, validate_flow_set
from repro.sim.network import RouterConfig
from repro.sim.segments import (
    BufferEnd,
    NicEnd,
    NicStart,
    OutputStart,
    Segment,
    SegmentMap,
)
from repro.sim.topology import Mesh, Port


class InputMode(enum.Enum):
    """Preset state of a router input port."""

    BUFFERED = "buffered"
    BYPASS = "bypass"
    UNUSED = "unused"


@dataclasses.dataclass
class RouterPresets:
    """Preset state of one router for one application."""

    node: int
    input_mode: Dict[Port, InputMode]
    #: Output each bypassed input is wired to.
    bypass_out: Dict[Port, Port]
    #: Statically bound outputs -> their source input.
    static_source: Dict[Port, Port]
    #: Outputs arbitrated by switch allocation.
    dynamic_outputs: Set[Port]

    def buffered_inputs(self) -> List[Port]:
        return [p for p, m in self.input_mode.items() if m is InputMode.BUFFERED]

    def bypassed_inputs(self) -> List[Port]:
        return [p for p, m in self.input_mode.items() if m is InputMode.BYPASS]

    def used_inputs(self) -> List[Port]:
        return [p for p, m in self.input_mode.items() if m is not InputMode.UNUSED]

    def is_fully_bypassed(self) -> bool:
        """True if no flit is ever latched here (router clock fully gated)."""
        return not self.buffered_inputs() and not self.dynamic_outputs


@dataclasses.dataclass
class NetworkPresets:
    """Presets for every router plus the derived traversal segments."""

    cfg: NocConfig
    mesh: Mesh
    flows: Tuple[Flow, ...]
    routers: Dict[int, RouterPresets]
    segment_map: SegmentMap
    #: (node, port) stops inserted to respect HPC_max.
    forced_stops: Tuple[Tuple[int, Port], ...]

    def router_configs(self) -> Dict[int, RouterConfig]:
        configs = {}
        for node, presets in self.routers.items():
            configs[node] = RouterConfig(
                node=node,
                buffered_inputs=tuple(sorted(presets.buffered_inputs())),
                bypassed_inputs=tuple(sorted(presets.bypassed_inputs())),
                dynamic_outputs=tuple(sorted(presets.dynamic_outputs)),
            )
        return configs

    def stops_for_flow(self, flow: Flow) -> List[int]:
        """Routers at which packets of ``flow`` are latched."""
        stops = []
        for node, in_port, _out in flow.port_traversals(self.mesh):
            mode = self.routers[node].input_mode.get(in_port, InputMode.UNUSED)
            if mode is InputMode.BUFFERED:
                stops.append(node)
        return stops

    def single_cycle_flows(self) -> List[Flow]:
        """Flows that traverse source NIC to destination NIC in one cycle."""
        return [f for f in self.flows if not self.stops_for_flow(f)]

    def one_cycle_link_count(self) -> int:
        """Links traversed combinationally within a single cycle — the
        bold links of Fig 1."""
        return sum(
            segment.hops
            for segment in self.segment_map.segments()
            if segment.extra_cycles == 0
        )


def compute_presets(
    cfg: NocConfig,
    mesh: Mesh,
    flows: Sequence[Flow],
    force_all_stops: bool = False,
    link_extra_cycles: int = 0,
) -> NetworkPresets:
    """Derive presets and segments for a set of mapped flows.

    Args:
        cfg: Network configuration (``cfg.hpc_max`` bounds chain length;
            sweep it via ``dataclasses.replace`` for the HPC ablation).
        mesh: The physical mesh.
        flows: Mapped flows with routes.
        force_all_stops: Buffer every used input (baseline mesh).
        link_extra_cycles: Extra cycles per link-bearing segment (the
            baseline mesh's separate link-traversal stage).
    """
    flows = tuple(flows)
    validate_flow_set(list(flows), mesh)
    limit = cfg.hpc_max

    flows_in: Dict[Tuple[int, Port], Set[int]] = {}
    flows_out: Dict[Tuple[int, Port], Set[int]] = {}
    out_at: Dict[Tuple[int, int], Port] = {}
    for flow in flows:
        for node, in_port, out_port in flow.port_traversals(mesh):
            flows_in.setdefault((node, in_port), set()).add(flow.flow_id)
            flows_out.setdefault((node, out_port), set()).add(flow.flow_id)
            out_at[(node, flow.flow_id)] = out_port

    routers: Dict[int, RouterPresets] = {
        node: RouterPresets(node, {p: InputMode.UNUSED for p in Port}, {}, {}, set())
        for node in mesh.nodes()
    }

    # Pass 1: local bypass legality.
    for (node, in_port), fset in flows_in.items():
        presets = routers[node]
        outs = {out_at[(node, fid)] for fid in fset}
        bypass_target: Optional[Port] = None
        if not force_all_stops and len(outs) == 1:
            q = next(iter(outs))
            if flows_out[(node, q)] == fset:
                bypass_target = q
        if bypass_target is None:
            presets.input_mode[in_port] = InputMode.BUFFERED
        else:
            presets.input_mode[in_port] = InputMode.BYPASS
            presets.bypass_out[in_port] = bypass_target

    # Classify outputs: static iff bound by a bypass, else dynamic if used.
    for node, presets in routers.items():
        for in_port, q in presets.bypass_out.items():
            presets.static_source[q] = in_port
        for (n, out_port), _fset in flows_out.items():
            if n == node and out_port not in presets.static_source:
                presets.dynamic_outputs.add(out_port)

    # Pass 2: walk chains, enforcing HPC_max by forcing stops.
    forced: List[Tuple[int, Port]] = []

    def force_stop(node: int, in_port: Port) -> None:
        presets = routers[node]
        q = presets.bypass_out.pop(in_port)
        presets.input_mode[in_port] = InputMode.BUFFERED
        del presets.static_source[q]
        presets.dynamic_outputs.add(q)
        forced.append((node, in_port))

    segment_map = SegmentMap()
    worklist: List[Tuple[object, Optional[Tuple[int, Port]], int, List[int]]] = []
    for node in mesh.nodes():
        if any(f.src == node for f in flows):
            worklist.append((NicStart(node), (node, Port.CORE), 0, []))

    def enqueue_dynamic_outputs(node: int) -> None:
        presets = routers[node]
        for q in sorted(presets.dynamic_outputs):
            start = OutputStart(node, q)
            if segment_map.has_start(start):
                continue
            if q is Port.CORE:
                worklist.append((start, None, 0, [node]))
            else:
                neighbor = mesh.neighbor(node, q)
                if neighbor is None:
                    raise ValueError(
                        "preset routes flow off-mesh at node %d port %s"
                        % (node, q.name)
                    )
                worklist.append((start, (neighbor, q.opposite), 1, [node]))

    for node in mesh.nodes():
        enqueue_dynamic_outputs(node)

    max_steps = mesh.num_nodes * len(Port) + 1
    while worklist:
        start, position, hops, crossed = worklist.pop()
        if segment_map.has_start(start):
            continue
        steps = 0
        end = None
        while end is None:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("bypass chain from %r does not terminate" % (start,))
            if position is None:
                end = NicEnd(crossed[-1])
                break
            node, in_port = position
            presets = routers[node]
            mode = presets.input_mode.get(in_port, InputMode.UNUSED)
            if mode is InputMode.UNUSED:
                raise RuntimeError(
                    "chain from %r reaches unused port (%d, %s)"
                    % (start, node, in_port.name)
                )
            if mode is InputMode.BUFFERED:
                end = BufferEnd(node, in_port)
                break
            q = presets.bypass_out[in_port]
            if q is not Port.CORE and hops + 1 > limit:
                force_stop(node, in_port)
                enqueue_dynamic_outputs(node)
                end = BufferEnd(node, in_port)
                break
            crossed.append(node)
            if q is Port.CORE:
                end = NicEnd(node)
                break
            neighbor = mesh.neighbor(node, q)
            if neighbor is None:
                raise ValueError(
                    "preset routes flow off-mesh at node %d port %s"
                    % (node, q.name)
                )
            hops += 1
            position = (neighbor, q.opposite)
        extra = link_extra_cycles if hops >= 1 else 0
        segment_map.add(
            Segment(
                start=start,
                end=end,
                hops=hops,
                routers_crossed=tuple(crossed),
                extra_cycles=extra,
            )
        )

    presets_obj = NetworkPresets(
        cfg=cfg,
        mesh=mesh,
        flows=flows,
        routers=routers,
        segment_map=segment_map,
        forced_stops=tuple(forced),
    )
    _validate(presets_obj, flows_in, flows_out)
    return presets_obj


def _validate(
    presets: NetworkPresets,
    flows_in: Dict[Tuple[int, Port], Set[int]],
    flows_out: Dict[Tuple[int, Port], Set[int]],
) -> None:
    """Internal consistency checks on the computed presets."""
    for node, rp in presets.routers.items():
        static = set(rp.static_source)
        if static & rp.dynamic_outputs:
            raise AssertionError(
                "router %d outputs both static and dynamic: %r"
                % (node, static & rp.dynamic_outputs)
            )
        for in_port, q in rp.bypass_out.items():
            if rp.static_source.get(q) is not in_port:
                raise AssertionError(
                    "router %d bypass (%s -> %s) not mirrored in static map"
                    % (node, in_port.name, q.name)
                )
        for (n, out_port) in flows_out:
            if n != node:
                continue
            if out_port not in static and out_port not in rp.dynamic_outputs:
                raise AssertionError(
                    "router %d used output %s is neither static nor dynamic"
                    % (node, out_port.name)
                )
    if presets.segment_map.max_hops() > presets.cfg.hpc_max:
        raise AssertionError(
            "segment exceeds HPC_max after enforcement (%d > %d)"
            % (presets.segment_map.max_hops(), presets.cfg.hpc_max)
        )
