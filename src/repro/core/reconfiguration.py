"""Reconfiguration registers and the runtime reconfiguration program (§V).

"We encode the preset signals for crossbars and input/output ports into a
double-word configuration register for each router.  These registers are
memory mapped such that these can be set by performing a few memory store
operations. ... for a 16-node SMART NoC, there are 16 registers to be set
which correspond to 16 instructions."

64-bit register layout (bit 0 = LSB):

    [ 4: 0]  input bypass enable, one bit per port (E,S,W,N,C)
    [19: 5]  bypassed input's bound output, 3 bits per port (7 = none)
    [34:20]  crossbar output select, 3 bits per port
             (0-4 = static source input, 5 = SA-controlled, 7 = unused)
    [39:35]  port clock gate, one bit per port (1 = gated off)
    [54:40]  credit crossbar output select, 3 bits per port (7 = none)
    [63]     valid
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.credit_network import CreditNetwork, derive_credit_network
from repro.core.presets import InputMode, NetworkPresets, RouterPresets
from repro.sim.topology import Port

#: Default memory-mapped base address of the config register file.
DEFAULT_BASE_ADDR = 0x4000_0000
#: Register stride: one double word per router.
REGISTER_STRIDE_BYTES = 8

_NONE = 0b111
_SEL_DYNAMIC = 0b101
_VALID_BIT = 63

_PORTS = tuple(Port)


def _field(value: int, offset: int, width: int) -> int:
    return (value >> offset) & ((1 << width) - 1)


@dataclasses.dataclass(frozen=True)
class DecodedRouterConfig:
    """Human-readable view of one router's 64-bit config register."""

    node: int
    bypass_enable: Dict[Port, bool]
    bypass_out: Dict[Port, Port]
    output_select: Dict[Port, object]  # Port | "dynamic" | None
    clock_gated: Dict[Port, bool]
    credit_out_select: Dict[Port, Port]
    valid: bool


def encode_router(
    rp: RouterPresets, credit_presets: Dict[Port, Port]
) -> int:
    """Pack one router's presets into its 64-bit register value."""
    value = 1 << _VALID_BIT
    for port in _PORTS:
        index = int(port)
        mode = rp.input_mode.get(port, InputMode.UNUSED)
        if mode is InputMode.BYPASS:
            value |= 1 << index
            value |= int(rp.bypass_out[port]) << (5 + 3 * index)
        else:
            value |= _NONE << (5 + 3 * index)
        if port in rp.static_source:
            select = int(rp.static_source[port])
        elif port in rp.dynamic_outputs:
            select = _SEL_DYNAMIC
        else:
            select = _NONE
        value |= select << (20 + 3 * index)
        # A port's clock is gated when it neither buffers nor arbitrates:
        # bypassed and unused ports run clockless.
        gated = mode is not InputMode.BUFFERED and port not in rp.dynamic_outputs
        if gated:
            value |= 1 << (35 + index)
        credit_out = credit_presets.get(port)
        credit_sel = _NONE if credit_out is None else int(credit_out)
        value |= credit_sel << (40 + 3 * index)
    return value


def decode_router(node: int, value: int) -> DecodedRouterConfig:
    """Unpack a 64-bit register value (inverse of :func:`encode_router`)."""
    bypass_enable: Dict[Port, bool] = {}
    bypass_out: Dict[Port, Port] = {}
    output_select: Dict[Port, object] = {}
    clock_gated: Dict[Port, bool] = {}
    credit_out_select: Dict[Port, Port] = {}
    for port in _PORTS:
        index = int(port)
        enabled = bool(_field(value, index, 1))
        bypass_enable[port] = enabled
        out_code = _field(value, 5 + 3 * index, 3)
        if enabled:
            if out_code == _NONE:
                raise ValueError(
                    "router %d: bypassed port %s has no bound output"
                    % (node, port.name)
                )
            bypass_out[port] = Port(out_code)
        select_code = _field(value, 20 + 3 * index, 3)
        if select_code == _NONE:
            output_select[port] = None
        elif select_code == _SEL_DYNAMIC:
            output_select[port] = "dynamic"
        else:
            output_select[port] = Port(select_code)
        clock_gated[port] = bool(_field(value, 35 + index, 1))
        credit_code = _field(value, 40 + 3 * index, 3)
        if credit_code != _NONE:
            credit_out_select[port] = Port(credit_code)
    return DecodedRouterConfig(
        node=node,
        bypass_enable=bypass_enable,
        bypass_out=bypass_out,
        output_select=output_select,
        clock_gated=clock_gated,
        credit_out_select=credit_out_select,
        valid=bool(_field(value, _VALID_BIT, 1)),
    )


@dataclasses.dataclass(frozen=True)
class StoreOp:
    """One memory-mapped store instruction."""

    address: int
    value: int

    def __str__(self) -> str:
        return "store [0x%08x] <- 0x%016x" % (self.address, self.value)


@dataclasses.dataclass
class ReconfigurationProgram:
    """The store sequence that retargets the NoC to one application.

    "Application developers need to prepend the application with memory
    store instructions to set the registers properly and the
    reconfiguration cost at runtime is just the amount of time to execute
    these instructions."
    """

    app_name: str
    stores: List[StoreOp]
    base_addr: int

    @property
    def cost_instructions(self) -> int:
        return len(self.stores)

    def cost_cycles(self, cycles_per_store: int = 1) -> int:
        """Runtime reconfiguration cost (the network must be empty)."""
        return self.cost_instructions * cycles_per_store

    def register_for_node(self, node: int) -> int:
        address = self.base_addr + node * REGISTER_STRIDE_BYTES
        for op in self.stores:
            if op.address == address:
                return op.value
        raise KeyError("no store targets node %d" % node)


def compile_program(
    presets: NetworkPresets,
    app_name: str = "",
    base_addr: int = DEFAULT_BASE_ADDR,
) -> ReconfigurationProgram:
    """Compile presets into the per-router store sequence."""
    credit = derive_credit_network(presets)
    stores = []
    for node in sorted(presets.routers):
        value = encode_router(presets.routers[node], credit.presets[node])
        stores.append(
            StoreOp(address=base_addr + node * REGISTER_STRIDE_BYTES, value=value)
        )
    return ReconfigurationProgram(
        app_name=app_name or "app", stores=stores, base_addr=base_addr
    )


def diff_program(
    old: ReconfigurationProgram, new: ReconfigurationProgram
) -> ReconfigurationProgram:
    """Stores needed to switch configurations (only changed registers).

    The paper writes all 16 registers; an incremental switch is an easy
    optimisation when consecutive applications share presets.
    """
    if old.base_addr != new.base_addr:
        raise ValueError("programs target different register files")
    old_values = {op.address: op.value for op in old.stores}
    changed = [
        op for op in new.stores if old_values.get(op.address) != op.value
    ]
    return ReconfigurationProgram(
        app_name="%s->%s" % (old.app_name, new.app_name),
        stores=changed,
        base_addr=new.base_addr,
    )
