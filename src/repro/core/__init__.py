"""SMART core: presets, segments, reconfiguration, source routing."""

from repro.core.credit_network import (
    CreditNetwork,
    CreditPreset,
    credit_crossbar_width_bits,
    derive_credit_network,
)
from repro.core.noc_builder import NocInstance, build_mesh_noc, build_smart_noc
from repro.core.presets import (
    InputMode,
    NetworkPresets,
    RouterPresets,
    compute_presets,
)
from repro.core.reconfiguration import (
    DEFAULT_BASE_ADDR,
    DecodedRouterConfig,
    ReconfigurationProgram,
    StoreOp,
    compile_program,
    decode_router,
    diff_program,
    encode_router,
)
from repro.core.smart_crossbar import (
    CrossbarSpec,
    SmartRouterSpec,
    build_router_spec,
)
from repro.core.source_routing import (
    RouteHeader,
    build_header,
    decode_route,
    encode_route,
    max_route_routers,
    relative_code,
    resolve_relative,
)

__all__ = [
    "CreditNetwork",
    "CreditPreset",
    "CrossbarSpec",
    "DecodedRouterConfig",
    "DEFAULT_BASE_ADDR",
    "InputMode",
    "NetworkPresets",
    "NocInstance",
    "ReconfigurationProgram",
    "RouteHeader",
    "RouterPresets",
    "SmartRouterSpec",
    "StoreOp",
    "build_header",
    "build_mesh_noc",
    "build_router_spec",
    "build_smart_noc",
    "compile_program",
    "compute_presets",
    "credit_crossbar_width_bits",
    "decode_route",
    "decode_router",
    "derive_credit_network",
    "diff_program",
    "encode_route",
    "encode_router",
    "max_route_routers",
    "relative_code",
    "resolve_relative",
]
