"""The reverse credit mesh (§IV Flow Control).

Credits travel a mesh of their own, "similar to the forward data mesh
network that delivers flits", through [log2(#VCs)+1]-bit SMART crossbars
preset as the mirror image of the data presets: wherever data bypasses a
router from input ``p`` to output ``q``, credits bypass it from input
``q`` to output ``p``.  "The beauty of this design is that the router does
not need to be aware of the reconfiguration": a router receiving a credit
simply enqueues the VC id — the preset credit crossbars have already
steered it to the right segment start.

The cycle-level behaviour of credits is simulated inside
:mod:`repro.sim.network`; this module derives the *structural* credit
presets used by the reconfiguration registers and the RTL generator, and
exposes the credit paths for inspection.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.core.presets import NetworkPresets
from repro.sim.segments import Segment
from repro.sim.topology import Port


@dataclasses.dataclass(frozen=True)
class CreditPreset:
    """Credit crossbar preset at one router: out via ``out_port`` selecting
    credits arriving via ``in_port``."""

    node: int
    in_port: Port
    out_port: Port


@dataclasses.dataclass
class CreditNetwork:
    """Structural description of the preset reverse credit mesh."""

    #: Per-router credit crossbar presets: node -> {credit out -> credit in}.
    presets: Dict[int, Dict[Port, Port]]
    #: Per data segment: the routers a returning credit bypasses.
    paths: Dict[Segment, Tuple[int, ...]]

    def preset_count(self) -> int:
        return sum(len(p) for p in self.presets.values())

    def credit_path_for(self, segment: Segment) -> Tuple[int, ...]:
        return self.paths[segment]


def derive_credit_network(presets: NetworkPresets) -> CreditNetwork:
    """Mirror the data presets into credit presets.

    For every data bypass (in ``p`` -> out ``q``) at a router, a credit
    preset (in ``q`` -> out ``p``) is installed, so a credit released at a
    segment's endpoint retraces the segment to its start in a single cycle
    without entering intermediate routers.
    """
    credit_presets: Dict[int, Dict[Port, Port]] = {
        node: {} for node in presets.routers
    }
    for node, rp in presets.routers.items():
        for in_port, out_port in rp.bypass_out.items():
            credit_presets[node][in_port] = out_port

    # A returning credit retraces the data crossings in reverse: the
    # segment endpoint (buffered router or destination NIC) launches it,
    # the segment start's free-VC queue consumes it.
    paths: Dict[Segment, Tuple[int, ...]] = {
        segment: tuple(reversed(segment.routers_crossed))
        for segment in presets.segment_map.segments()
    }
    return CreditNetwork(presets=credit_presets, paths=paths)


def credit_crossbar_width_bits(num_vcs: int) -> int:
    """Width of the credit crossbar: log2(#VCs) + 1 valid bit (§IV)."""
    if num_vcs < 1:
        raise ValueError("need at least one VC")
    bits = 1
    while (1 << bits) < num_vcs:
        bits += 1
    if num_vcs == 1:
        bits = 1
    return bits + 1
