"""High-level constructors for SMART and baseline-mesh NoC instances."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.config import NocConfig
from repro.core.presets import NetworkPresets, compute_presets
from repro.sim.flow import Flow
from repro.sim.network import Network
from repro.sim.topology import Mesh
from repro.sim.traffic import BernoulliTraffic, TrafficModel


@dataclasses.dataclass
class NocInstance:
    """A configured NoC: presets plus a ready-to-run simulator."""

    cfg: NocConfig
    mesh: Mesh
    presets: NetworkPresets
    network: Network
    design: str

    def run(self, **kwargs):
        return self.network.run(**kwargs)


def build_smart_noc(
    cfg: NocConfig,
    flows: Sequence[Flow],
    traffic: Optional[TrafficModel] = None,
    seed: int = 1,
    kernel: str = "active",
) -> NocInstance:
    """Build a SMART NoC: preset bypass paths, single-cycle multi-hop."""
    mesh = Mesh(cfg.width, cfg.height)
    presets = compute_presets(cfg, mesh, flows)
    if traffic is None:
        traffic = BernoulliTraffic(cfg, flows, seed=seed)
    network = Network(
        cfg, mesh, flows, presets.router_configs(), presets.segment_map,
        traffic, kernel=kernel,
    )
    return NocInstance(cfg, mesh, presets, network, design="smart")


def build_mesh_noc(
    cfg: NocConfig,
    flows: Sequence[Flow],
    traffic: Optional[TrafficModel] = None,
    seed: int = 1,
    kernel: str = "active",
) -> NocInstance:
    """Build the baseline mesh: a state-of-the-art NoC with no
    reconfiguration, 3 cycles per router and 1 cycle per link (§VI)."""
    mesh = Mesh(cfg.width, cfg.height)
    presets = compute_presets(
        cfg,
        mesh,
        flows,
        force_all_stops=True,
        link_extra_cycles=cfg.mesh_link_cycles,
    )
    if traffic is None:
        traffic = BernoulliTraffic(cfg, flows, seed=seed)
    network = Network(
        cfg, mesh, flows, presets.router_configs(), presets.segment_map,
        traffic, kernel=kernel,
    )
    return NocInstance(cfg, mesh, presets, network, design="mesh")
