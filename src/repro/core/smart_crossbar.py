"""Structural model of the SMART crossbar and router (Fig 5/6).

The SMART crossbar sits between the Rx and Tx halves of the voltage-locked
repeaters: incoming low-swing signals are converted to full swing (Rx),
traverse the full-swing crossbar, and are re-driven as low swing (Tx)
toward the next hop.  Each input port carries a 2:1 bypass mux choosing
between the incoming link (preset bypass) and the router's input buffer.

This module captures that structure — port counts, mux and select-line
widths, Rx/Tx instances — for the RTL generator, the area model and the
documentation; the cycle behaviour lives in :mod:`repro.sim.network`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.config import NocConfig
from repro.core.credit_network import credit_crossbar_width_bits
from repro.sim.topology import Port


@dataclasses.dataclass(frozen=True)
class CrossbarSpec:
    """Static structure of one SMART crossbar instance."""

    data_bits: int
    num_ports: int
    #: Select-line width per output (chooses among inputs + buffered path).
    select_bits: int

    @property
    def mux_count(self) -> int:
        """One output mux per port."""
        return self.num_ports

    @property
    def bypass_mux_count(self) -> int:
        """One 2:1 link/buffer mux per input port."""
        return self.num_ports

    @property
    def crosspoints(self) -> int:
        return self.num_ports * self.num_ports * self.data_bits


@dataclasses.dataclass(frozen=True)
class SmartRouterSpec:
    """Structure of one SMART router: buffers + arbiters + two crossbars
    (data and credit) + VLR Tx/Rx blocks on each mesh-facing port."""

    cfg: NocConfig
    data_xbar: CrossbarSpec
    credit_xbar: CrossbarSpec

    @property
    def num_ports(self) -> int:
        return self.data_xbar.num_ports

    @property
    def buffer_bits(self) -> int:
        return (
            self.num_ports
            * self.cfg.vcs_per_port
            * self.cfg.vc_depth_flits
            * self.cfg.flit_bits
        )

    @property
    def mesh_ports(self) -> List[Port]:
        return [p for p in Port if p.is_cardinal]

    @property
    def vlr_rx_bits(self) -> int:
        """Low-swing receivers: one per data+credit wire per mesh port."""
        per_port = self.cfg.flit_bits + self.cfg.credit_bits
        return len(self.mesh_ports) * per_port

    @property
    def vlr_tx_bits(self) -> int:
        return self.vlr_rx_bits

    def pipeline_stages(self) -> Tuple[str, str, str]:
        """The 3-stage pipeline of Fig 6."""
        return ("Buffer Write", "Switch Allocation", "SMART Crossbar + Link")


def _select_bits(num_inputs: int) -> int:
    bits = 1
    while (1 << bits) < num_inputs:
        bits += 1
    return bits


def build_router_spec(cfg: NocConfig, num_ports: int = 5) -> SmartRouterSpec:
    """Spec for the Table II router: 5 ports, 32-bit data, 2-bit credit."""
    if num_ports < 2:
        raise ValueError("a router needs at least two ports")
    # Each output selects among the other inputs' bypass paths plus the
    # buffered path: num_ports + 1 sources.
    select = _select_bits(num_ports + 1)
    data = CrossbarSpec(
        data_bits=cfg.flit_bits, num_ports=num_ports, select_bits=select
    )
    credit = CrossbarSpec(
        data_bits=credit_crossbar_width_bits(cfg.vcs_per_port),
        num_ports=num_ports,
        select_bits=select,
    )
    return SmartRouterSpec(cfg=cfg, data_xbar=data, credit_xbar=credit)
